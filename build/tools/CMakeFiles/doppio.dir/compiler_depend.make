# Empty compiler generated dependencies file for doppio.
# This may be replaced when dependencies are built.
