file(REMOVE_RECURSE
  "CMakeFiles/doppio.dir/doppio_cli.cpp.o"
  "CMakeFiles/doppio.dir/doppio_cli.cpp.o.d"
  "doppio"
  "doppio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
