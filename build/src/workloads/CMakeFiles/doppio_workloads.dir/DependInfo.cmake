
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/gatk4.cc" "src/workloads/CMakeFiles/doppio_workloads.dir/gatk4.cc.o" "gcc" "src/workloads/CMakeFiles/doppio_workloads.dir/gatk4.cc.o.d"
  "/root/repo/src/workloads/logistic_regression.cc" "src/workloads/CMakeFiles/doppio_workloads.dir/logistic_regression.cc.o" "gcc" "src/workloads/CMakeFiles/doppio_workloads.dir/logistic_regression.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/workloads/CMakeFiles/doppio_workloads.dir/pagerank.cc.o" "gcc" "src/workloads/CMakeFiles/doppio_workloads.dir/pagerank.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/doppio_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/doppio_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/svm.cc" "src/workloads/CMakeFiles/doppio_workloads.dir/svm.cc.o" "gcc" "src/workloads/CMakeFiles/doppio_workloads.dir/svm.cc.o.d"
  "/root/repo/src/workloads/terasort.cc" "src/workloads/CMakeFiles/doppio_workloads.dir/terasort.cc.o" "gcc" "src/workloads/CMakeFiles/doppio_workloads.dir/terasort.cc.o.d"
  "/root/repo/src/workloads/triangle_count.cc" "src/workloads/CMakeFiles/doppio_workloads.dir/triangle_count.cc.o" "gcc" "src/workloads/CMakeFiles/doppio_workloads.dir/triangle_count.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/doppio_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/doppio_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/doppio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/doppio_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/doppio_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/doppio_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/doppio_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/doppio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/doppio_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/doppio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
