file(REMOVE_RECURSE
  "CMakeFiles/doppio_workloads.dir/gatk4.cc.o"
  "CMakeFiles/doppio_workloads.dir/gatk4.cc.o.d"
  "CMakeFiles/doppio_workloads.dir/logistic_regression.cc.o"
  "CMakeFiles/doppio_workloads.dir/logistic_regression.cc.o.d"
  "CMakeFiles/doppio_workloads.dir/pagerank.cc.o"
  "CMakeFiles/doppio_workloads.dir/pagerank.cc.o.d"
  "CMakeFiles/doppio_workloads.dir/registry.cc.o"
  "CMakeFiles/doppio_workloads.dir/registry.cc.o.d"
  "CMakeFiles/doppio_workloads.dir/svm.cc.o"
  "CMakeFiles/doppio_workloads.dir/svm.cc.o.d"
  "CMakeFiles/doppio_workloads.dir/terasort.cc.o"
  "CMakeFiles/doppio_workloads.dir/terasort.cc.o.d"
  "CMakeFiles/doppio_workloads.dir/triangle_count.cc.o"
  "CMakeFiles/doppio_workloads.dir/triangle_count.cc.o.d"
  "CMakeFiles/doppio_workloads.dir/workload.cc.o"
  "CMakeFiles/doppio_workloads.dir/workload.cc.o.d"
  "libdoppio_workloads.a"
  "libdoppio_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
