# Empty compiler generated dependencies file for doppio_workloads.
# This may be replaced when dependencies are built.
