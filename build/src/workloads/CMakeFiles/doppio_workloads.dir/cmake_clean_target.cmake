file(REMOVE_RECURSE
  "libdoppio_workloads.a"
)
