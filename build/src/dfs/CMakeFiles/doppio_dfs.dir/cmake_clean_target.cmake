file(REMOVE_RECURSE
  "libdoppio_dfs.a"
)
