file(REMOVE_RECURSE
  "CMakeFiles/doppio_dfs.dir/hdfs.cc.o"
  "CMakeFiles/doppio_dfs.dir/hdfs.cc.o.d"
  "libdoppio_dfs.a"
  "libdoppio_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
