# Empty compiler generated dependencies file for doppio_dfs.
# This may be replaced when dependencies are built.
