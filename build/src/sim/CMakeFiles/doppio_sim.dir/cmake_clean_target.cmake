file(REMOVE_RECURSE
  "libdoppio_sim.a"
)
