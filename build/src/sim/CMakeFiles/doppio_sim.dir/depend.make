# Empty dependencies file for doppio_sim.
# This may be replaced when dependencies are built.
