file(REMOVE_RECURSE
  "CMakeFiles/doppio_sim.dir/fluid_pipe.cc.o"
  "CMakeFiles/doppio_sim.dir/fluid_pipe.cc.o.d"
  "CMakeFiles/doppio_sim.dir/simulator.cc.o"
  "CMakeFiles/doppio_sim.dir/simulator.cc.o.d"
  "libdoppio_sim.a"
  "libdoppio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
