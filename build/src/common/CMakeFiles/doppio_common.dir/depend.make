# Empty dependencies file for doppio_common.
# This may be replaced when dependencies are built.
