# Empty compiler generated dependencies file for doppio_common.
# This may be replaced when dependencies are built.
