file(REMOVE_RECURSE
  "libdoppio_common.a"
)
