file(REMOVE_RECURSE
  "CMakeFiles/doppio_common.dir/logging.cc.o"
  "CMakeFiles/doppio_common.dir/logging.cc.o.d"
  "CMakeFiles/doppio_common.dir/lookup_table.cc.o"
  "CMakeFiles/doppio_common.dir/lookup_table.cc.o.d"
  "CMakeFiles/doppio_common.dir/random.cc.o"
  "CMakeFiles/doppio_common.dir/random.cc.o.d"
  "CMakeFiles/doppio_common.dir/sim_time.cc.o"
  "CMakeFiles/doppio_common.dir/sim_time.cc.o.d"
  "CMakeFiles/doppio_common.dir/stats.cc.o"
  "CMakeFiles/doppio_common.dir/stats.cc.o.d"
  "CMakeFiles/doppio_common.dir/table_printer.cc.o"
  "CMakeFiles/doppio_common.dir/table_printer.cc.o.d"
  "CMakeFiles/doppio_common.dir/units.cc.o"
  "CMakeFiles/doppio_common.dir/units.cc.o.d"
  "libdoppio_common.a"
  "libdoppio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
