# Empty dependencies file for doppio_cluster.
# This may be replaced when dependencies are built.
