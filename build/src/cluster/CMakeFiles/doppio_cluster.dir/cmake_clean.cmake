file(REMOVE_RECURSE
  "CMakeFiles/doppio_cluster.dir/cluster.cc.o"
  "CMakeFiles/doppio_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/doppio_cluster.dir/cluster_config.cc.o"
  "CMakeFiles/doppio_cluster.dir/cluster_config.cc.o.d"
  "libdoppio_cluster.a"
  "libdoppio_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
