file(REMOVE_RECURSE
  "libdoppio_cluster.a"
)
