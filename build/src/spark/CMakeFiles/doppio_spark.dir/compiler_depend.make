# Empty compiler generated dependencies file for doppio_spark.
# This may be replaced when dependencies are built.
