
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spark/block_manager.cc" "src/spark/CMakeFiles/doppio_spark.dir/block_manager.cc.o" "gcc" "src/spark/CMakeFiles/doppio_spark.dir/block_manager.cc.o.d"
  "/root/repo/src/spark/dag_scheduler.cc" "src/spark/CMakeFiles/doppio_spark.dir/dag_scheduler.cc.o" "gcc" "src/spark/CMakeFiles/doppio_spark.dir/dag_scheduler.cc.o.d"
  "/root/repo/src/spark/metrics.cc" "src/spark/CMakeFiles/doppio_spark.dir/metrics.cc.o" "gcc" "src/spark/CMakeFiles/doppio_spark.dir/metrics.cc.o.d"
  "/root/repo/src/spark/metrics_json.cc" "src/spark/CMakeFiles/doppio_spark.dir/metrics_json.cc.o" "gcc" "src/spark/CMakeFiles/doppio_spark.dir/metrics_json.cc.o.d"
  "/root/repo/src/spark/rdd.cc" "src/spark/CMakeFiles/doppio_spark.dir/rdd.cc.o" "gcc" "src/spark/CMakeFiles/doppio_spark.dir/rdd.cc.o.d"
  "/root/repo/src/spark/spark_context.cc" "src/spark/CMakeFiles/doppio_spark.dir/spark_context.cc.o" "gcc" "src/spark/CMakeFiles/doppio_spark.dir/spark_context.cc.o.d"
  "/root/repo/src/spark/task_engine.cc" "src/spark/CMakeFiles/doppio_spark.dir/task_engine.cc.o" "gcc" "src/spark/CMakeFiles/doppio_spark.dir/task_engine.cc.o.d"
  "/root/repo/src/spark/task_trace.cc" "src/spark/CMakeFiles/doppio_spark.dir/task_trace.cc.o" "gcc" "src/spark/CMakeFiles/doppio_spark.dir/task_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/doppio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/doppio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/doppio_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/doppio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/doppio_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/doppio_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
