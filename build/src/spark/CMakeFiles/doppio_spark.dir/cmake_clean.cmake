file(REMOVE_RECURSE
  "CMakeFiles/doppio_spark.dir/block_manager.cc.o"
  "CMakeFiles/doppio_spark.dir/block_manager.cc.o.d"
  "CMakeFiles/doppio_spark.dir/dag_scheduler.cc.o"
  "CMakeFiles/doppio_spark.dir/dag_scheduler.cc.o.d"
  "CMakeFiles/doppio_spark.dir/metrics.cc.o"
  "CMakeFiles/doppio_spark.dir/metrics.cc.o.d"
  "CMakeFiles/doppio_spark.dir/metrics_json.cc.o"
  "CMakeFiles/doppio_spark.dir/metrics_json.cc.o.d"
  "CMakeFiles/doppio_spark.dir/rdd.cc.o"
  "CMakeFiles/doppio_spark.dir/rdd.cc.o.d"
  "CMakeFiles/doppio_spark.dir/spark_context.cc.o"
  "CMakeFiles/doppio_spark.dir/spark_context.cc.o.d"
  "CMakeFiles/doppio_spark.dir/task_engine.cc.o"
  "CMakeFiles/doppio_spark.dir/task_engine.cc.o.d"
  "CMakeFiles/doppio_spark.dir/task_trace.cc.o"
  "CMakeFiles/doppio_spark.dir/task_trace.cc.o.d"
  "libdoppio_spark.a"
  "libdoppio_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
