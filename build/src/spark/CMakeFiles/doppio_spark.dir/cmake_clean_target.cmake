file(REMOVE_RECURSE
  "libdoppio_spark.a"
)
