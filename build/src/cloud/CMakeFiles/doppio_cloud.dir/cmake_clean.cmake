file(REMOVE_RECURSE
  "CMakeFiles/doppio_cloud.dir/advisor.cc.o"
  "CMakeFiles/doppio_cloud.dir/advisor.cc.o.d"
  "CMakeFiles/doppio_cloud.dir/gcp_disk.cc.o"
  "CMakeFiles/doppio_cloud.dir/gcp_disk.cc.o.d"
  "CMakeFiles/doppio_cloud.dir/optimizer.cc.o"
  "CMakeFiles/doppio_cloud.dir/optimizer.cc.o.d"
  "CMakeFiles/doppio_cloud.dir/pricing.cc.o"
  "CMakeFiles/doppio_cloud.dir/pricing.cc.o.d"
  "libdoppio_cloud.a"
  "libdoppio_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
