# Empty compiler generated dependencies file for doppio_cloud.
# This may be replaced when dependencies are built.
