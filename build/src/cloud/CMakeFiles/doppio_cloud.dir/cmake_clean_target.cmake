file(REMOVE_RECURSE
  "libdoppio_cloud.a"
)
