# Empty compiler generated dependencies file for doppio_model.
# This may be replaced when dependencies are built.
