file(REMOVE_RECURSE
  "CMakeFiles/doppio_model.dir/analyzer.cc.o"
  "CMakeFiles/doppio_model.dir/analyzer.cc.o.d"
  "CMakeFiles/doppio_model.dir/ernest_baseline.cc.o"
  "CMakeFiles/doppio_model.dir/ernest_baseline.cc.o.d"
  "CMakeFiles/doppio_model.dir/job_scheduler.cc.o"
  "CMakeFiles/doppio_model.dir/job_scheduler.cc.o.d"
  "CMakeFiles/doppio_model.dir/platform_profile.cc.o"
  "CMakeFiles/doppio_model.dir/platform_profile.cc.o.d"
  "CMakeFiles/doppio_model.dir/profiler.cc.o"
  "CMakeFiles/doppio_model.dir/profiler.cc.o.d"
  "CMakeFiles/doppio_model.dir/report.cc.o"
  "CMakeFiles/doppio_model.dir/report.cc.o.d"
  "CMakeFiles/doppio_model.dir/stage_model.cc.o"
  "CMakeFiles/doppio_model.dir/stage_model.cc.o.d"
  "libdoppio_model.a"
  "libdoppio_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
