
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/analyzer.cc" "src/model/CMakeFiles/doppio_model.dir/analyzer.cc.o" "gcc" "src/model/CMakeFiles/doppio_model.dir/analyzer.cc.o.d"
  "/root/repo/src/model/ernest_baseline.cc" "src/model/CMakeFiles/doppio_model.dir/ernest_baseline.cc.o" "gcc" "src/model/CMakeFiles/doppio_model.dir/ernest_baseline.cc.o.d"
  "/root/repo/src/model/job_scheduler.cc" "src/model/CMakeFiles/doppio_model.dir/job_scheduler.cc.o" "gcc" "src/model/CMakeFiles/doppio_model.dir/job_scheduler.cc.o.d"
  "/root/repo/src/model/platform_profile.cc" "src/model/CMakeFiles/doppio_model.dir/platform_profile.cc.o" "gcc" "src/model/CMakeFiles/doppio_model.dir/platform_profile.cc.o.d"
  "/root/repo/src/model/profiler.cc" "src/model/CMakeFiles/doppio_model.dir/profiler.cc.o" "gcc" "src/model/CMakeFiles/doppio_model.dir/profiler.cc.o.d"
  "/root/repo/src/model/report.cc" "src/model/CMakeFiles/doppio_model.dir/report.cc.o" "gcc" "src/model/CMakeFiles/doppio_model.dir/report.cc.o.d"
  "/root/repo/src/model/stage_model.cc" "src/model/CMakeFiles/doppio_model.dir/stage_model.cc.o" "gcc" "src/model/CMakeFiles/doppio_model.dir/stage_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/doppio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/doppio_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/doppio_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/doppio_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/doppio_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/doppio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/doppio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
