file(REMOVE_RECURSE
  "libdoppio_model.a"
)
