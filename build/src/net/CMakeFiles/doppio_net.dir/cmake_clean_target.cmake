file(REMOVE_RECURSE
  "libdoppio_net.a"
)
