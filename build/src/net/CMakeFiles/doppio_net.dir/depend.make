# Empty dependencies file for doppio_net.
# This may be replaced when dependencies are built.
