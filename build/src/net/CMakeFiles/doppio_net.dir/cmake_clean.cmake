file(REMOVE_RECURSE
  "CMakeFiles/doppio_net.dir/network.cc.o"
  "CMakeFiles/doppio_net.dir/network.cc.o.d"
  "libdoppio_net.a"
  "libdoppio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
