file(REMOVE_RECURSE
  "CMakeFiles/doppio_storage.dir/disk_device.cc.o"
  "CMakeFiles/doppio_storage.dir/disk_device.cc.o.d"
  "CMakeFiles/doppio_storage.dir/disk_params.cc.o"
  "CMakeFiles/doppio_storage.dir/disk_params.cc.o.d"
  "CMakeFiles/doppio_storage.dir/disk_stats.cc.o"
  "CMakeFiles/doppio_storage.dir/disk_stats.cc.o.d"
  "CMakeFiles/doppio_storage.dir/fio.cc.o"
  "CMakeFiles/doppio_storage.dir/fio.cc.o.d"
  "CMakeFiles/doppio_storage.dir/io_request.cc.o"
  "CMakeFiles/doppio_storage.dir/io_request.cc.o.d"
  "libdoppio_storage.a"
  "libdoppio_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
