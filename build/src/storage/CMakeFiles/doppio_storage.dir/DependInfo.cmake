
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_device.cc" "src/storage/CMakeFiles/doppio_storage.dir/disk_device.cc.o" "gcc" "src/storage/CMakeFiles/doppio_storage.dir/disk_device.cc.o.d"
  "/root/repo/src/storage/disk_params.cc" "src/storage/CMakeFiles/doppio_storage.dir/disk_params.cc.o" "gcc" "src/storage/CMakeFiles/doppio_storage.dir/disk_params.cc.o.d"
  "/root/repo/src/storage/disk_stats.cc" "src/storage/CMakeFiles/doppio_storage.dir/disk_stats.cc.o" "gcc" "src/storage/CMakeFiles/doppio_storage.dir/disk_stats.cc.o.d"
  "/root/repo/src/storage/fio.cc" "src/storage/CMakeFiles/doppio_storage.dir/fio.cc.o" "gcc" "src/storage/CMakeFiles/doppio_storage.dir/fio.cc.o.d"
  "/root/repo/src/storage/io_request.cc" "src/storage/CMakeFiles/doppio_storage.dir/io_request.cc.o" "gcc" "src/storage/CMakeFiles/doppio_storage.dir/io_request.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/doppio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/doppio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
