# Empty dependencies file for doppio_storage.
# This may be replaced when dependencies are built.
