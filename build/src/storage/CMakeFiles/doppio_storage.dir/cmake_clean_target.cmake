file(REMOVE_RECURSE
  "libdoppio_storage.a"
)
