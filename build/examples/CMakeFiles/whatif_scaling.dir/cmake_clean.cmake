file(REMOVE_RECURSE
  "CMakeFiles/whatif_scaling.dir/whatif_scaling.cpp.o"
  "CMakeFiles/whatif_scaling.dir/whatif_scaling.cpp.o.d"
  "whatif_scaling"
  "whatif_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
