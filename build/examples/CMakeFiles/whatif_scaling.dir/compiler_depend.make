# Empty compiler generated dependencies file for whatif_scaling.
# This may be replaced when dependencies are built.
