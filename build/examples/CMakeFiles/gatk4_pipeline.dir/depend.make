# Empty dependencies file for gatk4_pipeline.
# This may be replaced when dependencies are built.
