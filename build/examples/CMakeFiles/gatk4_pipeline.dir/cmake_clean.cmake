file(REMOVE_RECURSE
  "CMakeFiles/gatk4_pipeline.dir/gatk4_pipeline.cpp.o"
  "CMakeFiles/gatk4_pipeline.dir/gatk4_pipeline.cpp.o.d"
  "gatk4_pipeline"
  "gatk4_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gatk4_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
