# Empty dependencies file for test_gatk4.
# This may be replaced when dependencies are built.
