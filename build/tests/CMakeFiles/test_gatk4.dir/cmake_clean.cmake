file(REMOVE_RECURSE
  "CMakeFiles/test_gatk4.dir/test_gatk4.cc.o"
  "CMakeFiles/test_gatk4.dir/test_gatk4.cc.o.d"
  "test_gatk4"
  "test_gatk4.pdb"
  "test_gatk4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gatk4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
