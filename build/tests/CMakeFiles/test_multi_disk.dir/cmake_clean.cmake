file(REMOVE_RECURSE
  "CMakeFiles/test_multi_disk.dir/test_multi_disk.cc.o"
  "CMakeFiles/test_multi_disk.dir/test_multi_disk.cc.o.d"
  "test_multi_disk"
  "test_multi_disk.pdb"
  "test_multi_disk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
