# Empty dependencies file for test_multi_disk.
# This may be replaced when dependencies are built.
