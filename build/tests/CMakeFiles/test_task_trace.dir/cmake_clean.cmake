file(REMOVE_RECURSE
  "CMakeFiles/test_task_trace.dir/test_task_trace.cc.o"
  "CMakeFiles/test_task_trace.dir/test_task_trace.cc.o.d"
  "test_task_trace"
  "test_task_trace.pdb"
  "test_task_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
