file(REMOVE_RECURSE
  "CMakeFiles/test_shuffle_workloads.dir/test_shuffle_workloads.cc.o"
  "CMakeFiles/test_shuffle_workloads.dir/test_shuffle_workloads.cc.o.d"
  "test_shuffle_workloads"
  "test_shuffle_workloads.pdb"
  "test_shuffle_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shuffle_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
