# Empty compiler generated dependencies file for test_shuffle_workloads.
# This may be replaced when dependencies are built.
