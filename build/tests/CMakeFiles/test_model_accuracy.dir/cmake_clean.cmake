file(REMOVE_RECURSE
  "CMakeFiles/test_model_accuracy.dir/test_model_accuracy.cc.o"
  "CMakeFiles/test_model_accuracy.dir/test_model_accuracy.cc.o.d"
  "test_model_accuracy"
  "test_model_accuracy.pdb"
  "test_model_accuracy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
