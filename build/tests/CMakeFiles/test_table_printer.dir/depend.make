# Empty dependencies file for test_table_printer.
# This may be replaced when dependencies are built.
