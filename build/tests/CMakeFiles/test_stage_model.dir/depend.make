# Empty dependencies file for test_stage_model.
# This may be replaced when dependencies are built.
