file(REMOVE_RECURSE
  "CMakeFiles/test_stage_model.dir/test_stage_model.cc.o"
  "CMakeFiles/test_stage_model.dir/test_stage_model.cc.o.d"
  "test_stage_model"
  "test_stage_model.pdb"
  "test_stage_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stage_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
