file(REMOVE_RECURSE
  "CMakeFiles/test_lookup_table.dir/test_lookup_table.cc.o"
  "CMakeFiles/test_lookup_table.dir/test_lookup_table.cc.o.d"
  "test_lookup_table"
  "test_lookup_table.pdb"
  "test_lookup_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lookup_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
