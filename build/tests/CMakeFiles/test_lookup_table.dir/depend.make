# Empty dependencies file for test_lookup_table.
# This may be replaced when dependencies are built.
