# Empty compiler generated dependencies file for test_fluid_pipe.
# This may be replaced when dependencies are built.
