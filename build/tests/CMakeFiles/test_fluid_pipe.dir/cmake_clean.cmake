file(REMOVE_RECURSE
  "CMakeFiles/test_fluid_pipe.dir/test_fluid_pipe.cc.o"
  "CMakeFiles/test_fluid_pipe.dir/test_fluid_pipe.cc.o.d"
  "test_fluid_pipe"
  "test_fluid_pipe.pdb"
  "test_fluid_pipe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fluid_pipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
