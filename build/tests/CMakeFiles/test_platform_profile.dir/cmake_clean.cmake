file(REMOVE_RECURSE
  "CMakeFiles/test_platform_profile.dir/test_platform_profile.cc.o"
  "CMakeFiles/test_platform_profile.dir/test_platform_profile.cc.o.d"
  "test_platform_profile"
  "test_platform_profile.pdb"
  "test_platform_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
