# Empty dependencies file for test_ernest_baseline.
# This may be replaced when dependencies are built.
