file(REMOVE_RECURSE
  "CMakeFiles/test_ernest_baseline.dir/test_ernest_baseline.cc.o"
  "CMakeFiles/test_ernest_baseline.dir/test_ernest_baseline.cc.o.d"
  "test_ernest_baseline"
  "test_ernest_baseline.pdb"
  "test_ernest_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ernest_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
