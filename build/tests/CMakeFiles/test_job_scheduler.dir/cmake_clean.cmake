file(REMOVE_RECURSE
  "CMakeFiles/test_job_scheduler.dir/test_job_scheduler.cc.o"
  "CMakeFiles/test_job_scheduler.dir/test_job_scheduler.cc.o.d"
  "test_job_scheduler"
  "test_job_scheduler.pdb"
  "test_job_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
