# Empty compiler generated dependencies file for test_gcp_disk.
# This may be replaced when dependencies are built.
