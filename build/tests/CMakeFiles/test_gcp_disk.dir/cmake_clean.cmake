file(REMOVE_RECURSE
  "CMakeFiles/test_gcp_disk.dir/test_gcp_disk.cc.o"
  "CMakeFiles/test_gcp_disk.dir/test_gcp_disk.cc.o.d"
  "test_gcp_disk"
  "test_gcp_disk.pdb"
  "test_gcp_disk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcp_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
