# Empty dependencies file for test_dag_scheduler.
# This may be replaced when dependencies are built.
