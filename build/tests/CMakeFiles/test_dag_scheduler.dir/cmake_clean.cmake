file(REMOVE_RECURSE
  "CMakeFiles/test_dag_scheduler.dir/test_dag_scheduler.cc.o"
  "CMakeFiles/test_dag_scheduler.dir/test_dag_scheduler.cc.o.d"
  "test_dag_scheduler"
  "test_dag_scheduler.pdb"
  "test_dag_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
