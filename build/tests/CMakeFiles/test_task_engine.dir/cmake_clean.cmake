file(REMOVE_RECURSE
  "CMakeFiles/test_task_engine.dir/test_task_engine.cc.o"
  "CMakeFiles/test_task_engine.dir/test_task_engine.cc.o.d"
  "test_task_engine"
  "test_task_engine.pdb"
  "test_task_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
