# Empty dependencies file for test_task_engine.
# This may be replaced when dependencies are built.
