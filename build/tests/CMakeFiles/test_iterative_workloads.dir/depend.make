# Empty dependencies file for test_iterative_workloads.
# This may be replaced when dependencies are built.
