file(REMOVE_RECURSE
  "CMakeFiles/test_iterative_workloads.dir/test_iterative_workloads.cc.o"
  "CMakeFiles/test_iterative_workloads.dir/test_iterative_workloads.cc.o.d"
  "test_iterative_workloads"
  "test_iterative_workloads.pdb"
  "test_iterative_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iterative_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
