file(REMOVE_RECURSE
  "CMakeFiles/test_disk_params.dir/test_disk_params.cc.o"
  "CMakeFiles/test_disk_params.dir/test_disk_params.cc.o.d"
  "test_disk_params"
  "test_disk_params.pdb"
  "test_disk_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
