# Empty compiler generated dependencies file for test_disk_params.
# This may be replaced when dependencies are built.
