file(REMOVE_RECURSE
  "CMakeFiles/test_fio.dir/test_fio.cc.o"
  "CMakeFiles/test_fio.dir/test_fio.cc.o.d"
  "test_fio"
  "test_fio.pdb"
  "test_fio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
