# Empty dependencies file for test_fio.
# This may be replaced when dependencies are built.
