file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_json.dir/test_metrics_json.cc.o"
  "CMakeFiles/test_metrics_json.dir/test_metrics_json.cc.o.d"
  "test_metrics_json"
  "test_metrics_json.pdb"
  "test_metrics_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
