# Empty dependencies file for test_metrics_json.
# This may be replaced when dependencies are built.
