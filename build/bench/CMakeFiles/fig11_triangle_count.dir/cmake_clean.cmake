file(REMOVE_RECURSE
  "CMakeFiles/fig11_triangle_count.dir/fig11_triangle_count.cpp.o"
  "CMakeFiles/fig11_triangle_count.dir/fig11_triangle_count.cpp.o.d"
  "fig11_triangle_count"
  "fig11_triangle_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_triangle_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
