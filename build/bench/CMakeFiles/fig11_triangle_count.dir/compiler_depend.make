# Empty compiler generated dependencies file for fig11_triangle_count.
# This may be replaced when dependencies are built.
