file(REMOVE_RECURSE
  "CMakeFiles/fig09_svm.dir/fig09_svm.cpp.o"
  "CMakeFiles/fig09_svm.dir/fig09_svm.cpp.o.d"
  "fig09_svm"
  "fig09_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
