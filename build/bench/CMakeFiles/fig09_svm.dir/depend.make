# Empty dependencies file for fig09_svm.
# This may be replaced when dependencies are built.
