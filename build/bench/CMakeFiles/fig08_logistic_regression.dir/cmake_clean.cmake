file(REMOVE_RECURSE
  "CMakeFiles/fig08_logistic_regression.dir/fig08_logistic_regression.cpp.o"
  "CMakeFiles/fig08_logistic_regression.dir/fig08_logistic_regression.cpp.o.d"
  "fig08_logistic_regression"
  "fig08_logistic_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_logistic_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
