# Empty dependencies file for fig08_logistic_regression.
# This may be replaced when dependencies are built.
