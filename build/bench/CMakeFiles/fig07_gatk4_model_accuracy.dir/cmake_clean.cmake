file(REMOVE_RECURSE
  "CMakeFiles/fig07_gatk4_model_accuracy.dir/fig07_gatk4_model_accuracy.cpp.o"
  "CMakeFiles/fig07_gatk4_model_accuracy.dir/fig07_gatk4_model_accuracy.cpp.o.d"
  "fig07_gatk4_model_accuracy"
  "fig07_gatk4_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_gatk4_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
