# Empty dependencies file for fig07_gatk4_model_accuracy.
# This may be replaced when dependencies are built.
