file(REMOVE_RECURSE
  "CMakeFiles/fig05_effective_bandwidth.dir/fig05_effective_bandwidth.cpp.o"
  "CMakeFiles/fig05_effective_bandwidth.dir/fig05_effective_bandwidth.cpp.o.d"
  "fig05_effective_bandwidth"
  "fig05_effective_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_effective_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
