# Empty dependencies file for fig05_effective_bandwidth.
# This may be replaced when dependencies are built.
