# Empty dependencies file for ext_speculation.
# This may be replaced when dependencies are built.
