file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_features.dir/ablation_model_features.cpp.o"
  "CMakeFiles/ablation_model_features.dir/ablation_model_features.cpp.o.d"
  "ablation_model_features"
  "ablation_model_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
