file(REMOVE_RECURSE
  "CMakeFiles/fig03_gatk4_core_scaling.dir/fig03_gatk4_core_scaling.cpp.o"
  "CMakeFiles/fig03_gatk4_core_scaling.dir/fig03_gatk4_core_scaling.cpp.o.d"
  "fig03_gatk4_core_scaling"
  "fig03_gatk4_core_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_gatk4_core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
