# Empty compiler generated dependencies file for fig03_gatk4_core_scaling.
# This may be replaced when dependencies are built.
