# Empty compiler generated dependencies file for ext_storage_future.
# This may be replaced when dependencies are built.
