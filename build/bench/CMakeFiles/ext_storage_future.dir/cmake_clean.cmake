file(REMOVE_RECURSE
  "CMakeFiles/ext_storage_future.dir/ext_storage_future.cpp.o"
  "CMakeFiles/ext_storage_future.dir/ext_storage_future.cpp.o.d"
  "ext_storage_future"
  "ext_storage_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_storage_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
