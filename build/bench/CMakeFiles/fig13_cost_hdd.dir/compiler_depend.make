# Empty compiler generated dependencies file for fig13_cost_hdd.
# This may be replaced when dependencies are built.
