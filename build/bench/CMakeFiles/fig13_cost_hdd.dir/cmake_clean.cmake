file(REMOVE_RECURSE
  "CMakeFiles/fig13_cost_hdd.dir/fig13_cost_hdd.cpp.o"
  "CMakeFiles/fig13_cost_hdd.dir/fig13_cost_hdd.cpp.o.d"
  "fig13_cost_hdd"
  "fig13_cost_hdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cost_hdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
