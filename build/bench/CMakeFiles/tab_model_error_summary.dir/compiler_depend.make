# Empty compiler generated dependencies file for tab_model_error_summary.
# This may be replaced when dependencies are built.
