file(REMOVE_RECURSE
  "CMakeFiles/tab_model_error_summary.dir/tab_model_error_summary.cpp.o"
  "CMakeFiles/tab_model_error_summary.dir/tab_model_error_summary.cpp.o.d"
  "tab_model_error_summary"
  "tab_model_error_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_model_error_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
