# Empty dependencies file for fig02_gatk4_stage_runtime.
# This may be replaced when dependencies are built.
