file(REMOVE_RECURSE
  "CMakeFiles/fig02_gatk4_stage_runtime.dir/fig02_gatk4_stage_runtime.cpp.o"
  "CMakeFiles/fig02_gatk4_stage_runtime.dir/fig02_gatk4_stage_runtime.cpp.o.d"
  "fig02_gatk4_stage_runtime"
  "fig02_gatk4_stage_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_gatk4_stage_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
