file(REMOVE_RECURSE
  "CMakeFiles/fig12_terasort.dir/fig12_terasort.cpp.o"
  "CMakeFiles/fig12_terasort.dir/fig12_terasort.cpp.o.d"
  "fig12_terasort"
  "fig12_terasort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_terasort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
