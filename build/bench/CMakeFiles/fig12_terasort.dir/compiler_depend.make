# Empty compiler generated dependencies file for fig12_terasort.
# This may be replaced when dependencies are built.
