# Empty dependencies file for fig15_cost_ssd.
# This may be replaced when dependencies are built.
