file(REMOVE_RECURSE
  "CMakeFiles/fig15_cost_ssd.dir/fig15_cost_ssd.cpp.o"
  "CMakeFiles/fig15_cost_ssd.dir/fig15_cost_ssd.cpp.o.d"
  "fig15_cost_ssd"
  "fig15_cost_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cost_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
