
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab04_gatk4_io_sizes.cpp" "bench/CMakeFiles/tab04_gatk4_io_sizes.dir/tab04_gatk4_io_sizes.cpp.o" "gcc" "bench/CMakeFiles/tab04_gatk4_io_sizes.dir/tab04_gatk4_io_sizes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/doppio_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/doppio_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/doppio_model.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/doppio_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/doppio_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/doppio_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/doppio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/doppio_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/doppio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/doppio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
