file(REMOVE_RECURSE
  "CMakeFiles/tab04_gatk4_io_sizes.dir/tab04_gatk4_io_sizes.cpp.o"
  "CMakeFiles/tab04_gatk4_io_sizes.dir/tab04_gatk4_io_sizes.cpp.o.d"
  "tab04_gatk4_io_sizes"
  "tab04_gatk4_io_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_gatk4_io_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
