# Empty compiler generated dependencies file for tab04_gatk4_io_sizes.
# This may be replaced when dependencies are built.
