# Empty compiler generated dependencies file for fig06_execution_phases.
# This may be replaced when dependencies are built.
