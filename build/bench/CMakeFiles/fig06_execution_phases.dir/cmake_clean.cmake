file(REMOVE_RECURSE
  "CMakeFiles/fig06_execution_phases.dir/fig06_execution_phases.cpp.o"
  "CMakeFiles/fig06_execution_phases.dir/fig06_execution_phases.cpp.o.d"
  "fig06_execution_phases"
  "fig06_execution_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_execution_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
