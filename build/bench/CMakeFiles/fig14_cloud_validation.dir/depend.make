# Empty dependencies file for fig14_cloud_validation.
# This may be replaced when dependencies are built.
