file(REMOVE_RECURSE
  "CMakeFiles/fig14_cloud_validation.dir/fig14_cloud_validation.cpp.o"
  "CMakeFiles/fig14_cloud_validation.dir/fig14_cloud_validation.cpp.o.d"
  "fig14_cloud_validation"
  "fig14_cloud_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cloud_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
