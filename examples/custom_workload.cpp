/**
 * @file
 * Example: authoring a custom workload against the public API.
 *
 * Models a nightly ETL pipeline: ingest raw events from HDFS, join
 * them against a cached dimension table (narrow), aggregate by
 * customer (shuffle), persist the aggregate for downstream jobs, and
 * export a report — then shows how each phase responds to the four
 * Table III disk configurations.
 */

#include <iostream>

#include "cluster/cluster_config.h"
#include "common/table_printer.h"
#include "workloads/workload.h"

using namespace doppio;

namespace {

class NightlyEtl : public workloads::Workload
{
  public:
    std::string name() const override { return "NightlyETL"; }

  protected:
    void
    registerInputs(dfs::Hdfs &hdfs) const override
    {
        hdfs.addFile("raw_events", gib(400));
        hdfs.addFile("dim_customers", gib(8));
    }

    void
    execute(spark::SparkContext &context) const override
    {
        using spark::ActionSpec;
        using spark::Rdd;
        using spark::RddRef;

        // Dimension table: small, cached in memory once.
        RddRef dim = context.hadoopFile("dim_customers");
        dim->pipelinedCpuPerByte = 6e-9;
        RddRef dim_cached = Rdd::narrow("dimCached", {dim}, gib(8));
        dim_cached->memoryBytes = gib(24);
        dim_cached->persist(spark::StorageLevel::MemoryAndDisk);
        context.runJob("loadDimensions", dim_cached,
                       ActionSpec::count());

        // Fact ingest + map-side join.
        RddRef raw = context.hadoopFile("raw_events");
        raw->pipelinedCpuPerByte = 1.0e-8;
        RddRef joined = Rdd::narrow("joined", {raw}, gib(320));
        joined->cpuPerInputByte = 1.5e-8;

        // Aggregate by customer: the shuffle-heavy part.
        spark::ShuffleSpec shuffle;
        shuffle.bytes = gib(320);
        shuffle.mapCpuPerByte = 2e-9;
        shuffle.mapStageName = "aggregate.map";
        RddRef aggregated = Rdd::shuffled("aggregate", joined, 2400,
                                          gib(60), shuffle);
        aggregated->pipelinedCpuPerByte = 8e-9;
        aggregated->cpuPerInputByte = 3e-8;
        aggregated->persist(spark::StorageLevel::MemoryAndDisk);
        context.runJob("aggregate", aggregated, ActionSpec::count());

        // Report export re-reads the persisted aggregate.
        RddRef report = Rdd::narrow("report", {aggregated}, gib(20));
        report->cpuPerInputByte = 1e-8;
        context.runJob("export", report,
                       ActionSpec::saveAsHadoopFile(gib(20)));
    }
};

} // namespace

int
main()
{
    const NightlyEtl etl;
    spark::SparkConf conf;
    conf.executorCores = 36;

    TablePrinter table("Nightly ETL phase runtimes (minutes)");
    table.setHeader({"configuration", "loadDim", "aggregate", "export",
                     "total"});
    for (const auto &hybrid : {cluster::HybridConfig::config1(),
                               cluster::HybridConfig::config2(),
                               cluster::HybridConfig::config3(),
                               cluster::HybridConfig::config4()}) {
        cluster::ClusterConfig config =
            cluster::ClusterConfig::evaluationCluster();
        config.applyHybrid(hybrid);
        const spark::AppMetrics metrics = etl.run(config, conf);
        table.addRow(
            {hybrid.name(),
             TablePrinter::num(
                 metrics.secondsForPrefix("loadDimensions") / 60.0, 2),
             TablePrinter::num(
                 metrics.secondsForPrefix("aggregate") / 60.0, 2),
             TablePrinter::num(metrics.secondsForPrefix("export") /
                                   60.0,
                               2),
             TablePrinter::num(metrics.seconds() / 60.0, 2)});
    }
    table.print(std::cout);
    std::cout << "\nLike the paper's workloads, only the shuffle "
                 "phase cares which disk\nbacks spark.local.dir.\n";
    return 0;
}
