/**
 * @file
 * Example: the paper's motivation study (§III) on your terminal.
 *
 * Runs the GATK4 pipeline on the four-node motivation cluster under
 * the four HDD/SSD hybrid configurations of Table III and prints the
 * per-stage runtimes (Fig. 2) and I/O volumes (Table IV).
 *
 * Usage: gatk4_pipeline [readPairsMillions]
 */

#include <cstdlib>
#include <iostream>

#include "cluster/cluster_config.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "spark/spark_conf.h"
#include "workloads/gatk4.h"

using namespace doppio;

int
main(int argc, char **argv)
{
    workloads::Gatk4::Options options;
    if (argc > 1)
        options.readPairsMillions = std::atof(argv[1]);
    const workloads::Gatk4 gatk4(options);

    spark::SparkConf spark_conf;
    spark_conf.executorCores = 36;

    TablePrinter runtimes("GATK4 stage runtime (minutes), four-node "
                          "cluster, P=36");
    runtimes.setHeader({"Configuration", "MD", "BR", "SF", "total"});

    const cluster::HybridConfig hybrids[] = {
        cluster::HybridConfig::config1(), cluster::HybridConfig::config2(),
        cluster::HybridConfig::config3(), cluster::HybridConfig::config4()};

    spark::AppMetrics last;
    for (const auto &hybrid : hybrids) {
        cluster::ClusterConfig config =
            cluster::ClusterConfig::motivationCluster();
        config.applyHybrid(hybrid);
        const spark::AppMetrics metrics = gatk4.run(config, spark_conf);
        const double md =
            metrics.secondsForPrefix(workloads::Gatk4::kStageMd) / 60.0;
        const double br =
            metrics.secondsForPrefix(workloads::Gatk4::kStageBr) / 60.0;
        const double sf =
            metrics.secondsForPrefix(workloads::Gatk4::kStageSf) / 60.0;
        runtimes.addRow({hybrid.name(), TablePrinter::num(md, 1),
                         TablePrinter::num(br, 1),
                         TablePrinter::num(sf, 1),
                         TablePrinter::num(md + br + sf, 1)});
        last = metrics;
    }
    runtimes.print(std::cout);

    TablePrinter io("\nI/O data size (GB) per stage (cf. Table IV)");
    io.setHeader({"stage", "HDFS read", "Shuffle write", "Shuffle read",
                  "HDFS write"});
    for (const char *stage :
         {workloads::Gatk4::kStageMd, workloads::Gatk4::kStageBr,
          workloads::Gatk4::kStageSf}) {
        io.addRow({stage,
                   TablePrinter::num(
                       toGiB(last.bytesForPrefix(
                           stage, storage::IoOp::HdfsRead)), 0),
                   TablePrinter::num(
                       toGiB(last.bytesForPrefix(
                           stage, storage::IoOp::ShuffleWrite)), 0),
                   TablePrinter::num(
                       toGiB(last.bytesForPrefix(
                           stage, storage::IoOp::ShuffleRead)), 0),
                   TablePrinter::num(
                       toGiB(last.bytesForPrefix(
                           stage, storage::IoOp::HdfsWrite)), 0)});
    }
    io.print(std::cout);
    return 0;
}
