/**
 * @file
 * Quickstart: the whole Doppio pipeline in ~60 lines.
 *
 *  1. Define a Spark application as an RDD lineage (here: parse a
 *     200 GiB log file, shuffle-group it, count).
 *  2. Run it on a simulated cluster ("exp").
 *  3. Profile it with the paper's sample-run methodology and fit the
 *     I/O-aware model.
 *  4. Predict an unseen configuration and compare.
 */

#include <iostream>

#include "cluster/cluster_config.h"
#include "common/table_printer.h"
#include "model/profiler.h"
#include "workloads/workload.h"

using namespace doppio;

namespace {

/** A minimal custom workload: parse -> groupByKey -> count. */
class LogAnalytics : public workloads::Workload
{
  public:
    std::string name() const override { return "LogAnalytics"; }

  protected:
    void
    registerInputs(dfs::Hdfs &hdfs) const override
    {
        hdfs.addFile("events.log", gib(200));
    }

    void
    execute(spark::SparkContext &context) const override
    {
        spark::RddRef events = context.hadoopFile("events.log");
        events->pipelinedCpuPerByte = 8e-9; // parse while reading

        spark::ShuffleSpec shuffle;
        shuffle.bytes = gib(80); // keyed sessions after projection
        spark::RddRef sessions = spark::Rdd::shuffled(
            "sessions", events, 1600, gib(80), shuffle);
        sessions->pipelinedCpuPerByte = 5e-9;
        sessions->cpuPerInputByte = 4e-8; // sessionization

        context.runJob("count", sessions, spark::ActionSpec::count());
    }
};

} // namespace

int
main()
{
    const LogAnalytics app;

    // 2. Measure on a 10-slave cluster with SSDs, P=24.
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    spark::SparkConf conf;
    conf.executorCores = 24;
    const spark::AppMetrics metrics = app.run(config, conf);
    std::cout << "measured: " << metrics.seconds() << " s over "
              << metrics.allStages().size() << " stages\n";

    // 3. Fit the model from the paper's sample runs (P=1, P=2 on SSD;
    //    P=16 with an HDD local disk; P=16 with an HDD HDFS disk),
    //    plus this library's fifth run at a different node count,
    //    which separates per-node GC/contention from the serial part
    //    so the fit transfers from the sample scale to other cluster
    //    sizes (see model/profiler.h).
    model::Profiler::Options options;
    options.fitGc = true;
    model::Profiler profiler(app.runner(), config, conf, options);
    const model::AppModel fitted = profiler.fit(app.name());

    // 4. Predict the same configuration from the model alone.
    const model::PlatformProfile platform =
        model::PlatformProfile::fromDisks(config.node.hdfsDisk,
                                          config.node.localDisk);
    const double predicted =
        fitted.predictSeconds(config.numSlaves, 24, platform);
    std::cout << "model:    " << predicted << " s  (error "
              << TablePrinter::percent(
                     relativeError(predicted, metrics.seconds()))
              << ")\n";

    // Bonus: what if the Spark local directory sat on an HDD?
    const model::PlatformProfile hdd_local =
        model::PlatformProfile::fromDisks(storage::makeSsdParams(),
                                          storage::makeHddParams());
    std::cout << "model, HDD spark.local.dir: "
              << fitted.predictSeconds(config.numSlaves, 24, hdd_local)
              << " s\n";
    return 0;
}
