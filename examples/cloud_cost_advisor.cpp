/**
 * @file
 * Example: model-driven cloud provisioning (paper §VI).
 *
 * Profiles GATK4 on simulated Google Cloud workers, then asks the
 * optimizer three questions a genomics lab would ask:
 *   1. What is the cheapest configuration overall?
 *   2. What is the cheapest configuration that finishes in 45 min?
 *   3. How do the Spark (R1) and Cloudera (R2) recommendations fare?
 */

#include <iostream>

#include "cloud/optimizer.h"
#include "common/table_printer.h"
#include "model/profiler.h"
#include "workloads/gatk4.h"

using namespace doppio;

namespace {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

cluster::ClusterConfig
cloudWorkers()
{
    cluster::ClusterConfig config;
    config.numSlaves = 10;
    config.node.cores = 16;
    config.node.ram = 60 * kGiB;
    config.node.executorMemory = 45 * kGiB;
    config.node.hdfsDisk = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 1000 * kGB);
    config.node.localDisk = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 2000 * kGB);
    return config;
}

} // namespace

int
main()
{
    const workloads::Gatk4 gatk4;

    // Paper §VI-1: four profiling runs with a 500 GB pd-ssd and a
    // pd-standard sample disk, plus the different-N GC run.
    model::Profiler::Options profile_options;
    profile_options.fitGc = true;
    profile_options.highCores = 16;
    profile_options.ssd = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Ssd, 500 * kGB);
    profile_options.hdd = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 500 * kGB);
    model::Profiler profiler(gatk4.runner(), cloudWorkers(),
                             spark::SparkConf{}, profile_options);
    const model::AppModel app = profiler.fit("GATK4");

    const cloud::GcpPricing pricing;
    const cloud::CostOptimizer optimizer(
        app, pricing, cloud::CostOptimizer::Options{});

    TablePrinter table("Provisioning advice for one 30x whole genome");
    table.setHeader(
        {"question", "configuration", "runtime (min)", "cost ($)"});

    const cloud::Evaluation cheapest = optimizer.optimize();
    table.addRow({"cheapest overall", cheapest.config.describe(),
                  TablePrinter::num(cheapest.seconds / 60.0, 1),
                  TablePrinter::num(cheapest.cost, 2)});

    // Cheapest under a 45-minute deadline: filter the same grid.
    cloud::Evaluation deadline;
    deadline.cost = std::numeric_limits<double>::infinity();
    for (Bytes hdfs : cloud::CostOptimizer::defaultSizeGrid()) {
        for (Bytes local : cloud::CostOptimizer::defaultSizeGrid()) {
            for (auto type : {cloud::CloudDiskType::Standard,
                              cloud::CloudDiskType::Ssd}) {
                cloud::CloudConfig config;
                config.workers = 10;
                config.vcpus = 16;
                config.hdfsSize = hdfs;
                config.localType = type;
                config.localSize = local;
                const cloud::Evaluation eval =
                    optimizer.evaluate(config);
                if (eval.seconds <= 45.0 * 60.0 &&
                    eval.cost < deadline.cost)
                    deadline = eval;
            }
        }
    }
    table.addRow({"cheapest finishing in 45 min",
                  deadline.config.describe(),
                  TablePrinter::num(deadline.seconds / 60.0, 1),
                  TablePrinter::num(deadline.cost, 2)});

    for (const auto &[name, config] :
         {std::pair<const char *, cloud::CloudConfig>{
              "R1 (Spark guide)", cloud::referenceR1()},
          {"R2 (Cloudera guide)", cloud::referenceR2()}}) {
        const cloud::Evaluation eval = optimizer.evaluate(config);
        table.addRow({name, eval.config.describe(),
                      TablePrinter::num(eval.seconds / 60.0, 1),
                      TablePrinter::num(eval.cost, 2)});
    }
    table.print(std::cout);
    std::cout << "\nAt the Broad Institute's 17 TB/day of new genome "
                 "data (paper §VI), the\ncheapest-vs-R2 delta above "
                 "compounds to millions of dollars per year.\n";
    return 0;
}
