/**
 * @file
 * Example: bottleneck analysis and what-if core scaling (paper §IV).
 *
 * Fits the model for GATK4, prints each stage's per-core throughput T,
 * break point b = BW/T, lambda and turning point B = lambda*b under
 * SSD and HDD Spark-local configurations, and sweeps the predicted
 * runtime over core counts — showing where adding cores stops helping.
 */

#include <iostream>

#include "common/table_printer.h"
#include "model/analyzer.h"
#include "model/profiler.h"
#include "workloads/gatk4.h"

using namespace doppio;

int
main()
{
    const workloads::Gatk4 gatk4;
    const cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    model::Profiler::Options options;
    options.fitGc = true;
    model::Profiler profiler(gatk4.runner(), base, spark::SparkConf{},
                             options);
    const model::AppModel app = profiler.fit("GATK4");

    for (const auto &hybrid : {cluster::HybridConfig::config1(),
                               cluster::HybridConfig::config3()}) {
        cluster::ClusterConfig config = base;
        config.applyHybrid(hybrid);
        const model::PlatformProfile platform =
            model::PlatformProfile::fromDisks(config.node.hdfsDisk,
                                              config.node.localDisk);

        TablePrinter table("Bottleneck analysis, " + hybrid.name());
        table.setHeader({"stage", "op", "T (MB/s)", "BW (MB/s)", "b",
                         "lambda", "B"});
        for (const model::StageModel &stage : app.stages) {
            const model::StageAnalysis analysis =
                model::analyzeStage(stage, platform);
            for (const model::OpAnalysis &op : analysis.ops) {
                table.addRow(
                    {stage.name, storage::ioOpName(op.op),
                     TablePrinter::num(op.perCoreThroughput / 1e6, 1),
                     TablePrinter::num(op.effectiveBandwidth / 1e6, 1),
                     TablePrinter::num(op.breakPoint, 1),
                     TablePrinter::num(op.lambda, 1),
                     TablePrinter::num(op.turningPoint, 1)});
            }
        }
        table.print(std::cout);

        TablePrinter sweep("Predicted app runtime vs cores per node");
        sweep.setHeader({"P", "minutes"});
        for (const auto &[cores, seconds] : model::sweepAppCores(
                 app, config.numSlaves,
                 {1, 2, 4, 8, 12, 16, 24, 36, 48, 72}, platform)) {
            sweep.addRow({std::to_string(cores),
                          TablePrinter::num(seconds / 60.0, 1)});
        }
        sweep.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
