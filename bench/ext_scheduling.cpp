/**
 * @file
 * Extension bench: model-driven job scheduling (paper §I's suggested
 * application — "our performance prediction model can allow the
 * scheduler to know ahead the approximating job execution time and
 * thus enable better job scheduling with less job waiting time").
 *
 * A queue of the paper's applications arrives at a shared 10-slave
 * cluster. The scheduler orders them by the Doppio model's predicted
 * runtimes (shortest-predicted-first); each job then pays its
 * simulated ("actual") runtime. Compared against FIFO and against an
 * oracle that knows the actual runtimes.
 */

#include <iostream>

#include "bench_util.h"
#include "model/job_scheduler.h"
#include "workloads/registry.h"

using namespace doppio;

int
main()
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.applyHybrid(cluster::HybridConfig::config3());
    spark::SparkConf conf;
    conf.executorCores = 36;
    const model::PlatformProfile platform =
        bench::platformFor(config);

    // Arrival order chosen adversarially for FIFO: long jobs first.
    const std::vector<std::string> arrivals = {
        "lr-large", "gatk4", "terasort", "pagerank", "triangle-count",
        "svm", "lr-small"};

    std::vector<model::QueuedJob> queue;
    TablePrinter jobs("Queued jobs (HDD Spark local, P=36)");
    jobs.setHeader(
        {"job", "predicted (min)", "actual (min)", "error"});
    for (const std::string &name : arrivals) {
        const auto workload = workloads::makeWorkload(name);
        const model::AppModel app = bench::fitModel(*workload, config);
        const double predicted = app.predictSeconds(
            config.numSlaves, conf.executorCores, platform);
        const double actual = workload->run(config, conf).seconds();
        queue.push_back({name, predicted, actual});
        jobs.addRow({name, TablePrinter::num(predicted / 60.0, 1),
                     TablePrinter::num(actual / 60.0, 1),
                     TablePrinter::percent(
                         relativeError(predicted, actual))});
    }
    jobs.print(std::cout);
    std::cout << "\n";

    const model::ScheduleResult fifo = model::scheduleFifo(queue);
    const model::ScheduleResult spf =
        model::scheduleShortestPredictedFirst(queue);
    std::vector<model::QueuedJob> oracle_queue = queue;
    for (model::QueuedJob &job : oracle_queue)
        job.predictedSeconds = job.actualSeconds;
    const model::ScheduleResult oracle =
        model::scheduleShortestPredictedFirst(oracle_queue);

    TablePrinter table("Scheduling policies");
    table.setHeader({"policy", "total wait (min)",
                     "mean completion (min)", "vs FIFO"});
    auto row = [&](const char *name,
                   const model::ScheduleResult &result) {
        table.addRow(
            {name, TablePrinter::num(result.totalWaitSeconds / 60.0, 0),
             TablePrinter::num(result.meanCompletionSeconds / 60.0, 0),
             TablePrinter::percent(1.0 - result.totalWaitSeconds /
                                             fifo.totalWaitSeconds)});
    };
    row("FIFO (arrival order)", fifo);
    row("shortest-predicted-first (Doppio model)", spf);
    row("shortest-first oracle (actual times)", oracle);
    table.print(std::cout);
    std::cout << "\nWith <10% prediction error, the model-driven order"
                 " recovers essentially the\nentire oracle benefit.\n";
    return 0;
}
