/**
 * @file
 * Extension bench: seeded chaos sweep over random fault schedules.
 *
 * Generates hundreds of random-but-legal fault schedules (seeded, so
 * every failure is reproducible from its printed seed), runs each
 * through the chaos rig, and checks the four invariants of DESIGN.md
 * §13: the run completes under the event-budget watchdog, reruns are
 * byte-identical, transient faults leave the job/stage shape equal to
 * the fault-free baseline, and task-second attribution reconciles
 * with cluster capacity within 1%. The table sweeps schedule density
 * (faults per minute) against completion time and recovery overhead.
 *
 * Exit status is non-zero when any invariant fails, so CI can run
 * this binary (with --smoke) as a gate.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "chaos/harness.h"
#include "chaos/schedule_generator.h"
#include "common/stats.h"

using namespace doppio;

namespace {

struct DensityRow
{
    double faultsPerMinute = 0.0;
    std::vector<chaos::ChaosVerdict> verdicts;
};

std::vector<DensityRow>
sweep(int seedsPerDensity, int jobs)
{
    const std::vector<double> densities = {0.5, 1.0, 2.0, 4.0};

    struct Point
    {
        double density = 0.0;
        std::uint64_t seed = 0;
    };
    std::vector<Point> points;
    for (std::size_t d = 0; d < densities.size(); ++d)
        for (int s = 0; s < seedsPerDensity; ++s)
            points.push_back(
                {densities[d],
                 static_cast<std::uint64_t>(d * 1000 + s + 1)});

    // Every point is an independent seeded simulation triple
    // (baseline + faulty + rerun): fan out and commit in input order
    // so the printed table is byte-identical for any --jobs value.
    const common::SweepRunner runner(jobs);
    const std::vector<chaos::ChaosVerdict> verdicts =
        runner.map(points.size(), [&](std::size_t i) {
            chaos::ChaosOptions options;
            options.seed = points[i].seed;
            options.faultsPerMinute = points[i].density;
            return chaos::checkInvariants(options);
        });

    std::vector<DensityRow> rows;
    for (const double density : densities) {
        DensityRow row;
        row.faultsPerMinute = density;
        for (std::size_t i = 0; i < points.size(); ++i)
            if (points[i].density == density)
                row.verdicts.push_back(verdicts[i]);
        rows.push_back(std::move(row));
    }
    return rows;
}

/** @return number of failed schedules, printing each failure. */
int
report(const std::vector<DensityRow> &rows)
{
    TablePrinter table("Chaos sweep: schedule density vs completion "
                       "and recovery (4 slaves, P=4)");
    table.setHeader({"faults/min", "schedules", "passed", "events",
                     "runtime", "overhead", "worst overhead"});

    int failures = 0;
    std::size_t total = 0;
    for (const DensityRow &row : rows) {
        SummaryStats events, elapsed, overhead;
        int passed = 0;
        for (const chaos::ChaosVerdict &v : row.verdicts) {
            total += 1;
            if (v.passed()) {
                ++passed;
            } else {
                ++failures;
                std::printf("FAIL seed=%llu faults/min=%.1f: %s\n",
                            static_cast<unsigned long long>(v.seed),
                            row.faultsPerMinute, v.failure.c_str());
            }
            events.add(static_cast<double>(v.scheduleEvents));
            if (v.completedOk) {
                elapsed.add(v.faultyElapsedSec);
                overhead.add(
                    std::max(0.0, v.recoveryOverheadSec()));
            }
        }
        table.addRow(
            {TablePrinter::num(row.faultsPerMinute, 1),
             std::to_string(row.verdicts.size()),
             std::to_string(passed),
             TablePrinter::num(events.mean(), 1),
             formatDuration(secondsToTicks(elapsed.mean())),
             formatDuration(secondsToTicks(overhead.mean())),
             formatDuration(secondsToTicks(overhead.max()))});
    }
    table.print(std::cout);
    std::printf("\n%zu schedules, %d invariant failure(s)\n", total,
                failures);
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::benchFlag(argc, argv, "--smoke");
    const int seedsPerDensity = smoke ? 6 : 60;
    const std::vector<DensityRow> rows =
        sweep(seedsPerDensity, bench::benchJobs(argc, argv));
    return report(rows) == 0 ? 0 : 1;
}
