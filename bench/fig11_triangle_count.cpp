/**
 * @file
 * Reproduces Fig. 11: measured vs model runtime for GraphX Triangle
 * Count (1M vertices, 2400 partitions, 49 GB cached graph, 396 GB of
 * shuffle in the canonicalization/count phase).
 *
 * Paper shapes to check: average error ~3.6%; 6.5x HDD/SSD gap on the
 * computeTriangleCount phase.
 */

#include "bench_util.h"
#include "workloads/triangle_count.h"

using namespace doppio;

int
main()
{
    const workloads::TriangleCount tc;
    bench::runPhaseFigure(
        "Fig. 11: TriangleCount exp vs model (paper: 6.5x compute "
        "phase gap)",
        tc, {"graphLoader", "computeTriangleCount"},
        "computeTriangleCount",
        {cluster::HybridConfig::config1(),
         cluster::HybridConfig::config3()});
    return 0;
}
