/**
 * @file
 * Extension bench: straggler mitigation via speculative execution.
 *
 * The paper's model assumes well-behaved tasks; production clusters
 * see stragglers (degraded disks, noisy neighbors). This bench injects
 * stragglers into GATK4's BR-like stage pattern and shows how
 * speculative execution (spark.speculation) restores the model's
 * predicted runtime — i.e. speculation is what keeps Eq. 1 valid on
 * imperfect hardware.
 */

#include <iostream>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/task_engine.h"

using namespace doppio;

namespace {

double
runBrLikeStage(double stragglerProbability, bool speculation)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.stragglerProbability = stragglerProbability;
    config.stragglerSlowdown = 8.0;
    cluster::Cluster cluster(sim, config);
    dfs::Hdfs hdfs(cluster);
    spark::SparkConf conf;
    conf.executorCores = 36;
    conf.speculation = speculation;
    spark::TaskEngine engine(cluster, hdfs, conf);

    spark::StageSpec stage;
    stage.name = "BR-like";
    spark::IoPhaseSpec read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytesPerTask = mib(27);
    read.requestSize = kib(30);
    read.cpuPerByte = 1.17e-8;
    read.fanIn = 976;
    stage.groups.push_back(spark::TaskGroupSpec{
        "reduce", 3600, {read, spark::ComputePhaseSpec{8.5}},
        mib(27)});
    return engine.runStage(stage).seconds() / 60.0;
}

} // namespace

int
main()
{
    TablePrinter table(
        "BR-like stage (3600 reducers, SSD local) under stragglers");
    table.setHeader({"straggler prob.", "no speculation (min)",
                     "speculation (min)", "recovered"});
    const double clean = runBrLikeStage(0.0, false);
    for (double p : {0.0, 0.01, 0.02, 0.05, 0.10}) {
        const double off = runBrLikeStage(p, false);
        const double on = runBrLikeStage(p, true);
        const double inflation = off - clean;
        const double recovered =
            inflation > 0.01 ? (off - on) / inflation : 1.0;
        table.addRow({TablePrinter::percent(p, 0),
                      TablePrinter::num(off, 1),
                      TablePrinter::num(on, 1),
                      TablePrinter::percent(recovered, 0)});
    }
    table.print(std::cout);
    std::cout << "\nclean baseline: " << TablePrinter::num(clean, 1)
              << " min. At low straggler rates speculation recovers "
                 "most of the inflation,\nkeeping the stage near the "
                 "model's prediction; at high rates the copies\n"
                 "themselves straggle and the benefit fades.\n";
    return 0;
}
