/**
 * @file
 * Reproduces Fig. 8: measured vs model runtime for Logistic
 * Regression, small (280 GB parsedData, cached in memory) and large
 * (990 GB, persisted on Spark local) datasets, 50 iterations.
 *
 * Paper shapes to check: average error ~5.3%; HDD/SSD gap up to 2x on
 * the small dataset (from HDFS read) and ~7x on the large dataset's
 * iterations (persist reads at disk-store granularity).
 */

#include <iostream>

#include "bench_util.h"
#include "workloads/logistic_regression.h"

using namespace doppio;

int
main()
{
    const std::vector<cluster::HybridConfig> hybrids = {
        cluster::HybridConfig::config1(),
        cluster::HybridConfig::config4()};

    const workloads::LogisticRegression small(
        workloads::LogisticRegression::Options::small());
    bench::runPhaseFigure(
        "Fig. 8a: LR small (1200M examples, cached in memory)", small,
        {"dataValidator", "iteration"}, "iteration", hybrids);

    const workloads::LogisticRegression large(
        workloads::LogisticRegression::Options::large());
    bench::runPhaseFigure(
        "Fig. 8b: LR large (4000M examples, persisted on Spark local;"
        " paper: 7.0x iteration gap)",
        large, {"dataValidator", "iteration"}, "iteration", hybrids);
    return 0;
}
