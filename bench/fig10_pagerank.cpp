/**
 * @file
 * Reproduces Fig. 10: measured vs model runtime for GraphX PageRank
 * (20M vertices, 4800 partitions, 10 iterations; the 420 GB
 * per-generation RDD exceeds cluster storage memory and persists on
 * Spark local).
 *
 * Paper shapes to check: average error ~5.2%; 2.2x HDD/SSD iteration
 * gap.
 */

#include "bench_util.h"
#include "workloads/pagerank.h"

using namespace doppio;

int
main()
{
    const workloads::PageRank pagerank;
    bench::runPhaseFigure(
        "Fig. 10: PageRank exp vs model (paper: 2.2x iteration gap)",
        pagerank, {"graphLoader", "iteration", "saveAsTextFile"},
        "iteration",
        {cluster::HybridConfig::config1(),
         cluster::HybridConfig::config3()});
    return 0;
}
