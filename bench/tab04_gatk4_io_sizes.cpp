/**
 * @file
 * Reproduces Table IV: I/O data size (GB) in different GATK4 stages.
 *
 * Paper values at 500M read pairs:
 *   MD: HDFS read 122, shuffle write 334;
 *   BR: HDFS read 122, shuffle read 334;
 *   SF: HDFS read 122, shuffle read 334, HDFS write 166.
 */

#include <iostream>

#include "bench_util.h"
#include "workloads/gatk4.h"

using namespace doppio;

int
main()
{
    const workloads::Gatk4 gatk4;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    spark::SparkConf conf;
    conf.executorCores = 36;
    const spark::AppMetrics metrics = gatk4.run(config, conf);

    TablePrinter table(
        "Table IV: I/O data size (GB) in different GATK4 stages "
        "(paper: MD 122/334/0/0, BR 122/0/334/0, SF 122/0/334/166)");
    table.setHeader({"I/O (GB)", "HDFS read", "Shuffle write",
                     "Shuffle read", "HDFS write"});
    using storage::IoOp;
    for (const char *stage : {"MD", "BR", "SF"}) {
        table.addRow(
            {stage,
             TablePrinter::num(
                 toGiB(metrics.bytesForPrefix(stage, IoOp::HdfsRead)),
                 0),
             TablePrinter::num(
                 toGiB(metrics.bytesForPrefix(stage,
                                              IoOp::ShuffleWrite)),
                 0),
             TablePrinter::num(
                 toGiB(metrics.bytesForPrefix(stage,
                                              IoOp::ShuffleRead)),
                 0),
             TablePrinter::num(
                 toGiB(metrics.bytesForPrefix(stage, IoOp::HdfsWrite)),
                 0)});
    }
    table.print(std::cout);
    return 0;
}
