/**
 * @file
 * Extension bench: the what-if planning service under load and faults
 * (DESIGN.md §14).
 *
 * Every number comes from the service's deterministic virtual-time
 * transport (PlanningService::runScript), so the record reproduces
 * byte-for-byte. Three seeded traffic mixes plus a determinism check:
 *
 * 1. steady: a duplicate-heavy mix over a small key pool. Measures
 *    served throughput (queries per virtual second), p50/p99 latency
 *    and the cache hit rate — the common case where the result cache
 *    and single-flight dedup do most of the work.
 * 2. overload: a burst of distinct queries against one worker and a
 *    queue of four, under a chaos schedule containing at least one
 *    gray slow-node and one network partition. Asserts the acceptance
 *    invariants: the queue never grows past its bound, load is shed
 *    rather than queued unboundedly, and every accepted request either
 *    completes within its deadline budget or is flagged degraded.
 * 3. grayfail: cold queries forced down the slow path while transient
 *    evaluation failures (evalFailRate) and the same chaos schedule
 *    are injected. Measures retry/backoff volume and the degraded /
 *    model-only rate; asserts retries and degradation actually happen.
 * 4. determinism: replays the grayfail script on a fresh service and
 *    requires a byte-identical transcript.
 *
 * Flags: --smoke shrinks the mixes to CI size, --json FILE writes the
 * machine-readable BENCH_service.json record. (--jobs is accepted for
 * interface parity but the event loop is inherently serial.)
 *
 * Exit status is non-zero if any invariant fails, so CI can gate on
 * the bench directly.
 */

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "chaos/schedule_generator.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "service/server.h"

using namespace doppio;

namespace {

/** One reported number (same record shape as perf_core). */
struct Result
{
    std::string name;
    std::string unit; //!< "queries/s", "ms" or "x"
    double value = 0.0;
    double seconds = 0.0; //!< virtual makespan of the source run
};

/** id -> service deadline budget, for the per-response invariant. */
using TimeoutMap = std::unordered_map<std::string, double>;

std::string
planLine(const std::string &id, const std::string &workload,
         double atMs, double timeoutMs, double deadlineSec = 0.0,
         double budgetUsd = 0.0, int workers = 0)
{
    std::ostringstream os;
    os.precision(6);
    os << "{\"id\":\"" << id << "\",\"workload\":\"" << workload
       << "\"";
    if (workers > 0)
        os << ",\"workers\":" << workers;
    if (deadlineSec > 0.0)
        os << ",\"deadline_s\":" << deadlineSec;
    if (budgetUsd > 0.0)
        os << ",\"budget_usd\":" << budgetUsd;
    os << ",\"timeout_ms\":" << timeoutMs << ",\"at_ms\":" << atMs
       << "}";
    return os.str();
}

/**
 * The acceptance-fault schedule: the first generator seed whose
 * transient schedule carries at least one gray slow-node AND one
 * network partition. The scan order is fixed, so the choice is
 * deterministic.
 */
faults::FaultSpec
slowNodePlusPartitionSchedule()
{
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        chaos::ChaosOptions options;
        options.seed = seed;
        options.horizonSec = 600.0;
        options.faultsPerMinute = 2.0;
        options.numSlaves = 3; // == PlannerConfig::sampleNodes
        options.transientOnly = true;
        options.withRates = false; // evalFailRate is injected separately
        faults::FaultSpec spec = chaos::generateSchedule(options);
        bool slow = false;
        bool partition = false;
        for (const faults::NodeEvent &event : spec.schedule.events()) {
            slow |= event.kind == faults::NodeEvent::Kind::SlowNode;
            partition |=
                event.kind == faults::NodeEvent::Kind::Partition;
        }
        if (slow && partition) {
            std::cout << "chaos schedule: seed " << seed << ", "
                      << spec.schedule.size() << " events\n";
            return spec;
        }
    }
    fatal("no generator seed in 1..64 yields slow-node + partition");
}

/**
 * The acceptance invariant over every plan response the service
 * emitted: accepted requests (ok/error) finish within their deadline
 * budget or are flagged degraded; expired requests are always flagged.
 * @return violation count (also printed, so CI logs show the victim).
 */
int
checkResponses(const service::PlanningService &svc,
               const TimeoutMap &timeouts, const char *scenario)
{
    int violations = 0;
    for (const service::Response &r : svc.responseLog()) {
        const auto it = timeouts.find(r.id);
        if (it == timeouts.end())
            continue; // control/parse-error lines carry no budget
        const double budget = it->second;
        bool bad = false;
        if (r.status == "ok" || r.status == "error")
            bad = !r.degraded && r.latencyMs > budget + 1e-6;
        else if (r.status == "expired")
            bad = !r.degraded;
        if (bad) {
            ++violations;
            std::cout << "INVARIANT VIOLATION [" << scenario << "] "
                      << r.toJson() << " (budget " << budget
                      << " ms)\n";
        }
    }
    return violations;
}

double
makespanSec(const service::PlanningService &svc)
{
    if (svc.responseLog().empty())
        return 0.0;
    return svc.responseLog().back().tMs / 1000.0;
}

/** Scenario 1: duplicate-heavy steady mix on the default pipeline. */
int
steadyScenario(bool smoke, std::vector<Result> &out)
{
    const int queries = smoke ? 40 : 160;
    service::ServiceConfig config;
    config.planner.seed = 42;

    // Eight distinct keys: two workloads x four constraints. Every
    // later occurrence is a cache hit or a single-flight join.
    const std::string workloads[2] = {"lr-small", "svm"};
    service::Script script;
    TimeoutMap timeouts;
    for (int i = 0; i < queries; ++i) {
        const std::string id = "s" + std::to_string(i);
        const std::string &wl = workloads[i % 2];
        const int variant = (i / 2) % 4;
        const double atMs = i * 400.0;
        const double timeoutMs = 30000.0;
        std::string line;
        switch (variant) {
        case 0:
            line = planLine(id, wl, atMs, timeoutMs);
            break;
        case 1:
            line = planLine(id, wl, atMs, timeoutMs, 90000.0);
            break;
        case 2:
            line = planLine(id, wl, atMs, timeoutMs, 50000.0);
            break;
        default:
            line = planLine(id, wl, atMs, timeoutMs, 0.0, 50.0);
            break;
        }
        script.push_back(line);
        timeouts.emplace(id, timeoutMs);
    }

    service::PlanningService svc(config);
    svc.runScript(script);
    const service::ServiceStats stats = svc.stats();
    const double makespan = makespanSec(svc);
    const double qps =
        makespan > 0.0 ? static_cast<double>(stats.completed) / makespan
                       : 0.0;
    const double hitRate =
        stats.received > 0
            ? static_cast<double>(stats.cacheHits + stats.dedupJoins) /
                  static_cast<double>(queries)
            : 0.0;

    TablePrinter table("steady: duplicate-heavy mix, 8 distinct keys");
    table.setHeader({"metric", "value"});
    table.addRow({"queries", std::to_string(queries)});
    table.addRow({"completed", std::to_string(stats.completed)});
    table.addRow({"cache hits", std::to_string(stats.cacheHits)});
    table.addRow({"dedup joins", std::to_string(stats.dedupJoins)});
    table.addRow({"p50 latency", TablePrinter::num(stats.p50LatencyMs, 1) + " ms"});
    table.addRow({"p99 latency", TablePrinter::num(stats.p99LatencyMs, 1) + " ms"});
    table.addRow({"throughput", TablePrinter::num(qps, 3) + " queries/s"});
    table.print(std::cout);

    out.push_back({"steady_p50_ms", "ms", stats.p50LatencyMs, makespan});
    out.push_back({"steady_p99_ms", "ms", stats.p99LatencyMs, makespan});
    out.push_back({"steady_qps", "queries/s", qps, makespan});
    out.push_back({"steady_hit_rate", "x", hitRate, makespan});

    int violations = checkResponses(svc, timeouts, "steady");
    if (stats.shed + stats.rejected + stats.expired > 0) {
        ++violations;
        std::cout << "INVARIANT VIOLATION [steady] unexpected shedding "
                     "in an unloaded mix\n";
    }
    return violations;
}

/**
 * Scenario 2: the acceptance overload burst — distinct queries
 * flooding one worker and a queue of four while the slow-node +
 * partition schedule is live.
 */
int
overloadScenario(bool smoke, const faults::FaultSpec &faults,
                 std::vector<Result> &out)
{
    const int burst = smoke ? 24 : 64;
    service::ServiceConfig config;
    config.planner.seed = 42;
    config.planner.faults = faults;
    config.workers = 1;
    config.queueCapacity = 4;
    config.dropOldest = true;

    service::Script script;
    TimeoutMap timeouts;
    // One warmup query fits the Eq. 1 model so the burst exercises the
    // queue (grid + validation per query), not five cold profilings.
    script.push_back(planLine("warmup", "lr-small", 0.0, 60000.0));
    timeouts.emplace("warmup", 60000.0);
    for (int i = 0; i < burst; ++i) {
        const std::string id = "b" + std::to_string(i);
        const double timeoutMs = 30000.0;
        // Distinct cluster deadlines -> distinct cache keys: no dedup,
        // every query wants a worker slot at once.
        script.push_back(planLine(id, "lr-small", 60000.0 + i * 2.0,
                                  timeoutMs, 50000.0 + i));
        timeouts.emplace(id, timeoutMs);
    }
    script.push_back("{\"cmd\":\"health\",\"at_ms\":120000}");

    service::PlanningService svc(config);
    svc.runScript(script);
    const service::ServiceStats stats = svc.stats();
    const double makespan = makespanSec(svc);
    const double plans = 1.0 + burst;
    const double shedRate =
        static_cast<double>(stats.shed + stats.rejected + stats.expired) /
        plans;
    const double degradedRate =
        static_cast<double>(stats.degraded) / plans;

    TablePrinter table("overload: burst of " + std::to_string(burst) +
                       " distinct queries, 1 worker, queue 4, "
                       "slow-node + partition live");
    table.setHeader({"metric", "value"});
    table.addRow({"completed", std::to_string(stats.completed)});
    table.addRow({"shed", std::to_string(stats.shed)});
    table.addRow({"expired", std::to_string(stats.expired)});
    table.addRow({"degraded", std::to_string(stats.degraded)});
    table.addRow({"max queue depth", std::to_string(stats.maxQueueDepth)});
    table.addRow({"p99 latency", TablePrinter::num(stats.p99LatencyMs, 1) + " ms"});
    table.addRow({"partition timeouts", std::to_string(stats.partitionTimeouts)});
    table.print(std::cout);

    out.push_back({"overload_p99_ms", "ms", stats.p99LatencyMs, makespan});
    out.push_back({"overload_shed_rate", "x", shedRate, makespan});
    out.push_back(
        {"overload_degraded_rate", "x", degradedRate, makespan});

    int violations = checkResponses(svc, timeouts, "overload");
    if (stats.maxQueueDepth > config.queueCapacity) {
        ++violations;
        std::cout << "INVARIANT VIOLATION [overload] queue depth "
                  << stats.maxQueueDepth << " > bound "
                  << config.queueCapacity << "\n";
    }
    if (stats.shed == 0) {
        ++violations;
        std::cout << "INVARIANT VIOLATION [overload] burst of " << burst
                  << " past a queue of " << config.queueCapacity
                  << " shed nothing\n";
    }
    return violations;
}

/** Builds the grayfail config + script; shared with determinism. */
service::ServiceConfig
grayfailConfig(const faults::FaultSpec &faults)
{
    service::ServiceConfig config;
    config.planner.seed = 42;
    config.planner.faults = faults;
    config.planner.evalFailRate = 0.25;
    config.planner.maxRetries = 3;
    config.workers = 2;
    return config;
}

service::Script
grayfailScript(bool smoke, TimeoutMap &timeouts)
{
    const int rounds = smoke ? 1 : 3;
    const std::string workloads[3] = {"lr-small", "svm", "pagerank"};
    service::Script script;
    double atMs = 0.0;
    int n = 0;
    for (int round = 0; round < rounds; ++round) {
        for (const std::string &wl : workloads) {
            // Distinct worker counts -> distinct model keys: every
            // query is a cold profile forced down the slow path.
            const std::string id = "g" + std::to_string(n++);
            script.push_back(planLine(id, wl, atMs, 60000.0, 0.0, 0.0,
                                      4 + round));
            timeouts.emplace(id, 60000.0);
            atMs += 15000.0;
        }
    }
    // A deliberately starved cold query: its 400 ms budget dies inside
    // profiling, so the answer must come back degraded, not late.
    script.push_back(planLine("g-starved", "terasort", atMs, 400.0));
    timeouts.emplace("g-starved", 400.0);
    atMs += 1000.0;
    // A clipped warm query: a fresh constraint on a warm model with
    // budget for part of the cost grid only -> partial, model-only.
    script.push_back(planLine("g-clipped", "lr-small", atMs, 150.0,
                              90000.0, 0.0, 4));
    timeouts.emplace("g-clipped", 150.0);
    script.push_back("{\"cmd\":\"stats\",\"at_ms\":" +
                     service::jsonNum(atMs + 60000.0) + "}");
    return script;
}

int
grayfailScenario(bool smoke, const faults::FaultSpec &faults,
                 std::vector<Result> &out,
                 std::vector<std::string> &transcriptOut,
                 service::Script &scriptOut)
{
    TimeoutMap timeouts;
    scriptOut = grayfailScript(smoke, timeouts);
    service::PlanningService svc(grayfailConfig(faults));
    transcriptOut = svc.runScript(scriptOut);
    const service::ServiceStats stats = svc.stats();
    const double makespan = makespanSec(svc);
    const double plans = static_cast<double>(timeouts.size());
    const double degradedRate =
        static_cast<double>(stats.degraded + stats.modelOnly) / plans;

    TablePrinter table("grayfail: cold slow-path queries, evalFailRate "
                       "0.25, slow-node + partition live");
    table.setHeader({"metric", "value"});
    table.addRow({"completed", std::to_string(stats.completed)});
    table.addRow({"retries", std::to_string(stats.retries)});
    table.addRow({"backoff total", TablePrinter::num(stats.backoffMsTotal, 1) + " ms"});
    table.addRow({"degraded", std::to_string(stats.degraded)});
    table.addRow({"model-only", std::to_string(stats.modelOnly)});
    table.addRow({"slow-path runs", std::to_string(stats.slowPathRuns)});
    table.addRow({"partition timeouts", std::to_string(stats.partitionTimeouts)});
    table.addRow({"task retries", std::to_string(stats.slowPathTaskRetries)});
    table.print(std::cout);

    out.push_back({"grayfail_retries", "x",
                   static_cast<double>(stats.retries), makespan});
    out.push_back({"grayfail_backoff_ms", "ms", stats.backoffMsTotal,
                   makespan});
    out.push_back(
        {"grayfail_degraded_rate", "x", degradedRate, makespan});

    int violations = checkResponses(svc, timeouts, "grayfail");
    if (stats.retries == 0) {
        ++violations;
        std::cout << "INVARIANT VIOLATION [grayfail] evalFailRate 0.25 "
                     "injected but no retry happened\n";
    }
    if (stats.degraded + stats.modelOnly == 0) {
        ++violations;
        std::cout << "INVARIANT VIOLATION [grayfail] starved budgets "
                     "produced no degraded/model-only answer\n";
    }
    if (stats.slowPathRuns == 0) {
        ++violations;
        std::cout << "INVARIANT VIOLATION [grayfail] no slow-path "
                     "(simulator) run happened\n";
    }
    return violations;
}

/** Scenario 4: same seeded trace, fresh service, identical bytes. */
int
determinismCheck(const faults::FaultSpec &faults,
                 const service::Script &script,
                 const std::vector<std::string> &firstTranscript)
{
    service::PlanningService svc(grayfailConfig(faults));
    const std::vector<std::string> rerun = svc.runScript(script);
    if (rerun == firstTranscript) {
        std::cout << "determinism: rerun transcript byte-identical ("
                  << rerun.size() << " lines)\n";
        return 0;
    }
    std::cout << "INVARIANT VIOLATION [determinism] rerun transcript "
                 "differs\n";
    const std::size_t n =
        std::min(rerun.size(), firstTranscript.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (rerun[i] != firstTranscript[i]) {
            std::cout << "  first : " << firstTranscript[i] << "\n"
                      << "  rerun : " << rerun[i] << "\n";
            break;
        }
    }
    return 1;
}

void
writeJson(const std::string &path, const std::vector<Result> &results,
          bool smoke, int jobs)
{
    std::ofstream os(path);
    os.precision(6);
    os << "{\"bench\":\"service\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"jobs\":" << jobs
       << ",\"results\":[";
    bool first = true;
    for (const Result &r : results) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << r.name << "\",\"unit\":\"" << r.unit
           << "\",\"value\":" << r.value
           << ",\"seconds\":" << r.seconds << "}";
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::benchFlag(argc, argv, "--smoke");
    const int jobs = bench::benchJobs(argc, argv);
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[i + 1];
    }

    const faults::FaultSpec faults = slowNodePlusPartitionSchedule();

    std::vector<Result> results;
    int violations = 0;
    violations += steadyScenario(smoke, results);
    std::cout << "\n";
    violations += overloadScenario(smoke, faults, results);
    std::cout << "\n";
    std::vector<std::string> grayTranscript;
    service::Script grayScript;
    violations += grayfailScenario(smoke, faults, results,
                                   grayTranscript, grayScript);
    std::cout << "\n";
    violations += determinismCheck(faults, grayScript, grayTranscript);

    TablePrinter table(std::string("service record (") +
                       (smoke ? "smoke" : "full") + ")");
    table.setHeader({"name", "value", "unit"});
    for (const Result &r : results)
        table.addRow({r.name, TablePrinter::num(r.value, 3), r.unit});
    std::cout << "\n";
    table.print(std::cout);

    if (!json_path.empty()) {
        writeJson(json_path, results, smoke, jobs);
        std::cout << "wrote " << json_path << "\n";
    }
    if (violations > 0) {
        std::cout << violations << " invariant violation(s)\n";
        return 1;
    }
    return 0;
}
