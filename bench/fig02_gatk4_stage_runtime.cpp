/**
 * @file
 * Reproduces Fig. 2: runtime for different stages in GATK4 using the
 * 500M-read-pair input on the four-node cluster (36 executor cores)
 * under the four Table III HDD/SSD hybrid configurations.
 *
 * Paper shapes to check:
 *  - HDFS HDD->SSD: no gain for MD, moderate for BR, large for SF;
 *  - Spark-local HDD->SSD: dominant effect; BR/SF ~126 min when the
 *    local disk is an HDD (the 334 GB / 3 nodes / 15 MB/s arithmetic
 *    of paper III-C3);
 *  - Spark local is far more I/O-sensitive than HDFS.
 */

#include <iostream>

#include "bench_util.h"
#include "workloads/gatk4.h"

using namespace doppio;

int
main()
{
    const workloads::Gatk4 gatk4;
    spark::SparkConf conf;
    conf.executorCores = 36;

    TablePrinter table(
        "Fig. 2: GATK4 stage runtime (minutes), 4-node cluster, P=36");
    table.setHeader(
        {"Configuration", "MD", "BR", "SF", "total"});

    const cluster::HybridConfig hybrids[] = {
        cluster::HybridConfig::config1(),
        cluster::HybridConfig::config2(),
        cluster::HybridConfig::config3(),
        cluster::HybridConfig::config4()};
    for (const auto &hybrid : hybrids) {
        cluster::ClusterConfig config =
            cluster::ClusterConfig::motivationCluster();
        config.applyHybrid(hybrid);
        const spark::AppMetrics metrics = gatk4.run(config, conf);
        const double md = metrics.secondsForPrefix("MD") / 60.0;
        const double br = metrics.secondsForPrefix("BR") / 60.0;
        const double sf = metrics.secondsForPrefix("SF") / 60.0;
        table.addRow({hybrid.name(), TablePrinter::num(md, 1),
                      TablePrinter::num(br, 1),
                      TablePrinter::num(sf, 1),
                      TablePrinter::num(md + br + sf, 1)});
    }
    table.print(std::cout);
    std::cout << "paper III-C3 arithmetic: BR(2HDD) ~ 334 GB/3/15 MB/s"
                 " = " << TablePrinter::num(334.0 * 1024 / 3 / 15 / 60,
                                            0)
              << " min\n";
    return 0;
}
