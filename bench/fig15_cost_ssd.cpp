/**
 * @file
 * Reproduces Fig. 15: cost and runtime when a pd-ssd backs Spark
 * local (HDFS fixed at 1 TB standard disk), swept from 20 GB to
 * 3.2 TB, plus the headline comparison: the SSD-local optimum is
 * ~1.1x cheaper than the HDD-local optimum and 38%/57% cheaper than
 * R1/R2 (paper §VI-3/4).
 */

#include <iostream>

#include "cloud_util.h"

using namespace doppio;
using bench::kGB;

int
main(int argc, char **argv)
{
    const workloads::Gatk4 gatk4;
    const model::AppModel app = bench::fitCloudGatk4(gatk4);
    const cloud::GcpPricing pricing;
    cloud::CostOptimizer::Options options;
    options.jobs = bench::benchJobs(argc, argv);
    const cloud::CostOptimizer optimizer(app, pricing, options);

    cloud::CloudConfig base;
    base.workers = 10;
    base.vcpus = 16;
    base.hdfsType = cloud::CloudDiskType::Standard;
    base.hdfsSize = 1000 * kGB;
    base.localType = cloud::CloudDiskType::Ssd;

    TablePrinter table(
        "Fig. 15: SSD as Spark local (HDFS = 1 TB HDD)");
    table.setHeader({"SSD size (GB)", "runtime (min)", "cost ($)"});
    std::vector<Bytes> sizes;
    for (Bytes gb = 20; gb <= 3200; gb *= 2)
        sizes.push_back(gb * kGB);
    for (const cloud::Evaluation &eval :
         optimizer.sweepLocalSize(base, sizes)) {
        table.addRow(
            {TablePrinter::num(
                 static_cast<double>(eval.config.localSize) / 1e9, 0),
             TablePrinter::num(eval.seconds / 60.0, 1),
             TablePrinter::num(eval.cost, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";

    // Headline comparison.
    const cloud::Evaluation best_any = optimizer.optimize();
    cloud::CostOptimizer::Options hdd_only;
    hdd_only.localTypes = {cloud::CloudDiskType::Standard};
    hdd_only.jobs = options.jobs;
    const cloud::Evaluation best_hdd =
        cloud::CostOptimizer(app, pricing, hdd_only).optimize();
    const cloud::Evaluation r1 =
        optimizer.evaluate(cloud::referenceR1());
    const cloud::Evaluation r2 =
        optimizer.evaluate(cloud::referenceR2());

    TablePrinter summary(
        "Optimal configurations (paper: SSD optimum ~1.1x cheaper "
        "than HDD optimum; 38%/57% cheaper than R1/R2)");
    summary.setHeader(
        {"configuration", "runtime (min)", "cost ($)", "savings"});
    auto row = [&](const std::string &name,
                   const cloud::Evaluation &eval,
                   const cloud::Evaluation &reference) {
        summary.addRow({name + "  " + eval.config.describe(),
                        TablePrinter::num(eval.seconds / 60.0, 1),
                        TablePrinter::num(eval.cost, 2),
                        TablePrinter::percent(
                            1.0 - best_any.cost / reference.cost)});
    };
    summary.addRow({"optimal (any)  " + best_any.config.describe(),
                    TablePrinter::num(best_any.seconds / 60.0, 1),
                    TablePrinter::num(best_any.cost, 2), "-"});
    summary.addRow({"optimal (HDD)  " + best_hdd.config.describe(),
                    TablePrinter::num(best_hdd.seconds / 60.0, 1),
                    TablePrinter::num(best_hdd.cost, 2),
                    TablePrinter::num(best_hdd.cost / best_any.cost,
                                      2) +
                        "x vs any"});
    row("R1", r1, r1);
    row("R2", r2, r2);
    summary.print(std::cout);
    return 0;
}
