/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out:
 *
 *  1. Request-size-aware effective bandwidth (the paper's thesis) vs
 *     a constant-peak-bandwidth disk model: without the request-size
 *     dependence, HDD shuffle-read predictions collapse.
 *  2. The base four-run fit vs the extended five-run (different-N)
 *     fit that separates per-node GC/contention from delta_scale.
 *
 * Each ablation reports the GATK4 prediction error that results.
 */

#include <iostream>

#include "bench_util.h"
#include "model/ernest_baseline.h"
#include "workloads/gatk4.h"

using namespace doppio;

namespace {

/** Replace every bandwidth table with its peak value (flat tables). */
model::PlatformProfile
flatten(const model::PlatformProfile &profile)
{
    auto flat = [](const LookupTable &table) {
        double peak = 0.0;
        for (const auto &[x, y] : table.points())
            peak = std::max(peak, y);
        return LookupTable({{1.0, peak}, {1e12, peak}});
    };
    model::PlatformProfile result;
    result.hdfsRead = flat(profile.hdfsRead);
    result.hdfsWrite = flat(profile.hdfsWrite);
    result.localRead = flat(profile.localRead);
    result.localWrite = flat(profile.localWrite);
    return result;
}

struct Point
{
    cluster::HybridConfig hybrid;
    int cores;
};

double
gatk4Error(const model::AppModel &app, bool flatBandwidth)
{
    const workloads::Gatk4 gatk4;
    const cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    SummaryStats error;
    const std::vector<Point> points = {
        {cluster::HybridConfig::config1(), 12},
        {cluster::HybridConfig::config1(), 24},
        {cluster::HybridConfig::config3(), 12},
        {cluster::HybridConfig::config3(), 24},
    };
    for (const Point &point : points) {
        cluster::ClusterConfig config = base;
        config.applyHybrid(point.hybrid);
        spark::SparkConf conf;
        conf.executorCores = point.cores;
        const double exp_s = gatk4.run(config, conf).seconds();
        model::PlatformProfile platform = bench::platformFor(config);
        if (flatBandwidth)
            platform = flatten(platform);
        const double model_s = app.predictSeconds(
            config.numSlaves, point.cores, platform);
        error.add(relativeError(model_s, exp_s));
    }
    return error.mean();
}

} // namespace

int
main()
{
    const workloads::Gatk4 gatk4;
    const cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    const model::AppModel extended = bench::fitModel(gatk4, base);
    const model::AppModel base_fit = bench::fitBaseModel(gatk4, base);

    TablePrinter table("Ablation: GATK4 prediction error");
    table.setHeader({"variant", "mean error"});
    table.addRow({"full model (request-size BW + extended fit)",
                  TablePrinter::percent(gatk4Error(extended, false))});
    table.addRow({"constant-bandwidth disks (no request-size "
                  "dependence)",
                  TablePrinter::percent(gatk4Error(extended, true))});
    table.addRow({"base four-run fit (GC/contention folded into "
                  "delta)",
                  TablePrinter::percent(gatk4Error(base_fit, false))});

    // Prior-work baseline: Ernest's {1, 1/C, log C, C} fit has no
    // storage dimension at all (paper VII-A criticism).
    const model::ErnestModel ernest = model::fitErnestFromRuns(
        gatk4.runner(), base, spark::SparkConf{}, "GATK4");
    SummaryStats ernest_error;
    for (const auto &hybrid : {cluster::HybridConfig::config1(),
                               cluster::HybridConfig::config3()}) {
        for (int cores : {12, 24}) {
            cluster::ClusterConfig config = base;
            config.applyHybrid(hybrid);
            spark::SparkConf conf;
            conf.executorCores = cores;
            const double exp_s = gatk4.run(config, conf).seconds();
            ernest_error.add(relativeError(
                ernest.predictSeconds(config.numSlaves, cores),
                exp_s));
        }
    }
    table.addRow({"Ernest-like baseline (no I/O model at all)",
                  TablePrinter::percent(ernest_error.mean())});
    table.print(std::cout);
    std::cout << "\nThe request-size dependence is the paper's core "
                 "thesis: without it the\nHDD shuffle-read limit "
                 "vanishes and I/O-bound stages are mispredicted.\n";
    return 0;
}
