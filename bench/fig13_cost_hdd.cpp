/**
 * @file
 * Reproduces Table V and Fig. 13: genome-sequencing cost in Google
 * Cloud using standard (HDD) persistent disks, swept over the HDFS
 * disk size (13a, local fixed at 2 TB) and the Spark-local disk size
 * (13b, HDFS fixed at 1 TB), plus the comparison against the R1
 * (Apache Spark) and R2 (Cloudera) recommended configurations.
 *
 * Paper shapes to check: cost minimum around HDFS = 1 TB and
 * local = 2 TB; the optimal HDD configuration beats R1 by ~32% and R2
 * by ~52%.
 */

#include <iostream>

#include "cloud_util.h"

using namespace doppio;
using bench::kGB;

int
main(int argc, char **argv)
{
    const cloud::GcpPricing pricing;
    TablePrinter tablev("Table V: disk price in Google Cloud");
    tablev.setHeader({"Type", "Price (per GB/month)"});
    tablev.addRow({"Standard provisioned space",
                   "$" + TablePrinter::num(pricing.standardGbPerMonth,
                                           3)});
    tablev.addRow(
        {"SSD provisioned space",
         "$" + TablePrinter::num(pricing.ssdGbPerMonth, 3)});
    tablev.print(std::cout);
    std::cout << "\n";

    const workloads::Gatk4 gatk4;
    const model::AppModel app = bench::fitCloudGatk4(gatk4);
    cloud::CostOptimizer::Options options;
    options.localTypes = {cloud::CloudDiskType::Standard};
    options.jobs = bench::benchJobs(argc, argv);
    const cloud::CostOptimizer optimizer(app, pricing, options);

    cloud::CloudConfig base;
    base.workers = 10;
    base.vcpus = 16;
    base.hdfsSize = 1000 * kGB;
    base.localSize = 2000 * kGB;

    std::vector<Bytes> sizes;
    for (Bytes gb = 250; gb <= 8000; gb *= 2)
        sizes.push_back(gb * kGB);

    TablePrinter fig13a(
        "Fig. 13a: cost vs HDFS HDD size (local = 2 TB HDD)");
    fig13a.setHeader({"HDFS size (GB)", "runtime (min)", "cost ($)"});
    for (const cloud::Evaluation &eval :
         optimizer.sweepHdfsSize(base, sizes)) {
        fig13a.addRow(
            {TablePrinter::num(
                 static_cast<double>(eval.config.hdfsSize) / 1e9, 0),
             TablePrinter::num(eval.seconds / 60.0, 1),
             TablePrinter::num(eval.cost, 2)});
    }
    fig13a.print(std::cout);
    std::cout << "\n";

    TablePrinter fig13b(
        "Fig. 13b: cost vs Spark-local HDD size (HDFS = 1 TB HDD)");
    fig13b.setHeader({"local size (GB)", "runtime (min)", "cost ($)"});
    for (const cloud::Evaluation &eval :
         optimizer.sweepLocalSize(base, sizes)) {
        fig13b.addRow(
            {TablePrinter::num(
                 static_cast<double>(eval.config.localSize) / 1e9, 0),
             TablePrinter::num(eval.seconds / 60.0, 1),
             TablePrinter::num(eval.cost, 2)});
    }
    fig13b.print(std::cout);
    std::cout << "\n";

    const cloud::Evaluation best = optimizer.optimize();
    const cloud::Evaluation r1 =
        optimizer.evaluate(cloud::referenceR1());
    const cloud::Evaluation r2 =
        optimizer.evaluate(cloud::referenceR2());
    TablePrinter summary("HDD-only optimum vs recommendations "
                         "(paper: 32% / 52% cheaper)");
    summary.setHeader(
        {"configuration", "runtime (min)", "cost ($)", "vs best"});
    auto row = [&](const char *name, const cloud::Evaluation &eval) {
        summary.addRow({std::string(name) + "  " +
                            eval.config.describe(),
                        TablePrinter::num(eval.seconds / 60.0, 1),
                        TablePrinter::num(eval.cost, 2),
                        TablePrinter::percent(
                            1.0 - best.cost / eval.cost)});
    };
    row("optimal", best);
    row("R1", r1);
    row("R2", r2);
    summary.print(std::cout);
    return 0;
}
