/**
 * @file
 * Extension bench: multi-tenant scheduling and streaming stability.
 *
 * The paper models one job owning the cluster; production clusters run
 * many. Three experiments measure what sharing costs on a small bench
 * cluster (3 slaves, P=8), every number taken from the deterministic
 * simulation so the record reproduces bit-for-bit:
 *
 * 1. Arrival-rate sweep: one LR micro-batch stream, arrival rate
 *    lambda swept across the stability boundary. Reports per-batch
 *    p50/p99 latency, drops and backlog, and the knee — the largest
 *    lambda the cluster sustains without backpressure drops. The
 *    boundary must be monotone: every rate below the knee is stable,
 *    every rate above it is not.
 * 2. Tenant-count sweep: N identical streams in one FAIR pool at a
 *    fixed lambda. Reports the worst tenant's p50/p99 and the
 *    slowdown against the isolated (N=1) run.
 * 3. Shared-cluster mix: LR-small (batch) next to one stream, each in
 *    its own FAIR pool. Reports the batch tenant's slowdown against
 *    running alone and the stream's p99 against running alone.
 *
 * Flags: --smoke shrinks the sweeps to CI size, --jobs N parallelizes
 * the sweep points (byte-identical output for any N), --json FILE
 * writes the machine-readable BENCH_multitenant.json record.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sched/jobs_spec.h"
#include "workloads/multi_tenant.h"

using namespace doppio;

namespace {

/** One reported number (same record shape as perf_core). */
struct Result
{
    std::string name;
    std::string unit; //!< "batches/s", "s" or "x"
    double value = 0.0;
    double seconds = 0.0; //!< simulated makespan of the source run
};

/** Reference arrival rate present in both smoke and full sweeps. */
constexpr double kReferenceLambda = 0.2;

cluster::ClusterConfig
benchCluster()
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves = 3;
    return config;
}

spark::SparkConf
benchConf()
{
    spark::SparkConf conf;
    conf.executorCores = 8;
    return conf;
}

sched::PoolConfig
fairPool(const std::string &name, double weight = 1.0)
{
    sched::PoolConfig pool;
    pool.name = name;
    pool.fair = true;
    pool.weight = weight;
    return pool;
}

sched::TenantSpec
streamTenant(double rate, int batches, const std::string &pool)
{
    sched::TenantSpec tenant;
    tenant.kind = sched::TenantSpec::Kind::Stream;
    tenant.workload = "lr";
    tenant.pool = pool;
    tenant.stream.ratePerSec = rate;
    tenant.stream.batches = batches;
    tenant.stream.maxBacklog = 4;
    tenant.stream.sloSeconds = 10.0;
    return tenant;
}

workloads::MultiTenantResult
runSpec(const sched::MultiJobSpec &spec)
{
    return workloads::runMultiTenant(spec, benchCluster(),
                                     benchConf());
}

std::string
latency(double seconds)
{
    return formatDuration(secondsToTicks(seconds));
}

void
lambdaSweep(bool smoke, int jobs, std::vector<Result> &out)
{
    const std::vector<double> lambdas =
        smoke ? std::vector<double>{0.2, 0.8, 3.2}
              : std::vector<double>{0.1, 0.2, 0.4, 0.8, 1.6, 3.2};
    const int batches = smoke ? 10 : 40;
    const common::SweepRunner runner(jobs);
    const std::vector<workloads::MultiTenantResult> results =
        runner.map(lambdas.size(), [&](std::size_t i) {
            sched::MultiJobSpec spec;
            spec.pools.push_back(fairPool("stream"));
            spec.tenants.push_back(
                streamTenant(lambdas[i], batches, "stream"));
            return runSpec(spec);
        });

    TablePrinter table(
        "LR stream vs arrival rate (3 slaves, P=8, backlog 4)");
    table.setHeader({"lambda (1/s)", "p50", "p99", "dropped",
                     "peak backlog", "stable"});
    double knee = 0.0;
    bool was_unstable = false;
    bool monotone = true;
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
        const spark::StreamingMetrics &s =
            results[i].tenants.front().streaming;
        table.addRow({TablePrinter::num(lambdas[i], 2),
                      latency(s.p50LatencySec),
                      latency(s.p99LatencySec),
                      std::to_string(s.dropped),
                      std::to_string(s.peakBacklog),
                      s.stable() ? "yes" : "NO"});
        if (s.stable()) {
            if (was_unstable)
                monotone = false;
            else
                knee = lambdas[i];
        } else {
            was_unstable = true;
        }
        if (lambdas[i] == kReferenceLambda) {
            out.push_back({"stream_p50_solo", "s", s.p50LatencySec,
                           results[i].seconds});
            out.push_back({"stream_p99_solo", "s", s.p99LatencySec,
                           results[i].seconds});
        }
    }
    table.print(std::cout);
    std::cout << "stability boundary: lambda* = "
              << TablePrinter::num(knee, 2) << " batches/s"
              << (monotone ? ""
                           : "  WARNING: boundary is not monotone")
              << "\n";
    out.push_back({"stability_lambda", "batches/s", knee, 0.0});
}

void
tenantSweep(bool smoke, int jobs, std::vector<Result> &out)
{
    const std::vector<int> counts =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    const int batches = smoke ? 10 : 30;
    const common::SweepRunner runner(jobs);
    const std::vector<workloads::MultiTenantResult> results =
        runner.map(counts.size(), [&](std::size_t i) {
            sched::MultiJobSpec spec;
            spec.pools.push_back(fairPool("shared"));
            for (int t = 0; t < counts[i]; ++t)
                spec.tenants.push_back(streamTenant(
                    kReferenceLambda, batches, "shared"));
            return runSpec(spec);
        });

    // "Worst tenant" keeps the row meaningful as N grows: fairness
    // bounds the spread, the straggler bounds the SLO.
    TablePrinter table("N identical LR streams, one FAIR pool, "
                       "lambda=" +
                       TablePrinter::num(kReferenceLambda, 2));
    table.setHeader(
        {"tenants", "worst p50", "worst p99", "slowdown"});
    double solo_p50 = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        double p50 = 0.0;
        double p99 = 0.0;
        for (const spark::AppMetrics &tenant : results[i].tenants) {
            p50 = std::max(p50, tenant.streaming.p50LatencySec);
            p99 = std::max(p99, tenant.streaming.p99LatencySec);
        }
        if (counts[i] == 1)
            solo_p50 = p50;
        table.addRow(
            {std::to_string(counts[i]), latency(p50), latency(p99),
             solo_p50 > 0.0
                 ? TablePrinter::num(p50 / solo_p50, 2) + "x"
                 : "-"});
        if (counts[i] > 1) {
            out.push_back({"stream_p99_" +
                               std::to_string(counts[i]) + "tenants",
                           "s", p99, results[i].seconds});
        }
    }
    table.print(std::cout);
}

void
sharedScenario(bool smoke, std::vector<Result> &out)
{
    const int batches = smoke ? 8 : 30;

    sched::MultiJobSpec batch_only;
    batch_only.pools.push_back(fairPool("batch"));
    sched::TenantSpec batch;
    batch.workload = "lr-small";
    batch.pool = "batch";
    batch_only.tenants.push_back(batch);
    const workloads::MultiTenantResult iso_batch = runSpec(batch_only);

    sched::MultiJobSpec stream_only;
    stream_only.pools.push_back(fairPool("stream"));
    stream_only.tenants.push_back(
        streamTenant(kReferenceLambda, batches, "stream"));
    const workloads::MultiTenantResult iso_stream =
        runSpec(stream_only);

    sched::MultiJobSpec shared;
    shared.pools.push_back(fairPool("batch"));
    shared.pools.push_back(fairPool("stream"));
    shared.tenants.push_back(batch);
    shared.tenants.push_back(
        streamTenant(kReferenceLambda, batches, "stream"));
    const workloads::MultiTenantResult both = runSpec(shared);

    const double iso_done = iso_batch.tenancy.tenants.front().doneSec;
    const double shared_done = both.tenancy.tenants.front().doneSec;
    const double slowdown =
        iso_done > 0.0 ? shared_done / iso_done : 0.0;
    const double iso_p99 =
        iso_stream.tenants.front().streaming.p99LatencySec;
    const double shared_p99 =
        both.tenants.back().streaming.p99LatencySec;

    TablePrinter table("LR-small next to one LR stream "
                       "(FAIR pools, equal weight)");
    table.setHeader({"metric", "isolated", "shared", "ratio"});
    table.addRow({"batch makespan",
                  formatDuration(secondsToTicks(iso_done)),
                  formatDuration(secondsToTicks(shared_done)),
                  TablePrinter::num(slowdown, 2) + "x"});
    table.addRow({"stream p99", latency(iso_p99),
                  latency(shared_p99),
                  iso_p99 > 0.0
                      ? TablePrinter::num(shared_p99 / iso_p99, 2) +
                            "x"
                      : "-"});
    table.print(std::cout);

    out.push_back(
        {"batch_slowdown_shared", "x", slowdown, both.seconds});
    out.push_back(
        {"stream_p99_shared", "s", shared_p99, both.seconds});
}

void
writeJson(const std::string &path, const std::vector<Result> &results,
          bool smoke, int jobs)
{
    std::ofstream os(path);
    os.precision(6);
    os << "{\"bench\":\"multitenant\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"jobs\":" << jobs
       << ",\"results\":[";
    bool first = true;
    for (const Result &r : results) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << r.name << "\",\"unit\":\"" << r.unit
           << "\",\"value\":" << r.value
           << ",\"seconds\":" << r.seconds << "}";
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::benchFlag(argc, argv, "--smoke");
    const int jobs = bench::benchJobs(argc, argv);
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[i + 1];
    }

    std::vector<Result> results;
    lambdaSweep(smoke, jobs, results);
    std::cout << "\n";
    tenantSweep(smoke, jobs, results);
    std::cout << "\n";
    sharedScenario(smoke, results);

    TablePrinter table(std::string("multitenant record (") +
                       (smoke ? "smoke" : "full") + ")");
    table.setHeader({"name", "value", "unit"});
    for (const Result &r : results)
        table.addRow({r.name, TablePrinter::num(r.value, 3), r.unit});
    std::cout << "\n";
    table.print(std::cout);

    if (!json_path.empty()) {
        writeJson(json_path, results, smoke, jobs);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
