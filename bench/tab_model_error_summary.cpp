/**
 * @file
 * Reproduces the paper's §V headline: prediction error rate across
 * the full application set (paper: GATK4 <6%, LR 5.3%, SVM 8.4%,
 * PR 5.2%, TC 3.6%, TS 3.9% — all under 10%).
 *
 * For each application: fit the model from the sample runs, predict
 * whole-application runtime at unseen (disk config, P) points on the
 * ten-slave evaluation cluster, and compare against full simulations.
 */

#include <iostream>

#include "bench_util.h"
#include "workloads/gatk4.h"
#include "workloads/logistic_regression.h"
#include "workloads/pagerank.h"
#include "workloads/svm.h"
#include "workloads/terasort.h"
#include "workloads/triangle_count.h"

using namespace doppio;

namespace {

double
appError(const workloads::Workload &workload)
{
    const cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    const model::AppModel app = bench::fitModel(workload, base);
    SummaryStats error;
    for (const auto &hybrid : {cluster::HybridConfig::config1(),
                               cluster::HybridConfig::config3()}) {
        cluster::ClusterConfig config = base;
        config.applyHybrid(hybrid);
        const model::PlatformProfile platform =
            bench::platformFor(config);
        for (int cores : {12, 24, 36}) {
            spark::SparkConf conf;
            conf.executorCores = cores;
            const double exp_s =
                workload.run(config, conf).seconds();
            const double model_s =
                app.predictSeconds(config.numSlaves, cores, platform);
            error.add(relativeError(model_s, exp_s));
        }
    }
    return error.mean();
}

} // namespace

int
main()
{
    TablePrinter table(
        "Model error summary over unseen (disks, P) configurations");
    table.setHeader({"application", "mean error", "paper"});

    const workloads::Gatk4 gatk4;
    table.addRow({"GATK4", TablePrinter::percent(appError(gatk4)),
                  "<6%"});
    const workloads::LogisticRegression lr_small(
        workloads::LogisticRegression::Options::small());
    table.addRow({"LogisticRegression (small)",
                  TablePrinter::percent(appError(lr_small)), "5.3%"});
    const workloads::LogisticRegression lr_large(
        workloads::LogisticRegression::Options::large());
    table.addRow({"LogisticRegression (large)",
                  TablePrinter::percent(appError(lr_large)), "5.3%"});
    const workloads::Svm svm;
    table.addRow({"SVM", TablePrinter::percent(appError(svm)),
                  "8.4%"});
    const workloads::PageRank pagerank;
    table.addRow({"PageRank", TablePrinter::percent(appError(pagerank)),
                  "5.2%"});
    const workloads::TriangleCount tc;
    table.addRow({"TriangleCount", TablePrinter::percent(appError(tc)),
                  "3.6%"});
    const workloads::Terasort terasort;
    table.addRow({"Terasort", TablePrinter::percent(appError(terasort)),
                  "3.9%"});
    table.print(std::cout);
    return 0;
}
