/**
 * @file
 * Reproduces Fig. 5: IOPS and effective bandwidth under different read
 * block sizes for HDD (5a) and SSD (5b), measured fio-style against
 * the device models.
 *
 * Paper anchors to check: ~15 MB/s (HDD) vs ~480 MB/s (SSD) at 30 KB
 * (32x gap), ~181x gap at 4 KB, ~3.7x at 128 MB.
 */

#include <iostream>

#include "common/table_printer.h"
#include "common/units.h"
#include "storage/fio.h"

using namespace doppio;

int
main()
{
    const storage::FioProfiler hdd(storage::makeHddParams());
    const storage::FioProfiler ssd(storage::makeSsdParams());

    TablePrinter table(
        "Fig. 5: effective read bandwidth and IOPS vs request size");
    table.setHeader({"block size", "HDD IOPS", "HDD MB/s", "SSD IOPS",
                     "SSD MB/s", "SSD/HDD"});
    for (Bytes rs : storage::FioProfiler::defaultSweepSizes()) {
        const storage::FioResult h =
            hdd.measure(storage::IoKind::Read, rs);
        const storage::FioResult s =
            ssd.measure(storage::IoKind::Read, rs);
        table.addRow({formatBytes(rs), TablePrinter::num(h.iops, 0),
                      TablePrinter::num(toMiBps(h.bandwidth), 1),
                      TablePrinter::num(s.iops, 0),
                      TablePrinter::num(toMiBps(s.bandwidth), 1),
                      TablePrinter::num(s.bandwidth / h.bandwidth, 1)});
    }
    table.print(std::cout);
    std::cout << "paper anchors: 32x at 30 KB, ~181x at 4 KB, ~3.7x at"
                 " 128 MB\n";

    TablePrinter wtable("\nWrite bandwidth vs request size");
    wtable.setHeader({"block size", "HDD MB/s", "SSD MB/s"});
    for (Bytes rs : {kib(128), mib(1), mib(27), mib(128), mib(365)}) {
        wtable.addRow(
            {formatBytes(rs),
             TablePrinter::num(
                 toMiBps(hdd.measure(storage::IoKind::Write, rs)
                             .bandwidth),
                 1),
             TablePrinter::num(
                 toMiBps(ssd.measure(storage::IoKind::Write, rs)
                             .bandwidth),
                 1)});
    }
    wtable.print(std::cout);
    return 0;
}
