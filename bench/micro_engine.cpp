/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine itself:
 * event-queue throughput, fluid-pipe rebalancing, disk-device request
 * handling, and an end-to-end small stage. These guard the simulator's
 * own performance (the figure harnesses run hundreds of cluster
 * simulations).
 */

#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "sim/fluid_pipe.h"
#include "sim/simulator.h"
#include "spark/task_engine.h"
#include "storage/disk_device.h"

using namespace doppio;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int events = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        for (int i = 0; i < events; ++i)
            sim.schedule(static_cast<Tick>((i * 7919) % 100000),
                         [] {});
        sim.run();
        benchmark::DoNotOptimize(sim.firedEvents());
    }
    state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_FluidPipeChurn(benchmark::State &state)
{
    const int flows = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        sim::FluidPipe pipe(sim, 1e9, "bench");
        for (int i = 0; i < flows; ++i) {
            sim.schedule(static_cast<Tick>(i) * 1000, [&pipe] {
                pipe.startFlow(1000000, [] {});
            });
        }
        sim.run();
        benchmark::DoNotOptimize(pipe.bytesCompleted());
    }
    state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidPipeChurn)->Arg(64)->Arg(1024);

void
BM_DiskDeviceRequests(benchmark::State &state)
{
    const int requests = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        storage::DiskDevice dev(sim, storage::makeSsdParams(), "bench");
        for (int i = 0; i < requests; ++i)
            dev.submit(storage::IoOp::RawRead, kib(30), [] {});
        sim.run();
        benchmark::DoNotOptimize(
            dev.stats().totalRequests(storage::IoKind::Read));
    }
    state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_DiskDeviceRequests)->Arg(1000)->Arg(10000);

void
BM_StageExecution(benchmark::State &state)
{
    const int tasks = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        cluster::ClusterConfig config =
            cluster::ClusterConfig::motivationCluster();
        cluster::Cluster cluster(sim, config);
        dfs::Hdfs hdfs(cluster);
        spark::SparkConf conf;
        spark::TaskEngine engine(cluster, hdfs, conf);
        spark::StageSpec stage;
        stage.name = "bench";
        spark::IoPhaseSpec io;
        io.op = storage::IoOp::ShuffleRead;
        io.bytesPerTask = mib(27);
        io.requestSize = kib(30);
        io.fanIn = 976;
        stage.groups.push_back(
            spark::TaskGroupSpec{"g", tasks, {io}, mib(27)});
        benchmark::DoNotOptimize(engine.runStage(stage).seconds());
    }
    state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_StageExecution)->Arg(256)->Arg(2048);

} // namespace

BENCHMARK_MAIN();
