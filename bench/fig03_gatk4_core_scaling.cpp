/**
 * @file
 * Reproduces Fig. 3: GATK4 stage runtime for the 2HDD and 2SSD
 * configurations when the per-node core count P is 12, 24, 36.
 *
 * Paper shapes to check: BR and SF scale with P under 2SSD but stay
 * flat under 2HDD (I/O-limited); MD stays roughly flat in both (GC
 * under 2SSD, shuffle-write-limited under 2HDD).
 */

#include <iostream>

#include "bench_util.h"
#include "workloads/gatk4.h"

using namespace doppio;

int
main()
{
    const workloads::Gatk4 gatk4;

    TablePrinter table(
        "Fig. 3: GATK4 stage runtime (minutes) vs cores per node");
    table.setHeader({"Configuration", "P", "MD", "BR", "SF"});

    for (const auto &hybrid : {cluster::HybridConfig::config1(),
                               cluster::HybridConfig::config4()}) {
        for (int cores : {12, 24, 36}) {
            cluster::ClusterConfig config =
                cluster::ClusterConfig::motivationCluster();
            config.applyHybrid(hybrid);
            spark::SparkConf conf;
            conf.executorCores = cores;
            const spark::AppMetrics metrics = gatk4.run(config, conf);
            table.addRow(
                {hybrid.local == storage::DiskType::Ssd ? "2SSD"
                                                        : "2HDD",
                 std::to_string(cores),
                 TablePrinter::num(
                     metrics.secondsForPrefix("MD") / 60.0, 1),
                 TablePrinter::num(
                     metrics.secondsForPrefix("BR") / 60.0, 1),
                 TablePrinter::num(
                     metrics.secondsForPrefix("SF") / 60.0, 1)});
        }
    }
    table.print(std::cout);
    return 0;
}
