/**
 * @file
 * Reproduces Fig. 14: model verification on the cloud — GATK4 runtime
 * measured (simulated cloud cluster) vs model-predicted for ten
 * 16-vCPU workers with 1 TB standard-disk HDFS, sweeping the
 * standard-disk Spark-local size from 200 GB to 3.2 TB.
 *
 * Paper shapes to check: runtime falls until ~2 TB (the pd-standard
 * IOPS knee) then flattens; average error < 4%.
 */

#include <iostream>

#include "cloud_util.h"

using namespace doppio;
using bench::kGB;

int
main(int argc, char **argv)
{
    const workloads::Gatk4 gatk4;
    const model::AppModel app = bench::fitCloudGatk4(gatk4);
    cloud::CostOptimizer::Options options;
    options.jobs = bench::benchJobs(argc, argv);
    const cloud::CostOptimizer optimizer(app, cloud::GcpPricing{},
                                         options);

    const std::vector<Bytes> sizes = {200, 400, 800, 1600, 2000,
                                      2400, 3200};
    // Each size point is an independent cluster simulation plus a
    // model query; fan them out and commit rows at their input index
    // so the table is byte-identical for any --jobs value.
    const common::SweepRunner runner(options.jobs);
    const std::vector<bench::ExpModelRow> rows =
        runner.map(sizes.size(), [&](std::size_t i) {
            const Bytes gb = sizes[i];
            cluster::ClusterConfig config = bench::cloudCluster();
            config.node.localDisk = cloud::makeCloudDiskParams(
                cloud::CloudDiskType::Standard, gb * kGB);
            spark::SparkConf conf;
            conf.executorCores = 16;
            const double exp_s = gatk4.run(config, conf).seconds();

            cloud::CloudConfig cc;
            cc.workers = 10;
            cc.vcpus = 16;
            cc.hdfsSize = 1000 * kGB;
            cc.localSize = gb * kGB;
            const double model_s = optimizer.evaluate(cc).seconds;

            return bench::ExpModelRow{std::to_string(gb) + " GB local",
                                      exp_s, model_s};
        });
    bench::printExpModel(
        "Fig. 14: GATK4 on 10x16 vCPU workers, 1 TB HDD HDFS, "
        "varying HDD local size (paper: <4% error, flat beyond 2 TB)",
        rows);
    return 0;
}
