/**
 * @file
 * Shared setup for the Google Cloud case-study benches (paper §VI).
 *
 * The paper provisions 16-vCPU workers and profiles GATK4 with four
 * sample runs using a 500 GB pd-ssd and a 200 GB pd-standard disk;
 * the fitted model then drives the cost optimizer over
 * (P, DiskTypes, DiskSize_HDFS, DiskSize_SparkLocal).
 */

#ifndef DOPPIO_BENCH_CLOUD_UTIL_H
#define DOPPIO_BENCH_CLOUD_UTIL_H

#include "bench_util.h"
#include "cloud/optimizer.h"
#include "workloads/gatk4.h"

namespace doppio::bench {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

/** 16-vCPU cloud worker template (disks set per experiment). */
inline cluster::ClusterConfig
cloudCluster(int workers = 10)
{
    cluster::ClusterConfig config;
    config.numSlaves = workers;
    config.node.cores = 16;
    config.node.ram = 60 * kGiB;
    config.node.executorMemory = 45 * kGiB;
    config.node.hdfsDisk =
        cloud::makeCloudDiskParams(cloud::CloudDiskType::Standard,
                                   1000 * kGB);
    config.node.localDisk =
        cloud::makeCloudDiskParams(cloud::CloudDiskType::Standard,
                                   2000 * kGB);
    return config;
}

/**
 * Profile GATK4 on the cloud cluster per §VI-1: sample disks are a
 * 500 GB pd-ssd and a 200 GB pd-standard.
 */
inline model::AppModel
fitCloudGatk4(const workloads::Gatk4 &gatk4, int workers = 10)
{
    model::Profiler::Options options;
    options.fitGc = true;
    options.highCores = 16;
    options.ssd =
        cloud::makeCloudDiskParams(cloud::CloudDiskType::Ssd,
                                   500 * kGB);
    // The paper starts from a 200 GB standard disk; at 200 GB the
    // 30 KB shuffle reads run at ~4 MB/s and the sample run sits in an
    // extreme regime, so we follow the paper's re-sampling rule and
    // use 500 GB (still comfortably I/O-bound at P=16).
    options.hdd =
        cloud::makeCloudDiskParams(cloud::CloudDiskType::Standard,
                                   500 * kGB);
    model::Profiler profiler(gatk4.runner(), cloudCluster(workers),
                             spark::SparkConf{}, options);
    return profiler.fit("GATK4-cloud");
}

} // namespace doppio::bench

#endif // DOPPIO_BENCH_CLOUD_UTIL_H
