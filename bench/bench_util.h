/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses.
 *
 * Every bench binary reproduces one table or figure from the paper:
 * it runs the relevant workload on the simulated cluster ("exp"), fits
 * the Doppio model via the profiler where the figure compares against
 * model predictions ("model"), and prints the same rows/series the
 * paper reports.
 */

#ifndef DOPPIO_BENCH_BENCH_UTIL_H
#define DOPPIO_BENCH_BENCH_UTIL_H

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "model/profiler.h"
#include "workloads/workload.h"

namespace doppio::bench {

/** @return whether @p flag appears in the bench's argv. */
inline bool
benchFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

/**
 * Parse --jobs N for a sweep bench: 0 (the default) = one thread per
 * hardware core. Sweep results are committed in input order, so the
 * printed tables are byte-identical for any value.
 */
inline int
benchJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            return std::atoi(argv[i + 1]);
    }
    return 0;
}

/** One measurement/prediction point of a figure. */
struct ExpModelRow
{
    std::string label;
    double expSeconds = 0.0;
    double modelSeconds = 0.0;

    double
    error() const
    {
        return relativeError(modelSeconds, expSeconds);
    }
};

/**
 * Fit the extended (5-run) model for a workload.
 *
 * Sample runs use the evaluation cluster's node count: workloads
 * whose RDDs only fit in the larger cluster's aggregate storage
 * memory (LR-small's 280 GB, PageRank's 420 GB generations) change
 * I/O behaviour with N, so a model profiled at a different scale
 * would describe a different execution plan.
 */
inline model::AppModel
fitModel(const workloads::Workload &workload,
         const cluster::ClusterConfig &base,
         const spark::SparkConf &conf = spark::SparkConf{})
{
    model::Profiler::Options options;
    options.fitGc = true;
    options.sampleNodes = base.numSlaves;
    options.gcNodes = base.numSlaves + 1;
    model::Profiler profiler(workload.runner(), base, conf, options);
    return profiler.fit(workload.name());
}

/** Fit the paper-base (4-run) model for a workload. */
inline model::AppModel
fitBaseModel(const workloads::Workload &workload,
             const cluster::ClusterConfig &base,
             const spark::SparkConf &conf = spark::SparkConf{})
{
    model::Profiler profiler(workload.runner(), base, conf);
    return profiler.fit(workload.name());
}

/** Platform profile for a concrete cluster configuration. */
inline model::PlatformProfile
platformFor(const cluster::ClusterConfig &config)
{
    return model::PlatformProfile::fromNode(config.node);
}

/** Sum of predicted stage times whose name starts with @p prefix. */
inline double
predictPrefix(const model::AppModel &app, const std::string &prefix,
              int numNodes, int cores,
              const model::PlatformProfile &platform)
{
    double total = 0.0;
    for (const model::StageModel &stage : app.stages) {
        if (stage.name.rfind(prefix, 0) == 0)
            total += model::predictStage(stage, numNodes, cores,
                                         platform)
                         .seconds;
    }
    return total;
}

/**
 * Shared driver for Figs. 8-12: run the workload under each hybrid
 * disk configuration on the evaluation cluster, fit the model once,
 * and print per-phase exp vs model rows plus the HDD/SSD gap for the
 * phase the paper highlights.
 */
inline void
runPhaseFigure(const std::string &title,
               const workloads::Workload &workload,
               const std::vector<std::string> &phases,
               const std::string &gapPhase,
               const std::vector<cluster::HybridConfig> &hybrids,
               int cores = 36)
{
    const cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    const model::AppModel app = fitModel(workload, base);

    TablePrinter table(title);
    table.setHeader(
        {"config", "phase", "exp (min)", "model (min)", "error"});
    SummaryStats error;
    std::vector<double> gap_seconds;
    for (const cluster::HybridConfig &hybrid : hybrids) {
        cluster::ClusterConfig config = base;
        config.applyHybrid(hybrid);
        spark::SparkConf conf;
        conf.executorCores = cores;
        const spark::AppMetrics metrics = workload.run(config, conf);
        const model::PlatformProfile platform = platformFor(config);
        for (const std::string &phase : phases) {
            const double exp_s = metrics.secondsForPrefix(phase);
            const double model_s = predictPrefix(
                app, phase, config.numSlaves, cores, platform);
            const double err = relativeError(model_s, exp_s);
            error.add(err);
            table.addRow({hybrid.name(), phase,
                          TablePrinter::num(exp_s / 60.0, 1),
                          TablePrinter::num(model_s / 60.0, 1),
                          TablePrinter::percent(err)});
        }
        gap_seconds.push_back(metrics.secondsForPrefix(gapPhase));
    }
    table.print(std::cout);
    std::cout << "average error: "
              << TablePrinter::percent(error.mean());
    if (gap_seconds.size() >= 2 && gap_seconds.front() > 0.0) {
        std::cout << "   " << gapPhase << " HDD/SSD gap: "
                  << TablePrinter::num(
                         gap_seconds.back() / gap_seconds.front(), 1)
                  << "x";
    }
    std::cout << "\n\n";
}

/** Print exp-vs-model rows plus the average error footer. */
inline void
printExpModel(const std::string &title,
              const std::vector<ExpModelRow> &rows,
              const std::string &unit = "min")
{
    const double scale = unit == "min" ? 1.0 / 60.0 : 1.0;
    TablePrinter table(title);
    table.setHeader({"point", "exp (" + unit + ")",
                     "model (" + unit + ")", "error"});
    SummaryStats error;
    for (const ExpModelRow &row : rows) {
        table.addRow({row.label,
                      TablePrinter::num(row.expSeconds * scale, 1),
                      TablePrinter::num(row.modelSeconds * scale, 1),
                      TablePrinter::percent(row.error())});
        error.add(row.error());
    }
    table.print(std::cout);
    std::cout << "average error: "
              << TablePrinter::percent(error.mean()) << "\n\n";
}

} // namespace doppio::bench

#endif // DOPPIO_BENCH_BENCH_UTIL_H
