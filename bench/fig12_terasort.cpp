/**
 * @file
 * Reproduces Fig. 12: measured vs model runtime for Terasort (10B
 * records, 930 GB; NF reads + range-partitions + shuffle-writes, SF
 * shuffle-reads + sorts + writes the output to HDFS).
 *
 * Paper shapes to check: average error ~3.9%; 2.6x HDD/SSD local gap.
 */

#include "bench_util.h"
#include "workloads/terasort.h"

using namespace doppio;

int
main()
{
    const workloads::Terasort terasort;
    bench::runPhaseFigure(
        "Fig. 12: Terasort exp vs model (paper: 2.6x local-disk gap)",
        terasort, {"NF", "SF"}, "SF",
        {cluster::HybridConfig::config1(),
         cluster::HybridConfig::config3()});
    return 0;
}
