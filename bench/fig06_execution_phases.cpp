/**
 * @file
 * Reproduces Fig. 6: the three execution phases of the model, using
 * the paper's illustration parameters (T = 60 MB/s per core,
 * lambda = 4, BW = 120 MB/s, so b = 2 and B = 8).
 *
 * A synthetic stage with those parameters is run on the simulator for
 * P = 1..12 and compared with Eq. 1; the bench prints which regime
 * each P falls into:
 *   P <= b:          no I/O contention, perfect scaling;
 *   b < P <= B:      contention hidden by computation, still scaling;
 *   P > B:           I/O bottleneck; more cores do not help.
 */

#include <iostream>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "sim/simulator.h"
#include "spark/task_engine.h"

using namespace doppio;

namespace {

/** A single-node disk whose 1 MiB-request bandwidth is 120 MB/s. */
storage::DiskParams
figureDisk()
{
    storage::DiskParams p;
    p.model = "fig6-disk";
    p.type = storage::DiskType::Ssd;
    p.readIops = 1.0e6;
    p.writeIops = 1.0e6;
    p.readLatency = usToTicks(10.0);
    p.writeLatency = usToTicks(10.0);
    p.readBandwidth = mibps(120.0);
    p.writeBandwidth = mibps(120.0);
    return p;
}

} // namespace

int
main()
{
    // Task: read 60 MB at T = 60 MB/s per core (1 s of I/O incl.
    // pipelined decompression), then 3 s of compute: lambda = 4.
    const double lambda = 4.0;
    const Bytes task_bytes = mib(60);
    const int tasks = 96;

    TablePrinter table(
        "Fig. 6: execution phases (T=60 MB/s, lambda=4, BW=120 MB/s "
        "-> b=2, B=8)");
    table.setHeader({"P", "exp (s)", "Eq.1 (s)", "regime"});

    for (int cores = 1; cores <= 12; ++cores) {
        sim::Simulator sim;
        cluster::ClusterConfig config;
        config.numSlaves = 1;
        config.node.cores = 12;
        config.node.hdfsDisk = figureDisk();
        config.node.localDisk = figureDisk();
        // Realistic task-time variance: with identical tasks, wave
        // barriers leave the device idle at each wave end, an
        // artifact the paper's pipeline model (and real Spark's
        // shuffle prefetching) does not have.
        config.taskJitterSigma = 0.25;
        cluster::Cluster cluster(sim, config);
        dfs::Hdfs hdfs(cluster);
        spark::SparkConf conf;
        conf.executorCores = cores;
        conf.taskDispatchOverheadSec = 0.0;
        // Exact per-chunk simulation: the pipelined CPU interleaves
        // with device time chunk by chunk, which is what lets one
        // task's computation hide another's I/O (Fig. 6b).
        conf.aggregateIo = false;
        spark::TaskEngine engine(cluster, hdfs, conf);

        spark::StageSpec stage;
        stage.name = "fig6";
        spark::IoPhaseSpec io;
        io.op = storage::IoOp::PersistRead;
        io.bytesPerTask = task_bytes;
        io.requestSize = mib(1);
        // ~0.5 s device time + 0.5 s pipelined CPU = 1 s at 60 MB/s.
        io.cpuPerByte = 0.5 / static_cast<double>(task_bytes);
        stage.groups.push_back(spark::TaskGroupSpec{
            "g",
            tasks,
            {io, spark::ComputePhaseSpec{(lambda - 1.0) * 1.0}},
            task_bytes});
        const double exp_seconds = engine.runStage(stage).seconds();

        // Eq. 1 by hand: t_scale = M/P * t_avg, limit = D / BW.
        const double t_scale = static_cast<double>(tasks) / cores *
                               lambda;
        const double t_limit = static_cast<double>(tasks) *
                               static_cast<double>(task_bytes) /
                               mibps(120.0);
        const double predicted = std::max(t_scale, t_limit);
        const char *regime = cores <= 2 ? "P <= b"
                             : cores <= 8
                                 ? "b < P <= lambda*b (overlap)"
                                 : "P > B (I/O bottleneck)";
        table.addRow({std::to_string(cores),
                      TablePrinter::num(exp_seconds, 1),
                      TablePrinter::num(predicted, 1), regime});
    }
    table.print(std::cout);
    return 0;
}
