/**
 * @file
 * Extension bench: what failures cost an I/O-bound Spark job.
 *
 * The paper models fault-free executions; real clusters lose tasks and
 * nodes. Two experiments quantify the price of failure for Terasort on
 * a small cluster, with every fault drawn from a seeded injector so
 * the numbers reproduce bit-for-bit:
 *
 * 1. Crash-rate sweep (LR-small): per-attempt task failure probability
 *    from 0 to 10%. Each crash discards the attempt's partial work and
 *    re-queues the task (Spark's spark.task.maxFailures retry loop);
 *    the iterations are compute-bound, so the retried work lands on
 *    the critical path and runtime/cost grow with the rate. (I/O-bound
 *    stages absorb much of the waste in disk slack — crashed attempts
 *    mostly waited on devices that stay busy either way.)
 * 2. Node loss mid-shuffle (Terasort): one of the three workers dies
 *    while the reduce stage is fetching. In-flight attempts are lost,
 *    the next fetch against the dead node aborts the stage, the lost
 *    map outputs are recomputed from lineage, HDFS reads fail over to
 *    the surviving replica while re-replication repairs the files in
 *    the background.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "cloud/pricing.h"
#include "faults/fault_spec.h"
#include "workloads/registry.h"

using namespace doppio;

namespace {

/** Evaluation-style cluster shrunk to bench scale. */
cluster::ClusterConfig
benchCluster()
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves = 3;
    return config;
}

spark::AppMetrics
runWorkload(const std::string &name, const faults::FaultSpec *spec,
            int taskMaxFailures = 4)
{
    const auto workload = workloads::makeWorkload(name);
    spark::SparkConf conf;
    conf.executorCores = 8;
    conf.taskMaxFailures = taskMaxFailures;
    return workload->run(benchCluster(), conf, nullptr, spec);
}

/** Fleet priced like the paper's cloud workers (3 x 8 vCPU). */
double
dollars(double seconds)
{
    cloud::CloudConfig fleet;
    fleet.workers = 3;
    fleet.vcpus = 8;
    fleet.hdfsSize = 1000ULL * 1000 * 1000 * 1000;
    fleet.localSize = 2000ULL * 1000 * 1000 * 1000;
    return cloud::jobCost(fleet, cloud::GcpPricing{}, seconds);
}

void
crashRateSweep(int jobs)
{
    const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.10};
    // Each rate is an independent seeded simulation: fan them out and
    // commit results in input order so the table is byte-identical
    // for any --jobs value.
    const common::SweepRunner runner(jobs);
    const std::vector<spark::AppMetrics> results =
        runner.map(rates.size(), [&](std::size_t i) {
            faults::FaultSpec spec;
            spec.taskFailureRate = rates[i];
            // At the 4-crash Spark default, a 5%+ rate over ~100k
            // attempts makes some task exceed maxFailures and
            // (correctly) abort the application; chaos sweeps raise
            // the cap like operators do. The trend, not the abort
            // path, is measured here.
            return runWorkload(
                "lr-small", rates[i] > 0.0 ? &spec : nullptr, 1000);
        });

    TablePrinter table(
        "LR-small vs per-attempt crash probability (3 slaves, P=8)");
    table.setHeader({"fail rate", "runtime", "slowdown", "crashes",
                     "wasted", "cost ($)"});
    const double clean = results.front().seconds();
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const double seconds = results[i].seconds();
        char label[16];
        std::snprintf(label, sizeof(label), "%.0f%%",
                      rates[i] * 100.0);
        table.addRow(
            {label, formatDuration(secondsToTicks(seconds)),
             TablePrinter::num(seconds / clean, 2) + "x",
             std::to_string(results[i].faults.taskFailures),
             formatDuration(
                 secondsToTicks(results[i].faults.wastedTaskSeconds)),
             TablePrinter::num(dollars(seconds), 2)});
    }
    table.print(std::cout);
}

void
nodeLossMidShuffle()
{
    const spark::AppMetrics clean = runWorkload("terasort", nullptr);
    const auto stages = clean.allStages();
    // Kill while the reduce stage is still fetching (the tail of its
    // window is the output-write backlog draining).
    const double killAt =
        ticksToSeconds(stages[1]->startTick) +
        0.1 * ticksToSeconds(stages[1]->endTick - stages[1]->startTick);

    faults::FaultSpec spec;
    faults::NodeEvent kill;
    kill.kind = faults::NodeEvent::Kind::Kill;
    kill.node = 1;
    kill.atSeconds = killAt;
    spec.schedule.add(kill);
    const spark::AppMetrics faulty = runWorkload("terasort", &spec);

    char title[96];
    std::snprintf(title, sizeof(title),
                  "Node 1 lost at t=%.0f s (mid shuffle-read)", killAt);
    TablePrinter table(title);
    table.setHeader({"metric", "fault-free", "node loss"});
    table.addRow({"runtime",
                  formatDuration(secondsToTicks(clean.seconds())),
                  formatDuration(secondsToTicks(faulty.seconds()))});
    table.addRow({"cost ($)", TablePrinter::num(dollars(clean.seconds()), 2),
                  TablePrinter::num(dollars(faulty.seconds()), 2)});
    table.addRow({"attempts lost", "0",
                  std::to_string(faulty.faults.lostAttempts)});
    table.addRow({"fetch failures", "0",
                  std::to_string(faulty.faults.fetchFailures)});
    table.addRow({"stage reattempts", "0",
                  std::to_string(faulty.faults.stageReattempts)});
    table.addRow({"HDFS failovers", "0",
                  std::to_string(faulty.faults.hdfsFailovers)});
    table.addRow({"re-replicated", "0.0 B",
                  formatBytes(faulty.faults.reReplicatedBytes)});
    table.addRow(
        {"recovery time", "0.00 us",
         formatDuration(secondsToTicks(faulty.faults.recoverySeconds))});
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    crashRateSweep(bench::benchJobs(argc, argv));
    std::cout << "\n";
    nodeLossMidShuffle();
    return 0;
}
