/**
 * @file
 * Reproduces Fig. 9: measured vs model runtime for SVM (12M samples,
 * 82 GB cached RDD, 10 iterations, 170 GB shuffle in the subtract
 * phase).
 *
 * Paper shapes to check: average error ~8.4%; 6.2x HDD/SSD gap on the
 * subtract phase.
 */

#include "bench_util.h"
#include "workloads/svm.h"

using namespace doppio;

int
main()
{
    const workloads::Svm svm;
    bench::runPhaseFigure(
        "Fig. 9: SVM exp vs model (paper: 6.2x subtract gap)", svm,
        {"dataValidator", "iteration", "subtract"}, "subtract",
        {cluster::HybridConfig::config1(),
         cluster::HybridConfig::config3()});
    return 0;
}
