/**
 * @file
 * Extension bench: storage configurations beyond the paper.
 *
 * 1. Multi-disk JBOD (paper §IV-C: "our model relates to disk
 *    bandwidth rather than disk number. Thus, it is general enough to
 *    support the multi-disk case"): GATK4 with 1, 2, 4 HDDs behind
 *    spark.local.dir, exp vs model.
 * 2. NVMe local storage: with ~3 GB/s and 600k IOPS the shuffle-read
 *    bottleneck the paper studies disappears and GATK4 becomes
 *    compute-bound at every P — the logical endpoint of the paper's
 *    HDD -> SSD trend.
 * 3. Network sensitivity (paper §III-B1 cites 10 Gb/s as "not the
 *    bottleneck"; related work moved 1 -> 10 Gb/s for 2.5x): GATK4
 *    under 1 / 10 / 40 Gb/s NICs.
 */

#include <iostream>

#include "bench_util.h"
#include "workloads/gatk4.h"

using namespace doppio;

int
main()
{
    const workloads::Gatk4 gatk4;
    spark::SparkConf conf;
    conf.executorCores = 36;

    // --- 1. Multi-disk local storage ------------------------------
    {
        const cluster::ClusterConfig base =
            cluster::ClusterConfig::evaluationCluster();
        const model::AppModel app = bench::fitModel(gatk4, base);
        TablePrinter table(
            "GATK4 vs number of HDDs behind spark.local.dir "
            "(10 slaves, P=36, SSD HDFS)");
        table.setHeader(
            {"local disks", "exp (min)", "model (min)", "error"});
        for (int disks : {1, 2, 4}) {
            cluster::ClusterConfig config = base;
            config.applyHybrid(cluster::HybridConfig::config3());
            config.node.localDiskCount = disks;
            const double exp_s = gatk4.run(config, conf).seconds();
            const double model_s = app.predictSeconds(
                config.numSlaves, conf.executorCores,
                bench::platformFor(config));
            table.addRow({std::to_string(disks),
                          TablePrinter::num(exp_s / 60.0, 1),
                          TablePrinter::num(model_s / 60.0, 1),
                          TablePrinter::percent(
                              relativeError(model_s, exp_s))});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // --- 2. NVMe local storage ------------------------------------
    {
        TablePrinter table("GATK4 local-storage generations (P=36)");
        table.setHeader({"spark.local.dir", "MD", "BR", "SF",
                         "total (min)"});
        struct Option
        {
            const char *name;
            storage::DiskParams params;
        };
        for (const Option &option :
             {Option{"HDD", storage::makeHddParams()},
              Option{"SSD", storage::makeSsdParams()},
              Option{"NVMe", storage::makeNvmeParams()}}) {
            cluster::ClusterConfig config =
                cluster::ClusterConfig::evaluationCluster();
            config.node.localDisk = option.params;
            const spark::AppMetrics metrics = gatk4.run(config, conf);
            table.addRow(
                {option.name,
                 TablePrinter::num(
                     metrics.secondsForPrefix("MD") / 60.0, 1),
                 TablePrinter::num(
                     metrics.secondsForPrefix("BR") / 60.0, 1),
                 TablePrinter::num(
                     metrics.secondsForPrefix("SF") / 60.0, 1),
                 TablePrinter::num(metrics.seconds() / 60.0, 1)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // --- 3. Network sensitivity -----------------------------------
    {
        TablePrinter table(
            "GATK4 vs NIC speed (2SSD, P=36; paper: 10 Gb/s is not "
            "the bottleneck)");
        table.setHeader({"NIC", "BR (min)", "total (min)"});
        for (const auto &[name, gbps] :
             {std::pair<const char *, double>{"1 Gb/s", 1.0},
              {"10 Gb/s", 10.0},
              {"40 Gb/s", 40.0}}) {
            cluster::ClusterConfig config =
                cluster::ClusterConfig::evaluationCluster();
            config.networkBandwidth = gibps(gbps / 8.0);
            const spark::AppMetrics metrics = gatk4.run(config, conf);
            table.addRow(
                {name,
                 TablePrinter::num(
                     metrics.secondsForPrefix("BR") / 60.0, 1),
                 TablePrinter::num(metrics.seconds() / 60.0, 1)});
        }
        table.print(std::cout);
    }
    return 0;
}
