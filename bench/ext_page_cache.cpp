/**
 * @file
 * Extension bench: what the OS page cache does to Spark I/O.
 *
 * The paper profiles with caches dropped between runs, but production
 * clusters run warm. Two experiments quantify the difference on HDD
 * local storage:
 *
 * 1. Warm re-read: an iterative job's persist-read stage executed
 *    twice. With the cache off both iterations pay full device time;
 *    with it on, the second iteration's working set is resident and
 *    runs at memory speed (>= 10x).
 * 2. Small-write absorption: a shuffle-write stage whose dirty
 *    footprint stays below the background-writeback threshold. With
 *    the cache on, the device sees zero write traffic — the writes
 *    live (and die) in dirty pages, like Linux absorbing shuffle
 *    spills that fit in free memory.
 */

#include <iostream>
#include <string>

#include "bench_util.h"
#include "spark/task_engine.h"

using namespace doppio;

namespace {

/** 3 HDD-local slaves, 4 cores each; cache capacity RAM - heap. */
cluster::ClusterConfig
benchCluster(bool pageCache)
{
    cluster::ClusterConfig config;
    config.numSlaves = 3;
    config.node.cores = 4;
    config.node.hdfsDisk = storage::makeHddParams();
    config.node.localDisk = storage::makeHddParams();
    config.node.pageCache.enabled = pageCache;
    return config;
}

/** One stage of @p tasks tasks moving @p bytesPerTask each. */
spark::StageSpec
ioStage(const std::string &name, storage::IoOp op, int tasks,
        Bytes bytesPerTask, Bytes requestSize)
{
    spark::IoPhaseSpec phase;
    phase.op = op;
    phase.bytesPerTask = bytesPerTask;
    phase.requestSize = requestSize;
    spark::TaskGroupSpec group;
    group.name = name;
    group.count = tasks;
    group.phases = {phase};
    spark::StageSpec stage;
    stage.name = name;
    stage.groups = {group};
    return stage;
}

/** Sum of device-level write bytes across every local disk. */
Bytes
deviceWriteBytes(const cluster::Cluster &cluster)
{
    Bytes total = 0;
    for (int n = 0; n < cluster.numSlaves(); ++n) {
        const cluster::Node &node = cluster.node(n);
        for (int d = 0; d < node.localDiskCount(); ++d)
            total += node.localDisk(d).stats().totalBytes(
                storage::IoKind::Write);
    }
    return total;
}

struct IterationTimes
{
    double first = 0.0;
    double second = 0.0;
};

/** Run the same persist-read stage twice on one warm engine. */
IterationTimes
runTwoIterations(bool pageCache)
{
    sim::Simulator sim;
    cluster::Cluster cluster(sim, benchCluster(pageCache));
    dfs::Hdfs hdfs(cluster);
    spark::SparkConf conf;
    conf.executorCores = 4;
    spark::TaskEngine engine(cluster, hdfs, conf);
    const spark::StageSpec stage = ioStage(
        "iteration", storage::IoOp::PersistRead, 12, 256 * kMiB, kMiB);
    IterationTimes times;
    times.first = engine.runStage(stage).seconds();
    times.second = engine.runStage(stage).seconds();
    return times;
}

} // namespace

int
main()
{
    // --- 1. Warm iteration speedup --------------------------------
    {
        const IterationTimes off = runTwoIterations(false);
        const IterationTimes on = runTwoIterations(true);
        TablePrinter table(
            "Iterative persist-read, 3 slaves x 4 cores, HDD local "
            "(12 tasks x 256 MiB)");
        table.setHeader({"page cache", "iter 1 (s)", "iter 2 (s)"});
        table.addRow({"off", TablePrinter::num(off.first, 2),
                      TablePrinter::num(off.second, 2)});
        table.addRow({"on", TablePrinter::num(on.first, 2),
                      TablePrinter::num(on.second, 2)});
        table.print(std::cout);
        std::cout << "warm-iteration speedup: "
                  << TablePrinter::num(off.second / on.second, 1)
                  << "x (cache-off iter 2 / cache-on iter 2)\n\n";
    }

    // --- 2. Small-write absorption --------------------------------
    {
        TablePrinter table(
            "Shuffle-write below the dirty threshold "
            "(12 tasks x 64 MiB)");
        table.setHeader({"page cache", "stage (s)", "device writes",
                         "absorbed"});
        for (const bool cached : {false, true}) {
            sim::Simulator sim;
            cluster::Cluster cluster(sim, benchCluster(cached));
            dfs::Hdfs hdfs(cluster);
            spark::SparkConf conf;
            conf.executorCores = 4;
            spark::TaskEngine engine(cluster, hdfs, conf);
            const spark::StageMetrics metrics = engine.runStage(ioStage(
                "shuffle-write", storage::IoOp::ShuffleWrite, 12,
                64 * kMiB, 256 * kKiB));
            const oscache::PageCacheStats stats =
                cluster.pageCacheTotals();
            table.addRow({cached ? "on" : "off",
                          TablePrinter::num(metrics.seconds(), 2),
                          formatBytes(deviceWriteBytes(cluster)),
                          formatBytes(stats.absorbedBytes)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
