/**
 * @file
 * Extension bench: graceful degradation under memory pressure.
 *
 * The paper sizes its clusters so every cached RDD fits; this sweep
 * asks what happens when it does not. The dataset is held fixed while
 * executor memory shrinks, sweeping the dataset / aggregate-pool ratio
 * across 1.0 on two workloads with opposite pressure profiles:
 *
 * 1. Logistic Regression (storage pressure): the persisted parsedData
 *    outgrows the unified pools, so caching evicts blocks to the local
 *    disks (MEMORY_AND_DISK) and every iteration pays PersistRead for
 *    the evicted share — runtime and device traffic rise smoothly past
 *    ratio 1.0 instead of falling off the all-or-nothing cliff the
 *    legacy placement models.
 * 2. Terasort (execution pressure): sort buffers outgrow each task's
 *    fair share of execution memory, so the shuffle external-sorts
 *    through the disks in multiple merge passes; spilled bytes grow
 *    with the ratio.
 *
 * Run with --smoke for the CI-sized subset (2 points per workload).
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/logistic_regression.h"
#include "workloads/terasort.h"

using namespace doppio;

namespace {

constexpr int kSlaves = 3;
constexpr int kCores = 8;

/** Evaluation-style cluster sized so the pool ratio comes out right. */
cluster::ClusterConfig
benchCluster(Bytes executorMemory)
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves = kSlaves;
    config.node.executorMemory = executorMemory;
    // Constant OS headroom so the page cache does not grow as the
    // executor shrinks and confound the sweep.
    config.node.ram = executorMemory + gib(8);
    return config;
}

/** Executor memory giving dataset/aggregate-pool == @p ratio. */
Bytes
executorMemoryFor(Bytes datasetBytes, double ratio,
                  double memoryFraction)
{
    return static_cast<Bytes>(static_cast<double>(datasetBytes) /
                              (ratio * kSlaves * memoryFraction));
}

struct SweepPoint
{
    double ratio = 0.0;
    double seconds = 0.0;
    Bytes pressureBytes = 0; //!< evicted-to-disk + spilled
};

void
printMonotonicityVerdict(const std::vector<SweepPoint> &points)
{
    bool runtime_ok = true;
    bool traffic_ok = true;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].ratio <= 1.0)
            continue;
        // Degradation must be graceful: more pressure, never less
        // runtime or device traffic (0.1% slack for barrier effects).
        if (points[i].seconds < points[i - 1].seconds * 0.999)
            runtime_ok = false;
        if (points[i].pressureBytes < points[i - 1].pressureBytes)
            traffic_ok = false;
    }
    std::cout << "past ratio 1.0: runtime "
              << (runtime_ok ? "monotone non-decreasing"
                             : "NOT monotone")
              << ", spill+evict traffic "
              << (traffic_ok ? "monotone non-decreasing"
                             : "NOT monotone")
              << "\n\n";
}

void
lrStorageSweep(const std::vector<double> &ratios, bool smoke, int jobs)
{
    workloads::LogisticRegression::Options options;
    options.examplesMillions = smoke ? 30.0 : 110.0;
    options.iterations = smoke ? 2 : 5;
    const workloads::LogisticRegression workload(options);
    const Bytes dataset = options.parsedBytes();

    // Every ratio provisions its own cluster: fan the independent
    // simulations out and commit results at their input index so the
    // table is byte-identical for any --jobs value.
    struct Row
    {
        Bytes executor = 0;
        spark::AppMetrics metrics;
    };
    const common::SweepRunner runner(jobs);
    const std::vector<Row> rows =
        runner.map(ratios.size(), [&](std::size_t i) {
            spark::SparkConf conf;
            conf.executorCores = kCores;
            conf.unifiedMemory = true;
            const Bytes executor = executorMemoryFor(
                dataset, ratios[i], conf.memoryFraction);
            return Row{executor,
                       workload.run(benchCluster(executor), conf)};
        });

    TablePrinter table(
        "LR iterations vs parsedData / aggregate pool (" +
        formatBytes(dataset) + " cached, 3 slaves x 8 cores)");
    table.setHeader({"ratio", "executor", "runtime (s)", "evicted",
                     "to disk", "recomputed", "spilled"});
    std::vector<SweepPoint> points;
    for (std::size_t i = 0; i < ratios.size(); ++i) {
        const Row &row = rows[i];
        const spark::MemoryMetrics &memory = row.metrics.memory;
        table.addRow({TablePrinter::num(ratios[i], 2),
                      formatBytes(row.executor),
                      TablePrinter::num(row.metrics.seconds(), 1),
                      std::to_string(memory.evictedBlocks),
                      formatBytes(memory.evictedToDiskBytes),
                      std::to_string(memory.recomputedPartitions),
                      formatBytes(memory.spilledBytes)});
        points.push_back({ratios[i], row.metrics.seconds(),
                          memory.evictedToDiskBytes +
                              memory.spilledBytes});
    }
    table.print(std::cout);
    printMonotonicityVerdict(points);
}

void
terasortExecutionSweep(const std::vector<double> &ratios, bool smoke,
                       int jobs)
{
    workloads::Terasort::Options options;
    options.dataBytes = smoke ? gib(8) : gib(24);
    options.reducers = smoke ? 8 : 24;
    const workloads::Terasort workload(options);

    struct Row
    {
        Bytes executor = 0;
        spark::AppMetrics metrics;
    };
    const common::SweepRunner runner(jobs);
    const std::vector<Row> rows =
        runner.map(ratios.size(), [&](std::size_t i) {
            spark::SparkConf conf;
            conf.executorCores = kCores;
            conf.unifiedMemory = true;
            const Bytes executor = executorMemoryFor(
                options.dataBytes, ratios[i], conf.memoryFraction);
            return Row{executor,
                       workload.run(benchCluster(executor), conf)};
        });

    TablePrinter table("Terasort vs data / aggregate pool (" +
                       formatBytes(options.dataBytes) +
                       " sorted, 3 slaves x 8 cores)");
    table.setHeader({"ratio", "executor", "runtime (s)", "spills",
                     "passes", "spilled", "OOM kills"});
    std::vector<SweepPoint> points;
    for (std::size_t i = 0; i < ratios.size(); ++i) {
        const Row &row = rows[i];
        const spark::MemoryMetrics &memory = row.metrics.memory;
        table.addRow({TablePrinter::num(ratios[i], 2),
                      formatBytes(row.executor),
                      TablePrinter::num(row.metrics.seconds(), 1),
                      std::to_string(memory.spills),
                      std::to_string(memory.spillPasses),
                      formatBytes(memory.spilledBytes),
                      std::to_string(memory.oomKills)});
        points.push_back({ratios[i], row.metrics.seconds(),
                          memory.evictedToDiskBytes +
                              memory.spilledBytes});
    }
    table.print(std::cout);
    printMonotonicityVerdict(points);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::benchFlag(argc, argv, "--smoke");
    const int jobs = bench::benchJobs(argc, argv);
    const std::vector<double> ratios =
        smoke ? std::vector<double>{0.5, 2.0}
              : std::vector<double>{0.5, 0.75, 1.0, 1.5, 2.0, 3.0};
    lrStorageSweep(ratios, smoke, jobs);
    terasortExecutionSweep(ratios, smoke, jobs);
    return 0;
}
