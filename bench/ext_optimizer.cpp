/**
 * @file
 * Extension bench: the pruned constrained-search optimizer and the
 * service's cold-query coalescing (DESIGN.md §16).
 *
 * Part 1 — constrained search, pruned vs exhaustive. A GATK4-style
 * model is fitted once, then a set of deadline/budget constraints
 * spanning infeasible -> tight -> loose is answered on the Fig. 13
 * grid (pd-standard HDFS, {pd-standard, pd-ssd} local, 13-point size
 * axis) and the Fig. 15 grid (pd-ssd local only). Every constraint is
 * solved twice on fresh optimizers — branch-and-bound and the
 * exhaustive reference — and the bench FAILS (non-zero exit) unless
 * the argmin, cost and runtime are byte-identical, pruning touches at
 * most a third of the aggregate grid, and (full mode) the pruned
 * search is at least 2x faster in wall clock. Cells touched is
 * deterministic; wall seconds are the only non-deterministic numbers
 * in the record, so CI gates the deterministic keys and merely tracks
 * the wall keys.
 *
 * Part 2 — cold-query coalescing in the planning service. A burst of
 * same-profile, distinct-constraint cold queries hits one worker with
 * batching off (batchMax 1) and on (batchMax 8). Both runs use the
 * deterministic virtual-time transport, so the queries/s numbers are
 * exact and reproducible; the bench fails unless every query's answer
 * (config, cost, runtime) is identical across the two runs and the
 * batched run has strictly higher cold throughput.
 *
 * Flags: --smoke shrinks the constraint set and burst for CI, --json
 * FILE writes the BENCH_optimizer.json record, --jobs is accepted for
 * interface parity (the searches here are deliberately single-site).
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/gcp_disk.h"
#include "cloud/optimizer.h"
#include "common/table_printer.h"
#include "model/profiler.h"
#include "service/server.h"
#include "workloads/gatk4.h"

using namespace doppio;

namespace {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

struct Result
{
    std::string name;
    std::string unit; //!< "queries/s", "cells", "s" or "x"
    double value = 0.0;
    double seconds = 0.0; //!< wall or virtual duration of the source
};

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count();
}

/** Fit the GATK4 model the same way `doppio optimize` does. */
model::AppModel
fitGatk4()
{
    const workloads::Gatk4 gatk4;
    cluster::ClusterConfig config;
    config.numSlaves = 10;
    config.node.cores = 16;
    config.node.hdfsDisk = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 1000 * kGB);
    config.node.localDisk = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 2000 * kGB);
    model::Profiler::Options options;
    options.fitGc = true;
    options.highCores = 16;
    options.ssd = cloud::makeCloudDiskParams(cloud::CloudDiskType::Ssd,
                                             500 * kGB);
    options.hdd = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 500 * kGB);
    model::Profiler profiler(gatk4.runner(), config, spark::SparkConf{},
                             options);
    return profiler.fit("GATK4");
}

/** The two figure grids the constrained searches sweep. */
std::vector<std::pair<std::string, cloud::CostOptimizer::Options>>
figureGrids(bool smoke)
{
    cloud::CostOptimizer::Options fig13; // defaults: hdd + ssd local
    cloud::CostOptimizer::Options fig15;
    fig15.localTypes = {cloud::CloudDiskType::Ssd};
    if (smoke) {
        // Half-resolution size axis for CI: same shape, fewer cells.
        std::vector<Bytes> grid;
        const std::vector<Bytes> full =
            cloud::CostOptimizer::defaultSizeGrid();
        for (std::size_t i = 0; i < full.size(); i += 2)
            grid.push_back(full[i]);
        fig13.sizeGrid = grid;
        fig15.sizeGrid = grid;
    }
    return {{"fig13", fig13}, {"fig15", fig15}};
}

/**
 * Constraints spanning the interesting range, derived from the grid's
 * own extremes so they stay meaningful if the model drifts. The probe
 * runs two exhaustive sweeps, which also warms its table cache — the
 * timed runs copy it so they measure evaluation, not table building.
 */
std::vector<cloud::Constraint>
constraintSet(const cloud::CostOptimizer &probe, bool smoke)
{
    const double minRuntime =
        probe.optimizeExhaustive(cloud::Constraint::fastestUnderBudget(1e9))
            .best.seconds;
    const double minCost =
        probe.optimizeExhaustive(cloud::Constraint::minCost()).best.cost;
    std::vector<cloud::Constraint> out;
    const std::vector<double> deadlineFactors =
        smoke ? std::vector<double>{1.0, 1.5}
              : std::vector<double>{0.9, 1.0, 1.1, 1.5, 3.0};
    const std::vector<double> budgetFactors =
        smoke ? std::vector<double>{1.1}
              : std::vector<double>{0.9, 1.1, 2.0};
    for (const double f : deadlineFactors)
        out.push_back(
            cloud::Constraint::cheapestUnderDeadline(minRuntime * f));
    for (const double f : budgetFactors)
        out.push_back(cloud::Constraint::fastestUnderBudget(minCost * f));
    return out;
}

int
constrainedScenario(const model::AppModel &app, bool smoke,
                    std::vector<Result> &results)
{
    int violations = 0;
    std::uint64_t cellsTotal = 0;
    std::uint64_t cellsTouched = 0;
    double bnbWall = 0.0;
    double exhWall = 0.0;

    TablePrinter table("constrained search: branch-and-bound vs "
                       "exhaustive (warm tables, cold memo per run)");
    table.setHeader({"grid", "constraints", "cells", "touched",
                     "bnb (s)", "exhaustive (s)"});
    for (const auto &[grid, options] : figureGrids(smoke)) {
        const cloud::CostOptimizer probe(app, cloud::GcpPricing{},
                                         options);
        const std::vector<cloud::Constraint> constraints =
            constraintSet(probe, smoke);
        std::uint64_t gridTotal = 0;
        std::uint64_t gridTouched = 0;
        double gridBnb = 0.0;
        double gridExh = 0.0;
        // A single warm-table search is microseconds; repeat it on a
        // fresh copy each round so the timed region is long enough to
        // measure. The copies happen outside the timers.
        const int repeats = smoke ? 40 : 200;
        for (const cloud::Constraint &constraint : constraints) {
            // Copies of the warm probe: warm table cache, cold memo —
            // the steady-state cost of a first-of-its-kind constrained
            // query on a warm service, with the two search strategies
            // as the only difference.
            cloud::ConstrainedResult fast;
            cloud::ConstrainedResult reference;
            for (int rep = 0; rep < repeats; ++rep) {
                const cloud::CostOptimizer pruned(probe);
                auto start = std::chrono::steady_clock::now();
                fast = pruned.optimizeConstrained(constraint);
                gridBnb += wallSeconds(start);

                const cloud::CostOptimizer full(probe);
                start = std::chrono::steady_clock::now();
                reference = full.optimizeExhaustive(constraint);
                gridExh += wallSeconds(start);
            }

            // Byte-identity of the argmin is the contract CI diffs.
            if (fast.feasible != reference.feasible) {
                std::cerr << "VIOLATION: feasibility mismatch\n";
                ++violations;
            } else if (fast.feasible &&
                       (fast.best.config.describe() !=
                            reference.best.config.describe() ||
                        fast.best.seconds != reference.best.seconds ||
                        fast.best.cost != reference.best.cost)) {
                std::cerr << "VIOLATION: pruned argmin differs: "
                          << fast.best.config.describe() << " vs "
                          << reference.best.config.describe() << "\n";
                ++violations;
            }
            if (fast.stats.exhaustiveFallbacks != 0) {
                std::cerr << "VIOLATION: unexpected exhaustive "
                             "fallback on a monotone surface\n";
                ++violations;
            }
            gridTotal += fast.stats.cellsTotal;
            gridTouched +=
                fast.stats.cellsTotal - fast.stats.cellsPruned;
        }
        table.addRow({grid, std::to_string(constraints.size()),
                      std::to_string(gridTotal),
                      std::to_string(gridTouched),
                      TablePrinter::num(gridBnb, 2),
                      TablePrinter::num(gridExh, 2)});
        cellsTotal += gridTotal;
        cellsTouched += gridTouched;
        bnbWall += gridBnb;
        exhWall += gridExh;
    }
    table.print(std::cout);

    const double cellsSpeedup = cellsTouched
                                    ? static_cast<double>(cellsTotal) /
                                          static_cast<double>(cellsTouched)
                                    : 0.0;
    const double wallSpeedup = bnbWall > 0.0 ? exhWall / bnbWall : 0.0;
    std::cout << "cells: " << cellsTouched << " touched of "
              << cellsTotal << " (" << TablePrinter::num(cellsSpeedup, 2)
              << "x), wall: " << TablePrinter::num(bnbWall, 2)
              << "s vs " << TablePrinter::num(exhWall, 2) << "s ("
              << TablePrinter::num(wallSpeedup, 2) << "x)\n";

    if (cellsSpeedup < 3.0) {
        std::cerr << "VIOLATION: pruning touched more than a third of "
                     "the grid ("
                  << cellsTouched << "/" << cellsTotal << ")\n";
        ++violations;
    }
    // Wall clock is only asserted in full mode: the committed record
    // documents the >= 2x bar; smoke runs on loaded CI runners where a
    // hard wall assert would flake.
    if (!smoke && wallSpeedup < 2.0) {
        std::cerr << "VIOLATION: constrained search wall speedup "
                  << wallSpeedup << "x < 2x\n";
        ++violations;
    }

    results.push_back({"cells_touched", "cells",
                       static_cast<double>(cellsTouched), bnbWall});
    results.push_back({"cells_total", "cells",
                       static_cast<double>(cellsTotal), exhWall});
    results.push_back({"cells_speedup", "x", cellsSpeedup, 0.0});
    results.push_back({"bnb_wall_s", "s", bnbWall, bnbWall});
    results.push_back({"exhaustive_wall_s", "s", exhWall, exhWall});
    results.push_back({"wall_speedup", "x", wallSpeedup, 0.0});
    return violations;
}

/** Cold same-profile burst: distinct deadlines, one worker. */
service::Script
coldBurstScript(int queries)
{
    service::Script script;
    for (int i = 0; i < queries; ++i) {
        std::ostringstream os;
        // Distinct deadline -> distinct cache key -> no dedup; same
        // workload + fleet -> one shared profile. Generous timeout so
        // even the last query of the unbatched run answers in full.
        os << "{\"id\":\"q" << i
           << "\",\"workload\":\"lr-small\",\"deadline_s\":"
           << 90000 + i << ",\"timeout_ms\":600000,\"at_ms\":" << i
           << "}";
        script.push_back(os.str());
    }
    return script;
}

/** Virtual seconds from first arrival to last plan response. */
double
virtualMakespanSec(const service::PlanningService &svc)
{
    double last = 0.0;
    for (const service::Response &r : svc.responseLog())
        last = std::max(last, r.tMs);
    return last / 1000.0;
}

int
coldThroughputScenario(bool smoke, std::vector<Result> &results)
{
    int violations = 0;
    const int queries = smoke ? 6 : 16;

    service::ServiceConfig base;
    base.planner.seed = 7;
    base.workers = 1;
    base.queueCapacity = 64;
    service::ServiceConfig off = base;
    off.batchMax = 1;

    service::PlanningService batched(base);
    service::PlanningService sequential(off);
    const service::Script script = coldBurstScript(queries);
    batched.runScript(script);
    sequential.runScript(script);

    double qpsBatch = 0.0;
    double qpsSolo = 0.0;
    for (const auto *run :
         {&batched, &sequential}) {
        const service::ServiceStats stats = run->stats();
        if (stats.ok != static_cast<std::uint64_t>(queries)) {
            std::cerr << "VIOLATION: " << stats.ok << "/" << queries
                      << " cold queries answered ok\n";
            ++violations;
        }
    }
    qpsBatch = queries / virtualMakespanSec(batched);
    qpsSolo = queries / virtualMakespanSec(sequential);

    // Same answers either way — coalescing must not change the plan.
    for (int i = 0; i < queries; ++i) {
        std::string id = "q";
        id += std::to_string(i);
        const service::Response *a = nullptr;
        const service::Response *b = nullptr;
        for (const service::Response &r : batched.responseLog())
            if (r.id == id)
                a = &r;
        for (const service::Response &r : sequential.responseLog())
            if (r.id == id)
                b = &r;
        if (a == nullptr || b == nullptr ||
            a->config != b->config || a->costUsd != b->costUsd ||
            a->runtimeSec != b->runtimeSec) {
            std::cerr << "VIOLATION: batched answer differs for " << id
                      << "\n";
            ++violations;
        }
    }
    if (qpsBatch <= qpsSolo) {
        std::cerr << "VIOLATION: batching did not raise cold "
                     "throughput ("
                  << qpsBatch << " <= " << qpsSolo << " queries/s)\n";
        ++violations;
    }
    const service::ServiceStats stats = batched.stats();

    TablePrinter table("cold-query coalescing (virtual time, one "
                       "worker)");
    table.setHeader({"mode", "queries", "queries/s", "batches",
                     "memo hits"});
    table.addRow({"batchMax=1", std::to_string(queries),
                  TablePrinter::num(qpsSolo, 3), "0",
                  std::to_string(sequential.stats().cellsMemoHit)});
    table.addRow({"batchMax=8", std::to_string(queries),
                  TablePrinter::num(qpsBatch, 3),
                  std::to_string(stats.batches),
                  std::to_string(stats.cellsMemoHit)});
    table.print(std::cout);
    std::cout << "cold throughput: " << TablePrinter::num(qpsSolo, 3)
              << " -> " << TablePrinter::num(qpsBatch, 3)
              << " queries/s ("
              << TablePrinter::num(qpsBatch / qpsSolo, 2) << "x)\n";

    results.push_back({"cold_qps_nobatch", "queries/s", qpsSolo,
                       virtualMakespanSec(sequential)});
    results.push_back({"cold_qps_batch", "queries/s", qpsBatch,
                       virtualMakespanSec(batched)});
    results.push_back(
        {"cold_batch_speedup", "x", qpsBatch / qpsSolo, 0.0});
    return violations;
}

void
writeJson(const std::string &path, const std::vector<Result> &results,
          bool smoke, int jobs)
{
    std::ofstream os(path);
    os.precision(6);
    os << "{\"bench\":\"optimizer\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"jobs\":" << jobs
       << ",\"results\":[";
    bool first = true;
    for (const Result &r : results) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << r.name << "\",\"unit\":\"" << r.unit
           << "\",\"value\":" << r.value
           << ",\"seconds\":" << r.seconds << "}";
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::benchFlag(argc, argv, "--smoke");
    const int jobs = bench::benchJobs(argc, argv);
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[i + 1];
    }

    const model::AppModel app = fitGatk4();

    std::vector<Result> results;
    int violations = constrainedScenario(app, smoke, results);
    std::cout << "\n";
    violations += coldThroughputScenario(smoke, results);

    TablePrinter table(std::string("optimizer record (") +
                       (smoke ? "smoke" : "full") + ")");
    table.setHeader({"name", "value", "unit"});
    for (const Result &r : results)
        table.addRow({r.name, TablePrinter::num(r.value, 3), r.unit});
    std::cout << "\n";
    table.print(std::cout);

    if (!json_path.empty()) {
        writeJson(json_path, results, smoke, jobs);
        std::cout << "wrote " << json_path << "\n";
    }
    if (violations > 0) {
        std::cout << violations << " invariant violation(s)\n";
        return 1;
    }
    return 0;
}
