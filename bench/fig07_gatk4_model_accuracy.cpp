/**
 * @file
 * Reproduces Fig. 7: measured vs model-predicted runtime for GATK4's
 * MD/BR/SF stages on the ten-slave evaluation cluster, P in
 * {6, 12, 24}, under the four Table III disk configurations.
 *
 * Paper claim to check: average error < 6-10%.
 */

#include <iostream>

#include "bench_util.h"
#include "workloads/gatk4.h"

using namespace doppio;

int
main()
{
    const workloads::Gatk4 gatk4;
    const cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    const model::AppModel app = bench::fitModel(gatk4, base);

    std::vector<bench::ExpModelRow> rows;
    TablePrinter table(
        "Fig. 7: GATK4 exp vs model (minutes), 10 slaves");
    table.setHeader({"config", "P", "stage", "exp", "model", "error"});
    SummaryStats error;

    for (const auto &hybrid : {cluster::HybridConfig::config1(),
                               cluster::HybridConfig::config2(),
                               cluster::HybridConfig::config3(),
                               cluster::HybridConfig::config4()}) {
        cluster::ClusterConfig config = base;
        config.applyHybrid(hybrid);
        const model::PlatformProfile platform =
            bench::platformFor(config);
        for (int cores : {6, 12, 24}) {
            spark::SparkConf conf;
            conf.executorCores = cores;
            const spark::AppMetrics metrics = gatk4.run(config, conf);
            for (const auto *stage : metrics.allStages()) {
                const double exp_s = stage->seconds();
                const double model_s =
                    model::predictStage(app.stage(stage->name), 10,
                                        cores, platform)
                        .seconds;
                const double err = relativeError(model_s, exp_s);
                error.add(err);
                table.addRow({hybrid.name(), std::to_string(cores),
                              stage->name,
                              TablePrinter::num(exp_s / 60.0, 1),
                              TablePrinter::num(model_s / 60.0, 1),
                              TablePrinter::percent(err)});
            }
        }
    }
    table.print(std::cout);
    std::cout << "average error: " << TablePrinter::percent(error.mean())
              << "  (paper: < 6%)\n";
    return 0;
}
