/**
 * @file
 * Tracked performance harness for the simulator hot paths
 * (DESIGN.md §11). Unlike the figure benches, nothing here checks
 * accuracy — every scenario is already covered by golden-output tests
 * elsewhere — this binary only answers "how fast", in numbers stable
 * enough to diff across commits with tools/bench_diff.py:
 *
 *   - event_throughput: self-rescheduling handler chains through the
 *     pooled event queue (events/s).
 *   - fluidpipe_churn_{10,100,5000}: a pipe kept at a constant number
 *     of concurrent flows, each completion starting a replacement, so
 *     every completion pays one progressive-filling rebalance
 *     (flows/s).
 *   - terasort_e2e: full Terasort on the 3-slave bench cluster, wall
 *     seconds.
 *   - optimizer_grid_jobs{1,N}: the CLI `optimize` search over the
 *     default grid at one thread and at --jobs N, wall seconds (the
 *     outputs are byte-identical; only the clock may differ).
 *
 * Flags: --smoke shrinks every scenario to CI size, --json FILE
 * writes the machine-readable BENCH_perf_core.json record, --jobs N
 * sets the parallel leg of the optimizer scenario (0 = one thread
 * per hardware core).
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "cloud_util.h"
#include "sim/fluid_pipe.h"
#include "sim/simulator.h"
#include "workloads/terasort.h"

using namespace doppio;
using bench::kGB;

namespace {

/** One measured scenario. */
struct Result
{
    std::string name;
    std::string unit;  //!< "events/s", "flows/s" or "s"
    double value = 0.0;
    double seconds = 0.0; //!< wall clock of the measured region
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Event throughput: @p chains self-rescheduling handlers racing
 * through the queue until @p total events have fired. Exercises the
 * slot pool, the heap and the FIFO tie-break with a live queue depth
 * of @p chains. Two production patterns are baked in: callbacks
 * carry a payload the size of a typical engine completion (a couple
 * of pointers plus counters — larger than std::function's
 * small-buffer), and every firing supersedes a pending timeout
 * (cancel + re-post — exactly what FluidPipe does with its
 * completion event on every membership change), so cancellation cost
 * is measured too.
 */
Result
eventThroughput(std::uint64_t total, int chains)
{
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::uint64_t checksum = 0;
    sim::EventId timeout = 0;
    bool timeout_pending = false;
    struct Payload
    {
        std::uint64_t a, b, c, d;
    };
    std::function<void(Payload)> handler = [&](Payload p) {
        checksum += p.a ^ p.d;
        if (timeout_pending)
            sim.cancel(timeout);
        timeout = sim.schedule(1000, [&] { timeout_pending = false; });
        timeout_pending = true;
        if (++fired + sim.pendingEvents() < total) {
            const Payload next{fired, p.b + 1, p.c, fired * 31};
            sim.schedule(1 + fired % 7, [&, next] { handler(next); });
        }
    };
    const double start = now();
    for (int i = 0; i < chains; ++i) {
        const Payload seedp{static_cast<std::uint64_t>(i), 0, 7, 13};
        sim.schedule(1 + i, [&, seedp] { handler(seedp); });
    }
    sim.run();
    const double elapsed = now() - start;
    if (checksum == 42)
        std::cout << ""; // defeat dead-code elimination
    return {"event_throughput", "events/s",
            static_cast<double>(sim.firedEvents()) / elapsed, elapsed};
}

/**
 * FluidPipe churn: hold @p concurrent flows open on one pipe; every
 * completion immediately starts a replacement until @p total flows
 * have finished. Sizes are staggered so completions interleave and
 * each one triggers a full progressive-filling rebalance at depth
 * @p concurrent. Most flows carry a rate cap below the fair share —
 * the production pattern (every network flow is capped at the
 * sender's NIC rate, batched disk requests at the solo device rate),
 * and the case where rebalancing cost actually matters.
 */
Result
fluidPipeChurn(int concurrent, std::uint64_t total)
{
    sim::Simulator sim;
    const double capacity = 1e9;
    sim::FluidPipe pipe(sim, capacity, "bench");
    // Fair share at full depth; caps sit below it so capped flows
    // release bandwidth every rebalance round.
    const double fair = capacity / concurrent;
    std::uint64_t done = 0;
    std::uint64_t started = 0;
    std::function<void()> completion;
    auto launch = [&] {
        // Stagger sizes (1..2 MB) so completion ticks interleave.
        const Bytes bytes = 1000 * 1000 + (started % 97) * 10000;
        const double cap = (started % 4 == 3)
                               ? std::numeric_limits<double>::infinity()
                               : fair * (0.3 + 0.1 * (started % 5));
        ++started;
        pipe.startFlow(bytes, completion, cap);
    };
    completion = [&] {
        ++done;
        if (started < total)
            launch();
    };
    const double start = now();
    for (int i = 0; i < concurrent; ++i)
        launch();
    sim.run();
    const double elapsed = now() - start;
    return {"fluidpipe_churn_" + std::to_string(concurrent), "flows/s",
            static_cast<double>(done) / elapsed, elapsed};
}

/**
 * End-to-end Terasort: the paper's 930 GiB sort on the 10-slave
 * evaluation cluster (fig12 setup), repeated so the mean is stable
 * against timer noise. Reports mean wall seconds per run.
 */
Result
terasortEndToEnd(bool smoke)
{
    const workloads::Terasort workload;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    spark::SparkConf conf;
    conf.executorCores = 36;
    const int reps = smoke ? 1 : 5;
    const double start = now();
    for (int i = 0; i < reps; ++i) {
        const spark::AppMetrics metrics = workload.run(config, conf);
        (void)metrics;
    }
    const double elapsed = now() - start;
    return {"terasort_e2e", "s", elapsed / reps, elapsed};
}

/** The CLI `optimize` grid search at a given thread count. */
Result
optimizerGrid(const model::AppModel &app, bool smoke, int jobs,
              const std::string &label)
{
    cloud::CostOptimizer::Options options;
    options.workers = 3;
    options.jobs = jobs;
    if (smoke) {
        options.localTypes = {cloud::CloudDiskType::Standard};
        options.sizeGrid = {100 * kGB, 400 * kGB, 1600 * kGB};
    }
    // Fresh optimizer per leg: the fio-table cache must be cold so
    // both legs time the same work.
    const cloud::CostOptimizer optimizer(app, cloud::GcpPricing{},
                                         options);
    const double start = now();
    const cloud::Evaluation best = optimizer.optimize();
    const double elapsed = now() - start;
    (void)best;
    return {label, "s", elapsed, elapsed};
}

void
writeJson(const std::string &path, const std::vector<Result> &results,
          bool smoke, int jobs)
{
    std::ofstream os(path);
    os.precision(6);
    os << "{\"bench\":\"perf_core\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"jobs\":" << jobs
       << ",\"results\":[";
    bool first = true;
    for (const Result &r : results) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << r.name << "\",\"unit\":\"" << r.unit
           << "\",\"value\":" << r.value << ",\"seconds\":"
           << r.seconds << "}";
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::benchFlag(argc, argv, "--smoke");
    const int jobs_arg = bench::benchJobs(argc, argv);
    const int jobs = jobs_arg > 0
                         ? jobs_arg
                         : common::SweepRunner::hardwareJobs();
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[i + 1];
    }

    std::vector<Result> results;
    results.push_back(
        eventThroughput(smoke ? 200'000 : 2'000'000, 64));
    results.push_back(fluidPipeChurn(10, smoke ? 5'000 : 50'000));
    results.push_back(fluidPipeChurn(100, smoke ? 5'000 : 50'000));
    results.push_back(fluidPipeChurn(5000, smoke ? 6'000 : 15'000));
    results.push_back(terasortEndToEnd(smoke));

    // Fit once; both optimizer legs share the model but not the
    // fio-table cache.
    const workloads::Gatk4 gatk4;
    const model::AppModel app = bench::fitCloudGatk4(gatk4);
    results.push_back(
        optimizerGrid(app, smoke, 1, "optimizer_grid_jobs1"));
    results.push_back(optimizerGrid(app, smoke, jobs,
                                    "optimizer_grid_jobs" +
                                        std::to_string(jobs)));

    TablePrinter table(std::string("perf_core (") +
                       (smoke ? "smoke" : "full") + ", parallel leg @ " +
                       std::to_string(jobs) + " jobs)");
    table.setHeader({"scenario", "value", "unit", "wall (s)"});
    for (const Result &r : results) {
        table.addRow({r.name,
                      TablePrinter::num(r.value, r.unit == "s" ? 3 : 0),
                      r.unit, TablePrinter::num(r.seconds, 3)});
    }
    table.print(std::cout);

    if (!json_path.empty()) {
        writeJson(json_path, results, smoke, jobs);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
