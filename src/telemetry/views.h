/**
 * @file
 * Registry-backed views of the existing subsystem statistics.
 *
 * The simulator's JSON output is produced from per-subsystem stats
 * structs (DiskStats, PageCacheStats, FaultMetrics, MemoryMetrics,
 * StreamingMetrics, TenancySummary, ...). These functions publish the
 * *same* structs into a telemetry Registry, so the Prometheus
 * exposition and the JSON blocks are two views of one source of truth
 * — byte-identity of the JSON goldens holds trivially with telemetry
 * on or off.
 *
 * attachCluster() is the exception: it installs real push hooks
 * (device completion observers) because per-request latency
 * distributions do not exist in any stats struct. The hooks observe
 * only — they never schedule events — so an attached registry cannot
 * perturb the simulation.
 */

#ifndef DOPPIO_TELEMETRY_VIEWS_H
#define DOPPIO_TELEMETRY_VIEWS_H

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "sched/job_scheduler.h"
#include "spark/metrics.h"
#include "telemetry/registry.h"

namespace doppio::telemetry {

/**
 * Install per-request latency/size histogram hooks on every disk of
 * every node of @p cluster:
 * doppio_disk_request_duration_seconds{role,op} and
 * doppio_disk_request_bytes{role,op}, aggregated over nodes and
 * devices. @p registry must outlive the cluster's I/O activity.
 */
void attachCluster(Registry &registry, cluster::Cluster &cluster);

/**
 * Publish end-of-run cluster state: per-op device request/byte
 * totals, device busy seconds, page-cache counters (when modeled)
 * and network fabric totals.
 */
void publishCluster(Registry &registry,
                    const cluster::Cluster &cluster);

/** Publish HDFS durability/recovery counters. */
void publishHdfs(Registry &registry, const dfs::Hdfs &hdfs);

/**
 * Publish application metrics: per-op logical I/O totals over all
 * stages, stage/job counts and duration, and — when the run carried
 * them — the fault, unified-memory and streaming blocks.
 */
void publishAppMetrics(Registry &registry,
                       const spark::AppMetrics &metrics);

/** Publish the multi-tenant scheduler's pool/tenant summary. */
void publishTenancy(Registry &registry,
                    const sched::TenancySummary &tenancy);

} // namespace doppio::telemetry

#endif // DOPPIO_TELEMETRY_VIEWS_H
