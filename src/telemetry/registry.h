/**
 * @file
 * Unified telemetry registry (DESIGN.md §15).
 *
 * One process-wide measurement plane for the simulator and the
 * planning service: named counters, gauges and log-linear histograms,
 * each series identified by a metric name plus a sorted label set.
 * Instruments are created on first use and returned by reference, so
 * hot paths pay one pointer write per sample; a subsystem that was
 * never attached to a registry pays a single null-pointer check, the
 * same zero-cost-when-detached discipline as the src/trace/ hooks.
 *
 * Everything is deterministic: series iterate in (name, labels) order,
 * histogram buckets are pure functions of the sample value, and all
 * numbers are formatted with fixed printf formats — two identical runs
 * produce byte-identical Prometheus expositions.
 */

#ifndef DOPPIO_TELEMETRY_REGISTRY_H
#define DOPPIO_TELEMETRY_REGISTRY_H

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace doppio::telemetry {

/** Label set of one series: key/value pairs, sorted by key. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Point-in-time measurement (queue depth, pool bytes, state). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    void add(double delta) { value_ += delta; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Log-linear histogram: each power-of-two range of the value axis is
 * split into @p subBuckets linear sub-buckets (HdrHistogram's scheme),
 * so bucket boundaries grow geometrically while relative resolution
 * stays constant. Memory is O(occupied buckets), independent of the
 * sample count, and quantile() extraction is deterministic with
 * relative error bounded by 1/subBuckets (3.125% at the default 32):
 * the reported quantile is the containing bucket's upper bound clamped
 * into [min, max], so single-sample and constant-valued histograms
 * report their exact value.
 */
class Histogram
{
  public:
    /**
     * @param least      smallest distinguishable value; anything in
     *                   [0, least] lands in bucket 0.
     * @param subBuckets linear sub-buckets per power of two (>= 1).
     */
    explicit Histogram(double least = 1e-9, int subBuckets = 32);

    /** Record one sample (negative values clamp to 0). */
    void observe(double value);

    /** Record @p n identical samples in O(1). */
    void observeMany(double value, std::uint64_t n);

    /**
     * Fold @p other's samples into this histogram at bucket
     * resolution. Both must share least/subBuckets (panic otherwise).
     */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    /** @return smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** @return sample mean (0 when empty). */
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Nearest-rank quantile at bucket resolution. Defined on every
     * input: empty histograms return 0, a single sample returns that
     * sample exactly for any q, and q outside [0, 1] clamps. The
     * result always lies in [min(), max()] and overestimates the true
     * quantile by at most a factor of (1 + 1/subBuckets).
     */
    double quantile(double q) const;

    /** One occupied bucket, for exposition. */
    struct Bucket
    {
        double upperBound = 0.0;
        std::uint64_t count = 0; //!< samples in this bucket alone
    };

    /** @return occupied buckets in ascending bound order. */
    std::vector<Bucket> buckets() const;

  private:
    int bucketIndex(double value) const;
    double bucketUpperBound(int index) const;

    double least_;
    int subBuckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    /// Sparse bucket index -> sample count (deterministic iteration).
    std::map<int, std::uint64_t> counts_;
};

/**
 * The metric registry. Families (one metric name) have a fixed type
 * and help string; series (name + labels) hold one instrument each.
 * Lookups are idempotent: asking for an existing series returns the
 * same instrument, asking with a conflicting type fatal()s.
 */
class Registry
{
  public:
    /** Get or create a counter series. */
    Counter &counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});

    /** Get or create a gauge series. */
    Gauge &gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});

    /** Get or create a histogram series. */
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         const Labels &labels = {},
                         double least = 1e-9, int subBuckets = 32);

    /** @return number of registered series across all families. */
    std::size_t seriesCount() const { return series_.size(); }

    /** @return number of metric families. */
    std::size_t familyCount() const { return families_.size(); }

    /**
     * Find an existing series; @return nullptr when absent (or a
     * different type). For tests and registry-backed JSON views.
     */
    const Counter *findCounter(const std::string &name,
                               const Labels &labels = {}) const;
    const Gauge *findGauge(const std::string &name,
                           const Labels &labels = {}) const;
    const Histogram *findHistogram(const std::string &name,
                                   const Labels &labels = {}) const;

    /**
     * Write the whole registry in Prometheus text exposition format
     * 0.0.4: families in name order, series in label order, one
     * # HELP / # TYPE pair per family, histograms as cumulative
     * _bucket{le=...} series plus _sum and _count. Byte-identical
     * across runs for identical samples.
     */
    void writePrometheus(std::ostream &os) const;

    /** @return writePrometheus() as a string. */
    std::string prometheusText() const;

  private:
    enum class Type { Counter, Gauge, Histogram };

    struct Series
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Family
    {
        Type type = Type::Counter;
        std::string help;
    };

    Series &lookup(const std::string &name, const std::string &help,
                   const Labels &labels, Type type);

    const Series *find(const std::string &name, const Labels &labels,
                       Type type) const;

    /// Family name -> type/help.
    std::map<std::string, Family> families_;
    /// (family name, serialized labels) -> instrument.
    std::map<std::pair<std::string, std::string>, Series> series_;
};

/**
 * Serialize @p labels as a canonical `key="value",...` fragment
 * (sorted by key, values escaped). fatal()s on invalid label names or
 * duplicate keys.
 */
std::string serializeLabels(const Labels &labels);

} // namespace doppio::telemetry

#endif // DOPPIO_TELEMETRY_REGISTRY_H
