/**
 * @file
 * Flight recorder: bounded rings of recent trace events, dumped as a
 * postmortem when something goes wrong (DESIGN.md §15).
 *
 * The recorder sits behind the existing trace hooks: a TraceCollector
 * with a recorder attached forwards every event it is handed into a
 * per-category ring buffer (category = the event's static "cat"
 * string: "disk", "cache", "net", "task", "fault", ...), keeping only
 * the most recent N per subsystem. Unlike the collector's unbounded
 * event vector, memory is O(categories x capacity) regardless of run
 * length, so the recorder can stay attached to long runs — including
 * the chaos harness — for the whole flight.
 *
 * Dump triggers (the callers wire these):
 *   - the chaos harness trips an invariant (chaos::checkInvariants);
 *   - the planning service's circuit breaker opens;
 *   - the run panic()s (via doppio::setPanicHook).
 * A clean run dumps nothing and writes no file.
 */

#ifndef DOPPIO_TELEMETRY_FLIGHT_RECORDER_H
#define DOPPIO_TELEMETRY_FLIGHT_RECORDER_H

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>

#include "trace/trace_collector.h"

namespace doppio::telemetry {

/** Bounded per-subsystem ring buffer of trace events. */
class FlightRecorder : public trace::TraceEventSink
{
  public:
    /** @param capacity most-recent events kept per category (>= 1). */
    explicit FlightRecorder(std::size_t capacity = 256);

    /** Append @p event to its category's ring (oldest drops first). */
    void record(const trace::TraceEvent &event);

    /** TraceEventSink: forward the collector's stream into record(). */
    void
    onTraceEvent(const trace::TraceEvent &event) override
    {
        record(event);
    }

    /** Record a free-form annotation (ring category "note"). */
    void note(std::string text, Tick tick = 0);

    /** @return events currently held across all rings. */
    std::size_t size() const;

    /** @return events dropped from full rings so far. */
    std::uint64_t dropped() const { return dropped_; }

    /** @return total events ever recorded. */
    std::uint64_t recorded() const { return recorded_; }

    /** Clear all rings and counters. */
    void clear();

    /**
     * Write the postmortem: a `# doppio flight recorder` header with
     * @p reason, then each category's ring (category-name order,
     * oldest first) as one line per event. Deterministic for
     * identical recorded streams.
     */
    void dump(std::ostream &os, const std::string &reason) const;

    /**
     * dump() to @p path (overwrites). @return false when the file
     * cannot be opened (the caller is already on a failure path, so
     * this never throws).
     */
    bool dumpToFile(const std::string &path,
                    const std::string &reason) const;

  private:
    std::size_t capacity_;
    /// Category -> ring, oldest first. Keys are the static category
    /// strings interned by the emitters, copied on first use.
    std::map<std::string, std::deque<trace::TraceEvent>> rings_;
    std::uint64_t dropped_ = 0;
    std::uint64_t recorded_ = 0;
};

} // namespace doppio::telemetry

#endif // DOPPIO_TELEMETRY_FLIGHT_RECORDER_H
