#include "telemetry/views.h"

#include "common/sim_time.h"
#include "oscache/page_cache.h"
#include "storage/disk_stats.h"
#include "storage/io_request.h"

namespace doppio::telemetry {

namespace {

constexpr const char *kRoleHdfs = "hdfs";
constexpr const char *kRoleLocal = "local";

/** Install the completion observer on one device. */
void
hookDevice(Registry &registry, storage::DiskDevice &device,
           const char *role)
{
    device.setCompletionObserver(
        [&registry, role](storage::IoOp op, Bytes size,
                          std::uint64_t count, Tick duration) {
            const Labels labels = {{"role", role},
                                   {"op", storage::ioOpName(op)}};
            // A batch is one synchronous client's back-to-back loop:
            // attribute the mean per-request duration to each request
            // so the histogram keeps per-request semantics.
            const double perRequest =
                ticksToSeconds(duration) /
                static_cast<double>(count);
            registry
                .histogram("doppio_disk_request_duration_seconds",
                           "Disk request submission-to-completion "
                           "latency",
                           labels, 1e-6)
                .observeMany(perRequest, count);
            registry
                .histogram("doppio_disk_request_bytes",
                           "Disk request size", labels, 1.0)
                .observeMany(static_cast<double>(size), count);
        });
}

} // namespace

void
attachCluster(Registry &registry, cluster::Cluster &cluster)
{
    for (int n = 0; n < cluster.numSlaves(); ++n) {
        cluster::Node &node = cluster.node(n);
        for (int d = 0; d < node.hdfsDiskCount(); ++d)
            hookDevice(registry, node.hdfsDisk(d), kRoleHdfs);
        for (int d = 0; d < node.localDiskCount(); ++d)
            hookDevice(registry, node.localDisk(d), kRoleLocal);
    }
}

void
publishCluster(Registry &registry, const cluster::Cluster &cluster)
{
    // Per-op request/byte totals and busy time, summed over the
    // fleet's devices by role.
    struct RoleTotals
    {
        std::uint64_t requests[storage::kNumIoOps] = {};
        Bytes bytes[storage::kNumIoOps] = {};
        double readBusySec = 0.0;
        double writeBusySec = 0.0;
    };
    RoleTotals totals[2];

    auto fold = [](RoleTotals &t, const storage::DiskDevice &device) {
        for (std::size_t i = 0; i < storage::kNumIoOps; ++i) {
            const storage::OpStats &op =
                device.stats().forOp(storage::kAllIoOps[i]);
            t.requests[i] += op.requests;
            t.bytes[i] += op.bytes;
        }
        t.readBusySec += ticksToSeconds(device.readBusyTime());
        t.writeBusySec += ticksToSeconds(device.writeBusyTime());
    };
    for (int n = 0; n < cluster.numSlaves(); ++n) {
        const cluster::Node &node = cluster.node(n);
        for (int d = 0; d < node.hdfsDiskCount(); ++d)
            fold(totals[0], node.hdfsDisk(d));
        for (int d = 0; d < node.localDiskCount(); ++d)
            fold(totals[1], node.localDisk(d));
    }

    const char *roles[2] = {kRoleHdfs, kRoleLocal};
    for (int r = 0; r < 2; ++r) {
        for (std::size_t i = 0; i < storage::kNumIoOps; ++i) {
            if (totals[r].requests[i] == 0)
                continue;
            const Labels labels = {
                {"role", roles[r]},
                {"op", storage::ioOpName(storage::kAllIoOps[i])}};
            registry
                .counter("doppio_disk_requests_total",
                         "Completed device requests", labels)
                .inc(totals[r].requests[i]);
            registry
                .counter("doppio_disk_bytes_total",
                         "Bytes moved at the device", labels)
                .inc(totals[r].bytes[i]);
        }
        const Labels roleLabel = {{"role", roles[r]}};
        registry
            .gauge("doppio_disk_read_busy_seconds",
                   "Ticks a read transfer was active, fleet sum",
                   roleLabel)
            .set(totals[r].readBusySec);
        registry
            .gauge("doppio_disk_write_busy_seconds",
                   "Ticks a write transfer was active, fleet sum",
                   roleLabel)
            .set(totals[r].writeBusySec);
    }

    // Page cache (zero series when the model is off).
    if (cluster.pageCacheEnabled()) {
        const oscache::PageCacheStats pc = cluster.pageCacheTotals();
        auto pcCounter = [&registry](const char *name,
                                     const char *help,
                                     std::uint64_t value) {
            registry.counter(name, help).inc(value);
        };
        pcCounter("doppio_pagecache_reads_total", "read() calls",
                  pc.reads);
        pcCounter("doppio_pagecache_read_full_hits_total",
                  "Reads served entirely from memory",
                  pc.readFullHits);
        pcCounter("doppio_pagecache_writes_total", "write() calls",
                  pc.writes);
        pcCounter("doppio_pagecache_throttled_writes_total",
                  "Writes that blocked on the dirty limit",
                  pc.throttledWrites);
        pcCounter("doppio_pagecache_flush_requests_total",
                  "Device requests issued by the flusher",
                  pc.flushRequests);
        pcCounter("doppio_pagecache_hit_bytes_total",
                  "Read bytes served from cache", pc.hitBytes);
        pcCounter("doppio_pagecache_miss_bytes_total",
                  "Read bytes fetched from the device", pc.missBytes);
        pcCounter("doppio_pagecache_absorbed_bytes_total",
                  "Write bytes accepted at memory speed",
                  pc.absorbedBytes);
        pcCounter("doppio_pagecache_flushed_bytes_total",
                  "Dirty bytes drained to the device",
                  pc.flushedBytes);
        pcCounter("doppio_pagecache_evicted_bytes_total",
                  "Clean bytes dropped by LRU eviction",
                  pc.evictedBytes);
        registry
            .gauge("doppio_pagecache_hit_ratio",
                   "Hit fraction of logical read bytes")
            .set(pc.hitRatio());
    }

    // Network fabric.
    registry
        .counter("doppio_network_remote_bytes_total",
                 "Bytes delivered over the fabric (remote only)")
        .inc(cluster.network().remoteBytes());
    registry
        .counter("doppio_network_partition_timeouts_total",
                 "Backoff rounds spent against a partition")
        .inc(static_cast<std::uint64_t>(
            cluster.network().partitionTimeouts()));
    registry
        .gauge("doppio_cluster_nodes_alive",
               "Nodes currently up")
        .set(static_cast<double>(cluster.aliveCount()));
}

void
publishHdfs(Registry &registry, const dfs::Hdfs &hdfs)
{
    registry
        .counter("doppio_hdfs_physical_bytes_written_total",
                 "Replica bytes written through the pipeline")
        .inc(hdfs.physicalBytesWritten());
    registry
        .counter("doppio_hdfs_read_failovers_total",
                 "Reads served by a remote replica after a failure")
        .inc(hdfs.readFailovers());
    registry
        .counter("doppio_hdfs_corrupt_reads_total",
                 "Reads failing checksum verification")
        .inc(hdfs.corruptReads());
    registry
        .counter("doppio_hdfs_quarantined_bytes_total",
                 "Corrupt replica bytes repaired")
        .inc(hdfs.quarantinedBytes());
    registry
        .counter("doppio_hdfs_rereplicated_bytes_total",
                 "Re-replication traffic after node loss")
        .inc(hdfs.reReplicatedBytes());
    registry
        .gauge("doppio_hdfs_rereplication_seconds",
               "Wall-clock spent re-replicating")
        .set(hdfs.reReplicationSeconds());
}

void
publishAppMetrics(Registry &registry, const spark::AppMetrics &metrics)
{
    registry
        .gauge("doppio_app_duration_seconds",
               "Application wall-clock (sum of job durations)")
        .set(metrics.seconds());
    registry
        .counter("doppio_app_jobs_total", "Jobs (actions) executed")
        .inc(metrics.jobs.size());

    std::uint64_t stages = 0;
    std::uint64_t tasks = 0;
    std::uint64_t requests[storage::kNumIoOps] = {};
    Bytes bytes[storage::kNumIoOps] = {};
    double phaseSeconds[storage::kNumIoOps] = {};
    for (const spark::StageMetrics *stage : metrics.allStages()) {
        ++stages;
        tasks += static_cast<std::uint64_t>(stage->numTasks);
        for (std::size_t i = 0; i < storage::kNumIoOps; ++i) {
            const spark::StageIoStats &io =
                stage->forOp(storage::kAllIoOps[i]);
            requests[i] += io.requests;
            bytes[i] += io.bytes;
            phaseSeconds[i] += io.phaseSeconds.sum();
        }
    }
    registry
        .counter("doppio_app_stages_total", "Stages executed")
        .inc(stages);
    registry
        .counter("doppio_app_tasks_total", "Tasks executed")
        .inc(tasks);
    for (std::size_t i = 0; i < storage::kNumIoOps; ++i) {
        if (requests[i] == 0)
            continue;
        const Labels labels = {
            {"op", storage::ioOpName(storage::kAllIoOps[i])}};
        registry
            .counter("doppio_app_io_requests_total",
                     "Logical I/O requests issued by tasks", labels)
            .inc(requests[i]);
        registry
            .counter("doppio_app_io_bytes_total",
                     "Logical bytes issued by tasks", labels)
            .inc(bytes[i]);
        registry
            .gauge("doppio_app_io_phase_seconds",
                   "Summed task phase wall-clock per op", labels)
            .set(phaseSeconds[i]);
    }

    if (metrics.faultsPresent) {
        const spark::FaultMetrics &f = metrics.faults;
        auto c = [&registry](const char *name, const char *help,
                             std::uint64_t value) {
            registry.counter(name, help).inc(value);
        };
        c("doppio_faults_task_attempts_total",
          "Task attempts launched (incl. clean)", f.taskAttempts);
        c("doppio_faults_task_failures_total",
          "Task attempts that crashed", f.taskFailures);
        c("doppio_faults_task_retries_total",
          "Failed tasks re-queued", f.taskRetries);
        c("doppio_faults_lost_attempts_total",
          "Attempts killed by node loss", f.lostAttempts);
        c("doppio_faults_fetch_failures_total",
          "Shuffle fetches that failed", f.fetchFailures);
        c("doppio_faults_stage_reattempts_total",
          "Stages rerun after fetch loss", f.stageReattempts);
        c("doppio_faults_hdfs_failovers_total",
          "Reads served by a remote replica", f.hdfsFailovers);
        c("doppio_faults_corrupt_reads_total",
          "Reads failing checksum verify", f.corruptReads);
        c("doppio_faults_partition_timeouts_total",
          "Backoff rounds against a partition", f.partitionTimeouts);
        registry
            .gauge("doppio_faults_wasted_task_seconds",
                   "Work discarded by crashes/kills")
            .set(f.wastedTaskSeconds);
        registry
            .gauge("doppio_faults_recovery_seconds",
                   "Wall-clock of recovery reruns")
            .set(f.recoverySeconds);
    }

    if (metrics.memoryPresent) {
        const spark::MemoryMetrics &m = metrics.memory;
        registry
            .gauge("doppio_memory_pool_bytes",
                   "Configured unified pool, summed over nodes")
            .set(static_cast<double>(m.poolBytes));
        registry
            .gauge("doppio_memory_peak_storage_bytes",
                   "Sum of per-node storage peaks")
            .set(static_cast<double>(m.peakStorageBytes));
        registry
            .gauge("doppio_memory_peak_execution_bytes",
                   "Sum of per-node execution peaks")
            .set(static_cast<double>(m.peakExecutionBytes));
        registry
            .counter("doppio_memory_evicted_blocks_total",
                     "Cached blocks evicted")
            .inc(m.evictedBlocks);
        registry
            .counter("doppio_memory_spills_total",
                     "Task phases that spilled")
            .inc(m.spills);
        registry
            .counter("doppio_memory_spilled_bytes_total",
                     "Reservation shortfall sent to disk")
            .inc(m.spilledBytes);
        registry
            .counter("doppio_memory_oom_kills_total",
                     "Attempts killed by a failed minimum reservation")
            .inc(m.oomKills);
        registry
            .counter("doppio_memory_recomputed_partitions_total",
                     "Lineage recomputations after block drops")
            .inc(m.recomputedPartitions);
    }

    if (metrics.streamingPresent) {
        const spark::StreamingMetrics &s = metrics.streaming;
        registry
            .counter("doppio_streaming_arrivals_total",
                     "Batches that arrived")
            .inc(s.arrivals);
        registry
            .counter("doppio_streaming_processed_total",
                     "Batches that completed")
            .inc(s.processed);
        registry
            .counter("doppio_streaming_dropped_total",
                     "Arrivals shed by backpressure")
            .inc(s.dropped);
        registry
            .counter("doppio_streaming_slo_violations_total",
                     "Processed batches over SLO")
            .inc(s.sloViolations);
        registry
            .gauge("doppio_streaming_p99_latency_seconds",
                   "p99 end-to-end batch latency")
            .set(s.p99LatencySec);
        registry
            .gauge("doppio_streaming_peak_backlog",
                   "Max batches queued or running")
            .set(static_cast<double>(s.peakBacklog));
        registry
            .counter("doppio_streaming_checkpoints_total",
                     "Checkpoint jobs completed")
            .inc(s.checkpoints);
        registry
            .counter("doppio_streaming_recoveries_total",
                     "Post-failure recovery jobs")
            .inc(s.recoveries);
    }
}

void
publishTenancy(Registry &registry,
               const sched::TenancySummary &tenancy)
{
    for (const sched::PoolSummary &pool : tenancy.pools) {
        registry
            .gauge("doppio_sched_pool_core_seconds",
                   "Integral of occupied cores over time per pool",
                   {{"pool", pool.name}})
            .set(pool.coreSeconds);
    }
    for (const sched::TenantSummary &tenant : tenancy.tenants) {
        const Labels labels = {{"tenant", tenant.name}};
        registry
            .counter("doppio_sched_tenant_jobs_total",
                     "Completed jobs per tenant", labels)
            .inc(static_cast<std::uint64_t>(tenant.jobs));
        registry
            .gauge("doppio_sched_tenant_core_seconds",
                   "Occupied core-seconds per tenant", labels)
            .set(tenant.coreSeconds);
        registry
            .gauge("doppio_sched_tenant_makespan_seconds",
                   "First submission to last completion", labels)
            .set(tenant.doneSec - tenant.submitSec);
    }
}

} // namespace doppio::telemetry
