/**
 * @file
 * Online I/O-bottleneck detector (DESIGN.md §15).
 *
 * Streams the per-stage phase attribution (trace::PhaseBreakdown, the
 * Fig. 6 decomposition) as stages complete and keeps an exponential
 * moving average of each phase's share of stage wall-clock. When a
 * single I/O category's smoothed share crosses the dominance
 * threshold, the detector emits a structured alert — "shuffle
 * dominated", "read dominated", "spill dominated", ... — which is the
 * measurement half of the guarded auto-tuner roadmap item: optimize
 * only what the detector says is actually the bottleneck.
 *
 * For streaming tenants it additionally tracks SLO burn rate: the EMA
 * of the fraction of batches whose latency exceeds the SLO target. A
 * burn rate above the configured threshold raises an "SLO burn" alert.
 *
 * The detector is a pure consumer: it never schedules simulator
 * events, so attaching it cannot perturb a run.
 */

#ifndef DOPPIO_TELEMETRY_BOTTLENECK_H
#define DOPPIO_TELEMETRY_BOTTLENECK_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/phase_report.h"

namespace doppio::telemetry {

class Registry;

/** One structured alert emitted by the detector. */
struct BottleneckAlert
{
    enum class Kind {
        ReadDominated,    //!< device/HDFS read share over threshold
        ShuffleDominated, //!< shuffle read+write share over threshold
        WriteDominated,   //!< device/HDFS write share over threshold
        SpillDominated,   //!< external-sort spill share over threshold
        IdleDominated,    //!< cores mostly idle (stragglers/skew)
        SloBurn,          //!< streaming batches missing their SLO
    };

    Kind kind = Kind::ReadDominated;
    std::string stage;  //!< stage that tripped it (empty for SloBurn)
    double share = 0.0; //!< smoothed share / burn rate at the trip
    double threshold = 0.0;

    /** @return stable identifier ("shuffle-dominated", "slo-burn"). */
    const char *kindName() const;

    /** One-line human rendering for logs and the CLI. */
    std::string toString() const;
};

/** Per-stage smoothed phase shares (fractions of wall-clock). */
struct StageShares
{
    double compute = 0.0;
    double read = 0.0;
    double shuffle = 0.0;
    double write = 0.0;
    double spill = 0.0;
    double recovery = 0.0;
    double overhead = 0.0;
    double idle = 0.0;
    std::uint64_t observations = 0;
};

/**
 * Streaming consumer of phase attribution and batch latencies.
 * Deterministic: alerts depend only on the observation sequence.
 */
class BottleneckDetector
{
  public:
    struct Config
    {
        /** EMA weight of the newest observation, in (0, 1]. 1.0
         *  reproduces the last observation exactly; lower values
         *  smooth across recurrences of the same stage. */
        double emaAlpha = 0.5;
        /** Smoothed I/O-category share of wall-clock above which a
         *  dominance alert fires. */
        double dominanceThreshold = 0.4;
        /** Smoothed SLO-miss fraction above which SloBurn fires. */
        double burnThreshold = 0.25;
        /** Re-alert only when a stage's dominant category changes
         *  (true) or on every dominated observation (false). */
        bool alertOnChangeOnly = true;
    };

    BottleneckDetector();
    explicit BottleneckDetector(Config config);

    /**
     * Feed one completed stage window's attribution (stages of the
     * same name — recurring streaming stages — fold into one EMA
     * keyed by stage name). @return alerts raised by this
     * observation, possibly empty.
     */
    std::vector<BottleneckAlert>
    observeStage(const trace::PhaseBreakdown &breakdown);

    /**
     * Feed one streaming batch: latency @p latencySec against target
     * @p sloSec. @return alerts (at most one SloBurn).
     */
    std::vector<BottleneckAlert> observeBatch(double latencySec,
                                              double sloSec);

    /** @return smoothed shares per stage name (name-sorted). */
    const std::map<std::string, StageShares> &stageShares() const
    {
        return shares_;
    }

    /** @return smoothed SLO-miss fraction (0 before any batch). */
    double burnRate() const { return burnRate_; }

    /** @return every alert raised so far, in emission order. */
    const std::vector<BottleneckAlert> &alerts() const
    {
        return alerts_;
    }

    /**
     * Publish detector state into @p registry:
     * doppio_bottleneck_alerts_total{kind=...},
     * doppio_bottleneck_stage_share{stage=...,phase=...} and
     * doppio_streaming_slo_burn_rate.
     */
    void publish(Registry &registry) const;

  private:
    void updateEma(double &ema, double sample,
                   std::uint64_t observations) const;

    Config config_;
    std::map<std::string, StageShares> shares_;
    /// Last alerted dominant kind per stage (alertOnChangeOnly).
    std::map<std::string, BottleneckAlert::Kind> lastKind_;
    double burnRate_ = 0.0;
    std::uint64_t batches_ = 0;
    bool burnAlerted_ = false;
    std::vector<BottleneckAlert> alerts_;
};

} // namespace doppio::telemetry

#endif // DOPPIO_TELEMETRY_BOTTLENECK_H
