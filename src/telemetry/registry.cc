#include "telemetry/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace doppio::telemetry {

namespace {

/** Prometheus metric / label name: [a-zA-Z_:][a-zA-Z0-9_:]*. */
bool
validName(const std::string &name, bool allowColon)
{
    if (name.empty())
        return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        const bool alpha = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') || c == '_' ||
                           (allowColon && c == ':');
        const bool digit = c >= '0' && c <= '9';
        if (!(alpha || (i > 0 && digit)))
            return false;
    }
    return true;
}

/** Escape a label value per the exposition format. */
std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

/** Deterministic double formatting shared by every exposition line. */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string
serializeLabels(const Labels &labels)
{
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (!validName(sorted[i].first, false))
            fatal("telemetry: invalid label name '%s'",
                  sorted[i].first.c_str());
        if (i > 0 && sorted[i].first == sorted[i - 1].first)
            fatal("telemetry: duplicate label '%s'",
                  sorted[i].first.c_str());
        if (!out.empty())
            out += ',';
        out += sorted[i].first;
        out += "=\"";
        out += escapeLabelValue(sorted[i].second);
        out += '"';
    }
    return out;
}

// ----------------------------------------------------------------------
// Histogram

Histogram::Histogram(double least, int subBuckets)
    : least_(least), subBuckets_(subBuckets)
{
    if (!(least > 0.0))
        panic("Histogram: least must be positive (got %g)", least);
    if (subBuckets < 1)
        panic("Histogram: subBuckets must be >= 1 (got %d)",
              subBuckets);
}

int
Histogram::bucketIndex(double value) const
{
    if (!(value > least_))
        return 0;
    // frexp: value/least = m * 2^e with m in [0.5, 1).
    int exp2 = 0;
    const double mantissa = std::frexp(value / least_, &exp2);
    // Rewrite as r * 2^(e-1) with r = 2*m in [1, 2).
    const int e = exp2 - 1;
    const double ratio = mantissa * 2.0;
    int sub = static_cast<int>((ratio - 1.0) *
                               static_cast<double>(subBuckets_));
    sub = std::min(sub, subBuckets_ - 1);
    return 1 + e * subBuckets_ + sub;
}

double
Histogram::bucketUpperBound(int index) const
{
    if (index <= 0)
        return least_;
    const int e = (index - 1) / subBuckets_;
    const int sub = (index - 1) % subBuckets_;
    return least_ * std::ldexp(1.0, e) *
           (1.0 + static_cast<double>(sub + 1) /
                      static_cast<double>(subBuckets_));
}

void
Histogram::observe(double value)
{
    observeMany(value, 1);
}

void
Histogram::observeMany(double value, std::uint64_t n)
{
    if (n == 0)
        return;
    if (value < 0.0)
        value = 0.0;
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    count_ += n;
    sum_ += value * static_cast<double>(n);
    counts_[bucketIndex(value)] += n;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.least_ != least_ || other.subBuckets_ != subBuckets_)
        panic("Histogram::merge: incompatible layouts "
              "(least %g/%g, subBuckets %d/%d)",
              least_, other.least_, subBuckets_, other.subBuckets_);
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (const auto &[index, bucketCount] : other.counts_)
        counts_[index] += bucketCount;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t cumulative = 0;
    for (const auto &[index, bucketCount] : counts_) {
        cumulative += bucketCount;
        if (cumulative >= rank) {
            const double bound = bucketUpperBound(index);
            return std::min(max_, std::max(min_, bound));
        }
    }
    return max_; // unreachable: rank <= count_
}

std::vector<Histogram::Bucket>
Histogram::buckets() const
{
    std::vector<Bucket> out;
    out.reserve(counts_.size());
    for (const auto &[index, bucketCount] : counts_)
        out.push_back(Bucket{bucketUpperBound(index), bucketCount});
    return out;
}

// ----------------------------------------------------------------------
// Registry

Registry::Series &
Registry::lookup(const std::string &name, const std::string &help,
                 const Labels &labels, Type type)
{
    if (!validName(name, true))
        fatal("telemetry: invalid metric name '%s'", name.c_str());
    const auto fit = families_.find(name);
    if (fit == families_.end()) {
        families_.emplace(name, Family{type, help});
    } else if (fit->second.type != type) {
        fatal("telemetry: metric '%s' re-registered with a different "
              "type",
              name.c_str());
    }
    return series_[{name, serializeLabels(labels)}];
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  const Labels &labels)
{
    Series &series = lookup(name, help, labels, Type::Counter);
    if (!series.counter)
        series.counter = std::make_unique<Counter>();
    return *series.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const Labels &labels)
{
    Series &series = lookup(name, help, labels, Type::Gauge);
    if (!series.gauge)
        series.gauge = std::make_unique<Gauge>();
    return *series.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    const Labels &labels, double least, int subBuckets)
{
    Series &series = lookup(name, help, labels, Type::Histogram);
    if (!series.histogram)
        series.histogram =
            std::make_unique<Histogram>(least, subBuckets);
    return *series.histogram;
}

const Registry::Series *
Registry::find(const std::string &name, const Labels &labels,
               Type type) const
{
    const auto fit = families_.find(name);
    if (fit == families_.end() || fit->second.type != type)
        return nullptr;
    const auto sit = series_.find({name, serializeLabels(labels)});
    return sit == series_.end() ? nullptr : &sit->second;
}

const Counter *
Registry::findCounter(const std::string &name,
                      const Labels &labels) const
{
    const Series *series = find(name, labels, Type::Counter);
    return series ? series->counter.get() : nullptr;
}

const Gauge *
Registry::findGauge(const std::string &name, const Labels &labels) const
{
    const Series *series = find(name, labels, Type::Gauge);
    return series ? series->gauge.get() : nullptr;
}

const Histogram *
Registry::findHistogram(const std::string &name,
                        const Labels &labels) const
{
    const Series *series = find(name, labels, Type::Histogram);
    return series ? series->histogram.get() : nullptr;
}

void
Registry::writePrometheus(std::ostream &os) const
{
    // series_ iterates in (name, labels) order; families_ is a
    // name-ordered map, so walking series_ visits whole families
    // contiguously and the HELP/TYPE header can be emitted on the
    // first series of each family.
    std::string current;
    for (const auto &[key, series] : series_) {
        const auto &[name, labels] = key;
        const Family &family = families_.at(name);
        if (name != current) {
            current = name;
            os << "# HELP " << name << ' ' << family.help << '\n';
            os << "# TYPE " << name << ' ';
            switch (family.type) {
            case Type::Counter: os << "counter"; break;
            case Type::Gauge: os << "gauge"; break;
            case Type::Histogram: os << "histogram"; break;
            }
            os << '\n';
        }
        const std::string brace =
            labels.empty() ? "" : "{" + labels + "}";
        switch (family.type) {
        case Type::Counter:
            os << name << brace << ' ' << series.counter->value()
               << '\n';
            break;
        case Type::Gauge:
            os << name << brace << ' ' << num(series.gauge->value())
               << '\n';
            break;
        case Type::Histogram: {
            const Histogram &h = *series.histogram;
            // Cumulative buckets; 'le' joins the user labels.
            std::uint64_t cumulative = 0;
            for (const Histogram::Bucket &bucket : h.buckets()) {
                cumulative += bucket.count;
                os << name << "_bucket{";
                if (!labels.empty())
                    os << labels << ',';
                os << "le=\"" << num(bucket.upperBound) << "\"} "
                   << cumulative << '\n';
            }
            os << name << "_bucket{";
            if (!labels.empty())
                os << labels << ',';
            os << "le=\"+Inf\"} " << h.count() << '\n';
            os << name << "_sum" << brace << ' ' << num(h.sum())
               << '\n';
            os << name << "_count" << brace << ' ' << h.count()
               << '\n';
            break;
        }
        }
    }
}

std::string
Registry::prometheusText() const
{
    std::ostringstream os;
    writePrometheus(os);
    return os.str();
}

} // namespace doppio::telemetry
