#include "telemetry/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace doppio::telemetry {

namespace {

/** Ticks (ns) as microseconds with 3 decimals, integer arithmetic. */
std::string
ticksAsUs(Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", t / 1000,
                  static_cast<unsigned>(t % 1000));
    return buf;
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

void
FlightRecorder::record(const trace::TraceEvent &event)
{
    auto &ring = rings_[event.cat];
    if (ring.size() == capacity_) {
        ring.pop_front();
        ++dropped_;
    }
    ring.push_back(event);
    ++recorded_;
}

void
FlightRecorder::note(std::string text, Tick tick)
{
    trace::TraceEvent event;
    event.type = trace::TraceEvent::Type::Instant;
    event.cat = "note";
    event.name = std::move(text);
    event.start = tick;
    event.end = tick;
    record(event);
}

std::size_t
FlightRecorder::size() const
{
    std::size_t total = 0;
    for (const auto &[cat, ring] : rings_)
        total += ring.size();
    return total;
}

void
FlightRecorder::clear()
{
    rings_.clear();
    dropped_ = 0;
    recorded_ = 0;
}

void
FlightRecorder::dump(std::ostream &os, const std::string &reason) const
{
    os << "# doppio flight recorder\n";
    os << "# reason: " << reason << '\n';
    os << "# recorded: " << recorded_ << " dropped: " << dropped_
       << " retained: " << size() << '\n';
    for (const auto &[cat, ring] : rings_) {
        os << "## " << cat << " (" << ring.size() << " events)\n";
        for (const trace::TraceEvent &event : ring) {
            os << ticksAsUs(event.start) << "us ";
            switch (event.type) {
            case trace::TraceEvent::Type::Span:
                os << "span " << event.name << " dur="
                   << ticksAsUs(event.end - event.start) << "us";
                break;
            case trace::TraceEvent::Type::Instant:
                os << "instant " << event.name;
                break;
            case trace::TraceEvent::Type::Counter:
                os << "counter " << event.name << " value="
                   << num(event.value);
                break;
            }
            os << " pid=" << event.pid << " tid=" << event.tid;
            if (!event.args.empty())
                os << " args={" << event.args << '}';
            os << '\n';
        }
    }
}

bool
FlightRecorder::dumpToFile(const std::string &path,
                           const std::string &reason) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    dump(os, reason);
    return os.good();
}

} // namespace doppio::telemetry
