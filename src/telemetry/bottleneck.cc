#include "telemetry/bottleneck.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "telemetry/registry.h"

namespace doppio::telemetry {

const char *
BottleneckAlert::kindName() const
{
    switch (kind) {
    case Kind::ReadDominated: return "read-dominated";
    case Kind::ShuffleDominated: return "shuffle-dominated";
    case Kind::WriteDominated: return "write-dominated";
    case Kind::SpillDominated: return "spill-dominated";
    case Kind::IdleDominated: return "idle-dominated";
    case Kind::SloBurn: return "slo-burn";
    }
    return "unknown";
}

std::string
BottleneckAlert::toString() const
{
    char buf[160];
    if (kind == Kind::SloBurn) {
        std::snprintf(buf, sizeof(buf),
                      "[bottleneck] slo-burn: batch SLO miss rate "
                      "%.1f%% exceeds %.1f%%",
                      share * 100.0, threshold * 100.0);
    } else {
        std::snprintf(buf, sizeof(buf),
                      "[bottleneck] %s: stage '%s' spends %.1f%% of "
                      "wall-clock there (threshold %.1f%%)",
                      kindName(), stage.c_str(), share * 100.0,
                      threshold * 100.0);
    }
    return buf;
}

BottleneckDetector::BottleneckDetector()
    : BottleneckDetector(Config())
{
}

BottleneckDetector::BottleneckDetector(Config config)
    : config_(config)
{
    if (!(config_.emaAlpha > 0.0) || config_.emaAlpha > 1.0)
        fatal("BottleneckDetector: emaAlpha must be in (0, 1] "
              "(got %g)",
              config_.emaAlpha);
}

void
BottleneckDetector::updateEma(double &ema, double sample,
                              std::uint64_t observations) const
{
    // The first observation seeds the EMA exactly, so a stage seen
    // once reports precisely what the offline PhaseReport attributes
    // to it — the reconciliation property the tests assert.
    if (observations == 0)
        ema = sample;
    else
        ema += config_.emaAlpha * (sample - ema);
}

std::vector<BottleneckAlert>
BottleneckDetector::observeStage(const trace::PhaseBreakdown &breakdown)
{
    std::vector<BottleneckAlert> raised;
    const double wall = breakdown.wall();
    if (!(wall > 0.0))
        return raised;

    StageShares &s = shares_[breakdown.stage];
    updateEma(s.compute, breakdown.compute / wall, s.observations);
    updateEma(s.read, breakdown.read / wall, s.observations);
    updateEma(s.shuffle, breakdown.shuffle / wall, s.observations);
    updateEma(s.write, breakdown.write / wall, s.observations);
    updateEma(s.spill, breakdown.spill / wall, s.observations);
    updateEma(s.recovery, breakdown.recovery / wall, s.observations);
    updateEma(s.overhead, breakdown.overhead / wall, s.observations);
    updateEma(s.idle, breakdown.idle / wall, s.observations);
    ++s.observations;

    // Dominance check over the I/O (and idle) categories; compute
    // dominating is the healthy case and never alerts.
    struct Candidate
    {
        BottleneckAlert::Kind kind;
        double share;
    };
    const Candidate candidates[] = {
        {BottleneckAlert::Kind::ReadDominated, s.read},
        {BottleneckAlert::Kind::ShuffleDominated, s.shuffle},
        {BottleneckAlert::Kind::WriteDominated, s.write},
        {BottleneckAlert::Kind::SpillDominated, s.spill},
        {BottleneckAlert::Kind::IdleDominated, s.idle},
    };
    const Candidate *dominant = nullptr;
    for (const Candidate &c : candidates) {
        if (c.share >= config_.dominanceThreshold &&
            (!dominant || c.share > dominant->share)) {
            dominant = &c;
        }
    }

    const auto last = lastKind_.find(breakdown.stage);
    if (!dominant) {
        // Back under threshold: a future re-domination re-alerts.
        if (last != lastKind_.end())
            lastKind_.erase(last);
        return raised;
    }
    if (config_.alertOnChangeOnly && last != lastKind_.end() &&
        last->second == dominant->kind) {
        return raised;
    }
    lastKind_[breakdown.stage] = dominant->kind;

    BottleneckAlert alert;
    alert.kind = dominant->kind;
    alert.stage = breakdown.stage;
    alert.share = dominant->share;
    alert.threshold = config_.dominanceThreshold;
    alerts_.push_back(alert);
    raised.push_back(alert);
    return raised;
}

std::vector<BottleneckAlert>
BottleneckDetector::observeBatch(double latencySec, double sloSec)
{
    std::vector<BottleneckAlert> raised;
    const double miss = latencySec > sloSec ? 1.0 : 0.0;
    updateEma(burnRate_, miss, batches_);
    ++batches_;

    if (burnRate_ >= config_.burnThreshold) {
        if (!burnAlerted_) {
            burnAlerted_ = true;
            BottleneckAlert alert;
            alert.kind = BottleneckAlert::Kind::SloBurn;
            alert.share = burnRate_;
            alert.threshold = config_.burnThreshold;
            alerts_.push_back(alert);
            raised.push_back(alert);
        }
    } else {
        burnAlerted_ = false; // recovered; next burn re-alerts
    }
    return raised;
}

void
BottleneckDetector::publish(Registry &registry) const
{
    static const char *kindNames[] = {
        "read-dominated", "shuffle-dominated", "write-dominated",
        "spill-dominated", "idle-dominated",   "slo-burn",
    };
    std::map<std::string, std::uint64_t> byKind;
    for (const char *name : kindNames)
        byKind[name] = 0;
    for (const BottleneckAlert &alert : alerts_)
        ++byKind[alert.kindName()];
    for (const auto &[kind, count] : byKind) {
        registry
            .counter("doppio_bottleneck_alerts_total",
                     "Structured bottleneck alerts by kind",
                     {{"kind", kind}})
            .inc(count);
    }

    for (const auto &[stage, s] : shares_) {
        const std::pair<const char *, double> phases[] = {
            {"compute", s.compute}, {"read", s.read},
            {"shuffle", s.shuffle}, {"write", s.write},
            {"spill", s.spill},     {"recovery", s.recovery},
            {"overhead", s.overhead}, {"idle", s.idle},
        };
        for (const auto &[phase, share] : phases) {
            registry
                .gauge("doppio_bottleneck_stage_share",
                       "Smoothed share of stage wall-clock per phase",
                       {{"stage", stage}, {"phase", phase}})
                .set(share);
        }
    }

    registry
        .gauge("doppio_streaming_slo_burn_rate",
               "Smoothed fraction of streaming batches missing SLO")
        .set(burnRate_);
}

} // namespace doppio::telemetry
