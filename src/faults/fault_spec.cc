#include "faults/fault_spec.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace doppio::faults {

const char *
nodeEventKindName(NodeEvent::Kind kind)
{
    switch (kind) {
      case NodeEvent::Kind::Kill:
        return "kill";
      case NodeEvent::Kind::Rejoin:
        return "rejoin";
      case NodeEvent::Kind::Degrade:
        return "degrade";
      case NodeEvent::Kind::DegradeMem:
        return "degrade-mem";
      case NodeEvent::Kind::SlowNode:
        return "slow-node";
      case NodeEvent::Kind::Partition:
        return "partition";
      case NodeEvent::Kind::Heal:
        return "heal";
    }
    return "?";
}

FaultSchedule::FaultSchedule(std::vector<NodeEvent> events)
    : events_(std::move(events))
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const NodeEvent &a, const NodeEvent &b) {
                         return a.atSeconds < b.atSeconds;
                     });
}

void
FaultSchedule::add(NodeEvent event)
{
    auto it = std::upper_bound(
        events_.begin(), events_.end(), event,
        [](const NodeEvent &a, const NodeEvent &b) {
            return a.atSeconds < b.atSeconds;
        });
    events_.insert(it, event);
}

bool
FaultSpec::any() const
{
    return taskFailureRate > 0.0 || diskReadErrorRate > 0.0 ||
           hdfsCorruptRate > 0.0 || shuffleFetchFailureRate > 0.0 ||
           !schedule.empty();
}

namespace {

/**
 * "FaultSpec file:12: " when the event carries its declaration site,
 * "FaultSpec: " for programmatically built events.
 */
std::string
eventWhere(const NodeEvent &event)
{
    if (event.declLine <= 0)
        return "FaultSpec:";
    return "FaultSpec " + event.declSource + ":" +
           std::to_string(event.declLine) + ":";
}

} // namespace

void
FaultSpec::validate() const
{
    auto check_rate = [](double rate, const char *name) {
        if (rate < 0.0 || rate >= 1.0)
            fatal("FaultSpec: %s must be in [0, 1), got %g", name, rate);
    };
    check_rate(taskFailureRate, "task-fail-rate");
    check_rate(diskReadErrorRate, "disk-error-rate");
    check_rate(hdfsCorruptRate, "corrupt-rate");
    check_rate(shuffleFetchFailureRate, "fetch-fail-rate");
    for (const NodeEvent &event : schedule.events()) {
        const std::string where = eventWhere(event);
        if (event.kind != NodeEvent::Kind::Partition &&
            event.kind != NodeEvent::Kind::Heal && event.node < 0)
            fatal("%s negative node id %d in %s event", where.c_str(),
                  event.node, nodeEventKindName(event.kind));
        if (event.atSeconds < 0.0)
            fatal("%s negative time %g in %s event", where.c_str(),
                  event.atSeconds, nodeEventKindName(event.kind));
        if (event.kind == NodeEvent::Kind::Degrade && event.factor < 1.0)
            fatal("%s degrade factor must be >= 1, got %g",
                  where.c_str(), event.factor);
        if (event.kind == NodeEvent::Kind::SlowNode &&
            event.factor < 1.0)
            fatal("%s slow-node factor must be >= 1, got %g",
                  where.c_str(), event.factor);
        if (event.kind == NodeEvent::Kind::DegradeMem &&
            (event.factor <= 0.0 || event.factor > 1.0))
            fatal("%s degrade-mem fraction must be in (0, 1], got %g",
                  where.c_str(), event.factor);
        if (event.kind == NodeEvent::Kind::Partition) {
            if (event.groupA.empty() || event.groupB.empty())
                fatal("%s partition needs nodes on both sides",
                      where.c_str());
            for (int a : event.groupA) {
                if (a < 0)
                    fatal("%s negative node id %d in partition",
                          where.c_str(), a);
                if (std::find(event.groupB.begin(), event.groupB.end(),
                              a) != event.groupB.end())
                    fatal("%s node %d on both sides of the partition",
                          where.c_str(), a);
            }
            for (int b : event.groupB) {
                if (b < 0)
                    fatal("%s negative node id %d in partition",
                          where.c_str(), b);
            }
        }
    }
    // Cross-event sanity in time order (the schedule is kept sorted):
    //  - two kills of one node at one time are a spec typo;
    //  - a rejoin of a node that is not down at that point would be a
    //    silent no-op, so it is rejected (usually a wrong node id);
    //  - a heal with no partition in effect likewise.
    const auto &events = schedule.events();
    std::vector<int> down;
    bool partitioned = false;
    for (const NodeEvent &event : events) {
        const std::string where = eventWhere(event);
        switch (event.kind) {
          case NodeEvent::Kind::Kill: {
            for (const NodeEvent &other : events) {
                if (&other != &event &&
                    other.kind == NodeEvent::Kind::Kill &&
                    other.node == event.node &&
                    other.atSeconds == event.atSeconds) {
                    fatal("%s duplicate kill of node %d at t=%g",
                          where.c_str(), event.node, event.atSeconds);
                }
            }
            if (std::find(down.begin(), down.end(), event.node) ==
                down.end())
                down.push_back(event.node);
            break;
          }
          case NodeEvent::Kind::Rejoin: {
            auto it = std::find(down.begin(), down.end(), event.node);
            if (it == down.end())
                fatal("%s rejoin of node %d at t=%g, but it was never "
                      "killed before that",
                      where.c_str(), event.node, event.atSeconds);
            down.erase(it);
            break;
          }
          case NodeEvent::Kind::Partition:
            partitioned = true;
            break;
          case NodeEvent::Kind::Heal:
            if (!partitioned)
                fatal("%s heal at t=%g, but no partition is in effect",
                      where.c_str(), event.atSeconds);
            partitioned = false;
            break;
          default:
            break;
        }
    }
}

namespace {

double
parseDouble(const std::string &token, const std::string &source,
            int line)
{
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0')
        fatal("FaultSpec %s:%d: expected a number, got '%s'",
              source.c_str(), line, token.c_str());
    return value;
}

/** Split "id@t" into a node event skeleton. */
NodeEvent
parseNodeAt(const std::string &token, NodeEvent::Kind kind,
            const std::string &source, int line)
{
    const std::size_t at = token.find('@');
    if (at == std::string::npos)
        fatal("FaultSpec %s:%d: expected <node>@<seconds>, got '%s'",
              source.c_str(), line, token.c_str());
    NodeEvent event;
    event.kind = kind;
    event.node = static_cast<int>(
        parseDouble(token.substr(0, at), source, line));
    event.atSeconds = parseDouble(token.substr(at + 1), source, line);
    event.declSource = source;
    event.declLine = line;
    return event;
}

/** Split a comma-separated node list ("0,1,3"). */
std::vector<int>
parseNodeList(const std::string &token, const std::string &source,
              int line)
{
    std::vector<int> nodes;
    std::string item;
    std::istringstream parts(token);
    while (std::getline(parts, item, ',')) {
        if (item.empty())
            fatal("FaultSpec %s:%d: empty node id in list '%s'",
                  source.c_str(), line, token.c_str());
        nodes.push_back(
            static_cast<int>(parseDouble(item, source, line)));
    }
    if (nodes.empty())
        fatal("FaultSpec %s:%d: empty node list", source.c_str(),
              line);
    return nodes;
}

/** Parse "A|B@t" into a Partition event. */
NodeEvent
parsePartition(const std::string &token, const std::string &source,
               int line)
{
    const std::size_t at = token.find('@');
    const std::size_t bar = token.find('|');
    if (at == std::string::npos || bar == std::string::npos ||
        bar > at)
        fatal("FaultSpec %s:%d: expected <nodes>|<nodes>@<seconds>, "
              "got '%s'",
              source.c_str(), line, token.c_str());
    NodeEvent event;
    event.kind = NodeEvent::Kind::Partition;
    event.groupA = parseNodeList(token.substr(0, bar), source, line);
    event.groupB =
        parseNodeList(token.substr(bar + 1, at - bar - 1), source, line);
    event.atSeconds = parseDouble(token.substr(at + 1), source, line);
    event.declSource = source;
    event.declLine = line;
    return event;
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string &text, const std::string &source)
{
    FaultSpec spec;
    // Statements are separated by newlines or semicolons.
    std::string normalized = text;
    std::replace(normalized.begin(), normalized.end(), ';', '\n');
    std::istringstream lines(normalized);
    std::string raw_line;
    int line_no = 0;
    while (std::getline(lines, raw_line)) {
        ++line_no;
        const std::size_t hash = raw_line.find('#');
        if (hash != std::string::npos)
            raw_line.erase(hash);
        std::istringstream words(raw_line);
        std::string key;
        if (!(words >> key))
            continue;
        if (key.rfind("heal@", 0) == 0) {
            // heal@T carries its time in the directive itself.
            NodeEvent event;
            event.kind = NodeEvent::Kind::Heal;
            event.atSeconds =
                parseDouble(key.substr(5), source, line_no);
            event.declSource = source;
            event.declLine = line_no;
            spec.schedule.add(event);
            std::string extra;
            if (words >> extra)
                fatal("FaultSpec %s:%d: trailing '%s' after heal",
                      source.c_str(), line_no, extra.c_str());
            continue;
        }
        std::string arg;
        if (!(words >> arg))
            fatal("FaultSpec %s:%d: '%s' needs an argument",
                  source.c_str(), line_no, key.c_str());
        if (key == "task-fail-rate") {
            spec.taskFailureRate = parseDouble(arg, source, line_no);
        } else if (key == "disk-error-rate") {
            spec.diskReadErrorRate = parseDouble(arg, source, line_no);
        } else if (key == "corrupt-rate") {
            spec.hdfsCorruptRate = parseDouble(arg, source, line_no);
        } else if (key == "fetch-fail-rate") {
            spec.shuffleFetchFailureRate =
                parseDouble(arg, source, line_no);
        } else if (key == "kill") {
            spec.schedule.add(parseNodeAt(arg, NodeEvent::Kind::Kill,
                                          source, line_no));
        } else if (key == "rejoin") {
            spec.schedule.add(parseNodeAt(arg, NodeEvent::Kind::Rejoin,
                                          source, line_no));
        } else if (key == "partition") {
            spec.schedule.add(parsePartition(arg, source, line_no));
        } else if (key == "degrade" || key == "degrade-mem" ||
                   key == "slow-node") {
            const NodeEvent::Kind kind =
                key == "degrade"       ? NodeEvent::Kind::Degrade
                : key == "degrade-mem" ? NodeEvent::Kind::DegradeMem
                                       : NodeEvent::Kind::SlowNode;
            NodeEvent event = parseNodeAt(arg, kind, source, line_no);
            std::string factor;
            if (!(words >> factor))
                fatal("FaultSpec %s:%d: %s needs a factor",
                      source.c_str(), line_no, key.c_str());
            event.factor = parseDouble(factor, source, line_no);
            spec.schedule.add(event);
        } else {
            fatal("FaultSpec %s:%d: unknown directive '%s'",
                  source.c_str(), line_no, key.c_str());
        }
        std::string extra;
        if (words >> extra)
            fatal("FaultSpec %s:%d: trailing '%s' after %s",
                  source.c_str(), line_no, extra.c_str(), key.c_str());
    }
    spec.validate();
    return spec;
}

FaultSpec
FaultSpec::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("FaultSpec: cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), path);
}

} // namespace doppio::faults
