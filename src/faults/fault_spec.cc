#include "faults/fault_spec.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace doppio::faults {

const char *
nodeEventKindName(NodeEvent::Kind kind)
{
    switch (kind) {
      case NodeEvent::Kind::Kill:
        return "kill";
      case NodeEvent::Kind::Rejoin:
        return "rejoin";
      case NodeEvent::Kind::Degrade:
        return "degrade";
      case NodeEvent::Kind::DegradeMem:
        return "degrade-mem";
    }
    return "?";
}

FaultSchedule::FaultSchedule(std::vector<NodeEvent> events)
    : events_(std::move(events))
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const NodeEvent &a, const NodeEvent &b) {
                         return a.atSeconds < b.atSeconds;
                     });
}

void
FaultSchedule::add(NodeEvent event)
{
    auto it = std::upper_bound(
        events_.begin(), events_.end(), event,
        [](const NodeEvent &a, const NodeEvent &b) {
            return a.atSeconds < b.atSeconds;
        });
    events_.insert(it, event);
}

bool
FaultSpec::any() const
{
    return taskFailureRate > 0.0 || diskReadErrorRate > 0.0 ||
           shuffleFetchFailureRate > 0.0 || !schedule.empty();
}

void
FaultSpec::validate() const
{
    auto check_rate = [](double rate, const char *name) {
        if (rate < 0.0 || rate >= 1.0)
            fatal("FaultSpec: %s must be in [0, 1), got %g", name, rate);
    };
    check_rate(taskFailureRate, "task-fail-rate");
    check_rate(diskReadErrorRate, "disk-error-rate");
    check_rate(shuffleFetchFailureRate, "fetch-fail-rate");
    for (const NodeEvent &event : schedule.events()) {
        if (event.node < 0)
            fatal("FaultSpec: negative node id %d in %s event",
                  event.node, nodeEventKindName(event.kind));
        if (event.atSeconds < 0.0)
            fatal("FaultSpec: negative time %g in %s event",
                  event.atSeconds, nodeEventKindName(event.kind));
        if (event.kind == NodeEvent::Kind::Degrade && event.factor < 1.0)
            fatal("FaultSpec: degrade factor must be >= 1, got %g",
                  event.factor);
        if (event.kind == NodeEvent::Kind::DegradeMem &&
            (event.factor <= 0.0 || event.factor > 1.0))
            fatal("FaultSpec: degrade-mem fraction must be in (0, 1], "
                  "got %g",
                  event.factor);
    }
    // Two kills of one node at one time are a spec typo (the second
    // would be a no-op at best and usually means a wrong node id).
    const auto &events = schedule.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].kind != NodeEvent::Kind::Kill)
            continue;
        for (std::size_t j = i + 1; j < events.size(); ++j) {
            if (events[j].kind == NodeEvent::Kind::Kill &&
                events[j].node == events[i].node &&
                events[j].atSeconds == events[i].atSeconds)
                fatal("FaultSpec: duplicate kill of node %d at t=%g",
                      events[i].node, events[i].atSeconds);
        }
    }
}

namespace {

double
parseDouble(const std::string &token, const std::string &source,
            int line)
{
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0')
        fatal("FaultSpec %s:%d: expected a number, got '%s'",
              source.c_str(), line, token.c_str());
    return value;
}

/** Split "id@t" into a node event skeleton. */
NodeEvent
parseNodeAt(const std::string &token, NodeEvent::Kind kind,
            const std::string &source, int line)
{
    const std::size_t at = token.find('@');
    if (at == std::string::npos)
        fatal("FaultSpec %s:%d: expected <node>@<seconds>, got '%s'",
              source.c_str(), line, token.c_str());
    NodeEvent event;
    event.kind = kind;
    event.node = static_cast<int>(
        parseDouble(token.substr(0, at), source, line));
    event.atSeconds = parseDouble(token.substr(at + 1), source, line);
    return event;
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string &text, const std::string &source)
{
    FaultSpec spec;
    // Statements are separated by newlines or semicolons.
    std::string normalized = text;
    std::replace(normalized.begin(), normalized.end(), ';', '\n');
    std::istringstream lines(normalized);
    std::string raw_line;
    int line_no = 0;
    while (std::getline(lines, raw_line)) {
        ++line_no;
        const std::size_t hash = raw_line.find('#');
        if (hash != std::string::npos)
            raw_line.erase(hash);
        std::istringstream words(raw_line);
        std::string key;
        if (!(words >> key))
            continue;
        std::string arg;
        if (!(words >> arg))
            fatal("FaultSpec %s:%d: '%s' needs an argument",
                  source.c_str(), line_no, key.c_str());
        if (key == "task-fail-rate") {
            spec.taskFailureRate = parseDouble(arg, source, line_no);
        } else if (key == "disk-error-rate") {
            spec.diskReadErrorRate = parseDouble(arg, source, line_no);
        } else if (key == "fetch-fail-rate") {
            spec.shuffleFetchFailureRate =
                parseDouble(arg, source, line_no);
        } else if (key == "kill") {
            spec.schedule.add(parseNodeAt(arg, NodeEvent::Kind::Kill,
                                          source, line_no));
        } else if (key == "rejoin") {
            spec.schedule.add(parseNodeAt(arg, NodeEvent::Kind::Rejoin,
                                          source, line_no));
        } else if (key == "degrade" || key == "degrade-mem") {
            const NodeEvent::Kind kind = key == "degrade"
                                             ? NodeEvent::Kind::Degrade
                                             : NodeEvent::Kind::DegradeMem;
            NodeEvent event = parseNodeAt(arg, kind, source, line_no);
            std::string factor;
            if (!(words >> factor))
                fatal("FaultSpec %s:%d: %s needs a factor",
                      source.c_str(), line_no, key.c_str());
            event.factor = parseDouble(factor, source, line_no);
            spec.schedule.add(event);
        } else {
            fatal("FaultSpec %s:%d: unknown directive '%s'",
                  source.c_str(), line_no, key.c_str());
        }
        std::string extra;
        if (words >> extra)
            fatal("FaultSpec %s:%d: trailing '%s' after %s",
                  source.c_str(), line_no, extra.c_str(), key.c_str());
    }
    spec.validate();
    return spec;
}

FaultSpec
FaultSpec::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("FaultSpec: cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), path);
}

} // namespace doppio::faults
