/**
 * @file
 * Declarative fault specification.
 *
 * A FaultSpec describes every failure a simulation should experience:
 * seeded per-attempt task crash probability, transient HDFS read
 * errors (forcing replica failover), silent block corruption (checksum
 * mismatch on read, forcing a remote re-read and quarantining the bad
 * replica), shuffle-fetch failure, and a FaultSchedule of node-scoped
 * events (whole-node loss, rejoin, degraded-device mode, gray
 * slow-node mode, network partition) pinned to simulated times. Specs
 * are plain data and parse from a small text format, so a fault
 * scenario is reproducible across runs and shareable as a file:
 *
 *   task-fail-rate 0.02      # per task attempt
 *   disk-error-rate 0.001    # per HDFS read batch (transient)
 *   corrupt-rate 0.0005      # per HDFS read batch (checksum mismatch)
 *   fetch-fail-rate 0.0005   # per shuffle source batch
 *   kill 2@120               # node 2 dies at t=120 s
 *   rejoin 2@600             # ...and comes back empty at t=600 s
 *   degrade 1@60 4.0         # node 1's devices slow down 4x at t=60 s
 *   degrade-mem 1@60 0.5     # node 1's memory pool halves at t=60 s
 *   slow-node 1@60 3.0       # node 1 turns gray: compute 3x slower
 *   partition 0,1|2,3@120    # network splits into {0,1} vs {2,3}
 *   heal@180                 # ...and heals at t=180 s
 *
 * '#' starts a comment; ';' separates statements on one line (for
 * inline command-line use). Error messages carry <source>:<line> so a
 * typo in a 40-line chaos schedule is findable.
 */

#ifndef DOPPIO_FAULTS_FAULT_SPEC_H
#define DOPPIO_FAULTS_FAULT_SPEC_H

#include <string>
#include <vector>

namespace doppio::faults {

/** One scheduled node-scoped fault event. */
struct NodeEvent
{
    enum class Kind {
        Kill,
        Rejoin,
        Degrade,
        DegradeMem,
        SlowNode,
        Partition,
        Heal
    };

    Kind kind = Kind::Kill;
    int node = 0;
    double atSeconds = 0.0;
    /**
     * Degrade: device service-time multiplier (>= 1).
     * DegradeMem: remaining fraction of the node's memory pool
     * ((0, 1]; 1 restores it) — a ballooning neighbour VM or cgroup
     * clamp shrinking the executor's usable memory.
     * SlowNode: compute slowdown multiplier (>= 1; 1 restores) — a
     * gray failure: the node stays alive and serves I/O, but every
     * task landed on it runs this much slower, which is what the
     * speculation machinery exists to route around.
     */
    double factor = 1.0;

    /** Partition only: the two sides of the network split. */
    std::vector<int> groupA;
    std::vector<int> groupB;

    /**
     * Where this event was declared (for validation diagnostics);
     * line 0 means "built programmatically, no location".
     */
    std::string declSource;
    int declLine = 0;
};

/**
 * @return "kill" / "rejoin" / "degrade" / "degrade-mem" /
 *         "slow-node" / "partition" / "heal".
 */
const char *nodeEventKindName(NodeEvent::Kind kind);

/**
 * The deterministic timeline of scheduled node events, ordered by
 * (time, declaration order). Probabilistic faults live in FaultSpec;
 * the schedule holds only the pinned ones.
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;
    explicit FaultSchedule(std::vector<NodeEvent> events);

    const std::vector<NodeEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    void add(NodeEvent event);

  private:
    std::vector<NodeEvent> events_;
};

/** Everything that can go wrong in one run. */
struct FaultSpec
{
    /** Per-attempt probability that a task crashes mid-flight. */
    double taskFailureRate = 0.0;

    /**
     * Per-HDFS-read probability of a transient local-replica error;
     * the read fails over to a surviving remote replica (disk there
     * plus a network hop).
     */
    double diskReadErrorRate = 0.0;

    /**
     * Per-HDFS-read probability of a checksum mismatch (silent data
     * corruption). The read is re-served from a surviving remote
     * replica and the corrupt replica is quarantined: its bytes are
     * re-replicated in the background through the real device and
     * network pipeline.
     */
    double hdfsCorruptRate = 0.0;

    /**
     * Per-source-batch probability that a shuffle fetch fails even
     * though the serving node is alive (socket reset, corrupt block).
     * Triggers the same stage-reattempt path as node loss.
     */
    double shuffleFetchFailureRate = 0.0;

    /** Scheduled node loss / rejoin / degradation / partitions. */
    FaultSchedule schedule;

    /** @return true when any fault source is active. */
    bool any() const;

    /**
     * fatal() on out-of-range rates or malformed events. Event
     * diagnostics include the declaring <source>:<line> when the
     * event came from parse(). Cross-event checks run in time order:
     * a rejoin of a node with no earlier kill and a heal with no
     * earlier partition are rejected (both used to be silent no-ops).
     */
    void validate() const;

    /**
     * Parse the text format described in the file header. fatal() on
     * syntax errors. @p source names the input in error messages.
     */
    static FaultSpec parse(const std::string &text,
                           const std::string &source = "<inline>");

    /** Parse a fault-spec file; fatal() if unreadable. */
    static FaultSpec parseFile(const std::string &path);
};

} // namespace doppio::faults

#endif // DOPPIO_FAULTS_FAULT_SPEC_H
