#include "faults/fault_injector.h"

#include "common/logging.h"
#include "common/sim_time.h"
#include "trace/trace_collector.h"

namespace doppio::faults {

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      rng_(seed ^ 0x666c7473ULL /* "flts" */)
{
    spec_.validate();
}

bool
FaultInjector::drawTaskFailure()
{
    if (spec_.taskFailureRate <= 0.0)
        return false;
    return rng_.uniform() < spec_.taskFailureRate;
}

std::uint64_t
FaultInjector::drawFailurePhase(std::uint64_t numPhases)
{
    return rng_.uniformInt(numPhases + 1);
}

bool
FaultInjector::drawHdfsReadError(double extraProbability)
{
    const double p = spec_.diskReadErrorRate + extraProbability;
    if (p <= 0.0)
        return false;
    return rng_.uniform() < p;
}

bool
FaultInjector::drawFetchFailure()
{
    if (spec_.shuffleFetchFailureRate <= 0.0)
        return false;
    return rng_.uniform() < spec_.shuffleFetchFailureRate;
}

bool
FaultInjector::drawCorruptRead()
{
    if (spec_.hdfsCorruptRate <= 0.0)
        return false;
    return rng_.uniform() < spec_.hdfsCorruptRate;
}

void
FaultInjector::arm(cluster::Cluster &cluster)
{
    if (armed_)
        fatal("FaultInjector: arm() called twice");
    armed_ = true;
    for (const NodeEvent &event : spec_.schedule.events()) {
        const bool clusterWide =
            event.kind == NodeEvent::Kind::Partition ||
            event.kind == NodeEvent::Kind::Heal;
        if (!clusterWide && event.node >= cluster.numSlaves())
            fatal("FaultInjector: %s event targets node %d but the "
                  "cluster has %d slaves",
                  nodeEventKindName(event.kind), event.node,
                  cluster.numSlaves());
        if (event.kind == NodeEvent::Kind::Partition) {
            for (int n : event.groupA) {
                if (n >= cluster.numSlaves())
                    fatal("FaultInjector: partition lists node %d but "
                          "the cluster has %d slaves",
                          n, cluster.numSlaves());
            }
            for (int n : event.groupB) {
                if (n >= cluster.numSlaves())
                    fatal("FaultInjector: partition lists node %d but "
                          "the cluster has %d slaves",
                          n, cluster.numSlaves());
            }
        }
        cluster::Cluster *target = &cluster;
        const NodeEvent scheduled = event;
        cluster.simulator().scheduleAt(
            secondsToTicks(event.atSeconds), [target, scheduled]() {
                switch (scheduled.kind) {
                  case NodeEvent::Kind::Kill:
                    target->setNodeAlive(scheduled.node, false);
                    break;
                  case NodeEvent::Kind::Rejoin:
                    target->setNodeAlive(scheduled.node, true);
                    break;
                  case NodeEvent::Kind::Degrade:
                    target->node(scheduled.node)
                        .setDegradedFactor(scheduled.factor);
                    // Kill/rejoin/degrade-mem instants come from the
                    // cluster's own transitions; disk degradation
                    // bypasses the cluster, so report it here.
                    if (auto *trace = target->traceCollector()) {
                        trace->instant(
                            trace::kDriverPid, trace::kTidFaults,
                            "fault", "degrade_disk",
                            target->simulator().now(),
                            trace::TraceArgs()
                                .add("node", scheduled.node)
                                .add("factor", scheduled.factor));
                    }
                    break;
                  case NodeEvent::Kind::DegradeMem:
                    target->setMemoryFraction(scheduled.node,
                                              scheduled.factor);
                    break;
                  case NodeEvent::Kind::SlowNode:
                    target->setComputeSlowdown(scheduled.node,
                                               scheduled.factor);
                    break;
                  case NodeEvent::Kind::Partition:
                    target->network().setPartition(scheduled.groupA,
                                                   scheduled.groupB);
                    if (auto *trace = target->traceCollector()) {
                        trace->instant(
                            trace::kDriverPid, trace::kTidFaults,
                            "fault", "partition",
                            target->simulator().now(),
                            trace::TraceArgs().add(
                                "side_a",
                                static_cast<int>(
                                    scheduled.groupA.size())));
                    }
                    break;
                  case NodeEvent::Kind::Heal:
                    target->network().heal();
                    if (auto *trace = target->traceCollector()) {
                        trace->instant(trace::kDriverPid,
                                       trace::kTidFaults, "fault",
                                       "heal",
                                       target->simulator().now(),
                                       trace::TraceArgs());
                    }
                    break;
                }
            });
    }
}

} // namespace doppio::faults
