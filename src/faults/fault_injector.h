/**
 * @file
 * Runtime fault injection.
 *
 * A FaultInjector turns a FaultSpec into concrete failures against one
 * simulated cluster. It owns a dedicated RNG stream (forked from the
 * cluster seed) so that fault draws never perturb the jitter/placement
 * streams of the fault-free simulation: a run with all rates at zero
 * consumes no randomness and is bit-for-bit identical to a run with no
 * injector at all. Scheduled node events are armed once as simulator
 * events; liveness changes propagate through
 * cluster::Cluster::setNodeAlive so every subscriber (task engine,
 * HDFS, page caches) observes the same deterministic order.
 */

#ifndef DOPPIO_FAULTS_FAULT_INJECTOR_H
#define DOPPIO_FAULTS_FAULT_INJECTOR_H

#include <cstdint>

#include "cluster/cluster.h"
#include "common/random.h"
#include "faults/fault_spec.h"

namespace doppio::faults {

/** Seeded source of runtime failures for one simulation. */
class FaultInjector
{
  public:
    /**
     * @param spec validated fault description.
     * @param seed root seed (use the cluster seed for reproducible
     *             coupling to the run configuration).
     */
    FaultInjector(FaultSpec spec, std::uint64_t seed);

    const FaultSpec &spec() const { return spec_; }

    /** @return true when the spec contains any fault source. */
    bool active() const { return spec_.any(); }

    /**
     * Draw one per-attempt task crash. Consumes randomness only when
     * the task failure rate is positive.
     */
    bool drawTaskFailure();

    /**
     * For a crashing attempt with @p numPhases phases: the phase
     * boundary at which it dies, in [0, numPhases] (numPhases = just
     * before completing, maximal wasted work).
     */
    std::uint64_t drawFailurePhase(std::uint64_t numPhases);

    /**
     * Draw one HDFS local-read failure with probability
     * diskReadErrorRate + @p extraProbability (the caller adds the
     * lost-replica fraction while re-replication is in flight).
     * Consumes randomness only when the total is positive.
     */
    bool drawHdfsReadError(double extraProbability);

    /** Draw one spontaneous shuffle-fetch failure. */
    bool drawFetchFailure();

    /**
     * Draw one HDFS checksum mismatch (silent corruption). Consumes
     * randomness only when corrupt-rate is positive.
     */
    bool drawCorruptRead();

    /**
     * Schedule every FaultSchedule event against @p cluster's
     * simulator: kills and rejoins call Cluster::setNodeAlive (which
     * notifies liveness observers); degrade events scale the node's
     * device service times; slow-node events set the node's gray
     * compute slowdown; partition/heal events split and rejoin the
     * cluster's network fabric. Call exactly once, before the run
     * starts.
     */
    void arm(cluster::Cluster &cluster);

  private:
    FaultSpec spec_;
    Rng rng_;
    bool armed_ = false;
};

} // namespace doppio::faults

#endif // DOPPIO_FAULTS_FAULT_INJECTOR_H
