#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace doppio {

namespace {

std::atomic<bool> verboseFlag{false};

std::function<void(const std::string &)> panicHook;
bool inPanicHook = false;

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return fmt;
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verboseEnabled()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

void
setPanicHook(std::function<void(const std::string &)> hook)
{
    panicHook = std::move(hook);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    if (panicHook && !inPanicHook) {
        inPanicHook = true;
        panicHook(msg);
    }
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled())
        return;
    va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace doppio
