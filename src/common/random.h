/**
 * @file
 * Deterministic random-number generation for reproducible simulations.
 *
 * Every stochastic component (task-time jitter, straggler injection,
 * block placement) draws from an Rng seeded from the run configuration,
 * so two runs with the same configuration produce identical results.
 */

#ifndef DOPPIO_COMMON_RANDOM_H
#define DOPPIO_COMMON_RANDOM_H

#include <cstdint>

namespace doppio {

/**
 * A small, fast, deterministic RNG (xoshiro256**) with the distributions
 * the simulator needs. Not cryptographic; not std::mt19937 so that results
 * are stable across standard libraries.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** @return standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /** @return normal deviate with given mean/stddev. */
    double gaussian(double mean, double stddev);

    /**
     * @return lognormal multiplicative jitter with E[x] = 1.
     * @param sigma shape parameter; 0 returns exactly 1.
     */
    double jitter(double sigma);

    /** Derive an independent child stream (e.g. per task). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace doppio

#endif // DOPPIO_COMMON_RANDOM_H
