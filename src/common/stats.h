/**
 * @file
 * Streaming summary statistics.
 *
 * Used for per-stage task-time distributions, iostat-style request-size
 * averages, and for the repeated-run error bars the paper reports
 * ("average run time for five runs ... with positive and negative error
 * values").
 */

#ifndef DOPPIO_COMMON_STATS_H
#define DOPPIO_COMMON_STATS_H

#include <cstdint>
#include <limits>
#include <vector>

namespace doppio {

/**
 * Welford-style running mean/variance plus min/max and sum.
 * O(1) memory; suitable for millions of samples.
 */
class SummaryStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Add @p n identical samples of value @p x in O(1). */
    void addMany(double x, std::uint64_t n);

    /** Merge another accumulator into this one. */
    void merge(const SummaryStats &other);

    /** Reset to the empty state. */
    void reset();

    /** @return number of samples. */
    std::uint64_t count() const { return count_; }

    /** @return sum of samples (0 when empty). */
    double sum() const { return sum_; }

    /** @return sample mean (0 when empty). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** @return smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** @return largest sample (-inf when empty). */
    double max() const { return max_; }

    /** @return population variance (0 for < 2 samples). */
    double variance() const;

    /** @return population standard deviation. */
    double stddev() const;

    /** @return max - mean, i.e. the paper's positive error bar. */
    double plusError() const { return count_ ? max_ - mean() : 0.0; }

    /** @return mean - min, i.e. the paper's negative error bar. */
    double minusError() const { return count_ ? mean() - min_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double m2_ = 0.0;
    double mean_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Relative-error helper: |predicted - measured| / measured.
 * @return 0 when measured is 0 and predicted is 0; +inf when only
 *         measured is 0.
 */
double relativeError(double predicted, double measured);

/**
 * Nearest-rank quantile of an ascending-@p sorted sample vector.
 *
 * Edge cases are defined, not accidental:
 *  - empty input returns 0.0 (no panic, no NaN);
 *  - a single sample returns that sample for every q;
 *  - q outside [0, 1] clamps (q <= 0 returns the minimum, q >= 1 the
 *    maximum);
 *  - NaN q is treated as 0.
 * The rank is ceil(q * n) clamped to [1, n], so quantile(v, 0.5) of
 * two samples returns the first — the classic nearest-rank
 * definition, matching the streaming/service percentile reporting.
 */
double quantile(const std::vector<double> &sorted, double q);

} // namespace doppio

#endif // DOPPIO_COMMON_STATS_H
