/**
 * @file
 * Aligned console tables for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figure
 * series as rows on stdout; this helper keeps the output readable and
 * uniform across binaries.
 */

#ifndef DOPPIO_COMMON_TABLE_PRINTER_H
#define DOPPIO_COMMON_TABLE_PRINTER_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace doppio {

/**
 * Collects string cells and prints a column-aligned table with a header
 * rule. Numeric convenience overloads format with a fixed precision.
 */
class TablePrinter
{
  public:
    /** @param title optional caption printed above the table. */
    explicit TablePrinter(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a fully-formed row of string cells. */
    void addRow(std::vector<std::string> row);

    /** Format a double with @p precision decimal places. */
    static std::string num(double v, int precision = 2);

    /** Format a value as a percentage, e.g. 0.057 -> "5.7%". */
    static std::string percent(double fraction, int precision = 1);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace doppio

#endif // DOPPIO_COMMON_TABLE_PRINTER_H
