#include "common/random.h"

#include <cmath>

namespace doppio {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    // Rejection-free modulo is fine here: n is tiny vs 2^64 in all uses.
    return next() % n;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::jitter(double sigma)
{
    if (sigma <= 0.0)
        return 1.0;
    // Lognormal with mu = -sigma^2/2 has expectation exactly 1.
    return std::exp(gaussian(-0.5 * sigma * sigma, sigma));
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace doppio
