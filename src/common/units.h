/**
 * @file
 * Byte-size and bandwidth units used across Doppio.
 *
 * All data sizes are carried as unsigned 64-bit byte counts; bandwidths are
 * double bytes-per-second. Helpers provide literal-style constructors
 * (kib/mib/gib) and human-readable formatting for reports.
 */

#ifndef DOPPIO_COMMON_UNITS_H
#define DOPPIO_COMMON_UNITS_H

#include <cstdint>
#include <string>

namespace doppio {

/** A size in bytes. */
using Bytes = std::uint64_t;

/** A bandwidth in bytes per second. */
using BytesPerSec = double;

constexpr Bytes kKiB = 1024ULL;
constexpr Bytes kMiB = 1024ULL * kKiB;
constexpr Bytes kGiB = 1024ULL * kMiB;
constexpr Bytes kTiB = 1024ULL * kGiB;

/** Build a byte count from KiB (binary kilobytes). */
constexpr Bytes
kib(double v)
{
    return static_cast<Bytes>(v * static_cast<double>(kKiB));
}

/** Build a byte count from MiB. */
constexpr Bytes
mib(double v)
{
    return static_cast<Bytes>(v * static_cast<double>(kMiB));
}

/** Build a byte count from GiB. */
constexpr Bytes
gib(double v)
{
    return static_cast<Bytes>(v * static_cast<double>(kGiB));
}

/** Build a byte count from TiB. */
constexpr Bytes
tib(double v)
{
    return static_cast<Bytes>(v * static_cast<double>(kTiB));
}

/** Build a bandwidth from MiB/s. */
constexpr BytesPerSec
mibps(double v)
{
    return v * static_cast<double>(kMiB);
}

/** Build a bandwidth from GiB/s. */
constexpr BytesPerSec
gibps(double v)
{
    return v * static_cast<double>(kGiB);
}

/** Convert a byte count to (double) MiB. */
constexpr double
toMiB(Bytes b)
{
    return static_cast<double>(b) / static_cast<double>(kMiB);
}

/** Convert a byte count to (double) GiB. */
constexpr double
toGiB(Bytes b)
{
    return static_cast<double>(b) / static_cast<double>(kGiB);
}

/** Convert a bandwidth to (double) MiB/s. */
constexpr double
toMiBps(BytesPerSec bw)
{
    return bw / static_cast<double>(kMiB);
}

/**
 * Format a byte count with an adaptive unit, e.g. "334.0 GB".
 * Uses binary units but the conventional B/KB/MB/GB/TB suffixes, matching
 * how the paper reports sizes.
 */
std::string formatBytes(Bytes b);

/**
 * Parse a byte count with an optional binary-unit suffix: "90g",
 * "512M", "131072k", "1t", "64kb", "1048576" (plain bytes). Suffixes
 * are case-insensitive; a trailing 'b'/"ib" is accepted ("90gib").
 * fatal() on malformed input, a negative value, or overflow.
 */
Bytes parseBytes(const std::string &text);

/** Format a bandwidth, e.g. "480.0 MB/s". */
std::string formatBandwidth(BytesPerSec bw);

} // namespace doppio

#endif // DOPPIO_COMMON_UNITS_H
