/**
 * @file
 * Token-bucket admission primitive (DESIGN.md §14).
 *
 * Time is supplied by the caller, so one implementation serves both
 * the deterministic virtual-time service loop and a wall-clock TCP
 * front end. A zero-rate bucket never refills: it grants its initial
 * burst and then denies forever, which the admission layer uses to
 * model a fully drained quota.
 */

#ifndef DOPPIO_COMMON_TOKEN_BUCKET_H
#define DOPPIO_COMMON_TOKEN_BUCKET_H

#include <algorithm>
#include <cstdint>

#include "common/logging.h"

namespace doppio::common {

/** Rate limiter over caller-supplied (virtual or wall) seconds. */
class TokenBucket
{
  public:
    /**
     * @param ratePerSec refill rate in tokens/second (>= 0; 0 never
     *                   refills).
     * @param burst      bucket capacity in tokens (> 0); also the
     *                   initial fill.
     */
    TokenBucket(double ratePerSec, double burst)
        : rate_(ratePerSec), burst_(burst), tokens_(burst)
    {
        if (ratePerSec < 0.0)
            fatal("TokenBucket: rate must be non-negative");
        if (burst <= 0.0)
            fatal("TokenBucket: burst must be positive");
    }

    /**
     * Take @p tokens at time @p nowSec. @return true when granted.
     * Time moving backwards is treated as "no time elapsed" so a
     * misbehaving clock can never mint tokens.
     */
    bool
    tryAcquire(double nowSec, double tokens = 1.0)
    {
        refill(nowSec);
        if (tokens_ + 1e-12 < tokens) {
            ++denied_;
            return false;
        }
        tokens_ -= tokens;
        ++granted_;
        return true;
    }

    /** @return tokens available at @p nowSec (refills as a side effect). */
    double
    available(double nowSec)
    {
        refill(nowSec);
        return tokens_;
    }

    double ratePerSec() const { return rate_; }
    double burst() const { return burst_; }
    std::uint64_t granted() const { return granted_; }
    std::uint64_t denied() const { return denied_; }

  private:
    void
    refill(double nowSec)
    {
        if (nowSec > lastSec_)
            tokens_ = std::min(burst_, tokens_ + (nowSec - lastSec_) * rate_);
        lastSec_ = std::max(lastSec_, nowSec);
    }

    double rate_;
    double burst_;
    double tokens_;
    double lastSec_ = 0.0;
    std::uint64_t granted_ = 0;
    std::uint64_t denied_ = 0;
};

} // namespace doppio::common

#endif // DOPPIO_COMMON_TOKEN_BUCKET_H
