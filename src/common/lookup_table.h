/**
 * @file
 * Monotone-x interpolated lookup table.
 *
 * The Doppio model consumes one-time disk-profiling results as
 * "effective bandwidth vs. request size" tables (paper §VI-1). Request
 * sizes span 4 KB to 128 MB, so interpolation is done in log-x space by
 * default, which matches how fio sweeps are plotted (Fig. 5).
 */

#ifndef DOPPIO_COMMON_LOOKUP_TABLE_H
#define DOPPIO_COMMON_LOOKUP_TABLE_H

#include <cstddef>
#include <utility>
#include <vector>

namespace doppio {

/**
 * Piecewise-linear interpolation over sorted (x, y) anchor points.
 * Queries below the first / above the last anchor clamp to the end values.
 */
class LookupTable
{
  public:
    /** Interpolation behaviour on the x axis. */
    enum class Scale { Linear, Log };

    LookupTable() = default;

    /**
     * Build from anchor points.
     * @param points (x, y) pairs; sorted internally; x must be positive
     *               when Scale::Log is used and strictly increasing after
     *               sorting (duplicate x is a configuration error).
     * @param scale  x-axis interpolation space.
     */
    explicit LookupTable(std::vector<std::pair<double, double>> points,
                         Scale scale = Scale::Log);

    /** Add one anchor point (keeps the table sorted). */
    void addPoint(double x, double y);

    /** @return interpolated y at x (clamped at the ends). */
    double at(double x) const;

    /** @return number of anchor points. */
    std::size_t size() const { return points_.size(); }

    /** @return true if no anchors have been added. */
    bool empty() const { return points_.empty(); }

    /** @return the anchor points, sorted by x. */
    const std::vector<std::pair<double, double>> &points() const
    {
        return points_;
    }

  private:
    double toAxis(double x) const;

    std::vector<std::pair<double, double>> points_;
    Scale scale_ = Scale::Log;
};

} // namespace doppio

#endif // DOPPIO_COMMON_LOOKUP_TABLE_H
