#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace doppio {

TablePrinter::TablePrinter(std::string title)
    : title_(std::move(title))
{}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            os << cell;
            if (i + 1 < widths.size())
                os << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

} // namespace doppio
