/**
 * @file
 * Intrusive-free LRU cache used by the planning service's result and
 * model caches (DESIGN.md §14).
 *
 * A bounded map with least-recently-used eviction: get() and put()
 * both promote the entry to most-recently-used, so eviction order
 * follows access order, not insertion order. Not thread-safe — the
 * service's deterministic event loop is single-threaded, and the
 * sharded wrapper (service::ResultCache) keeps shards independent so
 * a future concurrent transport can lock per shard.
 */

#ifndef DOPPIO_COMMON_LRU_CACHE_H
#define DOPPIO_COMMON_LRU_CACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace doppio::common {

/** Bounded key/value map with LRU eviction. */
template <typename Key, typename Value>
class LruCache
{
  public:
    /** @param capacity maximum entries; must be positive. */
    explicit LruCache(std::size_t capacity) : capacity_(capacity)
    {
        if (capacity == 0)
            fatal("LruCache: capacity must be positive");
    }

    /**
     * @return pointer to the cached value (promoted to MRU), or
     * nullptr on a miss. The pointer stays valid until the entry is
     * evicted or erased.
     */
    Value *
    get(const Key &key)
    {
        const auto it = index_.find(key);
        if (it == index_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /** @return the value without promoting it, or nullptr. */
    const Value *
    peek(const Key &key) const
    {
        const auto it = index_.find(key);
        return it == index_.end() ? nullptr : &it->second->second;
    }

    /**
     * Insert or overwrite @p key (either way the entry becomes MRU),
     * evicting the LRU entry when the cache is full.
     */
    void
    put(const Key &key, Value value)
    {
        const auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        if (order_.size() >= capacity_) {
            index_.erase(order_.back().first);
            order_.pop_back();
            ++evictions_;
        }
        order_.emplace_front(key, std::move(value));
        index_.emplace(key, order_.begin());
    }

    /** @return true when an entry was removed. */
    bool
    erase(const Key &key)
    {
        const auto it = index_.find(key);
        if (it == index_.end())
            return false;
        order_.erase(it->second);
        index_.erase(it);
        return true;
    }

    bool contains(const Key &key) const { return index_.count(key) > 0; }
    std::size_t size() const { return order_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    void
    clear()
    {
        order_.clear();
        index_.clear();
    }

    /** @return keys from most- to least-recently used (for tests). */
    std::vector<Key>
    keysMruToLru() const
    {
        std::vector<Key> keys;
        keys.reserve(order_.size());
        for (const auto &entry : order_)
            keys.push_back(entry.first);
        return keys;
    }

  private:
    std::size_t capacity_;
    /// MRU at front, LRU at back.
    std::list<std::pair<Key, Value>> order_;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
        index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace doppio::common

#endif // DOPPIO_COMMON_LRU_CACHE_H
