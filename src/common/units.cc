#include "common/units.h"

#include <array>
#include <cstdio>

namespace doppio {

namespace {

std::string
formatScaled(double value, const char *suffix)
{
    static const std::array<const char *, 5> prefixes = {
        "", "K", "M", "G", "T"
    };
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < prefixes.size()) {
        value /= 1024.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s%s", value, prefixes[idx],
                  suffix);
    return buf;
}

} // namespace

std::string
formatBytes(Bytes b)
{
    return formatScaled(static_cast<double>(b), "B");
}

std::string
formatBandwidth(BytesPerSec bw)
{
    return formatScaled(bw, "B/s");
}

} // namespace doppio
