#include "common/units.h"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace doppio {

namespace {

std::string
formatScaled(double value, const char *suffix)
{
    static const std::array<const char *, 5> prefixes = {
        "", "K", "M", "G", "T"
    };
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < prefixes.size()) {
        value /= 1024.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s%s", value, prefixes[idx],
                  suffix);
    return buf;
}

} // namespace

std::string
formatBytes(Bytes b)
{
    return formatScaled(static_cast<double>(b), "B");
}

std::string
formatBandwidth(BytesPerSec bw)
{
    return formatScaled(bw, "B/s");
}

Bytes
parseBytes(const std::string &text)
{
    if (text.empty())
        fatal("parseBytes: empty size");
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str())
        fatal("parseBytes: '%s' is not a size", text.c_str());
    if (value < 0.0)
        fatal("parseBytes: negative size '%s'", text.c_str());

    std::string suffix;
    for (const char *p = end; *p != '\0'; ++p)
        suffix += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    double scale = 1.0;
    if (!suffix.empty()) {
        // Accept "k", "kb", "kib" (and m/g/t alike), or a bare "b".
        const char unit = suffix[0];
        const std::string rest = suffix.substr(1);
        const bool tail_ok = rest.empty() || rest == "b" || rest == "ib";
        if (unit == 'k' && tail_ok)
            scale = static_cast<double>(kKiB);
        else if (unit == 'm' && tail_ok)
            scale = static_cast<double>(kMiB);
        else if (unit == 'g' && tail_ok)
            scale = static_cast<double>(kGiB);
        else if (unit == 't' && tail_ok)
            scale = static_cast<double>(kTiB);
        else if (unit == 'b' && rest.empty())
            scale = 1.0;
        else
            fatal("parseBytes: unknown unit '%s' in '%s' "
                  "(use k/m/g/t[i][b])",
                  suffix.c_str(), text.c_str());
    }
    const double bytes = value * scale;
    if (bytes > 9.2e18) // past the uint64 range
        fatal("parseBytes: '%s' overflows a 64-bit byte count",
              text.c_str());
    return static_cast<Bytes>(bytes);
}

} // namespace doppio
