#include "common/stats.h"

#include <cmath>

namespace doppio {

void
SummaryStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

void
SummaryStats::addMany(double x, std::uint64_t n)
{
    if (n == 0)
        return;
    SummaryStats batch;
    batch.count_ = n;
    batch.sum_ = x * static_cast<double>(n);
    batch.mean_ = x;
    batch.m2_ = 0.0;
    batch.min_ = x;
    batch.max_ = x;
    merge(batch);
}

void
SummaryStats::merge(const SummaryStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    mean_ = (na * mean_ + nb * other.mean_) / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

void
SummaryStats::reset()
{
    *this = SummaryStats();
}

double
SummaryStats::variance() const
{
    return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

double
quantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (std::isnan(q) || q <= 0.0)
        return sorted.front();
    if (q >= 1.0)
        return sorted.back();
    const auto n = sorted.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return sorted[rank - 1];
}

double
relativeError(double predicted, double measured)
{
    if (measured == 0.0)
        return predicted == 0.0 ? 0.0
                                : std::numeric_limits<double>::infinity();
    return std::fabs(predicted - measured) / std::fabs(measured);
}

} // namespace doppio
