#include "common/lookup_table.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace doppio {

LookupTable::LookupTable(std::vector<std::pair<double, double>> points,
                         Scale scale)
    : points_(std::move(points)), scale_(scale)
{
    std::sort(points_.begin(), points_.end());
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (scale_ == Scale::Log && points_[i].first <= 0.0)
            fatal("LookupTable: log scale requires positive x (got %g)",
                  points_[i].first);
        if (i > 0 && points_[i].first == points_[i - 1].first)
            fatal("LookupTable: duplicate x anchor %g", points_[i].first);
    }
}

void
LookupTable::addPoint(double x, double y)
{
    if (scale_ == Scale::Log && x <= 0.0)
        fatal("LookupTable: log scale requires positive x (got %g)", x);
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               std::make_pair(x, 0.0));
    if (it != points_.end() && it->first == x)
        fatal("LookupTable: duplicate x anchor %g", x);
    points_.insert(it, {x, y});
}

double
LookupTable::toAxis(double x) const
{
    return scale_ == Scale::Log ? std::log(x) : x;
}

double
LookupTable::at(double x) const
{
    if (points_.empty())
        fatal("LookupTable: query on empty table");
    if (x <= points_.front().first)
        return points_.front().second;
    if (x >= points_.back().first)
        return points_.back().second;
    auto hi = std::lower_bound(points_.begin(), points_.end(),
                               std::make_pair(x, 0.0));
    auto lo = hi - 1;
    const double x0 = toAxis(lo->first);
    const double x1 = toAxis(hi->first);
    const double t = (toAxis(x) - x0) / (x1 - x0);
    return lo->second + t * (hi->second - lo->second);
}

} // namespace doppio
