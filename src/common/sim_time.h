/**
 * @file
 * Simulated-time representation.
 *
 * The discrete-event core advances an integer tick clock with nanosecond
 * resolution; 64 bits of nanoseconds cover ~584 years of simulated time,
 * far beyond any Spark job. The analytical model layer works in double
 * seconds; converters live here so the boundary is explicit.
 */

#ifndef DOPPIO_COMMON_SIM_TIME_H
#define DOPPIO_COMMON_SIM_TIME_H

#include <cstdint>
#include <string>

namespace doppio {

/** A point (or duration) in simulated time, in nanoseconds. */
using Tick = std::uint64_t;

constexpr Tick kTicksPerUs = 1000ULL;
constexpr Tick kTicksPerMs = 1000ULL * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000ULL * kTicksPerMs;

/** Largest representable tick; used as "never". */
constexpr Tick kTickNever = ~0ULL;

/** Convert seconds (double) to ticks, rounding to nearest. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kTicksPerSec) + 0.5);
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kTicksPerMs) + 0.5);
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs) + 0.5);
}

/** Convert ticks to double seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/** Convert ticks to double minutes (the unit most paper figures use). */
constexpr double
ticksToMinutes(Tick t)
{
    return ticksToSeconds(t) / 60.0;
}

/** Format a duration as "12.3 min" / "45.6 s" / "7.8 ms" adaptively. */
std::string formatDuration(Tick t);

} // namespace doppio

#endif // DOPPIO_COMMON_SIM_TIME_H
