/**
 * @file
 * Status and error reporting in the gem5 style.
 *
 * panic()  — internal invariant violated; aborts (simulator bug).
 * fatal()  — unusable user configuration; throws FatalError so library
 *            embedders (and tests) can catch it.
 * warn()   — something works but is suspicious.
 * inform() — normal progress messages, silenced unless verbose.
 */

#ifndef DOPPIO_COMMON_LOGGING_H
#define DOPPIO_COMMON_LOGGING_H

#include <cstdarg>
#include <functional>
#include <stdexcept>
#include <string>

namespace doppio {

/** Exception thrown by fatal(): a user-configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Enable/disable inform() output globally (default: disabled). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verboseEnabled();

/**
 * Install a hook run by panic() after printing the message and before
 * aborting — the telemetry flight recorder uses it to dump a
 * postmortem. Recursion-guarded: a panic raised *inside* the hook
 * aborts immediately instead of re-entering it. Pass nullptr (or an
 * empty function) to uninstall. The hook receives the panic message.
 */
void setPanicHook(std::function<void(const std::string &)> hook);

/** Report an internal invariant violation and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unusable user configuration by throwing FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a progress message to stderr when verbose mode is on. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace doppio

#endif // DOPPIO_COMMON_LOGGING_H
