/**
 * @file
 * Deterministic fork-join sweep executor.
 *
 * SweepRunner fans N independent evaluations across a fixed pool of
 * worker threads and commits every result at its input index, so the
 * output is byte-identical for ANY thread count — including 1, which
 * runs inline on the calling thread with no pool at all and therefore
 * reproduces the serial behaviour exactly (DESIGN.md §11).
 *
 * There is deliberately no work stealing and no completion-order
 * dependence: workers claim indices from a single atomic counter, and
 * the only thing that varies with the thread count is wall-clock time.
 * Tasks must be independent (no ordering side effects between them);
 * shared read-mostly caches behind a mutex are fine as long as a
 * cache fill is idempotent and value-deterministic.
 *
 * Exceptions thrown by a task are captured and the first one (by
 * input index, so again deterministic) is rethrown on the caller's
 * thread after the sweep drains.
 */

#ifndef DOPPIO_COMMON_PARALLEL_H
#define DOPPIO_COMMON_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace doppio::common {

/** Deterministic parallel map over an index space. */
class SweepRunner
{
  public:
    /**
     * @param jobs worker count; 1 = inline serial execution, 0 = one
     *             per hardware thread (at least 1).
     */
    explicit SweepRunner(int jobs = 0) : jobs_(resolveJobs(jobs)) {}

    /** @return the resolved worker count. */
    int jobs() const { return jobs_; }

    /** @return 0-resolved default: one job per hardware thread. */
    static int
    hardwareJobs()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }

    /**
     * Evaluate @p fn(i) for i in [0, n) and return the results in
     * input order. @p fn must be invocable concurrently from multiple
     * threads when jobs > 1.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn) const
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using R = decltype(fn(std::size_t{0}));
        std::vector<R> results(n);
        forEach(n, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

    /**
     * Run @p fn(i) for i in [0, n). Results must be committed by the
     * task itself (e.g. into a pre-sized vector at index i).
     */
    template <typename Fn>
    void
    forEach(std::size_t n, Fn &&fn) const
    {
        if (n == 0)
            return;
        if (jobs_ == 1 || n == 1) {
            // Serial reference path: the calling thread, in order.
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        std::atomic<std::size_t> next{0};
        std::vector<std::exception_ptr> errors(n);
        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        };
        const std::size_t spawn =
            std::min(static_cast<std::size_t>(jobs_), n) - 1;
        std::vector<std::thread> pool;
        pool.reserve(spawn);
        for (std::size_t t = 0; t < spawn; ++t)
            pool.emplace_back(worker);
        worker(); // the calling thread participates
        for (std::thread &thread : pool)
            thread.join();
        for (std::exception_ptr &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
    }

  private:
    static int
    resolveJobs(int jobs)
    {
        if (jobs < 0)
            jobs = 1;
        return jobs == 0 ? hardwareJobs() : jobs;
    }

    int jobs_;
};

} // namespace doppio::common

#endif // DOPPIO_COMMON_PARALLEL_H
