#include "common/sim_time.h"

#include <cstdio>

namespace doppio {

std::string
formatDuration(Tick t)
{
    char buf[64];
    const double s = ticksToSeconds(t);
    if (s >= 120.0) {
        std::snprintf(buf, sizeof(buf), "%.1f min", s / 60.0);
    } else if (s >= 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2f s", s);
    } else if (s >= 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f us", s * 1e6);
    }
    return buf;
}

} // namespace doppio
