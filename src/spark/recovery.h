/**
 * @file
 * Fetch-failure recovery stage algebra, shared by the synchronous
 * driver (SparkContext::runStageWithRecovery) and the multi-tenant
 * asynchronous driver (sched::JobContext): how much of a shuffle
 * producer must be recomputed after a node loss, and which partitions
 * of the aborted consumer still need to run.
 */

#ifndef DOPPIO_SPARK_RECOVERY_H
#define DOPPIO_SPARK_RECOVERY_H

#include <cstdint>

#include "spark/stage_spec.h"

namespace doppio::spark {

/**
 * Recovery map stage: only the dead node's share of the producer's
 * map outputs must be recomputed (roughly count / numSlaves tasks per
 * group; at least one per non-empty group).
 */
StageSpec recoverySpec(const StageSpec &producer, int numSlaves);

/**
 * Rerun of a fetch-failed stage: the tasks that already completed in
 * earlier attempts are subtracted front-to-back from the flattened
 * group order (the order the engine launches in).
 */
StageSpec remainderSpec(const StageSpec &stage, std::uint64_t completed);

/**
 * Which micro-batches a streaming driver must replay after a failure:
 * everything after the last checkpointed batch up to (excluding) the
 * next batch not yet admitted. With periodic checkpoints the replay
 * span — and hence recovery time for a stable stream — is bounded by
 * the checkpoint interval.
 */
struct ReplayPlan
{
    int firstBatch = 0; //!< first batch index to replay
    int lastBatch = -1; //!< last batch index to replay (inclusive)

    int
    count() const
    {
        return lastBatch >= firstBatch ? lastBatch - firstBatch + 1 : 0;
    }
};

/** @return the replay span (lastCheckpointBatch of -1 = no checkpoint). */
ReplayPlan planReplay(int lastCheckpointBatch, int nextBatch);

} // namespace doppio::spark

#endif // DOPPIO_SPARK_RECOVERY_H
