/**
 * @file
 * Per-stage and per-application execution metrics.
 *
 * These are the observables the paper's methodology extracts from a
 * real cluster (Spark UI stage times, iostat request sizes, I/O byte
 * counts). The model profiler consumes them; the bench harnesses print
 * them.
 */

#ifndef DOPPIO_SPARK_METRICS_H
#define DOPPIO_SPARK_METRICS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"
#include "common/units.h"
#include "oscache/page_cache.h"
#include "storage/io_request.h"

namespace doppio::spark {

/** Stage-scoped accounting for one I/O operation class. */
struct StageIoStats
{
    std::uint64_t requests = 0;
    Bytes bytes = 0;
    SummaryStats requestSize;
    /**
     * Wall-clock duration of each task's phase doing this operation
     * (device time plus the pipelined per-chunk CPU). At P=1 this is
     * the paper's per-core I/O access time, from which T and lambda
     * derive.
     */
    SummaryStats phaseSeconds;

    /** @return iostat-style average request size (bytes). */
    double
    avgRequestSize() const
    {
        return requests ? requestSize.mean() : 0.0;
    }
};

/**
 * Failure/recovery accounting (fault-injection runs). All counters
 * stay zero in a fault-free run, and any() stays false even when
 * taskAttempts is counted, so fault-free JSON output is unchanged.
 */
struct FaultMetrics
{
    std::uint64_t taskAttempts = 0; //!< attempts launched (incl. clean)
    std::uint64_t taskFailures = 0; //!< attempts that crashed
    std::uint64_t taskRetries = 0;  //!< failed tasks re-queued
    std::uint64_t lostAttempts = 0; //!< attempts killed by node loss
    std::uint64_t fetchFailures = 0;   //!< shuffle fetches that failed
    std::uint64_t stageReattempts = 0; //!< stages rerun after fetch loss
    std::uint64_t hdfsFailovers = 0;   //!< reads served by a remote replica
    std::uint64_t corruptReads = 0; //!< reads failing checksum verify
    std::uint64_t partitionTimeouts = 0; //!< backoff rounds vs. a split
    double wastedTaskSeconds = 0.0; //!< work discarded by crashes/kills
    double recoverySeconds = 0.0;   //!< wall-clock of recovery reruns
    Bytes reReplicatedBytes = 0;    //!< HDFS re-replication traffic
    Bytes quarantinedBytes = 0;     //!< corrupt replica bytes repaired
    Bytes lostDirtyBytes = 0;       //!< dirty page-cache bytes lost

    /** @return true when any failure was observed (taskAttempts alone
     *          does not count — it grows in healthy runs too). */
    bool any() const;

    FaultMetrics &operator+=(const FaultMetrics &other);
};

/**
 * Unified-memory accounting (SparkConf::unifiedMemory runs). All
 * byte counts are cluster-wide sums over the per-node managers. The
 * JSON writer emits the block only when the run modeled unified
 * memory, keeping legacy output bit-for-bit identical.
 */
struct MemoryMetrics
{
    Bytes poolBytes = 0;          //!< configured pool, summed over nodes
    Bytes peakStorageBytes = 0;   //!< sum of per-node storage peaks
    Bytes peakExecutionBytes = 0; //!< sum of per-node execution peaks
    std::uint64_t evictedBlocks = 0; //!< cached blocks evicted
    Bytes evictedBytes = 0;          //!< in-memory bytes evicted
    Bytes evictedToDiskBytes = 0; //!< serialized bytes written to disk
    std::uint64_t droppedBlocks = 0; //!< blocks lost (recompute later)
    std::uint64_t recomputedPartitions = 0; //!< lineage recomputations
    std::uint64_t spills = 0;      //!< task phases that spilled
    std::uint64_t spillPasses = 0; //!< external-sort merge passes
    Bytes spilledBytes = 0;       //!< reservation shortfall sent to disk
    std::uint64_t oomKills = 0;   //!< attempts killed by failed minimum
};

/**
 * Micro-batch streaming accounting (workloads::Streaming runs driven
 * through sched::StreamingDriver). Latencies are end-to-end per batch:
 * arrival (admission into the bounded backlog) to job completion,
 * against the configured SLO. Present in JSON output only when the
 * run was a streaming run.
 */
struct StreamingMetrics
{
    double ratePerSec = 0.0;   //!< configured arrival rate lambda
    double sloSeconds = 0.0;   //!< per-batch latency objective
    int maxBacklog = 0;        //!< bounded-queue capacity (batches)
    std::uint64_t arrivals = 0;  //!< batches that arrived
    std::uint64_t processed = 0; //!< batches that completed
    std::uint64_t dropped = 0; //!< arrivals shed by backpressure
    std::uint64_t sloViolations = 0; //!< processed batches over SLO
    int peakBacklog = 0;       //!< max batches queued or running
    double meanLatencySec = 0.0;
    double p50LatencySec = 0.0;
    double p99LatencySec = 0.0;
    double maxLatencySec = 0.0;
    /** Mean per-batch service time (submission to completion of the
     *  batch job, excluding queueing), the processing rate's inverse. */
    double meanServiceSec = 0.0;
    /** Configured checkpoint cadence: < 0 disables recovery entirely,
     *  0 recovers by replaying every batch (no periodic checkpoints),
     *  > 0 checkpoints state through HDFS on this period so replay —
     *  and hence recovery time for a stable stream — stays bounded. */
    double checkpointIntervalSec = -1.0;
    std::uint64_t checkpoints = 0; //!< checkpoint jobs completed
    std::uint64_t recoveries = 0;  //!< post-failure recovery jobs
    double recoverySecondsTotal = 0.0; //!< sum of kill->recovered spans
    double maxRecoverySec = 0.0;       //!< worst single recovery

    /**
     * @return true when the arrival process kept up: nothing dropped
     * and the backlog never pinned at capacity. The stability boundary
     * reported by bench/ext_multitenant is the largest swept lambda
     * for which this holds while p99 latency stays bounded.
     */
    bool
    stable() const
    {
        return dropped == 0 && peakBacklog < maxBacklog;
    }
};

/** Everything measured about one executed stage. */
struct StageMetrics
{
    std::string name;
    int numTasks = 0;
    Tick startTick = 0;
    Tick endTick = 0;
    /// Wall-clock duration of each task, including queueing-free phases.
    SummaryStats taskDuration;
    /// Per-IoOp logical bytes/requests issued by this stage's tasks.
    std::array<StageIoStats, storage::kNumIoOps> io;
    /// Failure/recovery counters of this stage (all-zero when healthy).
    FaultMetrics faults;
    /**
     * Set (>= 0) when the stage aborted on a shuffle-fetch failure
     * against this source node: the stage did NOT complete and the
     * scheduler must recompute the lost map outputs and rerun. -1
     * means the stage ran to completion.
     */
    int fetchFailedSource = -1;

    /**
     * Fold a rerun's metrics into this (failed) stage attempt: I/O and
     * task-duration accounting accumulate, the window extends to the
     * rerun's end, fault counters add up, and the rerun's completion
     * state (fetchFailedSource) replaces this one's. Keeps one merged
     * entry per logical stage so JobMetrics::seconds() — the sum of
     * stage durations — never double-counts recovered time.
     */
    void foldIn(const StageMetrics &rerun);

    /** @return stage duration in seconds. */
    double
    seconds() const
    {
        return ticksToSeconds(endTick - startTick);
    }

    /** @return accounting for one operation class. */
    const StageIoStats &
    forOp(storage::IoOp op) const
    {
        return io[static_cast<std::size_t>(op)];
    }

    StageIoStats &
    forOp(storage::IoOp op)
    {
        return io[static_cast<std::size_t>(op)];
    }

    /** @return total bytes moved in @p kind direction by this stage. */
    Bytes totalBytes(storage::IoKind kind) const;
};

/** Metrics for one job (action): its stages in execution order. */
struct JobMetrics
{
    std::string name;
    std::vector<StageMetrics> stages;

    /** @return job duration in seconds (sum of stage durations). */
    double seconds() const;
};

/** Metrics for a whole application run. */
struct AppMetrics
{
    std::string name;
    std::vector<JobMetrics> jobs;
    /**
     * Cluster-wide OS page-cache counters (summed over nodes), present
     * only when the run modeled the page cache; the JSON writer omits
     * the block entirely otherwise, keeping cache-off output identical
     * to pre-page-cache builds.
     */
    bool pageCachePresent = false;
    oscache::PageCacheStats pageCache;
    /**
     * Application-wide fault/recovery totals, present only when the
     * run had a fault injector attached; the JSON writer omits the
     * block otherwise, keeping fault-free output bit-for-bit identical
     * to pre-fault builds.
     */
    bool faultsPresent = false;
    FaultMetrics faults;
    /**
     * Unified-memory totals, present only when the run modeled the
     * unified memory manager (SparkConf::unifiedMemory); the JSON
     * writer omits the block otherwise.
     */
    bool memoryPresent = false;
    MemoryMetrics memory;
    /**
     * Micro-batch latency/stability totals, present only for
     * streaming runs (workloads::Streaming); the JSON writer omits
     * the block otherwise.
     */
    bool streamingPresent = false;
    StreamingMetrics streaming;

    /** @return application duration in seconds. */
    double seconds() const;

    /** Flatten all stages across jobs, in execution order. */
    std::vector<const StageMetrics *> allStages() const;

    /**
     * Sum the durations of all stages whose name starts with
     * @p prefix — the paper groups e.g. all 50 LR iteration stages
     * into one "iteration" bar.
     */
    double secondsForPrefix(const std::string &prefix) const;

    /** Sum of @p op bytes across all stages with name prefix. */
    Bytes bytesForPrefix(const std::string &prefix,
                         storage::IoOp op) const;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_METRICS_H
