#include "spark/spark_context.h"

#include "common/logging.h"
#include "faults/fault_injector.h"
#include "spark/recovery.h"

namespace doppio::spark {

SparkContext::SparkContext(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
                           SparkConf conf)
    : cluster_(clusterRef), hdfs_(hdfs), conf_(conf),
      blockManager_(clusterRef, conf_),
      dag_(conf_, hdfs, blockManager_),
      engine_(clusterRef, hdfs, conf_)
{
    if (conf_.executorCores <= 0)
        fatal("SparkContext: executorCores must be positive");
    if (conf_.unifiedMemory)
        engine_.setMemoryModel(&blockManager_);
}

RddRef
SparkContext::hadoopFile(const std::string &fileName)
{
    return Rdd::source(fileName, hdfs_, hdfs_.fileIdByName(fileName));
}

void
SparkContext::setFaultInjector(faults::FaultInjector *injector)
{
    injector_ = injector;
    engine_.setFaultInjector(injector);
    hdfs_.setFaultInjector(injector);
}

const JobMetrics &
SparkContext::runJob(const std::string &jobName, const RddRef &target,
                     const ActionSpec &action)
{
    JobSpec spec = dag_.compile(jobName, target, action);
    JobMetrics job;
    job.name = spec.name;
    inform("job %s: %zu stage(s)", spec.name.c_str(),
           spec.stages.size());
    for (const StageSpec &stage : spec.stages) {
        StageMetrics metrics = runStageWithRecovery(stage, 0);
        inform("  stage %-24s M=%-6d %s", metrics.name.c_str(),
               metrics.numTasks, formatDuration(metrics.endTick -
                                                metrics.startTick)
                                     .c_str());
        job.stages.push_back(std::move(metrics));
    }
    metrics_.jobs.push_back(std::move(job));
    return metrics_.jobs.back();
}

StageMetrics
SparkContext::runStageWithRecovery(const StageSpec &stage, int depth)
{
    // Remember shuffle producers so a downstream fetch failure can
    // recompute the lost map outputs from lineage.
    if (injector_ != nullptr && stage.writesShuffle())
        shuffleProducers_.emplace(stage.name, stage);

    StageMetrics merged = engine_.runStage(stage);
    if (merged.fetchFailedSource < 0)
        return merged;

    if (depth > 8)
        fatal("SparkContext: fetch-failure recovery recursion too deep "
              "at stage %s",
              stage.name.c_str());
    /// Completed tasks of THIS stage across attempts (recovery map
    /// stages folded into `merged` must not count here).
    std::uint64_t completed = merged.taskDuration.count();
    int attempts = 1;
    while (merged.fetchFailedSource >= 0) {
        if (attempts >= conf_.stageMaxAttempts)
            fatal("SparkContext: stage %s failed %d attempts "
                  "(stageMaxAttempts), aborting the application",
                  stage.name.c_str(), attempts);
        ++attempts;
        inform("  stage %-24s fetch failure from node %d, attempt %d",
               stage.name.c_str(), merged.fetchFailedSource, attempts);

        auto producer = shuffleProducers_.find(stage.shuffleSource);
        if (producer == shuffleProducers_.end())
            fatal("SparkContext: stage %s hit a fetch failure but its "
                  "shuffle producer '%s' is unknown",
                  stage.name.c_str(), stage.shuffleSource.c_str());
        // Regenerate the lost map outputs (they land on alive nodes),
        // then rerun the partitions this stage has not finished yet.
        const StageMetrics recovery = runStageWithRecovery(
            recoverySpec(producer->second, cluster_.numSlaves()),
            depth + 1);
        merged.faults.recoverySeconds += recovery.seconds();
        merged.foldIn(recovery);
        merged.fetchFailedSource = -1; // recovery completed

        const StageMetrics rerun =
            engine_.runStage(remainderSpec(stage, completed));
        completed += rerun.taskDuration.count();
        merged.faults.recoverySeconds += rerun.seconds();
        ++merged.faults.stageReattempts;
        merged.foldIn(rerun);
    }
    return merged;
}

void
SparkContext::unpersist(const RddRef &rdd)
{
    blockManager_.unpersist(rdd.get());
}

} // namespace doppio::spark
