#include "spark/spark_context.h"

#include "common/logging.h"

namespace doppio::spark {

SparkContext::SparkContext(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
                           SparkConf conf)
    : cluster_(clusterRef), hdfs_(hdfs), conf_(conf),
      blockManager_(clusterRef.totalStorageMemory(),
                    conf.memoryExpansionFactor),
      dag_(conf_, hdfs, blockManager_),
      engine_(clusterRef, hdfs, conf_)
{
    if (conf_.executorCores <= 0)
        fatal("SparkContext: executorCores must be positive");
}

RddRef
SparkContext::hadoopFile(const std::string &fileName)
{
    return Rdd::source(fileName, hdfs_, hdfs_.fileIdByName(fileName));
}

const JobMetrics &
SparkContext::runJob(const std::string &jobName, const RddRef &target,
                     const ActionSpec &action)
{
    JobSpec spec = dag_.compile(jobName, target, action);
    JobMetrics job;
    job.name = spec.name;
    inform("job %s: %zu stage(s)", spec.name.c_str(),
           spec.stages.size());
    for (const StageSpec &stage : spec.stages) {
        StageMetrics metrics = engine_.runStage(stage);
        inform("  stage %-24s M=%-6d %s", metrics.name.c_str(),
               metrics.numTasks, formatDuration(metrics.endTick -
                                                metrics.startTick)
                                     .c_str());
        job.stages.push_back(std::move(metrics));
    }
    metrics_.jobs.push_back(std::move(job));
    return metrics_.jobs.back();
}

void
SparkContext::unpersist(const RddRef &rdd)
{
    blockManager_.unpersist(rdd.get());
}

} // namespace doppio::spark
