/**
 * @file
 * Application entry point tying the Spark layers together.
 *
 * A SparkContext owns the DAG scheduler, block manager and task engine
 * for one application on one cluster. Jobs (actions) compile to stages
 * and execute to completion; materialization state (caches, shuffle
 * files) persists across jobs, so iterative applications reuse cached
 * RDDs and later jobs skip completed shuffle map stages.
 */

#ifndef DOPPIO_SPARK_SPARK_CONTEXT_H
#define DOPPIO_SPARK_SPARK_CONTEXT_H

#include <string>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "spark/block_manager.h"
#include "spark/dag_scheduler.h"
#include "spark/metrics.h"
#include "spark/rdd.h"
#include "spark/spark_conf.h"
#include "spark/task_engine.h"

namespace doppio::spark {

/** One Spark application instance. */
class SparkContext
{
  public:
    /**
     * @param clusterRef slave fleet to run on.
     * @param hdfs       filesystem holding the input files.
     * @param conf       runtime configuration (P, buffer sizes, ...).
     */
    SparkContext(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
                 SparkConf conf);

    /** Leaf RDD over a registered HDFS file (partitions = blocks). */
    RddRef hadoopFile(const std::string &fileName);

    /**
     * Run the job triggered by @p action on @p target; stages execute
     * to completion on the simulated cluster. Metrics are appended to
     * the application metrics and returned.
     */
    const JobMetrics &runJob(const std::string &jobName,
                             const RddRef &target,
                             const ActionSpec &action);

    /** Drop a cached/persisted RDD (GraphX-style generation cleanup). */
    void unpersist(const RddRef &rdd);

    /**
     * Attach a task-trace collector recording every task's placement
     * and timing (Spark event-log style); nullptr detaches. Not
     * owned.
     */
    void setTaskTrace(TaskTrace *trace) { engine_.setTrace(trace); }

    const SparkConf &conf() const { return conf_; }
    cluster::Cluster &clusterRef() { return cluster_; }
    dfs::Hdfs &hdfs() { return hdfs_; }
    BlockManager &blockManager() { return blockManager_; }
    TaskEngine &engine() { return engine_; }

    /** @return all metrics accumulated so far. */
    const AppMetrics &metrics() const { return metrics_; }
    AppMetrics &metrics() { return metrics_; }

  private:
    cluster::Cluster &cluster_;
    dfs::Hdfs &hdfs_;
    SparkConf conf_;
    BlockManager blockManager_;
    DagScheduler dag_;
    TaskEngine engine_;
    AppMetrics metrics_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_SPARK_CONTEXT_H
