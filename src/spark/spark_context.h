/**
 * @file
 * Application entry point tying the Spark layers together.
 *
 * A SparkContext owns the DAG scheduler, block manager and task engine
 * for one application on one cluster. Jobs (actions) compile to stages
 * and execute to completion; materialization state (caches, shuffle
 * files) persists across jobs, so iterative applications reuse cached
 * RDDs and later jobs skip completed shuffle map stages.
 */

#ifndef DOPPIO_SPARK_SPARK_CONTEXT_H
#define DOPPIO_SPARK_SPARK_CONTEXT_H

#include <string>
#include <unordered_map>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "spark/block_manager.h"
#include "spark/dag_scheduler.h"
#include "spark/metrics.h"
#include "spark/rdd.h"
#include "spark/spark_conf.h"
#include "spark/task_engine.h"

namespace doppio::spark {

/** One Spark application instance. */
class SparkContext
{
  public:
    /**
     * @param clusterRef slave fleet to run on.
     * @param hdfs       filesystem holding the input files.
     * @param conf       runtime configuration (P, buffer sizes, ...).
     */
    SparkContext(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
                 SparkConf conf);

    /** Leaf RDD over a registered HDFS file (partitions = blocks). */
    RddRef hadoopFile(const std::string &fileName);

    /**
     * Run the job triggered by @p action on @p target; stages execute
     * to completion on the simulated cluster. Metrics are appended to
     * the application metrics and returned.
     */
    const JobMetrics &runJob(const std::string &jobName,
                             const RddRef &target,
                             const ActionSpec &action);

    /** Drop a cached/persisted RDD (GraphX-style generation cleanup). */
    void unpersist(const RddRef &rdd);

    /**
     * Attach a task-trace collector recording every task's placement
     * and timing (Spark event-log style); nullptr detaches. Not
     * owned.
     */
    void setTaskTrace(TaskTrace *trace) { engine_.setTrace(trace); }

    /**
     * Attach a telemetry collector (nullptr detaches; not owned):
     * wires the task engine (stage windows, per-core task/phase spans)
     * and the block manager (eviction instants, pool counters). The
     * cluster-side hooks (devices, caches, network, faults) are wired
     * by cluster::Cluster::setTraceCollector — call both to get the
     * full picture.
     */
    void
    setTraceCollector(trace::TraceCollector *collector)
    {
        engine_.setTraceCollector(collector);
        blockManager_.setTraceCollector(collector);
    }

    /**
     * Attach the run's fault injector (nullptr detaches): wires the
     * task engine (crash draws, node-loss handling, fetch-failure
     * detection) and HDFS (read failover, re-replication), and enables
     * stage-level recovery in runJob — a stage aborted by a
     * FetchFailure recomputes the lost map outputs from lineage and
     * reruns the lost partitions, up to SparkConf::stageMaxAttempts.
     * Not owned; must outlive subsequent runJob() calls.
     */
    void setFaultInjector(faults::FaultInjector *injector);

    const SparkConf &conf() const { return conf_; }
    cluster::Cluster &clusterRef() { return cluster_; }
    dfs::Hdfs &hdfs() { return hdfs_; }
    BlockManager &blockManager() { return blockManager_; }
    TaskEngine &engine() { return engine_; }

    /** @return all metrics accumulated so far. */
    const AppMetrics &metrics() const { return metrics_; }
    AppMetrics &metrics() { return metrics_; }

  private:
    /**
     * Run one stage, recovering from fetch failures: rerun the shuffle
     * producer's lost share, then the failed stage's remaining tasks,
     * folding everything into one merged StageMetrics entry so job
     * durations (sum of stage windows) never double-count.
     */
    StageMetrics runStageWithRecovery(const StageSpec &stage, int depth);

    cluster::Cluster &cluster_;
    dfs::Hdfs &hdfs_;
    SparkConf conf_;
    BlockManager blockManager_;
    DagScheduler dag_;
    TaskEngine engine_;
    AppMetrics metrics_;
    faults::FaultInjector *injector_ = nullptr;
    /// Specs of executed shuffle map stages, for lineage recomputation.
    std::unordered_map<std::string, StageSpec> shuffleProducers_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_SPARK_CONTEXT_H
