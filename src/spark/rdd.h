/**
 * @file
 * RDD lineage graph.
 *
 * An Rdd describes one resilient distributed dataset: its partition
 * count, serialized and in-memory sizes, the compute cost to produce it
 * from its inputs, its storage level, and its dependencies (narrow or
 * shuffle). Workloads declare lineage graphs; the DAG scheduler compiles
 * them into executable stages, splitting at shuffle boundaries exactly
 * as Spark's DAGScheduler does.
 *
 * Doppio models performance, not data content, so an RDD carries sizes
 * and cost densities rather than records.
 */

#ifndef DOPPIO_SPARK_RDD_H
#define DOPPIO_SPARK_RDD_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "dfs/hdfs.h"

namespace doppio::spark {

/** Where a persisted RDD may live (subset of Spark's storage levels). */
enum class StorageLevel { None, MemoryOnly, MemoryAndDisk, DiskOnly };

/** @return printable name of a storage level. */
const char *storageLevelName(StorageLevel level);

class Rdd;
/** Shared handle to a lineage node. */
using RddRef = std::shared_ptr<Rdd>;

/** Shuffle dependency parameters (set on the shuffled child RDD). */
struct ShuffleSpec
{
    /** Total bytes written by the map side == read by the reduce side. */
    Bytes bytes = 0;
    /** CPU pipelined with shuffle write (sort, serialize, compress). */
    double mapCpuPerByte = 0.0;
    /** Name for the map-side stage (defaults to "<rdd>.map"). */
    std::string mapStageName;
};

/**
 * One lineage node. Fields are public by design: workloads are
 * declarative tables of sizes and cost densities; the factories enforce
 * the structural invariants (partition-count consistency, single
 * shuffle parent).
 */
class Rdd : public std::enable_shared_from_this<Rdd>
{
  public:
    /** One dependency edge. */
    struct Dep
    {
        RddRef parent;
        bool shuffle = false;
    };

    std::string name;
    int numPartitions = 0;
    /** Serialized (on-disk / on-wire) size of the full dataset. */
    Bytes bytes = 0;
    /**
     * Deserialized in-memory footprint; 0 means "derive from bytes via
     * SparkConf::memoryExpansionFactor". GATK4's markedReads expands
     * 122 GB -> ~870 GB (paper §III-B2).
     */
    Bytes memoryBytes = 0;

    /** Pure CPU per input byte to produce this RDD (not pipelined). */
    double cpuPerInputByte = 0.0;
    /** Fixed pure CPU per task to produce this RDD. */
    double cpuPerTask = 0.0;
    /**
     * CPU interleaved chunk-by-chunk whenever this RDD's bytes are read
     * from a device (HDFS source read, shuffle read, persist read):
     * decompression, deserialization, record parsing. This is what
     * makes per-core I/O throughput T and the paper's lambda ratio
     * emerge in simulation.
     */
    double pipelinedCpuPerByte = 0.0;

    /**
     * Non-zero pins the page-cache stream identity of this source
     * RDD's HDFS reads (see IoPhaseSpec::cacheStream). By default a
     * stream is derived from the phase shape, which deliberately
     * aliases equal-shaped re-reads into cache hits; distinct inputs
     * of identical shape (e.g. a stream's fresh per-batch files) set
     * distinct salts so they never hit each other's cached pages.
     * Sources only.
     */
    std::uint64_t cacheStreamSalt = 0;

    StorageLevel storageLevel = StorageLevel::None;
    std::vector<Dep> deps;
    /** Set for leaf RDDs backed by an HDFS file. */
    std::optional<dfs::FileId> sourceFile;
    /** Valid iff this RDD has a shuffle dependency. */
    ShuffleSpec shuffle;
    /** Stage-level GC pressure contributed by computing this RDD. */
    double gcSensitivity = 0.0;

    /** Leaf RDD over an HDFS file; partitions = HDFS blocks. */
    static RddRef source(std::string name, const dfs::Hdfs &hdfs,
                         dfs::FileId file);

    /**
     * Narrow transformation (map/filter/flatMap/union/zipPartitions).
     * Partition count = sum over parents (equals the parent count for a
     * single parent).
     * @param outBytes serialized size of the result.
     */
    static RddRef narrow(std::string name, std::vector<RddRef> parents,
                         Bytes outBytes);

    /**
     * Shuffle transformation (groupByKey/reduceByKey/repartition/
     * sortByKey).
     * @param numPartitions reduce-side partition count R.
     * @param outBytes      serialized size of the result.
     * @param shuffleSpec   bytes crossing the shuffle and map-side CPU.
     */
    static RddRef shuffled(std::string name, RddRef parent,
                           int numPartitions, Bytes outBytes,
                           ShuffleSpec shuffleSpec);

    /** Set the storage level; @return this (for chaining). */
    RddRef persist(StorageLevel level);

    /**
     * Request reliable checkpointing: when this RDD is first
     * materialized its partitions are also written through HDFS (real
     * device and replication traffic), and later jobs whose lineage
     * crosses it read the checkpoint back instead of recomputing the
     * ancestry — Spark's RDD.checkpoint() lineage truncation.
     * @return this (for chaining).
     */
    RddRef checkpoint();

    /** Set by checkpoint(); the DAG scheduler acts on it at compile. */
    bool checkpointRequested = false;

    /** @return true for a leaf HDFS-backed RDD. */
    bool isSource() const { return sourceFile.has_value(); }

    /** @return true when this RDD has a shuffle dependency. */
    bool isShuffled() const
    {
        return !deps.empty() && deps.front().shuffle;
    }

    /** @return serialized bytes per partition. */
    Bytes bytesPerPartition() const;

    /** @return in-memory footprint given the default expansion. */
    Bytes memoryFootprint(double expansionFactor) const;

    /** @return the map-side stage name for a shuffled RDD. */
    std::string mapStageName() const;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_RDD_H
