#include "spark/memory_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace doppio::spark {

MemoryManager::MemoryManager(Bytes poolBytes, double storageFraction)
    : configuredPool_(poolBytes), storageFraction_(storageFraction),
      pool_(poolBytes)
{
    if (storageFraction_ < 0.0 || storageFraction_ > 1.0)
        fatal("MemoryManager: storage fraction must be in [0, 1], "
              "got %g",
              storageFraction_);
}

Bytes
MemoryManager::storageFloor() const
{
    return static_cast<Bytes>(static_cast<double>(pool_) *
                              storageFraction_);
}

Bytes
MemoryManager::executionCap() const
{
    // A degrade-mem clamp can leave the pool overcommitted until
    // execution holds drain; the cap never goes negative.
    const Bytes protected_storage =
        std::min(storageUsed_, storageFloor());
    return pool_ > protected_storage ? pool_ - protected_storage : 0;
}

bool
MemoryManager::hasBlock(BlockId id) const
{
    return blocks_.count(id) != 0;
}

void
MemoryManager::touchBlock(BlockId id)
{
    auto it = blocks_.find(id);
    if (it == blocks_.end())
        return;
    lru_.erase(it->second.lruPos);
    lru_.push_back(id);
    it->second.lruPos = std::prev(lru_.end());
}

Bytes
MemoryManager::dropBlock(BlockId id)
{
    auto it = blocks_.find(id);
    if (it == blocks_.end())
        return 0;
    const Bytes bytes = it->second.bytes;
    lru_.erase(it->second.lruPos);
    blocks_.erase(it);
    storageUsed_ = bytes <= storageUsed_ ? storageUsed_ - bytes : 0;
    return bytes;
}

Bytes
MemoryManager::evictDownTo(Bytes need, Bytes keepStorage,
                           std::vector<BlockId> *evicted)
{
    Bytes freed = 0;
    while (free() < need && storageUsed_ > keepStorage &&
           !lru_.empty()) {
        const BlockId victim = lru_.front();
        const Bytes bytes = dropBlock(victim);
        freed += bytes;
        if (evicted != nullptr)
            evicted->push_back(victim);
    }
    return freed;
}

bool
MemoryManager::putBlock(BlockId id, Bytes bytes,
                        std::vector<BlockId> *evicted)
{
    auto it = blocks_.find(id);
    if (it != blocks_.end()) {
        touchBlock(id);
        return true;
    }
    // Storage may claim everything execution does not hold — but
    // never evict execution, so a block larger than that ceiling can
    // never be cached.
    const Bytes ceiling =
        pool_ > executionUsed_ ? pool_ - executionUsed_ : 0;
    if (bytes > ceiling)
        return false;
    if (free() < bytes)
        evictDownTo(bytes, /*keepStorage=*/0, evicted);
    if (free() < bytes)
        return false; // unreachable: eviction can empty storage
    Block block;
    block.bytes = bytes;
    lru_.push_back(id);
    block.lruPos = std::prev(lru_.end());
    blocks_.emplace(id, block);
    storageUsed_ += bytes;
    peakStorage_ = std::max(peakStorage_, storageUsed_);
    return true;
}

Bytes
MemoryManager::acquireExecution(Bytes want, int activeTasks,
                                std::vector<BlockId> *evicted)
{
    if (want == 0)
        return 0;
    if (activeTasks < 1)
        activeTasks = 1;
    const Bytes fair_share =
        executionCap() / static_cast<Bytes>(activeTasks);
    Bytes target = std::min(want, fair_share);
    if (target == 0)
        return 0;
    if (free() < target) {
        // Borrow from storage: evict LRU blocks, stopping at the floor.
        evictDownTo(target, storageFloor(), evicted);
    }
    const Bytes grant = std::min(target, free());
    executionUsed_ += grant;
    peakExecution_ = std::max(peakExecution_, executionUsed_);
    return grant;
}

void
MemoryManager::releaseExecution(Bytes bytes)
{
    executionUsed_ =
        bytes <= executionUsed_ ? executionUsed_ - bytes : 0;
}

void
MemoryManager::setPoolFraction(double fraction,
                               std::vector<BlockId> *evicted)
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("MemoryManager: pool fraction must be in (0, 1], got %g",
              fraction);
    pool_ = static_cast<Bytes>(static_cast<double>(configuredPool_) *
                               fraction);
    // Shed cached blocks that no longer fit. Execution holds are not
    // revoked (a running task cannot give memory back mid-sort); the
    // pool stays overcommitted until releases catch up.
    while (storageUsed_ + executionUsed_ > pool_ && !lru_.empty()) {
        const BlockId victim = lru_.front();
        dropBlock(victim);
        if (evicted != nullptr)
            evicted->push_back(victim);
    }
}

void
MemoryManager::reset()
{
    pool_ = configuredPool_;
    storageUsed_ = 0;
    executionUsed_ = 0;
    peakStorage_ = 0;
    peakExecution_ = 0;
    blocks_.clear();
    lru_.clear();
}

} // namespace doppio::spark
