/**
 * @file
 * Lineage-to-stage compiler.
 *
 * Walks an RDD lineage from an action, splitting at shuffle boundaries
 * into ShuffleMapStages and a result stage, exactly as Spark's
 * DAGScheduler does. Along the way it resolves how each stage obtains
 * its input:
 *
 *  - an RDD cached in memory reads for free;
 *  - an RDD persisted on disk becomes a PersistRead phase (disk-store
 *    request size);
 *  - an available shuffle becomes a ShuffleRead phase whose request
 *    size is perReducerBytes / M mappers — the paper's small-block
 *    shuffle access pattern (§III-C2);
 *  - anything unmaterialized is recomputed by inlining its upstream
 *    chain into the consuming stage (Spark's lineage recomputation) —
 *    the reason GATK4's BR and SF stages each re-read the full shuffle
 *    and the 122 GB input (Table IV).
 */

#ifndef DOPPIO_SPARK_DAG_SCHEDULER_H
#define DOPPIO_SPARK_DAG_SCHEDULER_H

#include <string>
#include <vector>

#include "common/units.h"
#include "dfs/hdfs.h"
#include "spark/block_manager.h"
#include "spark/rdd.h"
#include "spark/spark_conf.h"
#include "spark/stage_spec.h"

namespace doppio::spark {

/** Terminal operation on an RDD. */
struct ActionSpec
{
    enum class Kind { Count, Collect, SaveAsHadoopFile };

    Kind kind = Kind::Count;
    /** For SaveAsHadoopFile: bytes written to HDFS. */
    Bytes outputBytes = 0;

    static ActionSpec count() { return {Kind::Count, 0}; }
    static ActionSpec collect() { return {Kind::Collect, 0}; }

    static ActionSpec
    saveAsHadoopFile(Bytes outputBytes)
    {
        return {Kind::SaveAsHadoopFile, outputBytes};
    }
};

/** Compiled form of one job: its stages in execution order. */
struct JobSpec
{
    std::string name;
    std::vector<StageSpec> stages;
};

/**
 * Compiles jobs. Mutates the BlockManager: materialization decisions
 * (cache placements, shuffle availability) are made at compile time and
 * persist across jobs in the same context.
 */
class DagScheduler
{
  public:
    DagScheduler(const SparkConf &conf, const dfs::Hdfs &hdfs,
                 BlockManager &blockManager);

    /**
     * Compile the job triggered by @p action on @p target.
     * @param jobName names the result stage (e.g. "BR").
     */
    JobSpec compile(const std::string &jobName, const RddRef &target,
                    const ActionSpec &action);

  private:
    /** Groups plus stage-level aggregates built while walking a chain. */
    struct ChainBuild
    {
        std::vector<TaskGroupSpec> groups;
        double gcSensitivity = 0.0;
        /** Map stage feeding the chain's shuffle read, if any. */
        std::string shuffleSource;
    };

    /**
     * Produce the task groups that compute @p rdd's partitions within
     * the current stage, appending any required parent map stages to
     * @p stages.
     */
    ChainBuild buildChain(const RddRef &rdd,
                          std::vector<StageSpec> &stages);

    /**
     * Compute @p rdd from its lineage (source read, shuffle read or
     * narrow-pipelined parents), ignoring any materialized copy — the
     * shared tail of buildChain() and the unified-mode recompute path.
     */
    ChainBuild buildCompute(const RddRef &rdd,
                            std::vector<StageSpec> &stages);

    /**
     * Unified mode: read a per-block materialized RDD. Cached
     * partitions are free, disk partitions become PersistRead tasks,
     * and dropped partitions are recomputed from lineage (scaling the
     * recompute groups to the missing share) and re-cached.
     */
    ChainBuild buildUnifiedRead(const RddRef &rdd,
                                std::vector<StageSpec> &stages);

    /** Emit @p rdd's map stage if its shuffle files are absent. */
    void ensureShuffle(const RddRef &rdd, std::vector<StageSpec> &stages);

    /**
     * If @p rdd is persisted, decide placement and append PersistWrite
     * phases for a disk placement.
     */
    void maybeMaterialize(const RddRef &rdd, ChainBuild &build);

    /**
     * If @p rdd requested checkpointing and none exists yet, append
     * HdfsWrite phases (the reliable copy, with real device and
     * replication traffic) and record the checkpoint so later chains
     * crossing this RDD truncate their lineage here.
     */
    void maybeCheckpoint(const RddRef &rdd, ChainBuild &build);

    /** Split @p bytes into uniform requests of roughly @p preferred. */
    static IoPhaseSpec makeIoPhase(storage::IoOp op, Bytes bytes,
                                   Bytes preferred, double cpuPerByte,
                                   int fanIn = 1);

    const SparkConf &conf_;
    const dfs::Hdfs &hdfs_;
    BlockManager &blockManager_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_DAG_SCHEDULER_H
