/**
 * @file
 * Executable stage description.
 *
 * The DAG scheduler compiles an RDD lineage into StageSpec objects; the
 * task engine executes them. A stage holds one or more task groups
 * (e.g. GATK4's BR stage runs shuffle-read tasks and HDFS-read filter
 * tasks side by side); each group's tasks run the same phase sequence.
 */

#ifndef DOPPIO_SPARK_STAGE_SPEC_H
#define DOPPIO_SPARK_STAGE_SPEC_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/units.h"
#include "storage/io_request.h"

namespace doppio::spark {

/**
 * One I/O phase of a task: move bytesPerTask in requestSize chunks,
 * with cpuPerByte seconds of pipelined CPU (decompression,
 * deserialization, sorting) interleaved per chunk.
 *
 * The device and path are implied by the operation:
 *  - HdfsRead/HdfsWrite   -> the node's HDFS disk (writes replicate);
 *  - ShuffleRead          -> mapper-side local disks across the
 *                            cluster + network for remote portions;
 *  - ShuffleWrite, PersistRead, PersistWrite -> the node's local disk.
 */
struct IoPhaseSpec
{
    storage::IoOp op = storage::IoOp::HdfsRead;
    Bytes bytesPerTask = 0;
    Bytes requestSize = 0;
    double cpuPerByte = 0.0;
    /**
     * For ShuffleRead: number of upstream map outputs the chunks are
     * scattered over (determines request size accounting upstream and
     * the per-source-node interleaving). Ignored otherwise.
     */
    int fanIn = 1;
    /**
     * Page-cache stream identity (see oscache::PageCache). 0 lets the
     * task engine derive one from the phase shape so that re-reads of
     * the same logical data (iterative jobs, persist-read after
     * persist-write) hit the cache; set it explicitly to tie phases
     * together across stages or to force distinct working sets.
     */
    std::uint64_t cacheStream = 0;
};

/**
 * Derive a page-cache stream identity for a phase. Read and write ops
 * of the same purpose map to the same family, so a write followed by a
 * read of the same per-task byte count lands on the same stream — that
 * is exactly the re-read pattern (persist, iterative HDFS input) the
 * page cache turns into hits. Shared between the task engine and the
 * block manager so that blocks evicted to disk land on the same
 * extents the later PersistRead phases fetch. Never returns 0
 * (oscache::kAnonymousStream).
 */
inline std::uint64_t
cacheStreamFor(const IoPhaseSpec &phase)
{
    if (phase.cacheStream != 0)
        return phase.cacheStream;
    std::uint64_t family = 0;
    switch (phase.op) {
      case storage::IoOp::HdfsRead:
      case storage::IoOp::HdfsWrite:
        family = 1;
        break;
      case storage::IoOp::ShuffleRead:
      case storage::IoOp::ShuffleWrite:
        family = 2;
        break;
      case storage::IoOp::PersistRead:
      case storage::IoOp::PersistWrite:
        family = 3;
        break;
      case storage::IoOp::SpillRead:
      case storage::IoOp::SpillWrite:
        family = 5;
        break;
      default:
        family = 4;
        break;
    }
    // FNV-1a over (family, bytesPerTask).
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t value) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (value >> (i * 8)) & 0xffULL;
            hash *= 0x100000001b3ULL;
        }
    };
    mix(family);
    mix(phase.bytesPerTask);
    return hash == 0 ? 1 : hash; // 0 is the anonymous stream
}

/** A pure-CPU phase (the non-pipelined part of the task's work). */
struct ComputePhaseSpec
{
    double seconds = 0.0;
};

/** One phase of a task. */
using PhaseSpec = std::variant<IoPhaseSpec, ComputePhaseSpec>;

/** A homogeneous set of tasks within a stage. */
struct TaskGroupSpec
{
    std::string name;
    int count = 0;
    std::vector<PhaseSpec> phases;
    /**
     * Compile-time bookkeeping: serialized bytes flowing through one
     * task at the current tail of this group's chain. The DAG scheduler
     * uses it to size per-input compute; the engine ignores it.
     */
    Bytes bytesPerTask = 0;
};

/** A schedulable stage. */
struct StageSpec
{
    std::string name;
    std::vector<TaskGroupSpec> groups;

    /**
     * Name of the map stage that produced this stage's shuffle input
     * (empty when the stage reads no shuffle). The scheduler uses it
     * to recompute lost map outputs after a fetch failure. A stage
     * reading several shuffles records the first; the recovery model
     * regenerates that lineage only.
     */
    std::string shuffleSource;

    /** @return true when some group writes shuffle output (i.e. this
     *          is a shuffle map stage). */
    bool
    writesShuffle() const
    {
        for (const auto &group : groups) {
            for (const auto &phase : group.phases) {
                const auto *io = std::get_if<IoPhaseSpec>(&phase);
                if (io != nullptr &&
                    io->op == storage::IoOp::ShuffleWrite)
                    return true;
            }
        }
        return false;
    }

    /**
     * JVM-pressure sensitivity: task compute time is scaled by
     * (1 + gcSensitivity * (P - 1)). Reproduces the paper's observation
     * that GATK4's MD stage stops scaling on SSDs because garbage
     * collection grows with the executor core count (§V-A1).
     */
    double gcSensitivity = 0.0;

    /** @return total task count M across groups. */
    int
    numTasks() const
    {
        int total = 0;
        for (const auto &group : groups)
            total += group.count;
        return total;
    }
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_STAGE_SPEC_H
