#include "spark/metrics_json.h"

#include <cstdio>
#include <sstream>

namespace doppio::spark {

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers here). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

void
writeMetricsJson(std::ostream &os, const AppMetrics &metrics)
{
    os << "{\"app\":\"" << escape(metrics.name) << "\",\"seconds\":"
       << num(metrics.seconds()) << ",\"jobs\":[";
    bool first_job = true;
    for (const JobMetrics &job : metrics.jobs) {
        if (!first_job)
            os << ',';
        first_job = false;
        os << "{\"name\":\"" << escape(job.name) << "\",\"stages\":[";
        bool first_stage = true;
        for (const StageMetrics &stage : job.stages) {
            if (!first_stage)
                os << ',';
            first_stage = false;
            os << "{\"name\":\"" << escape(stage.name)
               << "\",\"tasks\":" << stage.numTasks
               << ",\"seconds\":" << num(stage.seconds())
               << ",\"task_mean_seconds\":"
               << num(stage.taskDuration.mean()) << ",\"io\":{";
            bool first_op = true;
            for (storage::IoOp op : storage::kAllIoOps) {
                const StageIoStats &io = stage.forOp(op);
                if (io.bytes == 0)
                    continue;
                if (!first_op)
                    os << ',';
                first_op = false;
                os << '"' << storage::ioOpName(op)
                   << "\":{\"bytes\":" << io.bytes
                   << ",\"requests\":" << io.requests
                   << ",\"avg_request_size\":"
                   << num(io.avgRequestSize()) << '}';
            }
            os << "}";
            // Per-stage fault block only when a failure was observed,
            // keeping fault-free output identical to older builds.
            if (stage.faults.any()) {
                const FaultMetrics &f = stage.faults;
                os << ",\"faults\":{\"task_attempts\":" << f.taskAttempts
                   << ",\"task_failures\":" << f.taskFailures
                   << ",\"task_retries\":" << f.taskRetries
                   << ",\"lost_attempts\":" << f.lostAttempts
                   << ",\"fetch_failures\":" << f.fetchFailures
                   << ",\"stage_reattempts\":" << f.stageReattempts
                   << ",\"wasted_task_seconds\":"
                   << num(f.wastedTaskSeconds)
                   << ",\"recovery_seconds\":" << num(f.recoverySeconds)
                   << '}';
            }
            os << "}";
        }
        os << "]}";
    }
    os << "]";
    if (metrics.pageCachePresent) {
        os << ',';
        writePageCacheJson(os, metrics.pageCache);
    }
    if (metrics.faultsPresent) {
        os << ',';
        writeAppFaultsJson(os, metrics.faults);
    }
    if (metrics.memoryPresent) {
        os << ',';
        writeMemoryJson(os, metrics.memory);
    }
    if (metrics.streamingPresent) {
        os << ',';
        writeStreamingJson(os, metrics.streaming);
    }
    os << '}';
}

void
writePageCacheJson(std::ostream &os, const oscache::PageCacheStats &pc)
{
    os << "\"page_cache\":{\"reads\":" << pc.reads
       << ",\"read_full_hits\":" << pc.readFullHits
       << ",\"writes\":" << pc.writes
       << ",\"throttled_writes\":" << pc.throttledWrites
       << ",\"flush_requests\":" << pc.flushRequests
       << ",\"read_bytes\":" << pc.readBytes
       << ",\"hit_bytes\":" << pc.hitBytes
       << ",\"miss_bytes\":" << pc.missBytes
       << ",\"readahead_bytes\":" << pc.readAheadBytes
       << ",\"write_bytes\":" << pc.writeBytes
       << ",\"absorbed_bytes\":" << pc.absorbedBytes
       << ",\"write_around_bytes\":" << pc.writeAroundBytes
       << ",\"flushed_bytes\":" << pc.flushedBytes
       << ",\"evicted_bytes\":" << pc.evictedBytes
       << ",\"hit_ratio\":" << num(pc.hitRatio()) << '}';
}

void
writeAppFaultsJson(std::ostream &os, const FaultMetrics &f)
{
    os << "\"faults\":{\"task_attempts\":" << f.taskAttempts
       << ",\"task_failures\":" << f.taskFailures
       << ",\"task_retries\":" << f.taskRetries
       << ",\"lost_attempts\":" << f.lostAttempts
       << ",\"fetch_failures\":" << f.fetchFailures
       << ",\"stage_reattempts\":" << f.stageReattempts
       << ",\"hdfs_failovers\":" << f.hdfsFailovers
       << ",\"corrupt_reads\":" << f.corruptReads
       << ",\"partition_timeouts\":" << f.partitionTimeouts
       << ",\"wasted_task_seconds\":" << num(f.wastedTaskSeconds)
       << ",\"recovery_seconds\":" << num(f.recoverySeconds)
       << ",\"re_replicated_bytes\":" << f.reReplicatedBytes
       << ",\"quarantined_bytes\":" << f.quarantinedBytes
       << ",\"lost_dirty_bytes\":" << f.lostDirtyBytes << '}';
}

void
writeMemoryJson(std::ostream &os, const MemoryMetrics &m)
{
    os << "\"memory\":{\"pool_bytes\":" << m.poolBytes
       << ",\"peak_storage_bytes\":" << m.peakStorageBytes
       << ",\"peak_execution_bytes\":" << m.peakExecutionBytes
       << ",\"evicted_blocks\":" << m.evictedBlocks
       << ",\"evicted_bytes\":" << m.evictedBytes
       << ",\"evicted_to_disk_bytes\":" << m.evictedToDiskBytes
       << ",\"dropped_blocks\":" << m.droppedBlocks
       << ",\"recomputed_partitions\":" << m.recomputedPartitions
       << ",\"spills\":" << m.spills
       << ",\"spill_passes\":" << m.spillPasses
       << ",\"spilled_bytes\":" << m.spilledBytes
       << ",\"oom_kills\":" << m.oomKills << '}';
}

void
writeStreamingJson(std::ostream &os, const StreamingMetrics &s)
{
    os << "\"streaming\":{\"rate_per_sec\":" << num(s.ratePerSec)
       << ",\"slo_seconds\":" << num(s.sloSeconds)
       << ",\"max_backlog\":" << s.maxBacklog
       << ",\"arrivals\":" << s.arrivals
       << ",\"processed\":" << s.processed
       << ",\"dropped\":" << s.dropped
       << ",\"slo_violations\":" << s.sloViolations
       << ",\"peak_backlog\":" << s.peakBacklog
       << ",\"mean_latency_seconds\":" << num(s.meanLatencySec)
       << ",\"p50_latency_seconds\":" << num(s.p50LatencySec)
       << ",\"p99_latency_seconds\":" << num(s.p99LatencySec)
       << ",\"max_latency_seconds\":" << num(s.maxLatencySec)
       << ",\"mean_service_seconds\":" << num(s.meanServiceSec)
       << ",\"stable\":" << (s.stable() ? "true" : "false");
    // Recovery block only when the run had the fault path enabled,
    // keeping older streaming output byte-identical.
    if (s.checkpointIntervalSec >= 0.0) {
        os << ",\"checkpoint_interval_seconds\":"
           << num(s.checkpointIntervalSec)
           << ",\"checkpoints\":" << s.checkpoints
           << ",\"recoveries\":" << s.recoveries
           << ",\"recovery_seconds_total\":"
           << num(s.recoverySecondsTotal)
           << ",\"max_recovery_seconds\":" << num(s.maxRecoverySec);
    }
    os << '}';
}

std::string
metricsJson(const AppMetrics &metrics)
{
    std::ostringstream os;
    writeMetricsJson(os, metrics);
    return os.str();
}

} // namespace doppio::spark
