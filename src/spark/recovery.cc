#include "spark/recovery.h"

#include <algorithm>

namespace doppio::spark {

StageSpec
recoverySpec(const StageSpec &producer, int numSlaves)
{
    StageSpec spec = producer;
    spec.name = producer.name + ".recovery";
    for (TaskGroupSpec &group : spec.groups) {
        if (group.count > 0)
            group.count = std::max(1, group.count / numSlaves);
    }
    return spec;
}

StageSpec
remainderSpec(const StageSpec &stage, std::uint64_t completed)
{
    StageSpec spec = stage;
    for (TaskGroupSpec &group : spec.groups) {
        const std::uint64_t take = std::min(
            completed, static_cast<std::uint64_t>(group.count));
        group.count -= static_cast<int>(take);
        completed -= take;
    }
    return spec;
}

ReplayPlan
planReplay(int lastCheckpointBatch, int nextBatch)
{
    ReplayPlan plan;
    plan.firstBatch = lastCheckpointBatch + 1;
    plan.lastBatch = nextBatch - 1;
    return plan;
}

} // namespace doppio::spark
