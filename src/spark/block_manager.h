/**
 * @file
 * RDD storage accounting: legacy all-or-nothing and unified per-block.
 *
 * Legacy mode (the paper's original treatment, §III-B2): when a
 * persisted RDD is first materialized it either fits whole in the
 * cluster's static RDD storage memory (storageFraction x executor
 * memory x slaves) or falls back whole to the Spark local disks —
 * "large RDDs NOT cacheable in memory", e.g. LR's 990 GB parsedData
 * "will be put in Spark Local".
 *
 * Unified mode (SparkConf::unifiedMemory, Spark 1.6 semantics): each
 * partition becomes a block on its home node's MemoryManager. Caching
 * beyond capacity evicts colder blocks LRU-first; an evicted
 * MEMORY_AND_DISK block streams to the node's local disk through the
 * page cache (real device traffic at the disk-store request size) and
 * is later read back with PersistRead, while an evicted MEMORY_ONLY
 * block is dropped and recomputed from lineage on next access.
 * Execution memory (shuffle sorts, aggregations) borrows from storage
 * through the same managers — see MemoryManager for the pool rules.
 *
 * Both modes track which shuffle outputs already exist on the local
 * disks: a later job whose lineage crosses an already-written shuffle
 * skips the map stage and re-reads the shuffle files, exactly as Spark
 * skips completed ShuffleMapStages (this is why GATK4's SF stage
 * re-reads the 334 GB shuffle without re-writing it — Table IV).
 */

#ifndef DOPPIO_SPARK_BLOCK_MANAGER_H
#define DOPPIO_SPARK_BLOCK_MANAGER_H

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"
#include "spark/memory_manager.h"
#include "spark/metrics.h"
#include "spark/rdd.h"
#include "spark/spark_conf.h"

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::spark {

/** Tracks materialized RDDs and shuffle outputs. */
class BlockManager
{
  public:
    /** Where a materialized RDD lives (legacy all-or-nothing mode). */
    enum class Placement { Unmaterialized, Memory, Disk };

    /** Where one partition's block lives (unified mode). */
    enum class BlockState { Memory, Disk, Dropped };

    /** Per-state partition counts of a materialized RDD. */
    struct ReadPlan
    {
        int total = 0;
        int cached = 0;  //!< in executor memory: read for free
        int disk = 0;    //!< on the local disks: PersistRead
        int missing = 0; //!< dropped: recompute from lineage
    };

    /**
     * Legacy constructor (all-or-nothing placement).
     * @param storageMemory   cluster-wide RDD cache capacity in bytes.
     * @param expansionFactor default serialized->in-memory expansion.
     */
    BlockManager(Bytes storageMemory, double expansionFactor);

    /**
     * Mode-selecting constructor: unified per-block management when
     * @p conf.unifiedMemory is set (one MemoryManager per node, pool =
     * executor memory x spark.memory.fraction; registers cluster
     * liveness and memory observers), otherwise exactly the legacy
     * behaviour with capacity = @p clusterRef.totalStorageMemory().
     * @p clusterRef and @p conf must outlive the manager.
     */
    BlockManager(cluster::Cluster &clusterRef, const SparkConf &conf);

    ~BlockManager();

    /** @return true when running unified per-block management. */
    bool unified() const { return unified_; }

    // ------------------------------------------------------------------
    // Legacy all-or-nothing interface.

    /** @return current placement of @p rdd. */
    Placement placementOf(const Rdd *rdd) const;

    /**
     * Decide placement for a persisted RDD being materialized now.
     * Memory-capable levels get Memory iff the in-memory footprint
     * fits in the remaining capacity; MemoryAndDisk/DiskOnly fall back
     * to Disk; MemoryOnly that does not fit stays Unmaterialized
     * (recompute on next use). Idempotent for already-placed RDDs.
     */
    Placement materialize(const Rdd &rdd);

    /** Drop a materialized RDD, freeing memory if it was cached. */
    void unpersist(const Rdd *rdd);

    /** @return true when @p rdd's shuffle files are on local disks. */
    bool shuffleAvailable(const Rdd *rdd) const;

    /** Record that @p rdd's map stage has written its shuffle files. */
    void markShuffleAvailable(const Rdd *rdd);

    /** @return true when @p rdd's checkpoint is on HDFS. */
    bool checkpointAvailable(const Rdd *rdd) const;

    /** Record that @p rdd's partitions were checkpointed to HDFS. */
    void markCheckpointed(const Rdd *rdd);

    /** @return bytes of storage memory currently in use. */
    Bytes memoryUsed() const;

    /** @return total storage memory capacity. */
    Bytes capacity() const;

    // ------------------------------------------------------------------
    // Unified per-block interface (valid only when unified()).

    /** @return true when @p rdd has been materialized per-block. */
    bool tracked(const Rdd *rdd) const;

    /**
     * Materialize a persisted RDD per partition: partition p lands on
     * the p-th alive node (round-robin). Memory-capable levels try the
     * node's pool, evicting colder blocks LRU-first (see
     * handleEvictions for what happens to them); a partition that does
     * not fit goes to Disk (MEMORY_AND_DISK, DISK_ONLY) or Dropped
     * (MEMORY_ONLY). @return the resulting counts; the DAG scheduler
     * turns the disk share into PersistWrite phases. Idempotent.
     */
    ReadPlan materializeUnified(const Rdd &rdd);

    /** @return per-state partition counts for a tracked RDD. */
    ReadPlan readPlan(const Rdd *rdd) const;

    /** Refresh LRU recency of @p rdd's cached blocks (a cached read). */
    void touchRdd(const Rdd *rdd);

    /**
     * Re-cache @p rdd's dropped partitions after the scheduler emitted
     * their recompute groups: each counts one lineage recomputation and
     * re-enters its home node's pool if it now fits; a MEMORY_AND_DISK
     * partition that does not fit lands on disk (with the write
     * traffic), a MEMORY_ONLY one stays dropped.
     */
    void recacheMissing(const Rdd &rdd);

    /**
     * Reserve execution memory on @p node for one task (shuffle sort
     * buffers, aggregation maps); evicted blocks are written out or
     * dropped per their storage level. @return granted bytes in
     * [0, want] — the task engine spills the shortfall and treats a
     * zero grant as an OOM.
     */
    Bytes acquireExecution(int node, Bytes want, int activeTasks);

    /** Return execution memory to @p node's pool. */
    void releaseExecution(int node, Bytes bytes);

    /** Mutable unified counters (the task engine's spill/OOM tallies). */
    MemoryMetrics &memoryCounters() { return memory_; }

    /**
     * @return unified totals with the per-node pool sizes and peaks
     *         folded in (all-zero in legacy mode).
     */
    MemoryMetrics memoryMetrics() const;

    /** Direct pool access (tests). */
    MemoryManager &nodeMemory(int node);

    /**
     * Attach a telemetry collector (or nullptr to detach; not owned).
     * Unified mode then emits eviction/drop instants and per-node
     * execution/storage pool counters on each pool transition; legacy
     * mode has no simulator clock to stamp events with, so the
     * collector is ignored there.
     */
    void setTraceCollector(trace::TraceCollector *collector);

    /**
     * Forget all placements, blocks and shuffle availability so
     * back-to-back runs start cold. Pool clamps (degrade-mem) reset
     * too.
     */
    void reset();

  private:
    /** One tracked partition block (unified mode). */
    struct BlockInfo
    {
        const Rdd *rdd = nullptr;
        int partition = 0;
        int node = 0;
        BlockState state = BlockState::Memory;
        /** Pool id while state == Memory. */
        MemoryManager::BlockId id = 0;
    };

    /** Per-RDD unified state: one BlockInfo per partition. */
    struct RddBlocks
    {
        std::vector<BlockInfo> partitions;
    };

    /**
     * React to pool evictions: a MEMORY_AND_DISK block moves to disk
     * (streaming its serialized form through the node's page cache to
     * the local device), a MEMORY_ONLY block is dropped for recompute.
     */
    void handleEvictions(
        const std::vector<MemoryManager::BlockId> &evicted);

    /** Issue the device write of @p info's serialized partition. */
    void writeBlockToDisk(const BlockInfo &info);

    /** Node death: every block homed there is lost (memory and disk). */
    void onNodeDown(int node);

    /** @return the home node for partition @p partition right now. */
    int homeNode(int partition) const;

    /** Emit @p node's execution/storage pool counters (tracing). */
    void tracePoolSample(int node);

    bool unified_ = false;
    cluster::Cluster *cluster_ = nullptr;
    const SparkConf *conf_ = nullptr;
    trace::TraceCollector *collector_ = nullptr;

    // Legacy state.
    Bytes capacity_ = 0;
    double expansionFactor_ = 1.0;
    Bytes memoryUsed_ = 0;
    std::unordered_map<const Rdd *, Placement> placements_;

    // Shared state.
    std::unordered_set<const Rdd *> shuffles_;
    std::unordered_set<const Rdd *> checkpointed_;

    // Unified state.
    std::vector<MemoryManager> pools_;
    std::unordered_map<const Rdd *, RddBlocks> rdds_;
    /** Pool id -> owning (rdd, partition), for eviction callbacks. */
    std::unordered_map<MemoryManager::BlockId,
                       std::pair<const Rdd *, int>>
        blockIndex_;
    MemoryManager::BlockId nextBlockId_ = 1;
    MemoryMetrics memory_;
    /**
     * Liveness guard for the cluster observers: the cluster may
     * outlive this manager (back-to-back contexts on one cluster), so
     * the registered lambdas check the flag before touching `this`.
     */
    std::shared_ptr<bool> aliveFlag_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_BLOCK_MANAGER_H
