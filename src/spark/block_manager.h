/**
 * @file
 * Cluster-wide RDD storage accounting.
 *
 * Decides, when a persisted RDD is first materialized, whether it fits
 * in the cluster's RDD storage memory (storageFraction x executor
 * memory x slaves) or falls back to the Spark local disks — the paper's
 * "large RDDs NOT cacheable in memory" mechanism (§III-B2). Placement
 * is all-or-nothing, matching how the paper treats its workloads (e.g.
 * LR's 990 GB parsedData "will be put in Spark Local").
 *
 * Also tracks which shuffle outputs already exist on the local disks:
 * a later job whose lineage crosses an already-written shuffle skips
 * the map stage and re-reads the shuffle files, exactly as Spark skips
 * completed ShuffleMapStages (this is why GATK4's SF stage re-reads the
 * 334 GB shuffle without re-writing it — Table IV).
 */

#ifndef DOPPIO_SPARK_BLOCK_MANAGER_H
#define DOPPIO_SPARK_BLOCK_MANAGER_H

#include <unordered_map>
#include <unordered_set>

#include "common/units.h"
#include "spark/rdd.h"

namespace doppio::spark {

/** Tracks materialized RDDs and shuffle outputs. */
class BlockManager
{
  public:
    /** Where a materialized RDD lives. */
    enum class Placement { Unmaterialized, Memory, Disk };

    /**
     * @param storageMemory   cluster-wide RDD cache capacity in bytes.
     * @param expansionFactor default serialized->in-memory expansion.
     */
    BlockManager(Bytes storageMemory, double expansionFactor);

    /** @return current placement of @p rdd. */
    Placement placementOf(const Rdd *rdd) const;

    /**
     * Decide placement for a persisted RDD being materialized now.
     * Memory-capable levels get Memory iff the in-memory footprint
     * fits in the remaining capacity; MemoryAndDisk/DiskOnly fall back
     * to Disk; MemoryOnly that does not fit stays Unmaterialized
     * (recompute on next use). Idempotent for already-placed RDDs.
     */
    Placement materialize(const Rdd &rdd);

    /** Drop a materialized RDD, freeing memory if it was cached. */
    void unpersist(const Rdd *rdd);

    /** @return true when @p rdd's shuffle files are on local disks. */
    bool shuffleAvailable(const Rdd *rdd) const;

    /** Record that @p rdd's map stage has written its shuffle files. */
    void markShuffleAvailable(const Rdd *rdd);

    /** @return bytes of storage memory currently in use. */
    Bytes memoryUsed() const { return memoryUsed_; }

    /** @return total storage memory capacity. */
    Bytes capacity() const { return capacity_; }

  private:
    Bytes capacity_;
    double expansionFactor_;
    Bytes memoryUsed_ = 0;
    std::unordered_map<const Rdd *, Placement> placements_;
    std::unordered_set<const Rdd *> shuffles_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_BLOCK_MANAGER_H
