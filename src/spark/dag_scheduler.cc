#include "spark/dag_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace doppio::spark {

namespace {

/**
 * Stable FNV-1a page-cache stream identity for an RDD's checkpoint
 * file, so the read-back neither aliases the source input nor another
 * checkpoint of identical shape. Non-zero by construction.
 */
std::uint64_t
checkpointCacheSalt(const std::string &rddName)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const std::string key = "ckpt:" + rddName;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h | 1;
}

} // namespace

DagScheduler::DagScheduler(const SparkConf &conf, const dfs::Hdfs &hdfs,
                           BlockManager &blockManager)
    : conf_(conf), hdfs_(hdfs), blockManager_(blockManager)
{}

IoPhaseSpec
DagScheduler::makeIoPhase(storage::IoOp op, Bytes bytes, Bytes preferred,
                          double cpuPerByte, int fanIn)
{
    IoPhaseSpec phase;
    phase.op = op;
    phase.bytesPerTask = bytes;
    phase.cpuPerByte = cpuPerByte;
    phase.fanIn = fanIn;
    if (bytes == 0) {
        phase.requestSize = 0;
        return phase;
    }
    if (preferred == 0)
        preferred = bytes;
    const Bytes count = std::max<Bytes>(
        1, (bytes + preferred - 1) / preferred);
    phase.requestSize = std::max<Bytes>(1, bytes / count);
    return phase;
}

DagScheduler::ChainBuild
DagScheduler::buildChain(const RddRef &rdd, std::vector<StageSpec> &stages)
{
    if (rdd->numPartitions <= 0)
        fatal("DagScheduler: RDD %s has no partitions",
              rdd->name.c_str());

    if (conf_.unifiedMemory) {
        if (blockManager_.tracked(rdd.get()))
            return buildUnifiedRead(rdd, stages);
    } else {
        switch (blockManager_.placementOf(rdd.get())) {
          case BlockManager::Placement::Memory: {
            // Cached in memory: the stage reads it for free.
            ChainBuild build;
            build.groups.push_back(TaskGroupSpec{
                rdd->name + "(cached)", rdd->numPartitions, {},
                rdd->bytesPerPartition()});
            return build;
          }
          case BlockManager::Placement::Disk: {
            ChainBuild build;
            build.groups.push_back(TaskGroupSpec{
                rdd->name + "(disk)",
                rdd->numPartitions,
                {makeIoPhase(storage::IoOp::PersistRead,
                             rdd->bytesPerPartition(),
                             conf_.diskStoreRequestSize,
                             rdd->pipelinedCpuPerByte)},
                rdd->bytesPerPartition()});
            return build;
          }
          case BlockManager::Placement::Unmaterialized:
            break;
        }
    }
    if (blockManager_.checkpointAvailable(rdd.get())) {
        // Lineage truncation: read the reliable HDFS copy back instead
        // of recomputing the ancestry (Spark's checkpoint recovery).
        IoPhaseSpec read = makeIoPhase(
            storage::IoOp::HdfsRead, rdd->bytesPerPartition(),
            hdfs_.config().blockSize, rdd->pipelinedCpuPerByte);
        read.cacheStream = checkpointCacheSalt(rdd->name);
        ChainBuild build;
        build.groups.push_back(TaskGroupSpec{
            rdd->name + "(checkpoint)", rdd->numPartitions, {read},
            rdd->bytesPerPartition()});
        build.gcSensitivity = rdd->gcSensitivity;
        return build;
    }
    return buildCompute(rdd, stages);
}

DagScheduler::ChainBuild
DagScheduler::buildUnifiedRead(const RddRef &rdd,
                               std::vector<StageSpec> &stages)
{
    const BlockManager::ReadPlan plan =
        blockManager_.readPlan(rdd.get());
    blockManager_.touchRdd(rdd.get());
    const Bytes per_task = rdd->bytesPerPartition();
    ChainBuild build;
    if (plan.cached > 0) {
        build.groups.push_back(TaskGroupSpec{
            rdd->name + "(cached)", plan.cached, {}, per_task});
    }
    if (plan.disk > 0) {
        build.groups.push_back(TaskGroupSpec{
            rdd->name + "(disk)",
            plan.disk,
            {makeIoPhase(storage::IoOp::PersistRead, per_task,
                         conf_.diskStoreRequestSize,
                         rdd->pipelinedCpuPerByte)},
            per_task});
    }
    if (plan.missing > 0) {
        // Dropped blocks: recompute the missing share from lineage
        // (Spark's fallback when a MEMORY_ONLY block was evicted),
        // scaling each recompute group to the missing fraction.
        ChainBuild sub = buildCompute(rdd, stages);
        const double ratio = static_cast<double>(plan.missing) /
                             static_cast<double>(std::max(1, plan.total));
        for (TaskGroupSpec &group : sub.groups) {
            if (group.count > 0) {
                group.count = std::max(
                    1, static_cast<int>(std::lround(
                           static_cast<double>(group.count) * ratio)));
            }
            group.name += "(recompute)";
            build.groups.push_back(std::move(group));
        }
        build.gcSensitivity =
            std::max(build.gcSensitivity, sub.gcSensitivity);
        if (build.shuffleSource.empty())
            build.shuffleSource = sub.shuffleSource;
        blockManager_.recacheMissing(*rdd);
    }
    return build;
}

DagScheduler::ChainBuild
DagScheduler::buildCompute(const RddRef &rdd,
                           std::vector<StageSpec> &stages)
{
    ChainBuild build;

    if (rdd->isSource()) {
        IoPhaseSpec read = makeIoPhase(
            storage::IoOp::HdfsRead, rdd->bytesPerPartition(),
            hdfs_.config().blockSize, rdd->pipelinedCpuPerByte);
        read.cacheStream = rdd->cacheStreamSalt;
        build.groups.push_back(TaskGroupSpec{rdd->name,
                                             rdd->numPartitions,
                                             {read},
                                             rdd->bytesPerPartition()});
        build.gcSensitivity = rdd->gcSensitivity;
        return build;
    }

    if (rdd->isShuffled()) {
        ensureShuffle(rdd, stages);
        const RddRef &parent = rdd->deps.front().parent;
        const int fan_in = parent->numPartitions;
        const Bytes per_task =
            rdd->shuffle.bytes / static_cast<Bytes>(rdd->numPartitions);

        IoPhaseSpec read;
        read.op = storage::IoOp::ShuffleRead;
        read.bytesPerTask = per_task;
        read.requestSize = std::max<Bytes>(
            1, per_task / static_cast<Bytes>(std::max(1, fan_in)));
        read.cpuPerByte = rdd->pipelinedCpuPerByte;
        read.fanIn = fan_in;

        TaskGroupSpec group{rdd->name, rdd->numPartitions, {read},
                            rdd->bytesPerPartition()};
        if (build.shuffleSource.empty())
            build.shuffleSource = rdd->mapStageName();
        const double compute =
            rdd->cpuPerInputByte * static_cast<double>(per_task) +
            rdd->cpuPerTask;
        if (compute > 0.0)
            group.phases.push_back(ComputePhaseSpec{compute});
        build.groups.push_back(std::move(group));
        build.gcSensitivity = rdd->gcSensitivity;
        maybeMaterialize(rdd, build);
        maybeCheckpoint(rdd, build);
        return build;
    }

    // Narrow dependencies: pipeline into the same stage. Each branch
    // keeps its own per-task data volume (a union's branches can be
    // wildly asymmetric, e.g. GATK4's 27 MB shuffle tasks next to 2 MB
    // filter tasks), and the output size ratio rescales it.
    Bytes parents_bytes = 0;
    for (const Rdd::Dep &dep : rdd->deps)
        parents_bytes += dep.parent->bytes;
    const double size_ratio =
        parents_bytes > 0 ? static_cast<double>(rdd->bytes) /
                                static_cast<double>(parents_bytes)
                          : 0.0;
    for (const Rdd::Dep &dep : rdd->deps) {
        ChainBuild sub = buildChain(dep.parent, stages);
        if (build.shuffleSource.empty())
            build.shuffleSource = sub.shuffleSource;
        for (TaskGroupSpec &group : sub.groups) {
            const double compute =
                rdd->cpuPerInputByte *
                    static_cast<double>(group.bytesPerTask) +
                rdd->cpuPerTask;
            if (compute > 0.0)
                group.phases.push_back(ComputePhaseSpec{compute});
            group.bytesPerTask = static_cast<Bytes>(
                static_cast<double>(group.bytesPerTask) * size_ratio);
            build.groups.push_back(std::move(group));
        }
        build.gcSensitivity =
            std::max(build.gcSensitivity, sub.gcSensitivity);
    }
    build.gcSensitivity =
        std::max(build.gcSensitivity, rdd->gcSensitivity);
    maybeMaterialize(rdd, build);
    maybeCheckpoint(rdd, build);
    return build;
}

void
DagScheduler::ensureShuffle(const RddRef &rdd,
                            std::vector<StageSpec> &stages)
{
    if (blockManager_.shuffleAvailable(rdd.get()))
        return;
    const RddRef &parent = rdd->deps.front().parent;
    ChainBuild parent_build = buildChain(parent, stages);

    int map_tasks = 0;
    for (const TaskGroupSpec &group : parent_build.groups)
        map_tasks += group.count;
    if (map_tasks != parent->numPartitions)
        panic("DagScheduler: map task count %d != parent partitions %d "
              "for %s",
              map_tasks, parent->numPartitions, rdd->name.c_str());

    const Bytes per_task_write =
        rdd->shuffle.bytes / static_cast<Bytes>(map_tasks);
    for (TaskGroupSpec &group : parent_build.groups) {
        group.phases.push_back(
            makeIoPhase(storage::IoOp::ShuffleWrite, per_task_write,
                        conf_.shuffleSpillChunkCap,
                        rdd->shuffle.mapCpuPerByte));
    }

    StageSpec stage;
    stage.name = rdd->mapStageName();
    stage.groups = std::move(parent_build.groups);
    stage.gcSensitivity = parent_build.gcSensitivity;
    stage.shuffleSource = parent_build.shuffleSource;
    stages.push_back(std::move(stage));
    blockManager_.markShuffleAvailable(rdd.get());
}

void
DagScheduler::maybeMaterialize(const RddRef &rdd, ChainBuild &build)
{
    if (rdd->storageLevel == StorageLevel::None)
        return;
    if (conf_.unifiedMemory) {
        if (blockManager_.tracked(rdd.get()))
            return;
        const BlockManager::ReadPlan placed =
            blockManager_.materializeUnified(*rdd);
        if (placed.disk <= 0)
            return;
        // The disk share's serialized form streams out through the
        // disk store as part of the producing tasks; the cost spreads
        // evenly over the group's tasks (task<->partition identity is
        // below the simulation's granularity).
        const Bytes per_task = static_cast<Bytes>(
            static_cast<double>(rdd->bytesPerPartition()) *
            static_cast<double>(placed.disk) /
            static_cast<double>(std::max(1, placed.total)));
        if (per_task == 0)
            return;
        for (TaskGroupSpec &group : build.groups) {
            group.phases.push_back(
                makeIoPhase(storage::IoOp::PersistWrite, per_task,
                            conf_.diskStoreRequestSize, 0.0));
        }
        return;
    }
    if (blockManager_.placementOf(rdd.get()) !=
        BlockManager::Placement::Unmaterialized)
        return;
    const BlockManager::Placement placement =
        blockManager_.materialize(*rdd);
    if (placement != BlockManager::Placement::Disk)
        return;
    const Bytes per_task = rdd->bytesPerPartition();
    for (TaskGroupSpec &group : build.groups) {
        group.phases.push_back(
            makeIoPhase(storage::IoOp::PersistWrite, per_task,
                        conf_.diskStoreRequestSize, 0.0));
    }
}

void
DagScheduler::maybeCheckpoint(const RddRef &rdd, ChainBuild &build)
{
    if (!rdd->checkpointRequested ||
        blockManager_.checkpointAvailable(rdd.get()))
        return;
    // Eager write-on-first-materialization (Spark's checkpoint() runs
    // a second job; folding the write into the producing tasks charges
    // the same bytes without re-running the lineage).
    const Bytes per_task = std::max<Bytes>(1, rdd->bytesPerPartition());
    for (TaskGroupSpec &group : build.groups) {
        IoPhaseSpec write =
            makeIoPhase(storage::IoOp::HdfsWrite, per_task,
                        hdfs_.config().blockSize, 0.0);
        write.cacheStream = checkpointCacheSalt(rdd->name);
        group.phases.push_back(write);
    }
    blockManager_.markCheckpointed(rdd.get());
}

JobSpec
DagScheduler::compile(const std::string &jobName, const RddRef &target,
                      const ActionSpec &action)
{
    if (!target)
        fatal("DagScheduler: null target RDD for job %s",
              jobName.c_str());
    JobSpec job;
    job.name = jobName;
    ChainBuild build = buildChain(target, job.stages);

    if (action.kind == ActionSpec::Kind::SaveAsHadoopFile &&
        action.outputBytes > 0) {
        int total_tasks = 0;
        for (const TaskGroupSpec &group : build.groups)
            total_tasks += group.count;
        const Bytes per_task =
            action.outputBytes / static_cast<Bytes>(total_tasks);
        for (TaskGroupSpec &group : build.groups) {
            group.phases.push_back(
                makeIoPhase(storage::IoOp::HdfsWrite, per_task,
                            hdfs_.config().blockSize, 0.0));
        }
    }

    StageSpec result;
    result.name = jobName;
    result.groups = std::move(build.groups);
    result.gcSensitivity = build.gcSensitivity;
    result.shuffleSource = build.shuffleSource;
    job.stages.push_back(std::move(result));
    return job;
}

} // namespace doppio::spark
