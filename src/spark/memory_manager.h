/**
 * @file
 * Per-node unified memory manager (Spark 1.6 semantics).
 *
 * One pool per executor, sized executorMemory x spark.memory.fraction,
 * shared between storage (cached RDD blocks) and execution (shuffle
 * sort buffers, aggregation hash maps):
 *
 *  - storage may use any memory execution is not using, and caching a
 *    new block may evict older blocks LRU-first — but storage never
 *    evicts execution;
 *  - execution may borrow from storage and evict cached blocks, but
 *    only down to the storage floor (pool x spark.memory.storageFraction),
 *    below which cached blocks are protected;
 *  - an active task's execution share is capped at its fair fraction
 *    of the execution-capable region (executionCap / activeTasks).
 *
 * The manager tracks block residency and LRU order only; what an
 * eviction *means* (write the block to disk, drop and recompute) is the
 * BlockManager's business, so evictions are reported back as block-id
 * lists. All decisions are deterministic: LRU order is the only
 * ordering used and it derives from the caller's access sequence.
 */

#ifndef DOPPIO_SPARK_MEMORY_MANAGER_H
#define DOPPIO_SPARK_MEMORY_MANAGER_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace doppio::spark {

/** Unified storage/execution memory pool of one executor. */
class MemoryManager
{
  public:
    /** Opaque cached-block identity (assigned by the BlockManager). */
    using BlockId = std::uint64_t;

    /**
     * @param poolBytes       unified pool size (executor memory x
     *                        spark.memory.fraction).
     * @param storageFraction fraction of the pool protected from
     *                        execution borrowing ([0, 1]).
     */
    MemoryManager(Bytes poolBytes, double storageFraction);

    /**
     * Cache a block of @p bytes, evicting colder blocks LRU-first when
     * the free pool is short — storage may claim everything execution
     * does not hold. @return false (and evict nothing) when the block
     * cannot fit even after full eviction; true inserts it as the
     * most-recently-used block. Evicted ids append to @p evicted.
     * Re-inserting a resident id just touches it.
     */
    bool putBlock(BlockId id, Bytes bytes,
                  std::vector<BlockId> *evicted);

    /** @return true when @p id is resident. */
    bool hasBlock(BlockId id) const;

    /** Mark @p id most-recently-used (a cached read). No-op if absent. */
    void touchBlock(BlockId id);

    /** Drop @p id (unpersist). @return its size, 0 if absent. */
    Bytes dropBlock(BlockId id);

    /**
     * Reserve execution memory for one task. Execution may evict
     * cached blocks down to the storage floor; the grant is capped at
     * the task's fair share, executionCap() / @p activeTasks, and at
     * what is actually free after eviction. @return the granted bytes
     * in [0, want] — the caller spills the shortfall or treats a zero
     * grant as an OOM. Evicted ids append to @p evicted.
     */
    Bytes acquireExecution(Bytes want, int activeTasks,
                           std::vector<BlockId> *evicted);

    /** Return execution memory (clamped at the outstanding total). */
    void releaseExecution(Bytes bytes);

    /**
     * Shrink (or restore) the pool to @p fraction of its configured
     * size — the fault DSL's degrade-mem event (ballooning neighbour
     * VM, cgroup clamp). Cached blocks beyond the new capacity are
     * evicted LRU-first immediately; execution holds are never
     * revoked, so a deep clamp can pin the pool over capacity until
     * tasks release. Ids append to @p evicted.
     */
    void setPoolFraction(double fraction,
                         std::vector<BlockId> *evicted);

    /** @return current pool size (after any degrade-mem clamp). */
    Bytes poolSize() const { return pool_; }

    /** @return bytes below which cached blocks cannot be evicted by
     *          execution (pool x storageFraction). */
    Bytes storageFloor() const;

    /** @return the region execution may claim: pool minus protected
     *          storage (cached bytes at or under the floor). */
    Bytes executionCap() const;

    Bytes storageUsed() const { return storageUsed_; }
    Bytes executionUsed() const { return executionUsed_; }

    /** High-water marks since construction/reset(). */
    Bytes peakStorageUsed() const { return peakStorage_; }
    Bytes peakExecutionUsed() const { return peakExecution_; }

    /** @return number of resident blocks. */
    std::size_t blockCount() const { return blocks_.size(); }

    /**
     * Forget everything — blocks, execution holds, peaks, and any
     * degrade-mem clamp — so back-to-back runs start cold.
     */
    void reset();

  private:
    struct Block
    {
        Bytes bytes = 0;
        /** Position in lru_ (front = coldest). */
        std::list<BlockId>::iterator lruPos;
    };

    /**
     * Evict LRU blocks until free() >= @p need or the protected floor
     * @p keepStorage is reached. @return bytes freed.
     */
    Bytes evictDownTo(Bytes need, Bytes keepStorage,
                      std::vector<BlockId> *evicted);

    /** Unclaimed pool bytes (0 while overcommitted by degrade-mem). */
    Bytes
    free() const
    {
        const Bytes used = storageUsed_ + executionUsed_;
        return used >= pool_ ? 0 : pool_ - used;
    }

    Bytes configuredPool_;
    double storageFraction_;
    Bytes pool_;
    Bytes storageUsed_ = 0;
    Bytes executionUsed_ = 0;
    Bytes peakStorage_ = 0;
    Bytes peakExecution_ = 0;
    std::unordered_map<BlockId, Block> blocks_;
    /** LRU order, coldest first. */
    std::list<BlockId> lru_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_MEMORY_MANAGER_H
