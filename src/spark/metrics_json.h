/**
 * @file
 * JSON export of application metrics, for dashboards and external
 * analysis tooling (the role Spark's event-log JSON plays).
 */

#ifndef DOPPIO_SPARK_METRICS_JSON_H
#define DOPPIO_SPARK_METRICS_JSON_H

#include <ostream>
#include <string>

#include "spark/metrics.h"

namespace doppio::spark {

/**
 * Write @p metrics as a JSON document:
 * {"app": ..., "seconds": ..., "jobs": [{"name":..., "stages":
 * [{"name":..., "tasks":..., "seconds":..., "io": {"hdfs_read":
 * {"bytes":..., "requests":..., "avg_request_size":...}, ...}}]}]}
 * Only operations with traffic are emitted.
 */
void writeMetricsJson(std::ostream &os, const AppMetrics &metrics);

/** @return the JSON as a string. */
std::string metricsJson(const AppMetrics &metrics);

// Block writers shared with the multi-tenant JSON export: each emits
// one `"key":{...}` member (no surrounding separators) with exactly
// the formatting writeMetricsJson uses.

/** Emit `"page_cache":{...}`. */
void writePageCacheJson(std::ostream &os,
                        const oscache::PageCacheStats &pc);

/** Emit the application-level `"faults":{...}` block. */
void writeAppFaultsJson(std::ostream &os, const FaultMetrics &f);

/** Emit `"memory":{...}`. */
void writeMemoryJson(std::ostream &os, const MemoryMetrics &m);

/** Emit `"streaming":{...}`. */
void writeStreamingJson(std::ostream &os, const StreamingMetrics &s);

} // namespace doppio::spark

#endif // DOPPIO_SPARK_METRICS_JSON_H
