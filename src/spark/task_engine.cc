#include "spark/task_engine.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <vector>

#include "common/logging.h"
#include "faults/fault_injector.h"
#include "oscache/page_cache.h"
#include "spark/block_manager.h"
#include "storage/disk_device.h"
#include "trace/trace_collector.h"

namespace doppio::spark {

namespace {

/**
 * Grace period before an OOM-killed task's retry becomes runnable: an
 * immediate relaunch would hit the same saturated pool at the same
 * tick and burn straight through spark.task.maxFailures; by the
 * backoff, running tasks have released their reservations.
 */
constexpr double kOomRetryDelaySec = 0.5;

/** External-sort merge fan-in (spark.shuffle.sort analogue). */
constexpr std::uint64_t kMergeFanIn = 10;

/**
 * Shuffle-fetch retry policy against a network partition: the split
 * looks like a hung connection, not a dead executor, so the client
 * times out and retries with exponential backoff
 * (spark.shuffle.io.maxRetries / retryWait) before reporting a
 * FetchFailure and letting the stage abort.
 */
constexpr int kFetchRetryMax = 3;
constexpr double kFetchRetryBaseSec = 1.0;

/** Number of uniform chunks an I/O phase is split into. */
std::uint64_t
chunkCount(const IoPhaseSpec &phase)
{
    if (phase.bytesPerTask == 0 || phase.requestSize == 0)
        return 0;
    return (phase.bytesPerTask + phase.requestSize - 1) /
           phase.requestSize;
}

/**
 * Sequential per-source-node shuffle fetch for one reducer task: the
 * task's chunks are scattered over every mapper node's local disk; the
 * (single-threaded) task reads one source node's batch, ships the
 * remote portion over the network, then moves to the next source.
 * Keeps itself alive through the pending callbacks; no reference cycle.
 */
struct ShuffleFetch : std::enable_shared_from_this<ShuffleFetch>
{
    cluster::Cluster *cluster = nullptr;
    int readerNode = 0;
    int taskIndex = 0;
    Bytes chunk = 0;
    std::uint64_t count = 0;
    std::uint64_t stream = oscache::kAnonymousStream;
    Bytes offset = 0; //!< cursor within the reducer's stream range
    /// Nodes holding map outputs (all slaves in a healthy run).
    std::vector<int> sources;
    faults::FaultInjector *injector = nullptr;
    std::function<void()> done;
    /// Invoked instead of done when a source is unreachable.
    std::function<void(int)> fetchFailed;
    int k = 0;
    /// Backoff rounds spent against a partition on the current source.
    int backoff = 0;

    void
    next()
    {
        const int nodes = static_cast<int>(sources.size());
        if (k >= nodes) {
            done();
            return;
        }
        const std::uint64_t base = count / static_cast<std::uint64_t>(
            nodes);
        const std::uint64_t extra =
            static_cast<std::uint64_t>(k) <
                    count % static_cast<std::uint64_t>(nodes)
                ? 1
                : 0;
        const std::uint64_t batch = base + extra;
        const int idx = k++;
        if (batch == 0) {
            next();
            return;
        }
        // Task-dependent start offset so concurrent reducers do not
        // convoy on node 0.
        const int src = sources[static_cast<std::size_t>(
            (taskIndex + idx) % nodes)];
        // A partitioned-away source: back off and retry (the split may
        // heal); past the retry budget it is indistinguishable from a
        // dead executor and becomes a FetchFailure.
        if (cluster->nodeAlive(src) &&
            !cluster->network().reachable(src, readerNode)) {
            if (backoff >= kFetchRetryMax) {
                fetchFailed(src);
                return;
            }
            cluster->network().notePartitionTimeout();
            const Tick delay = secondsToTicks(
                kFetchRetryBaseSec * static_cast<double>(1 << backoff));
            ++backoff;
            --k; // re-resolve this source after the wait
            auto self = shared_from_this();
            cluster->simulator().schedule(delay,
                                          [self]() { self->next(); });
            return;
        }
        backoff = 0;
        // A dead source lost its map outputs; a spontaneous fetch
        // failure models the timeout/corruption path. Either way the
        // reducer reports a FetchFailure and the stage aborts.
        if (!cluster->nodeAlive(src) ||
            (injector != nullptr && injector->drawFetchFailure())) {
            fetchFailed(src);
            return;
        }
        const Bytes batch_offset = offset;
        offset += chunk * batch;
        auto self = shared_from_this();
        cluster->node(src).readThrough(
            oscache::Role::Local, storage::IoOp::ShuffleRead, stream,
            batch_offset, chunk, batch, [self, src, batch]() {
                self->cluster->network().transfer(
                    src, self->readerNode, self->chunk * batch,
                    [self]() { self->next(); });
            });
    }
};

/**
 * Exact per-chunk I/O loop (SparkConf::aggregateIo == false): one
 * device request per chunk with the pipelined CPU interleaved, the
 * ground truth that aggregated batches approximate.
 */
struct ChunkLoop : std::enable_shared_from_this<ChunkLoop>
{
    cluster::Cluster *cluster = nullptr;
    dfs::Hdfs *hdfs = nullptr;
    storage::IoOp op = storage::IoOp::HdfsRead;
    int node = 0;
    int taskIndex = 0;
    Bytes chunk = 0;
    std::uint64_t count = 0;
    std::uint64_t stream = oscache::kAnonymousStream;
    Bytes baseOffset = 0;
    Tick cpuPerChunk = 0;
    /// For ShuffleRead: nodes holding map outputs.
    std::vector<int> sources;
    faults::FaultInjector *injector = nullptr;
    std::function<void()> done;
    /// For ShuffleRead: invoked instead of done on an unreachable source.
    std::function<void(int)> fetchFailed;
    /** For write ops: called per chunk handed to the device. */
    std::function<void()> writeIssued;
    /** For write ops: called per chunk drained by the device. */
    std::function<void()> writeDrained;
    std::uint64_t i = 0;
    /// Backoff rounds spent against a partition on the current chunk.
    int backoff = 0;

    void
    next()
    {
        if (i == count) {
            done();
            return;
        }
        const std::uint64_t idx = i++;
        const Bytes offset = baseOffset + idx * chunk;
        auto self = shared_from_this();
        auto then_cpu = [self]() {
            self->cluster->simulator().schedule(
                self->cpuPerChunk, [self]() { self->next(); });
        };
        switch (op) {
          case storage::IoOp::HdfsRead:
            hdfs->readChunk(node, stream, offset, chunk,
                            std::move(then_cpu));
            return;
          case storage::IoOp::ShuffleRead: {
            const int nodes = static_cast<int>(sources.size());
            const int src = sources[static_cast<std::size_t>(
                (taskIndex + static_cast<int>(idx %
                                              static_cast<std::uint64_t>(
                                                  nodes))) %
                nodes)];
            if (cluster->nodeAlive(src) &&
                !cluster->network().reachable(src, node)) {
                // Partitioned-away source: exponential backoff before
                // the FetchFailure (see ShuffleFetch).
                if (backoff >= kFetchRetryMax) {
                    fetchFailed(src);
                    return;
                }
                cluster->network().notePartitionTimeout();
                const Tick delay = secondsToTicks(
                    kFetchRetryBaseSec *
                    static_cast<double>(1 << backoff));
                ++backoff;
                --i; // retry this chunk after the wait
                cluster->simulator().schedule(
                    delay, [self]() { self->next(); });
                return;
            }
            backoff = 0;
            if (!cluster->nodeAlive(src) ||
                (injector != nullptr && injector->drawFetchFailure())) {
                fetchFailed(src);
                return;
            }
            cluster->node(src).readThrough(
                oscache::Role::Local, storage::IoOp::ShuffleRead,
                stream, offset, chunk, 1,
                [self, src, then_cpu = std::move(then_cpu)]() mutable {
                    self->cluster->network().transfer(
                        src, self->node, self->chunk,
                        std::move(then_cpu));
                });
            return;
          }
          case storage::IoOp::PersistRead:
          case storage::IoOp::RawRead:
            cluster->node(node).readThrough(oscache::Role::Local, op,
                                            stream, offset, chunk, 1,
                                            std::move(then_cpu));
            return;
          default: {
            // Writes: serialize (CPU), hand the chunk to the device
            // asynchronously, and continue.
            cluster->simulator().schedule(cpuPerChunk, [self, offset]() {
                self->writeIssued();
                if (self->op == storage::IoOp::HdfsWrite) {
                    self->hdfs->writeChunk(self->node, self->stream,
                                           offset, self->chunk,
                                           self->writeDrained);
                } else {
                    self->cluster->node(self->node).writeThrough(
                        oscache::Role::Local, self->op, self->stream,
                        offset, self->chunk, 1, self->writeDrained);
                }
                self->next();
            });
            return;
          }
        }
    }
};

} // namespace

/** Shared bookkeeping for one executing stage. */
struct TaskEngine::StageRun
{
    /** Per-logical-task attempt state (speculative execution). */
    struct TaskState
    {
        Tick firstLaunch = 0;
        bool launched = false;
        bool done = false;
        bool speculated = false;
        /** Crashes charged against spark.task.maxFailures (node loss
         *  is not charged, matching executor-loss semantics). */
        int failures = 0;
        /** Waiting in StageRun::retries (at most one queue entry). */
        bool retryQueued = false;
        /** Nodes this task crashed on; retries avoid them while an
         *  alive alternative exists. */
        std::vector<int> blacklist;
        /** Live attempts, so the winner can kill the loser. */
        std::vector<std::weak_ptr<TaskRun>> attempts;
        /** When the task (re-)entered the runnable queue, for the
         *  scheduler-wait column of the task trace. */
        Tick readyTick = 0;
        /** Attempts launched so far (1-based attempt numbers). */
        int attemptsLaunched = 0;

        /** @return true while some attempt may still complete. */
        bool hasLiveAttempt() const;
    };

    /** Owned copy of the caller's spec. Attempts of an aborted stage
     *  can unwind (and trace their task spans) from a later stage's
     *  event loop, after the caller's spec — often a recovery/remainder
     *  temporary — is gone; every group pointer below targets this
     *  copy, whose lifetime is the run's. */
    StageSpec spec;
    StageMetrics metrics;
    /// Flattened (group, index-within-group) task list cursor.
    std::vector<std::pair<const TaskGroupSpec *, int>> tasks;
    std::vector<TaskState> states;
    /// Attempts currently occupying a core, per node (for the
    /// periodic speculation check).
    std::vector<int> busyCores;
    sim::EventId speculationTimer = 0;
    bool speculationTimerArmed = false;
    std::size_t nextTask = 0;
    int completed = 0;
    /**
     * Device writes still draining. Writes are asynchronous: a task
     * hands its serialized output to the disk (OS page cache, shuffle
     * writer buffers, the HDFS DataStreamer pipeline) and proceeds,
     * but the stage only completes when the devices have drained —
     * this is the compute/write overlap the paper's pipeline
     * execution model assumes.
     */
    int outstandingWrites = 0;
    double gcFactor = 1.0;
    Rng rng;
    /// Nodes holding this stage's shuffle inputs (alive set at start).
    std::vector<int> shuffleSources;
    /// Failed tasks waiting for a core (retried before fresh tasks).
    std::deque<std::size_t> retries;
    /// Source node of the first fetch failure; >= 0 aborts the stage.
    int fetchFailedSource = -1;
    /// Set on stage abort: free cores stop pulling work.
    bool abortLaunches = false;
    /// Multi-tenant submission (submitStage): completion callback,
    /// the tag echoed to CoreArbiter::attemptFinished, and the driver
    /// track the stage span goes to. Unset for runStage() stages.
    StageCallback onDone;
    int schedTag = 0;
    int driverTid = trace::kTidStages;
};

/** One in-flight task attempt. */
struct TaskEngine::TaskRun
{
    const TaskGroupSpec *group = nullptr;
    int taskIndex = 0; //!< global index within the stage
    int node = 0;
    Tick start = 0;
    std::size_t phase = 0;
    double slowdown = 1.0; //!< jitter x GC factor applied to CPU time
    /** Set when another attempt won the race; the chain unwinds at
     *  the next phase boundary. */
    bool aborted = false;
    /** Pending pure-timer event (dispatch/compute), cancellable. */
    sim::EventId pendingEvent = 0;
    bool hasPendingEvent = false;
    /** Injected crash: the attempt dies when it reaches this phase
     *  boundary (SIZE_MAX = healthy). */
    std::size_t failAtPhase = SIZE_MAX;
    /** Execution memory this attempt holds (unified mode), returned
     *  to the node's pool on every exit path. */
    Bytes executionHeld = 0;
    /** 1-based attempt number of the logical task. */
    int attempt = 1;
    /** Seconds this attempt waited for a core before launching. */
    double schedWaitSec = 0.0;
    /** Core-slot track the attempt occupies (tracing only). */
    int coreSlot = -1;
    /** Why the attempt was aborted, for its task span / TaskRecord.
     *  Set at the abort site; attempts inside device chains carry it
     *  to the phase boundary where they unwind. */
    const char *abortReason = nullptr;
};

bool
TaskEngine::StageRun::TaskState::hasLiveAttempt() const
{
    for (const std::weak_ptr<TaskRun> &weak : attempts) {
        const std::shared_ptr<TaskRun> attempt = weak.lock();
        if (attempt && !attempt->aborted)
            return true;
    }
    return false;
}

TaskEngine::TaskEngine(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
                       const SparkConf &conf)
    : cluster_(clusterRef), hdfs_(hdfs), conf_(conf),
      rng_(clusterRef.config().seed ^ 0x7461736bULL /* "task" */)
{}

void
TaskEngine::setTraceCollector(trace::TraceCollector *collector)
{
    collector_ = collector;
    coreSlots_.assign(static_cast<std::size_t>(cluster_.numSlaves()),
                      {});
    if (collector == nullptr)
        return;
    const int cores = effectiveCores();
    for (int node = 0; node < cluster_.numSlaves(); ++node) {
        const int pid = trace::nodePid(node);
        for (int c = 0; c < cores; ++c)
            collector->setThreadName(pid, trace::coreTid(c),
                                     "core " + std::to_string(c));
        collector->setThreadName(pid, trace::kTidMemory, "memory");
    }
}

int
TaskEngine::allocateCoreSlot(int node)
{
    std::vector<bool> &slots =
        coreSlots_[static_cast<std::size_t>(node)];
    for (std::size_t s = 0; s < slots.size(); ++s) {
        if (!slots[s]) {
            slots[s] = true;
            return static_cast<int>(s);
        }
    }
    slots.push_back(true);
    const int slot = static_cast<int>(slots.size()) - 1;
    if (slot >= effectiveCores()) {
        // Overflow track: a zombie attempt from an aborted stage still
        // holds its slot while the rerun fills every core.
        collector_->setThreadName(trace::nodePid(node),
                                  trace::coreTid(slot),
                                  "core " + std::to_string(slot) +
                                      " (overflow)");
    }
    return slot;
}

void
TaskEngine::releaseCoreSlot(int node, int slot)
{
    coreSlots_[static_cast<std::size_t>(node)]
              [static_cast<std::size_t>(slot)] = false;
}

void
TaskEngine::finishAttempt(const std::shared_ptr<StageRun> &run,
                          const std::shared_ptr<TaskRun> &task,
                          const char *status)
{
    const Tick now = cluster_.simulator().now();
    --run->busyCores[static_cast<std::size_t>(task->node)];
    if (trace_ != nullptr) {
        trace_->add(TaskRecord{run->metrics.name, task->group->name,
                               task->taskIndex, task->node, task->start,
                               now, task->attempt, status,
                               task->schedWaitSec});
    }
    if (collector_ != nullptr && task->coreSlot >= 0) {
        const bool ok = std::strcmp(status, "ok") == 0;
        collector_->span(trace::nodePid(task->node),
                         trace::coreTid(task->coreSlot),
                         ok ? "task" : "task-lost",
                         task->group->name + " #" +
                             std::to_string(task->taskIndex),
                         task->start, now,
                         trace::TraceArgs()
                             .add("attempt", task->attempt)
                             .add("status", status));
        releaseCoreSlot(task->node, task->coreSlot);
    }
    // Multi-tenant mode: report the core release so the scheduler's
    // own busy accounting stays exact (finishAttempt is the single
    // per-attempt exit, 1:1 with launches).
    if (arbiter_ != nullptr)
        arbiter_->attemptFinished(task->node, run->schedTag);
}

void
TaskEngine::setFaultInjector(faults::FaultInjector *injector)
{
    injector_ = injector;
    if (injector_ == nullptr || observerRegistered_)
        return;
    observerRegistered_ = true;
    cluster_.addLivenessObserver([this](int node, bool alive) {
        if (injector_ == nullptr)
            return;
        // Snapshot: node-death handling can complete a submitted
        // stage, which mutates activeRuns_ mid-iteration.
        std::vector<std::shared_ptr<StageRun>> runs;
        runs.reserve(activeRuns_.size());
        for (const std::weak_ptr<StageRun> &weak : activeRuns_) {
            if (std::shared_ptr<StageRun> run = weak.lock())
                runs.push_back(std::move(run));
        }
        for (const std::shared_ptr<StageRun> &run : runs) {
            if (alive)
                kickFreeCores(run); // rejoined node starts pulling work
            else
                onNodeDeath(run, node);
        }
    });
}

int
TaskEngine::effectiveCores() const
{
    return std::min(conf_.executorCores, cluster_.config().node.cores);
}

StageMetrics
TaskEngine::runStage(const StageSpec &spec)
{
    if (arbiter_ != nullptr)
        fatal("TaskEngine: runStage is the single-job entry point; "
              "with a core arbiter attached use submitStage");
    sim::Simulator &sim = cluster_.simulator();
    auto run = std::make_shared<StageRun>();
    run->spec = spec;
    run->metrics.name = spec.name;
    run->metrics.numTasks = spec.numTasks();
    run->metrics.startTick = sim.now();
    run->rng = rng_.fork();
    const int cores = effectiveCores();
    run->gcFactor =
        1.0 + spec.gcSensitivity * static_cast<double>(cores - 1);

    for (const TaskGroupSpec &group : run->spec.groups) {
        if (group.count < 0)
            fatal("TaskEngine: negative task count in group %s",
                  group.name.c_str());
        for (int i = 0; i < group.count; ++i)
            run->tasks.emplace_back(&group, i);
    }
    // An empty stage (all groups zero tasks) is complete as soon as it
    // starts: return valid empty metrics without arming the
    // speculation timer, which would otherwise tick once and advance
    // the clock for no work.
    if (run->tasks.empty()) {
        run->metrics.endTick = sim.now();
        if (collector_ != nullptr)
            collector_->span(trace::kDriverPid, trace::kTidStages,
                             "stage", spec.name, run->metrics.startTick,
                             run->metrics.endTick);
        return run->metrics;
    }
    run->states.resize(run->tasks.size());
    for (StageRun::TaskState &state : run->states)
        state.readyTick = run->metrics.startTick;
    run->busyCores.assign(
        static_cast<std::size_t>(cluster_.numSlaves()), 0);
    run->shuffleSources = cluster_.aliveNodes();
    activeRuns_.push_back(run);
    if (conf_.speculation)
        armSpeculationTimer(run);

    // Fill executor cores round-robin across nodes (Spark's spread-out
    // placement) so small stages do not pile onto one node's disks;
    // the rest of the queue drains as tasks finish.
    for (int c = 0; c < cores; ++c) {
        for (int node = 0; node < cluster_.numSlaves(); ++node)
            launchOnFreeCore(run, node);
    }

    if (injector_ == nullptr) {
        sim.run();
    } else {
        // Under fault injection, stop at stage completion instead of
        // draining the queue: armed node events with later ticks must
        // fire during whichever stage is actually running then (so a
        // mid-shuffle kill hits in-flight fetches), and background
        // repair such as HDFS re-replication overlaps the following
        // stages instead of serializing before them. Leftover events
        // (aborted attempts unwinding, write drains) fire harmlessly
        // in a later stage's loop or in the final drain.
        while (!(run->fetchFailedSource >= 0 ||
                 (run->completed == run->metrics.numTasks &&
                  run->outstandingWrites == 0)) &&
               sim.runOneEvent()) {
        }
    }

    deregisterRun(run.get());
    if (run->speculationTimerArmed)
        panic("TaskEngine: stage %s finished with its speculation "
              "timer still armed",
              spec.name.c_str());
    if (run->fetchFailedSource >= 0) {
        // Aborted on a FetchFailure: hand the partial metrics to the
        // scheduler, which recomputes the lost map outputs and reruns
        // the remainder (see SparkContext::runJob).
        run->metrics.fetchFailedSource = run->fetchFailedSource;
        run->metrics.endTick = sim.now();
        if (collector_ != nullptr)
            collector_->span(trace::kDriverPid, trace::kTidStages,
                             "stage", spec.name, run->metrics.startTick,
                             run->metrics.endTick,
                             trace::TraceArgs().add("aborted", 1));
        return run->metrics;
    }
    if (run->completed != run->metrics.numTasks)
        panic("TaskEngine: stage %s finished with %d/%d tasks",
              spec.name.c_str(), run->completed, run->metrics.numTasks);
    if (run->outstandingWrites != 0)
        panic("TaskEngine: stage %s finished with %d undrained writes",
              spec.name.c_str(), run->outstandingWrites);
    run->metrics.endTick = sim.now();
    if (collector_ != nullptr)
        collector_->span(trace::kDriverPid, trace::kTidStages, "stage",
                         spec.name, run->metrics.startTick,
                         run->metrics.endTick,
                         trace::TraceArgs().add(
                             "tasks", run->metrics.numTasks));
    return run->metrics;
}

void
TaskEngine::launchAttempt(std::shared_ptr<StageRun> run, int node,
                          std::size_t index)
{
    const auto [group, index_in_group] = run->tasks[index];
    auto task = std::make_shared<TaskRun>();
    task->group = group;
    task->taskIndex = static_cast<int>(index);
    task->node = node;
    task->start = cluster_.simulator().now();
    task->slowdown = run->rng.jitter(
                         cluster_.config().taskJitterSigma) *
                     run->gcFactor;
    // Straggler injection (per attempt: a speculative copy on another
    // core can escape the slow environment).
    const double straggler_p = cluster_.config().stragglerProbability;
    if (straggler_p > 0.0 && run->rng.uniform() < straggler_p)
        task->slowdown *= cluster_.config().stragglerSlowdown;
    // Gray failure: a slow node stretches every attempt placed on it
    // (the factor is 1.0 on healthy nodes, which is exact, so fault-
    // free runs are unchanged). A speculative copy elsewhere escapes
    // the slow environment — the signal speculation exists to detect.
    task->slowdown *= cluster_.computeSlowdown(node);

    ++run->metrics.faults.taskAttempts;
    // Injected crash: decided per attempt, the failure point drawn as
    // a phase boundary (dying just before completion wastes the most
    // work). No draws happen when the rate is zero.
    if (injector_ != nullptr && injector_->drawTaskFailure()) {
        task->failAtPhase = static_cast<std::size_t>(
            injector_->drawFailurePhase(group->phases.size()));
    }

    StageRun::TaskState &state =
        run->states[static_cast<std::size_t>(index)];
    if (!state.launched) {
        state.launched = true;
        state.firstLaunch = task->start;
    }
    state.attempts.push_back(task);
    task->attempt = ++state.attemptsLaunched;
    task->schedWaitSec = ticksToSeconds(task->start - state.readyTick);
    if (collector_ != nullptr)
        task->coreSlot = allocateCoreSlot(node);
    ++run->busyCores[static_cast<std::size_t>(node)];

    // Task dispatch overhead (driver round trip, task deserialization).
    TaskRun *raw_task = task.get();
    const sim::EventId event = cluster_.simulator().schedule(
        secondsToTicks(conf_.taskDispatchOverheadSec),
        [this, run = std::move(run), task = std::move(task)]() mutable {
            runPhase(std::move(run), std::move(task));
        });
    raw_task->pendingEvent = event;
    raw_task->hasPendingEvent = true;
}

bool
TaskEngine::tryLaunchQueued(const std::shared_ptr<StageRun> &run,
                            int node)
{
    // Failed tasks retry before fresh work, avoiding blacklisted nodes
    // while an alive alternative exists (with every usable node
    // blacklisted the task must run somewhere, so the list is waived).
    for (std::size_t i = 0; i < run->retries.size(); ++i) {
        const std::size_t index = run->retries[i];
        StageRun::TaskState &state = run->states[index];
        const auto blacklisted = [&state](int candidate) {
            return std::find(state.blacklist.begin(),
                             state.blacklist.end(),
                             candidate) != state.blacklist.end();
        };
        if (blacklisted(node)) {
            bool alternative = false;
            for (int other = 0; other < cluster_.numSlaves(); ++other) {
                if (cluster_.nodeAlive(other) && !blacklisted(other)) {
                    alternative = true;
                    break;
                }
            }
            if (alternative)
                continue;
        }
        run->retries.erase(run->retries.begin() +
                           static_cast<std::ptrdiff_t>(i));
        state.retryQueued = false;
        launchAttempt(run, node, index);
        return true;
    }
    if (run->nextTask < run->tasks.size()) {
        const std::size_t index = run->nextTask++;
        launchAttempt(run, node, index);
        return true;
    }
    return false;
}

void
TaskEngine::launchOnFreeCore(std::shared_ptr<StageRun> run, int node)
{
    if (arbiter_ != nullptr) {
        // Multi-tenant mode: the freed core goes back to the
        // scheduler, which picks the next stage by pool policy.
        arbiter_->offerCore(node);
        return;
    }
    if (run->abortLaunches || !cluster_.nodeAlive(node))
        return;
    if (tryLaunchQueued(run, node))
        return;
    if (conf_.speculation)
        speculateOnNode(std::move(run), node);
}

bool
TaskEngine::tryLaunch(const StageRef &run, int node)
{
    if (run->abortLaunches || !cluster_.nodeAlive(node))
        return false;
    return tryLaunchQueued(run, node);
}

bool
TaskEngine::hasRunnableWork(const StageRef &run) const
{
    return !run->abortLaunches &&
           (!run->retries.empty() || run->nextTask < run->tasks.size());
}

void
TaskEngine::kickFreeCores(const std::shared_ptr<StageRun> &run)
{
    if (arbiter_ != nullptr) {
        // Capacity or runnable work changed; let the scheduler refill
        // every free core across all submitted stages.
        arbiter_->offerCores();
        return;
    }
    const int cores = effectiveCores();
    for (int node = 0; node < cluster_.numSlaves(); ++node) {
        if (!cluster_.nodeAlive(node))
            continue;
        while (run->busyCores[static_cast<std::size_t>(node)] < cores) {
            const int before =
                run->busyCores[static_cast<std::size_t>(node)];
            launchOnFreeCore(run, node);
            if (run->busyCores[static_cast<std::size_t>(node)] ==
                before)
                break; // nothing left to launch here
        }
    }
}

/**
 * Try to launch one speculative copy of a laggard task on @p node
 * (Spark's speculation policy, checked both when cores free up and on
 * the periodic timer).
 */
void
TaskEngine::speculateOnNode(std::shared_ptr<StageRun> run, int node)
{
    const int total = run->metrics.numTasks;
    if (run->completed >= total ||
        run->completed <
            static_cast<int>(conf_.speculationQuantile * total))
        return;
    const double mean = run->metrics.taskDuration.mean();
    if (mean <= 0.0)
        return;
    const Tick now = cluster_.simulator().now();
    for (std::size_t i = 0; i < run->states.size(); ++i) {
        StageRun::TaskState &state = run->states[i];
        if (!state.launched || state.done || state.speculated)
            continue;
        const double elapsed =
            ticksToSeconds(now - state.firstLaunch);
        if (elapsed > conf_.speculationMultiplier * mean) {
            state.speculated = true;
            state.readyTick = now; // the copy becomes runnable here
            launchAttempt(std::move(run), node, i);
            return;
        }
    }
}

/** Arm the recurring speculation check (Spark: spark.speculation
 *  re-evaluates laggards on a timer, not only on completions). */
void
TaskEngine::armSpeculationTimer(std::shared_ptr<StageRun> run)
{
    constexpr double kCheckIntervalSec = 1.0;
    StageRun *raw = run.get();
    raw->speculationTimerArmed = true;
    raw->speculationTimer = cluster_.simulator().schedule(
        secondsToTicks(kCheckIntervalSec),
        [this, run = std::move(run)]() mutable {
            run->speculationTimerArmed = false;
            if (run->completed >= run->metrics.numTasks)
                return;
            const int cores = effectiveCores();
            for (int node = 0; node < cluster_.numSlaves(); ++node) {
                if (!cluster_.nodeAlive(node))
                    continue;
                while (run->busyCores[static_cast<std::size_t>(
                           node)] < cores) {
                    const int before = run->busyCores
                        [static_cast<std::size_t>(node)];
                    speculateOnNode(run, node);
                    if (run->busyCores[static_cast<std::size_t>(
                            node)] == before)
                        break; // nothing launched
                }
            }
            armSpeculationTimer(std::move(run));
        });
}

void
TaskEngine::runPhase(std::shared_ptr<StageRun> run,
                     std::shared_ptr<TaskRun> task)
{
    task->hasPendingEvent = false;
    StageRun::TaskState &state =
        run->states[static_cast<std::size_t>(task->taskIndex)];

    // A losing speculative attempt unwinds at the next phase boundary
    // (in-flight device requests cannot be recalled).
    if (task->aborted ||
        (state.done && task->phase < task->group->phases.size())) {
        releaseExecutionHold(task);
        const int node = task->node;
        finishAttempt(run, task,
                      task->abortReason != nullptr ? task->abortReason
                                                   : "lost-race");
        launchOnFreeCore(std::move(run), node);
        return;
    }

    // Injected crash at this phase boundary (skipped when a twin
    // already finished the task — nothing left to lose).
    if (!state.done && task->phase >= task->failAtPhase) {
        failAttempt(run, task);
        return;
    }

    if (task->phase >= task->group->phases.size()) {
        // Attempt complete; the first attempt of a task wins.
        releaseExecutionHold(task);
        const Tick now = cluster_.simulator().now();
        const bool winner = !state.done;
        finishAttempt(run, task,
                      winner ? "ok"
                             : (task->abortReason != nullptr
                                    ? task->abortReason
                                    : "lost-race"));
        if (!state.done) {
            state.done = true;
            run->metrics.taskDuration.add(
                ticksToSeconds(now - task->start));
            ++run->completed;
            if (run->completed == run->metrics.numTasks &&
                run->speculationTimerArmed) {
                cluster_.simulator().cancel(run->speculationTimer);
                run->speculationTimerArmed = false;
            }
            // Kill the losing attempt outright when it is parked on a
            // cancellable timer (dispatch or pure compute).
            for (const std::weak_ptr<TaskRun> &weak : state.attempts) {
                const std::shared_ptr<TaskRun> other = weak.lock();
                if (!other || other.get() == task.get() ||
                    other->aborted)
                    continue;
                other->aborted = true;
                other->abortReason = "lost-race";
                if (other->hasPendingEvent) {
                    cluster_.simulator().cancel(other->pendingEvent);
                    other->hasPendingEvent = false;
                    releaseExecutionHold(other);
                    finishAttempt(run, other, "lost-race");
                    launchOnFreeCore(run, other->node);
                }
            }
        }
        launchOnFreeCore(run, task->node);
        maybeFinishAsync(run);
        return;
    }

    const PhaseSpec &phase = task->group->phases[task->phase];
    ++task->phase;
    if (const auto *compute = std::get_if<ComputePhaseSpec>(&phase)) {
        // Evaluate the delay before the lambda argument moves `task`
        // (argument evaluation order is unspecified).
        const Tick delay =
            secondsToTicks(compute->seconds * task->slowdown);
        const Tick phase_start = cluster_.simulator().now();
        TaskRun *raw_task = task.get();
        const sim::EventId event = cluster_.simulator().schedule(
            delay, [this, phase_start, run = std::move(run),
                    task = std::move(task)]() mutable {
                if (collector_ != nullptr && task->coreSlot >= 0)
                    collector_->span(trace::nodePid(task->node),
                                     trace::coreTid(task->coreSlot),
                                     "phase", "compute", phase_start,
                                     cluster_.simulator().now());
                runPhase(std::move(run), std::move(task));
            });
        raw_task->pendingEvent = event;
        raw_task->hasPendingEvent = true;
        return;
    }
    runIoPhase(std::move(run), std::move(task),
               std::get<IoPhaseSpec>(phase));
}

void
TaskEngine::runIoPhase(std::shared_ptr<StageRun> run,
                       std::shared_ptr<TaskRun> task,
                       const IoPhaseSpec &phase)
{
    // Unified memory: shuffle phases back their sort buffers and
    // aggregation maps with an execution-memory reservation sized to
    // the phase's data. A short grant spills the shortfall through the
    // local disks first; a zero grant in a contended pool is the
    // simulated OOM.
    if (memory_ != nullptr && phase.bytesPerTask > 0 &&
        (phase.op == storage::IoOp::ShuffleWrite ||
         phase.op == storage::IoOp::ShuffleRead)) {
        const Bytes want = phase.bytesPerTask;
        const int active = std::max(
            1, run->busyCores[static_cast<std::size_t>(task->node)]);
        const Bytes grant =
            memory_->acquireExecution(task->node, want, active);
        task->executionHeld += grant;
        if (grant == 0) {
            ++memory_->memoryCounters().oomKills;
            failOnOom(run, task);
            return;
        }
        if (grant < want) {
            runSpill(std::move(run), std::move(task), phase,
                     want - grant);
            return;
        }
    }
    startIoPhase(std::move(run), std::move(task), phase);
}

void
TaskEngine::runSpill(std::shared_ptr<StageRun> run,
                     std::shared_ptr<TaskRun> task,
                     const IoPhaseSpec &phase, Bytes spillBytes)
{
    // The in-memory buffer fills ceil(want / grant) times, producing
    // that many sorted runs on disk; each merge pass (fan-in
    // kMergeFanIn) re-reads and re-writes the spilled share.
    const Bytes want = phase.bytesPerTask;
    const Bytes grant = want - spillBytes;
    const std::uint64_t sorted_runs = (want + grant - 1) / grant;
    std::uint64_t passes = 0;
    for (std::uint64_t runs = sorted_runs; runs > 1;
         runs = (runs + kMergeFanIn - 1) / kMergeFanIn)
        ++passes;
    passes = std::max<std::uint64_t>(1, passes);

    MemoryMetrics &mem = memory_->memoryCounters();
    ++mem.spills;
    mem.spillPasses += passes;
    mem.spilledBytes += spillBytes;

    const Bytes total = spillBytes * passes;
    const Bytes preferred = std::min<Bytes>(
        total, std::max<Bytes>(1, conf_.diskStoreRequestSize));
    const std::uint64_t count =
        std::max<std::uint64_t>(1, (total + preferred - 1) / preferred);
    const Bytes chunk = std::max<Bytes>(1, total / count);

    StageIoStats &write_stats =
        run->metrics.forOp(storage::IoOp::SpillWrite);
    write_stats.requests += count;
    write_stats.bytes += total;
    write_stats.requestSize.addMany(static_cast<double>(chunk), count);
    StageIoStats &read_stats =
        run->metrics.forOp(storage::IoOp::SpillRead);
    read_stats.requests += count;
    read_stats.bytes += total;
    read_stats.requestSize.addMany(static_cast<double>(chunk), count);

    // Spill files are their own cache stream: written and immediately
    // re-read, so the page cache absorbs what fits of the round trip.
    IoPhaseSpec shape;
    shape.op = storage::IoOp::SpillWrite;
    shape.bytesPerTask = total;
    const std::uint64_t stream = cacheStreamFor(shape);
    const Bytes offset = static_cast<Bytes>(task->taskIndex) * total;
    const int node = task->node;
    const Tick spill_start = cluster_.simulator().now();

    // The sort blocks on its spills: write the runs out, merge them
    // back in, then start the gated phase. The IoPhaseSpec lives in
    // the StageSpec, which outlives the run.
    const IoPhaseSpec *gated = &phase;
    cluster_.node(node).writeThrough(
        oscache::Role::Local, storage::IoOp::SpillWrite, stream, offset,
        chunk, count,
        [this, run, task, gated, node, stream, offset, chunk, count,
         spill_start, spillBytes]() mutable {
            cluster_.node(node).readThrough(
                oscache::Role::Local, storage::IoOp::SpillRead, stream,
                offset, chunk, count,
                [this, run = std::move(run), task = std::move(task),
                 gated, spill_start, spillBytes]() mutable {
                    run->metrics.forOp(storage::IoOp::SpillWrite)
                        .phaseSeconds.add(ticksToSeconds(
                            cluster_.simulator().now() - spill_start));
                    if (collector_ != nullptr && task->coreSlot >= 0)
                        collector_->span(
                            trace::nodePid(task->node),
                            trace::coreTid(task->coreSlot), "phase",
                            "spill", spill_start,
                            cluster_.simulator().now(),
                            trace::TraceArgs().add("bytes",
                                                   spillBytes));
                    startIoPhase(std::move(run), std::move(task),
                                 *gated);
                });
        });
}

void
TaskEngine::releaseExecutionHold(const std::shared_ptr<TaskRun> &task)
{
    if (memory_ == nullptr || task->executionHeld == 0)
        return;
    memory_->releaseExecution(task->node, task->executionHeld);
    task->executionHeld = 0;
}

void
TaskEngine::failOnOom(const std::shared_ptr<StageRun> &run,
                      const std::shared_ptr<TaskRun> &task)
{
    const std::size_t index = static_cast<std::size_t>(task->taskIndex);
    StageRun::TaskState &state = run->states[index];
    const Tick now = cluster_.simulator().now();

    releaseExecutionHold(task);
    ++run->metrics.faults.taskFailures;
    run->metrics.faults.wastedTaskSeconds +=
        ticksToSeconds(now - task->start);
    task->aborted = true;
    if (collector_ != nullptr)
        collector_->instant(trace::nodePid(task->node),
                            trace::kTidMemory, "memory", "oom_kill",
                            now,
                            trace::TraceArgs()
                                .add("task", task->taskIndex)
                                .add("attempt", task->attempt));
    finishAttempt(run, task, "oom");

    ++state.failures;
    if (state.failures >= conf_.taskMaxFailures)
        fatal("TaskEngine: task %d of stage %s could not reserve "
              "execution memory %d times (spark.task.maxFailures), "
              "aborting the application",
              task->taskIndex, run->metrics.name.c_str(),
              state.failures);
    if (cluster_.aliveCount() > 1 &&
        std::find(state.blacklist.begin(), state.blacklist.end(),
                  task->node) == state.blacklist.end())
        state.blacklist.push_back(task->node);

    if (!state.done && !state.retryQueued && !state.hasLiveAttempt()) {
        ++run->metrics.faults.taskRetries;
        state.retryQueued = true;
        state.launched = false;
        cluster_.simulator().schedule(
            secondsToTicks(kOomRetryDelaySec),
            [this, run, index]() {
                run->states[index].readyTick =
                    cluster_.simulator().now();
                run->retries.push_back(index);
                kickFreeCores(run);
            });
    }
    kickFreeCores(run);
}

void
TaskEngine::startIoPhase(std::shared_ptr<StageRun> run,
                         std::shared_ptr<TaskRun> task,
                         const IoPhaseSpec &phase)
{
    const std::uint64_t count = chunkCount(phase);
    if (count == 0) {
        runPhase(std::move(run), std::move(task));
        return;
    }
    const Bytes chunk = phase.bytesPerTask / count;

    // Stage-scoped iostat-style accounting (logical requests).
    StageIoStats &io_stats = run->metrics.forOp(phase.op);
    io_stats.requests += count;
    io_stats.bytes += phase.bytesPerTask;
    io_stats.requestSize.addMany(static_cast<double>(chunk), count);

    const int node = task->node;
    // Cache identity: offsets are laid out per logical task so a
    // re-read of the same stream (second iteration, persist-read after
    // persist-write) touches the same byte ranges and hits.
    const std::uint64_t stream = cacheStreamFor(phase);
    const Bytes base_offset =
        static_cast<Bytes>(task->taskIndex) * phase.bytesPerTask;
    const Tick phase_start = cluster_.simulator().now();
    const int trace_pid = trace::nodePid(node);
    const int trace_tid =
        task->coreSlot >= 0 ? trace::coreTid(task->coreSlot) : 0;
    const storage::IoOp trace_op = phase.op;
    const Bytes trace_bytes = phase.bytesPerTask;
    auto record_phase = [&io_stats, phase_start, trace_pid, trace_tid,
                         trace_op, trace_bytes, this]() {
        io_stats.phaseSeconds.add(ticksToSeconds(
            cluster_.simulator().now() - phase_start));
        if (collector_ != nullptr && trace_tid != 0)
            collector_->span(trace_pid, trace_tid, "phase",
                             storage::ioOpName(trace_op), phase_start,
                             cluster_.simulator().now(),
                             trace::TraceArgs().add("bytes",
                                                    trace_bytes));
    };
    if (!conf_.aggregateIo) {
        auto loop = std::make_shared<ChunkLoop>();
        loop->cluster = &cluster_;
        loop->hdfs = &hdfs_;
        loop->op = phase.op;
        loop->node = node;
        loop->taskIndex = task->taskIndex;
        loop->chunk = chunk;
        loop->count = count;
        loop->stream = stream;
        loop->baseOffset = base_offset;
        loop->cpuPerChunk = secondsToTicks(
            phase.cpuPerByte * static_cast<double>(chunk) *
            task->slowdown);
        loop->writeIssued = [run]() { ++run->outstandingWrites; };
        loop->writeDrained = [this, run]() { noteWriteDrained(run); };
        if (phase.op == storage::IoOp::ShuffleRead) {
            loop->sources = run->shuffleSources;
            loop->injector = injector_;
            loop->fetchFailed = [this, run, task](int source) {
                handleFetchFailure(run, task, source);
            };
        }
        loop->done = [this, record_phase, run = std::move(run),
                      task = std::move(task)]() mutable {
            record_phase();
            runPhase(std::move(run), std::move(task));
        };
        loop->next();
        return;
    }

    // Pipelined CPU of the phase (decompress/deserialize for reads,
    // serialize/compress for writes), lumped in aggregated mode;
    // per-task duration is identical (serial sum).
    const double cpu_seconds = phase.cpuPerByte *
                               static_cast<double>(phase.bytesPerTask) *
                               task->slowdown;

    if (!storage::isRead(phase.op)) {
        // Asynchronous write: serialize (pipelined CPU), hand the
        // whole batch to the device, and move on; the stage barrier
        // waits for the drain.
        ++run->outstandingWrites;
        auto on_drain = [this, run]() { noteWriteDrained(run); };
        const storage::IoOp op = phase.op;
        cluster_.simulator().schedule(
            secondsToTicks(cpu_seconds),
            [this, run, task, record_phase, op, chunk, count, node,
             stream, base_offset, on_drain]() mutable {
                record_phase();
                if (op == storage::IoOp::HdfsWrite) {
                    hdfs_.writeBatch(node, stream, base_offset, chunk,
                                     count, std::move(on_drain));
                } else {
                    cluster_.node(node).writeThrough(
                        oscache::Role::Local, op, stream, base_offset,
                        chunk, count, std::move(on_drain));
                }
                runPhase(std::move(run), std::move(task));
            });
        return;
    }

    // Reads: device I/O first, then the pipelined CPU, then the next
    // phase.
    auto after_io = [this, run, task, cpu_seconds,
                     record_phase]() mutable {
        cluster_.simulator().schedule(
            secondsToTicks(cpu_seconds),
            [this, record_phase, run = std::move(run),
             task = std::move(task)]() mutable {
                record_phase();
                runPhase(std::move(run), std::move(task));
            });
    };

    switch (phase.op) {
      case storage::IoOp::HdfsRead:
        hdfs_.readBatch(node, stream, base_offset, chunk, count,
                        std::move(after_io));
        return;
      case storage::IoOp::PersistRead:
        cluster_.node(node).readThrough(
            oscache::Role::Local, phase.op, stream, base_offset, chunk,
            count, std::move(after_io));
        return;
      case storage::IoOp::ShuffleRead: {
        auto fetch = std::make_shared<ShuffleFetch>();
        fetch->cluster = &cluster_;
        fetch->readerNode = node;
        fetch->taskIndex = task->taskIndex;
        fetch->chunk = chunk;
        fetch->count = count;
        fetch->stream = stream;
        fetch->offset = base_offset;
        fetch->sources = run->shuffleSources;
        fetch->injector = injector_;
        fetch->fetchFailed = [this, run, task](int source) {
            handleFetchFailure(run, task, source);
        };
        fetch->done = std::move(after_io);
        fetch->next();
        return;
      }
      default:
        fatal("TaskEngine: unexpected aggregated read op %s",
              storage::ioOpName(phase.op));
    }
}

void
TaskEngine::failAttempt(const std::shared_ptr<StageRun> &run,
                        const std::shared_ptr<TaskRun> &task)
{
    const std::size_t index = static_cast<std::size_t>(task->taskIndex);
    StageRun::TaskState &state = run->states[index];
    const Tick now = cluster_.simulator().now();

    releaseExecutionHold(task);
    ++run->metrics.faults.taskFailures;
    run->metrics.faults.wastedTaskSeconds +=
        ticksToSeconds(now - task->start);
    task->aborted = true;
    finishAttempt(run, task, "crash");

    ++state.failures;
    if (state.failures >= conf_.taskMaxFailures)
        fatal("TaskEngine: task %d of stage %s failed %d times "
              "(spark.task.maxFailures), aborting the application",
              task->taskIndex, run->metrics.name.c_str(),
              state.failures);
    // Blacklist the crash site for this task's retries while another
    // node can take it (single-node clusters must retry in place).
    if (cluster_.aliveCount() > 1 &&
        std::find(state.blacklist.begin(), state.blacklist.end(),
                  task->node) == state.blacklist.end())
        state.blacklist.push_back(task->node);

    if (!state.done && !state.retryQueued && !state.hasLiveAttempt()) {
        ++run->metrics.faults.taskRetries;
        state.retryQueued = true;
        state.launched = false; // retry re-baselines speculation
        state.readyTick = now;
        run->retries.push_back(index);
    }
    kickFreeCores(run);
}

void
TaskEngine::handleFetchFailure(const std::shared_ptr<StageRun> &run,
                               const std::shared_ptr<TaskRun> &task,
                               int source)
{
    ++run->metrics.faults.fetchFailures;
    if (run->fetchFailedSource < 0) {
        // First FetchFailure aborts the whole stage, as the Spark 1.6
        // DAGScheduler does: every live attempt is cancelled (those
        // parked on timers immediately, those inside device chains at
        // their next phase boundary) and no new work is launched. The
        // scheduler recomputes the lost map outputs and reruns.
        run->fetchFailedSource = source;
        run->abortLaunches = true;
        for (StageRun::TaskState &state : run->states) {
            for (const std::weak_ptr<TaskRun> &weak : state.attempts) {
                const std::shared_ptr<TaskRun> attempt = weak.lock();
                if (!attempt || attempt->aborted)
                    continue;
                attempt->aborted = true;
                attempt->abortReason = "stage-abort";
                releaseExecutionHold(attempt);
                if (attempt->hasPendingEvent) {
                    cluster_.simulator().cancel(attempt->pendingEvent);
                    attempt->hasPendingEvent = false;
                    finishAttempt(run, attempt, "stage-abort");
                }
            }
        }
        if (run->speculationTimerArmed) {
            cluster_.simulator().cancel(run->speculationTimer);
            run->speculationTimerArmed = false;
        }
    }
    // The reporting attempt's fetch chain ends here (it never reaches
    // runPhase again), so its core frees now; it was marked aborted
    // above or by an earlier failure's sweep.
    task->aborted = true;
    releaseExecutionHold(task);
    finishAttempt(run, task, "fetch-fail");
    // A submitted stage reports the abort through its callback (the
    // sync path returns out of runStage's event loop instead).
    maybeFinishAsync(run);
}

void
TaskEngine::onNodeDeath(const std::shared_ptr<StageRun> &run, int node)
{
    if (run->completed >= run->metrics.numTasks)
        return;
    const Tick now = cluster_.simulator().now();
    for (std::size_t i = 0; i < run->states.size(); ++i) {
        StageRun::TaskState &state = run->states[i];
        if (state.done)
            continue;
        for (const std::weak_ptr<TaskRun> &weak : state.attempts) {
            const std::shared_ptr<TaskRun> attempt = weak.lock();
            if (!attempt || attempt->aborted || attempt->node != node)
                continue;
            attempt->aborted = true;
            attempt->abortReason = "node-loss";
            releaseExecutionHold(attempt);
            ++run->metrics.faults.lostAttempts;
            run->metrics.faults.wastedTaskSeconds +=
                ticksToSeconds(now - attempt->start);
            if (attempt->hasPendingEvent) {
                cluster_.simulator().cancel(attempt->pendingEvent);
                attempt->hasPendingEvent = false;
                finishAttempt(run, attempt, "node-loss");
            }
            // Attempts inside device chains unwind at their next phase
            // boundary (launchOnFreeCore on a dead node is a no-op).
        }
        // Executor loss re-queues without charging maxFailures. Only
        // tasks that actually launched need a retry entry: a
        // never-launched task is still ahead of nextTask and would
        // otherwise start twice (once as a "retry", once fresh) and
        // burn a dispatch slot unwinding the zombie at stage end.
        if (!run->abortLaunches && !state.retryQueued &&
            !state.hasLiveAttempt() && !state.attempts.empty()) {
            state.retryQueued = true;
            state.launched = false;
            state.readyTick = now;
            run->retries.push_back(i);
        }
    }
    kickFreeCores(run);
}

void
TaskEngine::noteWriteDrained(const std::shared_ptr<StageRun> &run)
{
    --run->outstandingWrites;
    maybeFinishAsync(run);
}

TaskEngine::StageRef
TaskEngine::submitStage(const StageSpec &spec, int schedTag,
                        int driverTid, StageCallback onDone)
{
    if (arbiter_ == nullptr)
        fatal("TaskEngine: submitStage needs a core arbiter "
              "(setArbiter); single-job callers use runStage");
    if (conf_.speculation)
        fatal("TaskEngine: speculative execution is not supported "
              "under a core arbiter (multi-tenant mode)");
    sim::Simulator &sim = cluster_.simulator();
    auto run = std::make_shared<StageRun>();
    run->spec = spec;
    run->metrics.name = spec.name;
    run->metrics.numTasks = spec.numTasks();
    run->metrics.startTick = sim.now();
    run->rng = rng_.fork();
    run->gcFactor = 1.0 + spec.gcSensitivity *
                              static_cast<double>(effectiveCores() - 1);
    run->schedTag = schedTag;
    run->driverTid = driverTid;
    run->onDone = std::move(onDone);

    for (const TaskGroupSpec &group : run->spec.groups) {
        if (group.count < 0)
            fatal("TaskEngine: negative task count in group %s",
                  group.name.c_str());
        for (int i = 0; i < group.count; ++i)
            run->tasks.emplace_back(&group, i);
    }
    if (run->tasks.empty()) {
        // Complete on the next event so the callback never fires
        // before submitStage returns to the caller.
        sim.schedule(0, [this, run]() { maybeFinishAsync(run); });
        return run;
    }
    run->states.resize(run->tasks.size());
    for (StageRun::TaskState &state : run->states)
        state.readyTick = run->metrics.startTick;
    run->busyCores.assign(
        static_cast<std::size_t>(cluster_.numSlaves()), 0);
    run->shuffleSources = cluster_.aliveNodes();
    activeRuns_.push_back(run);
    // No initial fill here: the caller offers cores through the
    // arbiter once the submission is registered.
    return run;
}

void
TaskEngine::maybeFinishAsync(const std::shared_ptr<StageRun> &run)
{
    if (!run->onDone)
        return; // runStage stage, or the callback already fired
    const bool aborted = run->fetchFailedSource >= 0;
    if (!aborted && (run->completed != run->metrics.numTasks ||
                     run->outstandingWrites != 0))
        return;
    deregisterRun(run.get());
    run->metrics.endTick = cluster_.simulator().now();
    if (aborted)
        run->metrics.fetchFailedSource = run->fetchFailedSource;
    if (collector_ != nullptr) {
        trace::TraceArgs args;
        if (aborted)
            args.add("aborted", 1);
        else
            args.add("tasks", run->metrics.numTasks);
        collector_->span(trace::kDriverPid, run->driverTid, "stage",
                         run->metrics.name, run->metrics.startTick,
                         run->metrics.endTick, args);
    }
    // Null the callback before invoking it: completions re-entering
    // through zombie unwinds or write drains must not fire it twice.
    const StageCallback done = std::move(run->onDone);
    run->onDone = nullptr;
    done(run->metrics);
}

void
TaskEngine::deregisterRun(const StageRun *run)
{
    activeRuns_.erase(
        std::remove_if(activeRuns_.begin(), activeRuns_.end(),
                       [run](const std::weak_ptr<StageRun> &weak) {
                           const std::shared_ptr<StageRun> live =
                               weak.lock();
                           return !live || live.get() == run;
                       }),
        activeRuns_.end());
}

} // namespace doppio::spark
