#include "spark/rdd.h"

#include "common/logging.h"

namespace doppio::spark {

const char *
storageLevelName(StorageLevel level)
{
    switch (level) {
      case StorageLevel::None:
        return "NONE";
      case StorageLevel::MemoryOnly:
        return "MEMORY_ONLY";
      case StorageLevel::MemoryAndDisk:
        return "MEMORY_AND_DISK";
      case StorageLevel::DiskOnly:
        return "DISK_ONLY";
    }
    return "unknown";
}

RddRef
Rdd::source(std::string name, const dfs::Hdfs &hdfs, dfs::FileId file)
{
    const dfs::HdfsFile &meta = hdfs.file(file);
    if (meta.size == 0)
        fatal("Rdd %s: source file %s is empty", name.c_str(),
              meta.name.c_str());
    auto rdd = std::make_shared<Rdd>();
    rdd->name = std::move(name);
    rdd->numPartitions = meta.numBlocks();
    rdd->bytes = meta.size;
    rdd->sourceFile = file;
    return rdd;
}

RddRef
Rdd::narrow(std::string name, std::vector<RddRef> parents, Bytes outBytes)
{
    if (parents.empty())
        fatal("Rdd %s: narrow transformation needs at least one parent",
              name.c_str());
    auto rdd = std::make_shared<Rdd>();
    rdd->name = std::move(name);
    rdd->bytes = outBytes;
    int partitions = 0;
    for (auto &parent : parents) {
        if (!parent)
            fatal("Rdd %s: null parent", rdd->name.c_str());
        partitions += parent->numPartitions;
        rdd->deps.push_back(Dep{parent, false});
    }
    rdd->numPartitions = partitions;
    return rdd;
}

RddRef
Rdd::shuffled(std::string name, RddRef parent, int numPartitions,
              Bytes outBytes, ShuffleSpec shuffleSpec)
{
    if (!parent)
        fatal("Rdd %s: null shuffle parent", name.c_str());
    if (numPartitions <= 0)
        fatal("Rdd %s: reduce-side partition count must be positive",
              name.c_str());
    if (shuffleSpec.bytes == 0)
        fatal("Rdd %s: shuffle byte count must be positive",
              name.c_str());
    auto rdd = std::make_shared<Rdd>();
    rdd->name = std::move(name);
    rdd->numPartitions = numPartitions;
    rdd->bytes = outBytes;
    rdd->deps.push_back(Dep{std::move(parent), true});
    rdd->shuffle = std::move(shuffleSpec);
    return rdd;
}

RddRef
Rdd::persist(StorageLevel level)
{
    storageLevel = level;
    return shared_from_this();
}

RddRef
Rdd::checkpoint()
{
    if (isSource())
        fatal("Rdd %s: checkpointing a source RDD is pointless (it "
              "is already on HDFS)",
              name.c_str());
    checkpointRequested = true;
    return shared_from_this();
}

Bytes
Rdd::bytesPerPartition() const
{
    if (numPartitions <= 0)
        fatal("Rdd %s: no partitions", name.c_str());
    return bytes / static_cast<Bytes>(numPartitions);
}

Bytes
Rdd::memoryFootprint(double expansionFactor) const
{
    if (memoryBytes != 0)
        return memoryBytes;
    return static_cast<Bytes>(static_cast<double>(bytes) *
                              expansionFactor);
}

std::string
Rdd::mapStageName() const
{
    if (!shuffle.mapStageName.empty())
        return shuffle.mapStageName;
    return name + ".map";
}

} // namespace doppio::spark
