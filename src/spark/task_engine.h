/**
 * @file
 * Stage/task execution engine.
 *
 * Executes a StageSpec on the simulated cluster: N nodes x P executor
 * cores pull tasks from a shared queue; each task walks its phase list,
 * alternating device I/O (through the node disks, HDFS and the network)
 * with CPU time. Task compute times carry deterministic lognormal
 * jitter and the stage's GC scaling. Stages are barriers, as in Spark.
 *
 * I/O phases run either as exact per-chunk loops or as aggregated
 * device batches (SparkConf::aggregateIo; see
 * storage::DiskDevice::submitBatch for the equivalence argument).
 */

#ifndef DOPPIO_SPARK_TASK_ENGINE_H
#define DOPPIO_SPARK_TASK_ENGINE_H

#include <memory>

#include "cluster/cluster.h"
#include "common/random.h"
#include "dfs/hdfs.h"
#include "spark/metrics.h"
#include "spark/spark_conf.h"
#include "spark/stage_spec.h"
#include "spark/task_trace.h"

namespace doppio::faults {
class FaultInjector;
}

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::spark {

class BlockManager;

/** Runs stages to completion on a cluster. */
class TaskEngine
{
  public:
    TaskEngine(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
               const SparkConf &conf);

    /**
     * Execute @p spec to completion (drains the event loop) and
     * @return its metrics. Stages must be run one at a time.
     */
    StageMetrics runStage(const StageSpec &spec);

    /** @return executor cores per node actually used (min(P, cores)). */
    int effectiveCores() const;

    /**
     * Attach a task-trace collector (or nullptr to detach). Not
     * owned; must outlive subsequent runStage() calls.
     */
    void setTrace(TaskTrace *trace) { trace_ = trace; }

    /**
     * Attach a telemetry collector (or nullptr to detach; not owned).
     * Stages then emit windows on the driver track, and every attempt
     * occupies a per-node core-slot track carrying its task span and
     * nested phase spans (the input of trace::PhaseReport).
     */
    void setTraceCollector(trace::TraceCollector *collector);

    /**
     * Attach the run's fault injector (or nullptr to detach). Enables
     * per-attempt crash draws, node-loss handling (a cluster liveness
     * observer re-queues a dead node's running tasks without charging
     * spark.task.maxFailures, mirroring executor-loss semantics) and
     * shuffle-fetch failure detection. Not owned.
     */
    void setFaultInjector(faults::FaultInjector *injector);

    /**
     * Attach the unified memory model (or nullptr to detach): shuffle
     * phases reserve execution memory per task through the block
     * manager's per-node pools; a short reservation spills the
     * shortfall through the local disks (external sort), and a failed
     * minimum kills the attempt with a simulated OOM that runs through
     * the retry/blacklist machinery. Not owned.
     */
    void setMemoryModel(BlockManager *blocks) { memory_ = blocks; }

  private:
    struct StageRun;
    struct TaskRun;

    void launchAttempt(std::shared_ptr<StageRun> run, int node,
                       std::size_t index);
    void launchOnFreeCore(std::shared_ptr<StageRun> run, int node);
    void speculateOnNode(std::shared_ptr<StageRun> run, int node);
    void armSpeculationTimer(std::shared_ptr<StageRun> run);
    void runPhase(std::shared_ptr<StageRun> run,
                  std::shared_ptr<TaskRun> task);
    void runIoPhase(std::shared_ptr<StageRun> run,
                    std::shared_ptr<TaskRun> task,
                    const IoPhaseSpec &phase);

    /** The device/CPU body of an I/O phase (after any memory gate). */
    void startIoPhase(std::shared_ptr<StageRun> run,
                      std::shared_ptr<TaskRun> task,
                      const IoPhaseSpec &phase);

    /**
     * External-sort spill: stream the reservation shortfall out and
     * back through the node's local disks (one round per merge pass),
     * then run the gated phase.
     */
    void runSpill(std::shared_ptr<StageRun> run,
                  std::shared_ptr<TaskRun> task,
                  const IoPhaseSpec &phase, Bytes spillBytes);

    /** Give a task's execution-memory reservation back to its node. */
    void releaseExecutionHold(const std::shared_ptr<TaskRun> &task);

    /**
     * Simulated OOM: the attempt dies, charges maxFailures and
     * blacklists the node; the retry re-queues after a grace period so
     * the pool has a chance to drain first.
     */
    void failOnOom(const std::shared_ptr<StageRun> &run,
                   const std::shared_ptr<TaskRun> &task);

    /** Fill every alive node's free cores from the queues. */
    void kickFreeCores(const std::shared_ptr<StageRun> &run);

    /** One attempt crashed: account, blacklist, re-queue, refill. */
    void failAttempt(const std::shared_ptr<StageRun> &run,
                     const std::shared_ptr<TaskRun> &task);

    /**
     * Single exit point of every attempt: frees the attempt's core
     * (the busyCores decrement), appends its TaskRecord and emits its
     * task span. @p status is "ok" for the winning attempt; everything
     * else ("crash", "oom", "node-loss", "fetch-fail", "stage-abort",
     * "lost-race") marks the attempt's work as wasted.
     */
    void finishAttempt(const std::shared_ptr<StageRun> &run,
                       const std::shared_ptr<TaskRun> &task,
                       const char *status);

    /** Claim the lowest free core-slot track of @p node (tracing). */
    int allocateCoreSlot(int node);

    /** Return a core-slot track (tracing). */
    void releaseCoreSlot(int node, int slot);

    /** A shuffle source died / a fetch failed: abort the stage. */
    void handleFetchFailure(const std::shared_ptr<StageRun> &run,
                            const std::shared_ptr<TaskRun> &task,
                            int source);

    void onNodeDeath(const std::shared_ptr<StageRun> &run, int node);

    cluster::Cluster &cluster_;
    dfs::Hdfs &hdfs_;
    const SparkConf &conf_;
    Rng rng_;
    TaskTrace *trace_ = nullptr;
    trace::TraceCollector *collector_ = nullptr;
    /**
     * Core-slot track occupancy per node (tracing only). Slots are
     * engine-wide, not per stage: attempts aborted by a stage abort
     * unwind during the rerun, so a node can briefly run more
     * attempts than cores across the boundary — those overflow onto
     * extra slots instead of overlapping an occupied track.
     */
    std::vector<std::vector<bool>> coreSlots_;
    faults::FaultInjector *injector_ = nullptr;
    BlockManager *memory_ = nullptr;
    bool observerRegistered_ = false;
    /// Stage currently inside runStage() (for the liveness observer).
    std::weak_ptr<StageRun> activeRun_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_TASK_ENGINE_H
