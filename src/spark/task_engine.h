/**
 * @file
 * Stage/task execution engine.
 *
 * Executes a StageSpec on the simulated cluster: N nodes x P executor
 * cores pull tasks from a shared queue; each task walks its phase list,
 * alternating device I/O (through the node disks, HDFS and the network)
 * with CPU time. Task compute times carry deterministic lognormal
 * jitter and the stage's GC scaling. Stages are barriers, as in Spark.
 *
 * I/O phases run either as exact per-chunk loops or as aggregated
 * device batches (SparkConf::aggregateIo; see
 * storage::DiskDevice::submitBatch for the equivalence argument).
 */

#ifndef DOPPIO_SPARK_TASK_ENGINE_H
#define DOPPIO_SPARK_TASK_ENGINE_H

#include <functional>
#include <memory>

#include "cluster/cluster.h"
#include "common/random.h"
#include "dfs/hdfs.h"
#include "spark/metrics.h"
#include "spark/spark_conf.h"
#include "spark/stage_spec.h"
#include "spark/task_trace.h"

namespace doppio::faults {
class FaultInjector;
}

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::spark {

class BlockManager;

/**
 * Receives core-scheduling callbacks when stages from several jobs
 * share one engine (multi-tenant mode; see sched::JobScheduler). The
 * engine stops pulling work from a single stage's private queue and
 * instead reports attempt exits and freed cores; the arbiter decides
 * which submitted stage launches next via TaskEngine::tryLaunch.
 */
class CoreArbiter
{
  public:
    virtual ~CoreArbiter() = default;

    /** An attempt of the stage tagged @p tag released a core of
     *  @p node (the single per-attempt exit point). */
    virtual void attemptFinished(int node, int tag) = 0;

    /** A core of @p node may be free; offer it around. */
    virtual void offerCore(int node) = 0;

    /** Capacity or runnable work changed somewhere; offer every free
     *  core (node rejoin, retry becoming runnable, ...). */
    virtual void offerCores() = 0;
};

/** Runs stages to completion on a cluster. */
class TaskEngine
{
  public:
    /** Shared bookkeeping of one executing stage (opaque handle). */
    struct StageRun;
    using StageRef = std::shared_ptr<StageRun>;
    using StageCallback = std::function<void(const StageMetrics &)>;

    TaskEngine(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
               const SparkConf &conf);

    /**
     * Execute @p spec to completion (drains the event loop) and
     * @return its metrics. Stages must be run one at a time.
     */
    StageMetrics runStage(const StageSpec &spec);

    /**
     * Attach a core arbiter (or nullptr to detach; not owned).
     * Redirects every internal "pull the next task onto this free
     * core" decision to the arbiter, enabling submitStage().
     */
    void setArbiter(CoreArbiter *arbiter) { arbiter_ = arbiter; }

    /**
     * Multi-tenant submission: set up @p spec without driving the
     * event loop. The stage launches nothing until the arbiter hands
     * it cores through tryLaunch(); @p onDone fires from within the
     * event loop once the stage completes or aborts on a fetch
     * failure (same contract as runStage's return). The run keeps its
     * own copy of @p spec; @p schedTag is echoed verbatim to
     * CoreArbiter::attemptFinished; stage spans go to the driver-track
     * thread @p driverTid (per-job lanes). Requires an arbiter;
     * speculative execution is not supported in this mode.
     */
    StageRef submitStage(const StageSpec &spec, int schedTag,
                         int driverTid, StageCallback onDone);

    /** Launch one queued task of @p run on @p node if possible.
     *  @return true if an attempt was launched (arbiter mode). */
    bool tryLaunch(const StageRef &run, int node);

    /** @return true while @p run has queued tasks wanting a core. */
    bool hasRunnableWork(const StageRef &run) const;

    /** @return executor cores per node actually used (min(P, cores)). */
    int effectiveCores() const;

    /**
     * Attach a task-trace collector (or nullptr to detach). Not
     * owned; must outlive subsequent runStage() calls.
     */
    void setTrace(TaskTrace *trace) { trace_ = trace; }

    /**
     * Attach a telemetry collector (or nullptr to detach; not owned).
     * Stages then emit windows on the driver track, and every attempt
     * occupies a per-node core-slot track carrying its task span and
     * nested phase spans (the input of trace::PhaseReport).
     */
    void setTraceCollector(trace::TraceCollector *collector);

    /**
     * Attach the run's fault injector (or nullptr to detach). Enables
     * per-attempt crash draws, node-loss handling (a cluster liveness
     * observer re-queues a dead node's running tasks without charging
     * spark.task.maxFailures, mirroring executor-loss semantics) and
     * shuffle-fetch failure detection. Not owned.
     */
    void setFaultInjector(faults::FaultInjector *injector);

    /**
     * Attach the unified memory model (or nullptr to detach): shuffle
     * phases reserve execution memory per task through the block
     * manager's per-node pools; a short reservation spills the
     * shortfall through the local disks (external sort), and a failed
     * minimum kills the attempt with a simulated OOM that runs through
     * the retry/blacklist machinery. Not owned.
     */
    void setMemoryModel(BlockManager *blocks) { memory_ = blocks; }

  private:
    struct TaskRun;

    void launchAttempt(std::shared_ptr<StageRun> run, int node,
                       std::size_t index);
    void launchOnFreeCore(std::shared_ptr<StageRun> run, int node);

    /** Retry-queue-then-fresh launch body shared by the single-job
     *  free-core path and the arbiter's tryLaunch.
     *  @return true if an attempt was launched. */
    bool tryLaunchQueued(const std::shared_ptr<StageRun> &run,
                         int node);
    void speculateOnNode(std::shared_ptr<StageRun> run, int node);
    void armSpeculationTimer(std::shared_ptr<StageRun> run);
    void runPhase(std::shared_ptr<StageRun> run,
                  std::shared_ptr<TaskRun> task);
    void runIoPhase(std::shared_ptr<StageRun> run,
                    std::shared_ptr<TaskRun> task,
                    const IoPhaseSpec &phase);

    /** The device/CPU body of an I/O phase (after any memory gate). */
    void startIoPhase(std::shared_ptr<StageRun> run,
                      std::shared_ptr<TaskRun> task,
                      const IoPhaseSpec &phase);

    /**
     * External-sort spill: stream the reservation shortfall out and
     * back through the node's local disks (one round per merge pass),
     * then run the gated phase.
     */
    void runSpill(std::shared_ptr<StageRun> run,
                  std::shared_ptr<TaskRun> task,
                  const IoPhaseSpec &phase, Bytes spillBytes);

    /** Give a task's execution-memory reservation back to its node. */
    void releaseExecutionHold(const std::shared_ptr<TaskRun> &task);

    /**
     * Simulated OOM: the attempt dies, charges maxFailures and
     * blacklists the node; the retry re-queues after a grace period so
     * the pool has a chance to drain first.
     */
    void failOnOom(const std::shared_ptr<StageRun> &run,
                   const std::shared_ptr<TaskRun> &task);

    /** Fill every alive node's free cores from the queues. */
    void kickFreeCores(const std::shared_ptr<StageRun> &run);

    /** One attempt crashed: account, blacklist, re-queue, refill. */
    void failAttempt(const std::shared_ptr<StageRun> &run,
                     const std::shared_ptr<TaskRun> &task);

    /**
     * Single exit point of every attempt: frees the attempt's core
     * (the busyCores decrement), appends its TaskRecord and emits its
     * task span. @p status is "ok" for the winning attempt; everything
     * else ("crash", "oom", "node-loss", "fetch-fail", "stage-abort",
     * "lost-race") marks the attempt's work as wasted.
     */
    void finishAttempt(const std::shared_ptr<StageRun> &run,
                       const std::shared_ptr<TaskRun> &task,
                       const char *status);

    /** Claim the lowest free core-slot track of @p node (tracing). */
    int allocateCoreSlot(int node);

    /** Return a core-slot track (tracing). */
    void releaseCoreSlot(int node, int slot);

    /** A shuffle source died / a fetch failed: abort the stage. */
    void handleFetchFailure(const std::shared_ptr<StageRun> &run,
                            const std::shared_ptr<TaskRun> &task,
                            int source);

    void onNodeDeath(const std::shared_ptr<StageRun> &run, int node);

    /** A device write of @p run drained (stage-barrier accounting). */
    void noteWriteDrained(const std::shared_ptr<StageRun> &run);

    /**
     * Fire a submitted stage's completion callback if it is complete
     * (or aborted on a fetch failure). No-op for runStage() stages
     * and while work is still outstanding.
     */
    void maybeFinishAsync(const std::shared_ptr<StageRun> &run);

    /** Drop @p run (and any expired entries) from activeRuns_. */
    void deregisterRun(const StageRun *run);

    cluster::Cluster &cluster_;
    dfs::Hdfs &hdfs_;
    const SparkConf &conf_;
    Rng rng_;
    TaskTrace *trace_ = nullptr;
    trace::TraceCollector *collector_ = nullptr;
    /**
     * Core-slot track occupancy per node (tracing only). Slots are
     * engine-wide, not per stage: attempts aborted by a stage abort
     * unwind during the rerun, so a node can briefly run more
     * attempts than cores across the boundary — those overflow onto
     * extra slots instead of overlapping an occupied track.
     */
    std::vector<std::vector<bool>> coreSlots_;
    faults::FaultInjector *injector_ = nullptr;
    BlockManager *memory_ = nullptr;
    CoreArbiter *arbiter_ = nullptr;
    bool observerRegistered_ = false;
    /// Stages currently executing (one for runStage(), any number of
    /// submitted stages in arbiter mode), for the liveness observer.
    std::vector<std::weak_ptr<StageRun>> activeRuns_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_TASK_ENGINE_H
