/**
 * @file
 * Task-level execution traces (Spark event-log style).
 *
 * When a collector is attached to the task engine, every task's
 * placement and timing is recorded; traces can be exported as CSV for
 * external timeline/Gantt tooling, and summarized per node to check
 * placement balance — the observable a Spark UI would give the
 * paper's authors.
 */

#ifndef DOPPIO_SPARK_TASK_TRACE_H
#define DOPPIO_SPARK_TASK_TRACE_H

#include <ostream>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace doppio::spark {

/** One terminated task attempt. */
struct TaskRecord
{
    std::string stage;
    std::string group;
    int taskIndex = 0; //!< index within the stage
    int node = 0;
    Tick start = 0;
    Tick end = 0;
    /** 1-based attempt number of this logical task. */
    int attempt = 1;
    /**
     * How the attempt terminated: "ok" (the winning attempt), or the
     * failure reason — "crash", "oom", "node-loss", "fetch-fail",
     * "stage-abort", "lost-race" (lost a speculation race).
     */
    std::string status = "ok";
    /** Seconds between becoming runnable and occupying a core. */
    double schedWaitSec = 0.0;

    /** @return task duration in seconds. */
    double
    seconds() const
    {
        return ticksToSeconds(end - start);
    }

    /** @return true for the attempt that completed its task. */
    bool ok() const { return status == "ok"; }
};

/** Accumulates task records across stages. */
class TaskTrace
{
  public:
    /** Record one terminated attempt. */
    void add(TaskRecord record);

    /** @return all records, in termination order. */
    const std::vector<TaskRecord> &records() const { return records_; }

    /** @return number of recorded attempts. */
    std::size_t size() const { return records_.size(); }

    /** Remove all records. */
    void clear() { records_.clear(); }

    /** @return records belonging to stage @p stageName. */
    std::vector<const TaskRecord *>
    forStage(const std::string &stageName) const;

    /** @return per-node completed-task counts (index == node id);
     *          failed and superseded attempts are not counted. */
    std::vector<int> tasksPerNode(int numNodes) const;

    /**
     * Write a CSV with header "stage,group,task,node,start_s,end_s,
     * duration_s,attempt,status,sched_wait_s" (the first seven columns
     * are the pre-attempt-tracking format, new columns are appended).
     */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<TaskRecord> records_;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_TASK_TRACE_H
