#include "spark/block_manager.h"

#include "common/logging.h"

namespace doppio::spark {

BlockManager::BlockManager(Bytes storageMemory, double expansionFactor)
    : capacity_(storageMemory), expansionFactor_(expansionFactor)
{
    if (expansionFactor_ <= 0.0)
        fatal("BlockManager: expansion factor must be positive");
}

BlockManager::Placement
BlockManager::placementOf(const Rdd *rdd) const
{
    auto it = placements_.find(rdd);
    return it == placements_.end() ? Placement::Unmaterialized
                                   : it->second;
}

BlockManager::Placement
BlockManager::materialize(const Rdd &rdd)
{
    const Placement existing = placementOf(&rdd);
    if (existing != Placement::Unmaterialized)
        return existing;
    if (rdd.storageLevel == StorageLevel::None)
        return Placement::Unmaterialized;

    Placement placement = Placement::Unmaterialized;
    if (rdd.storageLevel == StorageLevel::DiskOnly) {
        placement = Placement::Disk;
    } else {
        const Bytes footprint = rdd.memoryFootprint(expansionFactor_);
        if (memoryUsed_ + footprint <= capacity_) {
            memoryUsed_ += footprint;
            placement = Placement::Memory;
        } else if (rdd.storageLevel == StorageLevel::MemoryAndDisk) {
            placement = Placement::Disk;
        } else {
            // MEMORY_ONLY that does not fit: stays unmaterialized and
            // will be recomputed on each use.
            return Placement::Unmaterialized;
        }
    }
    placements_[&rdd] = placement;
    return placement;
}

void
BlockManager::unpersist(const Rdd *rdd)
{
    auto it = placements_.find(rdd);
    if (it == placements_.end())
        return;
    if (it->second == Placement::Memory) {
        const Bytes footprint = rdd->memoryFootprint(expansionFactor_);
        memoryUsed_ = footprint <= memoryUsed_ ? memoryUsed_ - footprint
                                               : 0;
    }
    placements_.erase(it);
}

bool
BlockManager::shuffleAvailable(const Rdd *rdd) const
{
    return shuffles_.count(rdd) != 0;
}

void
BlockManager::markShuffleAvailable(const Rdd *rdd)
{
    shuffles_.insert(rdd);
}

} // namespace doppio::spark
