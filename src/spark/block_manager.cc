#include "spark/block_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "spark/stage_spec.h"
#include "trace/trace_collector.h"

namespace doppio::spark {

namespace {

/**
 * In-memory bytes of one partition block (the deserialized form the
 * executor holds, at least one byte so empty partitions still occupy
 * a block entry).
 */
Bytes
memoryBytesPerPartition(const Rdd &rdd, double expansionFactor)
{
    const Bytes footprint = rdd.memoryFootprint(expansionFactor);
    const Bytes per = footprint / static_cast<Bytes>(
        std::max(1, rdd.numPartitions));
    return std::max<Bytes>(1, per);
}

} // namespace

BlockManager::BlockManager(Bytes storageMemory, double expansionFactor)
    : capacity_(storageMemory), expansionFactor_(expansionFactor)
{
    if (expansionFactor_ <= 0.0)
        fatal("BlockManager: expansion factor must be positive");
}

BlockManager::BlockManager(cluster::Cluster &clusterRef,
                           const SparkConf &conf)
    : BlockManager(clusterRef.totalStorageMemory(),
                   conf.memoryExpansionFactor)
{
    if (!conf.unifiedMemory)
        return;
    unified_ = true;
    cluster_ = &clusterRef;
    conf_ = &conf;
    const Bytes pool = static_cast<Bytes>(
        static_cast<double>(clusterRef.config().node.executorMemory) *
        conf.memoryFraction);
    pools_.reserve(static_cast<std::size_t>(clusterRef.numSlaves()));
    for (int n = 0; n < clusterRef.numSlaves(); ++n)
        pools_.emplace_back(pool, conf.memoryStorageFraction);

    aliveFlag_ = std::make_shared<bool>(true);
    std::shared_ptr<bool> alive = aliveFlag_;
    cluster_->addLivenessObserver([this, alive](int node, bool up) {
        if (!*alive || up)
            return;
        onNodeDown(node);
    });
    // degrade-mem faults clamp the node's pool; blocks beyond the new
    // capacity evict immediately (kernel reclaim under pressure).
    cluster_->addMemoryObserver([this, alive](int node, double fraction) {
        if (!*alive)
            return;
        std::vector<MemoryManager::BlockId> evicted;
        pools_[static_cast<std::size_t>(node)].setPoolFraction(
            fraction, &evicted);
        handleEvictions(evicted);
    });
}

BlockManager::~BlockManager()
{
    if (aliveFlag_)
        *aliveFlag_ = false;
}

BlockManager::Placement
BlockManager::placementOf(const Rdd *rdd) const
{
    auto it = placements_.find(rdd);
    return it == placements_.end() ? Placement::Unmaterialized
                                   : it->second;
}

BlockManager::Placement
BlockManager::materialize(const Rdd &rdd)
{
    const Placement existing = placementOf(&rdd);
    if (existing != Placement::Unmaterialized)
        return existing;
    if (rdd.storageLevel == StorageLevel::None)
        return Placement::Unmaterialized;

    Placement placement = Placement::Unmaterialized;
    if (rdd.storageLevel == StorageLevel::DiskOnly) {
        placement = Placement::Disk;
    } else {
        const Bytes footprint = rdd.memoryFootprint(expansionFactor_);
        if (memoryUsed_ + footprint <= capacity_) {
            memoryUsed_ += footprint;
            placement = Placement::Memory;
        } else if (rdd.storageLevel == StorageLevel::MemoryAndDisk) {
            placement = Placement::Disk;
        } else {
            // MEMORY_ONLY that does not fit: stays unmaterialized and
            // will be recomputed on each use.
            return Placement::Unmaterialized;
        }
    }
    placements_[&rdd] = placement;
    return placement;
}

void
BlockManager::unpersist(const Rdd *rdd)
{
    auto it = placements_.find(rdd);
    if (it != placements_.end()) {
        if (it->second == Placement::Memory) {
            const Bytes footprint =
                rdd->memoryFootprint(expansionFactor_);
            memoryUsed_ = footprint <= memoryUsed_
                              ? memoryUsed_ - footprint
                              : 0;
        }
        placements_.erase(it);
    }
    if (!unified_)
        return;
    auto blocks = rdds_.find(rdd);
    if (blocks == rdds_.end())
        return;
    for (BlockInfo &info : blocks->second.partitions) {
        if (info.state != BlockState::Memory)
            continue;
        pools_[static_cast<std::size_t>(info.node)].dropBlock(info.id);
        blockIndex_.erase(info.id);
    }
    rdds_.erase(blocks);
}

bool
BlockManager::shuffleAvailable(const Rdd *rdd) const
{
    return shuffles_.count(rdd) != 0;
}

void
BlockManager::markShuffleAvailable(const Rdd *rdd)
{
    shuffles_.insert(rdd);
}

bool
BlockManager::checkpointAvailable(const Rdd *rdd) const
{
    return checkpointed_.count(rdd) != 0;
}

void
BlockManager::markCheckpointed(const Rdd *rdd)
{
    checkpointed_.insert(rdd);
}

Bytes
BlockManager::memoryUsed() const
{
    if (!unified_)
        return memoryUsed_;
    Bytes used = 0;
    for (const MemoryManager &pool : pools_)
        used += pool.storageUsed();
    return used;
}

Bytes
BlockManager::capacity() const
{
    if (!unified_)
        return capacity_;
    Bytes total = 0;
    for (const MemoryManager &pool : pools_)
        total += pool.poolSize();
    return total;
}

bool
BlockManager::tracked(const Rdd *rdd) const
{
    return rdds_.count(rdd) != 0;
}

int
BlockManager::homeNode(int partition) const
{
    const std::vector<int> alive = cluster_->aliveNodes();
    if (alive.empty())
        fatal("BlockManager: no alive node to place a block on");
    return alive[static_cast<std::size_t>(partition) % alive.size()];
}

BlockManager::ReadPlan
BlockManager::materializeUnified(const Rdd &rdd)
{
    if (!unified_)
        fatal("BlockManager: materializeUnified in legacy mode");
    if (tracked(&rdd))
        return readPlan(&rdd);

    const Bytes mem_per = memoryBytesPerPartition(rdd, expansionFactor_);
    // Register the block table before placing anything: caching
    // partition N may evict an earlier partition of this same RDD, and
    // handleEvictions must be able to find it.
    RddBlocks &blocks = rdds_[&rdd];
    blocks.partitions.resize(
        static_cast<std::size_t>(std::max(0, rdd.numPartitions)));
    for (int p = 0; p < rdd.numPartitions; ++p) {
        BlockInfo &info =
            blocks.partitions[static_cast<std::size_t>(p)];
        info.rdd = &rdd;
        info.partition = p;
        info.node = homeNode(p);
        if (rdd.storageLevel == StorageLevel::DiskOnly) {
            info.state = BlockState::Disk;
            continue;
        }
        const MemoryManager::BlockId id = nextBlockId_++;
        blockIndex_.emplace(id, std::make_pair(&rdd, p));
        info.state = BlockState::Memory;
        info.id = id;
        std::vector<MemoryManager::BlockId> evicted;
        const bool fits =
            pools_[static_cast<std::size_t>(info.node)].putBlock(
                id, mem_per, &evicted);
        handleEvictions(evicted);
        if (!fits) {
            blockIndex_.erase(id);
            info.id = 0;
            info.state = rdd.storageLevel == StorageLevel::MemoryAndDisk
                             ? BlockState::Disk
                             : BlockState::Dropped;
        }
    }
    return readPlan(&rdd);
}

BlockManager::ReadPlan
BlockManager::readPlan(const Rdd *rdd) const
{
    ReadPlan plan;
    auto it = rdds_.find(rdd);
    if (it == rdds_.end())
        return plan;
    for (const BlockInfo &info : it->second.partitions) {
        ++plan.total;
        switch (info.state) {
          case BlockState::Memory:
            ++plan.cached;
            break;
          case BlockState::Disk:
            ++plan.disk;
            break;
          case BlockState::Dropped:
            ++plan.missing;
            break;
        }
    }
    return plan;
}

void
BlockManager::touchRdd(const Rdd *rdd)
{
    auto it = rdds_.find(rdd);
    if (it == rdds_.end())
        return;
    for (const BlockInfo &info : it->second.partitions) {
        if (info.state == BlockState::Memory)
            pools_[static_cast<std::size_t>(info.node)].touchBlock(
                info.id);
    }
}

void
BlockManager::recacheMissing(const Rdd &rdd)
{
    auto it = rdds_.find(&rdd);
    if (it == rdds_.end())
        return;
    const Bytes mem_per = memoryBytesPerPartition(rdd, expansionFactor_);
    for (BlockInfo &info : it->second.partitions) {
        if (info.state != BlockState::Dropped)
            continue;
        ++memory_.recomputedPartitions;
        info.node = homeNode(info.partition);
        const MemoryManager::BlockId id = nextBlockId_++;
        blockIndex_.emplace(id, std::make_pair(&rdd, info.partition));
        std::vector<MemoryManager::BlockId> evicted;
        const bool fits =
            pools_[static_cast<std::size_t>(info.node)].putBlock(
                id, mem_per, &evicted);
        handleEvictions(evicted);
        if (fits) {
            info.state = BlockState::Memory;
            info.id = id;
            continue;
        }
        blockIndex_.erase(id);
        if (rdd.storageLevel == StorageLevel::MemoryOnly)
            continue; // stays dropped: recomputed again on next use
        info.state = BlockState::Disk;
        writeBlockToDisk(info);
    }
}

Bytes
BlockManager::acquireExecution(int node, Bytes want, int activeTasks)
{
    if (!unified_)
        return want; // no pool model: everything is granted
    std::vector<MemoryManager::BlockId> evicted;
    const Bytes grant =
        pools_[static_cast<std::size_t>(node)].acquireExecution(
            want, activeTasks, &evicted);
    handleEvictions(evicted);
    if (collector_ != nullptr)
        tracePoolSample(node);
    return grant;
}

void
BlockManager::releaseExecution(int node, Bytes bytes)
{
    if (!unified_)
        return;
    pools_[static_cast<std::size_t>(node)].releaseExecution(bytes);
    if (collector_ != nullptr)
        tracePoolSample(node);
}

void
BlockManager::handleEvictions(
    const std::vector<MemoryManager::BlockId> &evicted)
{
    for (const MemoryManager::BlockId id : evicted) {
        auto indexed = blockIndex_.find(id);
        if (indexed == blockIndex_.end())
            panic("BlockManager: evicted unknown block %llu",
                  static_cast<unsigned long long>(id));
        const auto [rdd, partition] = indexed->second;
        blockIndex_.erase(indexed);
        BlockInfo &info =
            rdds_.at(rdd).partitions[static_cast<std::size_t>(
                partition)];
        ++memory_.evictedBlocks;
        memory_.evictedBytes +=
            memoryBytesPerPartition(*rdd, expansionFactor_);
        if (rdd->storageLevel == StorageLevel::MemoryAndDisk) {
            info.state = BlockState::Disk;
            writeBlockToDisk(info);
        } else {
            // MEMORY_ONLY: dropped, recomputed from lineage on the
            // next access.
            info.state = BlockState::Dropped;
            ++memory_.droppedBlocks;
        }
        if (collector_ != nullptr) {
            collector_->instant(
                trace::nodePid(info.node), trace::kTidMemory,
                "memory",
                info.state == BlockState::Disk ? "evict_to_disk"
                                               : "drop_block",
                cluster_->simulator().now(),
                trace::TraceArgs()
                    .add("rdd", rdd->name)
                    .add("partition", partition));
            tracePoolSample(info.node);
        }
    }
}

void
BlockManager::writeBlockToDisk(const BlockInfo &info)
{
    const Bytes serialized = info.rdd->bytesPerPartition();
    if (serialized == 0 || !cluster_->nodeAlive(info.node))
        return;
    memory_.evictedToDiskBytes += serialized;
    // Same stream/offset layout as the PersistRead phases the DAG
    // scheduler emits for disk blocks, so the later read-back finds
    // these extents in the page cache when they have not been evicted.
    IoPhaseSpec shape;
    shape.op = storage::IoOp::PersistWrite;
    shape.bytesPerTask = serialized;
    const std::uint64_t stream = cacheStreamFor(shape);
    const Bytes preferred = std::min<Bytes>(
        serialized, std::max<Bytes>(1, conf_->diskStoreRequestSize));
    const std::uint64_t count = std::max<std::uint64_t>(
        1, (serialized + preferred - 1) / preferred);
    const Bytes chunk = std::max<Bytes>(1, serialized / count);
    const Bytes offset =
        static_cast<Bytes>(info.partition) * serialized;
    // Fire-and-forget: the eviction writer drains in the background
    // while the stage runs (the simulator's event loop completes it).
    cluster_->node(info.node).writeThrough(
        oscache::Role::Local, storage::IoOp::PersistWrite, stream,
        offset, chunk, count, []() {});
}

void
BlockManager::onNodeDown(int node)
{
    for (auto &[rdd, blocks] : rdds_) {
        (void)rdd;
        for (BlockInfo &info : blocks.partitions) {
            if (info.node != node ||
                info.state == BlockState::Dropped)
                continue;
            if (info.state == BlockState::Memory) {
                pools_[static_cast<std::size_t>(node)].dropBlock(
                    info.id);
                blockIndex_.erase(info.id);
            }
            // The node's local disks are gone with it: disk blocks are
            // lost too and must be recomputed from lineage.
            info.state = BlockState::Dropped;
            ++memory_.droppedBlocks;
        }
    }
}

MemoryMetrics
BlockManager::memoryMetrics() const
{
    MemoryMetrics totals = memory_;
    for (const MemoryManager &pool : pools_) {
        totals.poolBytes += pool.poolSize();
        totals.peakStorageBytes += pool.peakStorageUsed();
        totals.peakExecutionBytes += pool.peakExecutionUsed();
    }
    return totals;
}

void
BlockManager::setTraceCollector(trace::TraceCollector *collector)
{
    // Legacy mode has no simulator clock to stamp events with.
    collector_ = unified_ ? collector : nullptr;
}

void
BlockManager::tracePoolSample(int node)
{
    if (collector_ == nullptr)
        return;
    const MemoryManager &pool = pools_[static_cast<std::size_t>(node)];
    const Tick now = cluster_->simulator().now();
    collector_->counter(trace::nodePid(node), "memory",
                        "pool/execution_bytes", now,
                        static_cast<double>(pool.executionUsed()));
    collector_->counter(trace::nodePid(node), "memory",
                        "pool/storage_bytes", now,
                        static_cast<double>(pool.storageUsed()));
}

MemoryManager &
BlockManager::nodeMemory(int node)
{
    if (!unified_)
        fatal("BlockManager: nodeMemory in legacy mode");
    return pools_[static_cast<std::size_t>(node)];
}

void
BlockManager::reset()
{
    memoryUsed_ = 0;
    placements_.clear();
    shuffles_.clear();
    checkpointed_.clear();
    for (MemoryManager &pool : pools_)
        pool.reset();
    rdds_.clear();
    blockIndex_.clear();
    nextBlockId_ = 1;
    memory_ = MemoryMetrics{};
}

} // namespace doppio::spark
