#include "spark/metrics.h"

namespace doppio::spark {

Bytes
StageMetrics::totalBytes(storage::IoKind kind) const
{
    Bytes total = 0;
    for (storage::IoOp op : storage::kAllIoOps) {
        if (storage::ioKind(op) == kind)
            total += forOp(op).bytes;
    }
    return total;
}

double
JobMetrics::seconds() const
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.seconds();
    return total;
}

double
AppMetrics::seconds() const
{
    double total = 0.0;
    for (const auto &job : jobs)
        total += job.seconds();
    return total;
}

std::vector<const StageMetrics *>
AppMetrics::allStages() const
{
    std::vector<const StageMetrics *> result;
    for (const auto &job : jobs) {
        for (const auto &stage : job.stages)
            result.push_back(&stage);
    }
    return result;
}

double
AppMetrics::secondsForPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (const StageMetrics *stage : allStages()) {
        if (stage->name.rfind(prefix, 0) == 0)
            total += stage->seconds();
    }
    return total;
}

Bytes
AppMetrics::bytesForPrefix(const std::string &prefix,
                           storage::IoOp op) const
{
    Bytes total = 0;
    for (const StageMetrics *stage : allStages()) {
        if (stage->name.rfind(prefix, 0) == 0)
            total += stage->forOp(op).bytes;
    }
    return total;
}

} // namespace doppio::spark
