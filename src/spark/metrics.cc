#include "spark/metrics.h"

namespace doppio::spark {

bool
FaultMetrics::any() const
{
    return taskFailures != 0 || taskRetries != 0 || lostAttempts != 0 ||
           fetchFailures != 0 || stageReattempts != 0 ||
           hdfsFailovers != 0 || corruptReads != 0 ||
           partitionTimeouts != 0 || wastedTaskSeconds != 0.0 ||
           recoverySeconds != 0.0 || reReplicatedBytes != 0 ||
           quarantinedBytes != 0 || lostDirtyBytes != 0;
}

FaultMetrics &
FaultMetrics::operator+=(const FaultMetrics &other)
{
    taskAttempts += other.taskAttempts;
    taskFailures += other.taskFailures;
    taskRetries += other.taskRetries;
    lostAttempts += other.lostAttempts;
    fetchFailures += other.fetchFailures;
    stageReattempts += other.stageReattempts;
    hdfsFailovers += other.hdfsFailovers;
    corruptReads += other.corruptReads;
    partitionTimeouts += other.partitionTimeouts;
    wastedTaskSeconds += other.wastedTaskSeconds;
    recoverySeconds += other.recoverySeconds;
    reReplicatedBytes += other.reReplicatedBytes;
    quarantinedBytes += other.quarantinedBytes;
    lostDirtyBytes += other.lostDirtyBytes;
    return *this;
}

void
StageMetrics::foldIn(const StageMetrics &rerun)
{
    taskDuration.merge(rerun.taskDuration);
    for (std::size_t i = 0; i < io.size(); ++i) {
        io[i].requests += rerun.io[i].requests;
        io[i].bytes += rerun.io[i].bytes;
        io[i].requestSize.merge(rerun.io[i].requestSize);
        io[i].phaseSeconds.merge(rerun.io[i].phaseSeconds);
    }
    faults += rerun.faults;
    endTick = rerun.endTick;
    fetchFailedSource = rerun.fetchFailedSource;
}

Bytes
StageMetrics::totalBytes(storage::IoKind kind) const
{
    Bytes total = 0;
    for (storage::IoOp op : storage::kAllIoOps) {
        if (storage::ioKind(op) == kind)
            total += forOp(op).bytes;
    }
    return total;
}

double
JobMetrics::seconds() const
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.seconds();
    return total;
}

double
AppMetrics::seconds() const
{
    double total = 0.0;
    for (const auto &job : jobs)
        total += job.seconds();
    return total;
}

std::vector<const StageMetrics *>
AppMetrics::allStages() const
{
    std::vector<const StageMetrics *> result;
    for (const auto &job : jobs) {
        for (const auto &stage : job.stages)
            result.push_back(&stage);
    }
    return result;
}

double
AppMetrics::secondsForPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (const StageMetrics *stage : allStages()) {
        if (stage->name.rfind(prefix, 0) == 0)
            total += stage->seconds();
    }
    return total;
}

Bytes
AppMetrics::bytesForPrefix(const std::string &prefix,
                           storage::IoOp op) const
{
    Bytes total = 0;
    for (const StageMetrics *stage : allStages()) {
        if (stage->name.rfind(prefix, 0) == 0)
            total += stage->forOp(op).bytes;
    }
    return total;
}

} // namespace doppio::spark
