#include "spark/task_trace.h"

#include <cstdio>

namespace doppio::spark {

void
TaskTrace::add(TaskRecord record)
{
    records_.push_back(std::move(record));
}

std::vector<const TaskRecord *>
TaskTrace::forStage(const std::string &stageName) const
{
    std::vector<const TaskRecord *> result;
    for (const TaskRecord &record : records_) {
        if (record.stage == stageName)
            result.push_back(&record);
    }
    return result;
}

std::vector<int>
TaskTrace::tasksPerNode(int numNodes) const
{
    std::vector<int> counts(static_cast<std::size_t>(numNodes), 0);
    for (const TaskRecord &record : records_) {
        if (record.ok() && record.node >= 0 && record.node < numNodes)
            ++counts[static_cast<std::size_t>(record.node)];
    }
    return counts;
}

void
TaskTrace::writeCsv(std::ostream &os) const
{
    os << "stage,group,task,node,start_s,end_s,duration_s,attempt,"
          "status,sched_wait_s\n";
    char buf[96];
    for (const TaskRecord &record : records_) {
        os << record.stage << ',' << record.group << ','
           << record.taskIndex << ',' << record.node << ',';
        std::snprintf(buf, sizeof(buf), "%.6f,%.6f,%.6f",
                      ticksToSeconds(record.start),
                      ticksToSeconds(record.end), record.seconds());
        os << buf << ',' << record.attempt << ',' << record.status
           << ',';
        std::snprintf(buf, sizeof(buf), "%.6f", record.schedWaitSec);
        os << buf << '\n';
    }
}

} // namespace doppio::spark
