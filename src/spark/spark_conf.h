/**
 * @file
 * Spark runtime configuration.
 *
 * Mirrors the subset of Spark 1.6 configuration that the paper's
 * analysis depends on: executor core count P (SPARK_WORKER_CORES),
 * shuffle spill chunking, and the disk-store buffer size that sets the
 * request-size signature of persist reads/writes.
 */

#ifndef DOPPIO_SPARK_SPARK_CONF_H
#define DOPPIO_SPARK_SPARK_CONF_H

#include <cstdint>

#include "common/units.h"

namespace doppio::spark {

/** Runtime knobs for a SparkContext. */
struct SparkConf
{
    /**
     * Number of executor cores actually launched per node (the paper's
     * P). Must not exceed the node's physical cores.
     */
    int executorCores = 36;

    /**
     * Disk-store buffer size: persist reads/writes stream partitions in
     * chunks of this size. With many tasks per node the device sees
     * effectively random accesses at this granularity — the mechanism
     * behind the paper's LR-large 7x HDD/SSD iteration gap.
     */
    Bytes diskStoreRequestSize = 128 * kKiB;

    /**
     * Upper bound on a shuffle-write spill chunk. Mappers write sorted
     * runs covering their whole output (GATK4: ~350 MB), so the
     * effective shuffle-write request is min(output/M, this cap).
     */
    Bytes shuffleSpillChunkCap = 512 * kMiB;

    /**
     * Default ratio of in-memory (deserialized) to on-disk (serialized,
     * compressed) RDD size, used when a workload does not specify
     * memoryBytes explicitly. GATK4's UnionRDD expands 122 GB -> 870 GB
     * (7.1x); generic datasets are closer to 2-3x.
     */
    double memoryExpansionFactor = 3.0;

    /**
     * Spark 1.6 unified memory management: per-node storage/execution
     * pools with per-partition block granularity, LRU eviction, spill
     * and recompute-from-lineage (see DESIGN.md §9). Off by default so
     * the library reproduces the seed's all-or-nothing placement
     * bit-for-bit; the CLI turns it on unless --legacy-memory is
     * given.
     */
    bool unifiedMemory = false;

    /**
     * spark.memory.fraction: share of executor memory forming the
     * unified storage+execution pool (the rest is user data structures
     * and JVM overhead). Used only with unifiedMemory.
     */
    double memoryFraction = 0.75;

    /**
     * spark.memory.storageFraction: share of the unified pool below
     * which cached blocks are protected from execution borrowing.
     * Used only with unifiedMemory.
     */
    double memoryStorageFraction = 0.5;

    /**
     * When true (default), per-task chunked I/O loops are simulated as
     * aggregated device batches (see DiskDevice::submitBatch) — O(1)
     * events per (task, source) instead of O(chunks). Exact per-chunk
     * simulation is available for validation.
     */
    bool aggregateIo = true;

    /**
     * Per-task scheduling overhead (driver dispatch, deserialization of
     * the task binary). Contributes to the model's delta terms.
     */
    double taskDispatchOverheadSec = 0.005;

    /**
     * Speculative execution (spark.speculation): once
     * speculationQuantile of a stage's tasks have finished, a running
     * task whose elapsed time exceeds speculationMultiplier times the
     * mean completed-task duration gets a second attempt on an idle
     * core; the first attempt to finish wins. (Spark uses the median;
     * we use the streaming mean.)
     */
    bool speculation = false;
    double speculationMultiplier = 1.5;
    double speculationQuantile = 0.75;

    /**
     * Fault tolerance (spark.task.maxFailures): a logical task may
     * crash this many times before the whole application is failed.
     * Each crash re-queues the task; the node it crashed on is
     * blacklisted for its retries while other nodes are alive.
     */
    int taskMaxFailures = 4;

    /**
     * Maximum attempts for one stage (spark.stage.maxConsecutiveAttempts
     * analogue): a shuffle-fetch failure aborts the stage, regenerates
     * the lost map outputs, and reruns the lost work; more than this
     * many attempts fails the application.
     */
    int stageMaxAttempts = 4;
};

} // namespace doppio::spark

#endif // DOPPIO_SPARK_SPARK_CONF_H
