/**
 * @file
 * HDFS model.
 *
 * Captures the aspects of HDFS that matter to the Doppio analysis:
 * files are split into dfs.blocksize blocks (default 128 MB) which
 * determine the partition count M of input RDDs; reads are served from
 * a node-local replica (Spark schedules tasks for locality); writes go
 * to the local HDFS disk plus dfs.replication - 1 remote replicas,
 * consuming both remote disk and network bandwidth.
 */

#ifndef DOPPIO_DFS_HDFS_H
#define DOPPIO_DFS_HDFS_H

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "common/sim_time.h"
#include "common/units.h"

namespace doppio::faults {
class FaultInjector;
}

namespace doppio::dfs {

/** Handle to a registered HDFS file. */
using FileId = std::uint32_t;

/** HDFS deployment configuration (Table II). */
struct HdfsConfig
{
    Bytes blockSize = 128 * kMiB; //!< dfs.blocksize
    int replication = 2;          //!< dfs.replication
};

/** Metadata for one registered file. */
struct HdfsFile
{
    std::string name;
    Bytes size = 0;
    Bytes blockSize = 0;

    /** @return number of blocks (== input partitions in Spark). */
    int
    numBlocks() const
    {
        if (size == 0)
            return 0;
        return static_cast<int>((size + blockSize - 1) / blockSize);
    }
};

/** The distributed filesystem service. */
class Hdfs
{
  public:
    Hdfs(cluster::Cluster &clusterRef, HdfsConfig config = HdfsConfig{});

    /** Register a pre-existing input file. @return its id. */
    FileId addFile(const std::string &name, Bytes size);

    /** @return metadata for @p id. */
    const HdfsFile &file(FileId id) const;

    /** Look up a file by name; fatal() if absent. */
    const HdfsFile &fileByName(const std::string &name) const;

    /** Look up a file id by name; fatal() if absent. */
    FileId fileIdByName(const std::string &name) const;

    const HdfsConfig &config() const { return config_; }

    /**
     * Read @p chunk bytes on @p node from its local HDFS replica;
     * @p done fires when the disk request completes. Anonymous
     * traffic: goes straight to the device, bypassing any page cache.
     */
    void readChunk(int node, Bytes chunk, std::function<void()> done);

    /**
     * Cache-addressed variant: the chunk lives at @p offset of
     * @p stream (see oscache::PageCache) and is served through the
     * node's page cache when one is enabled.
     */
    void readChunk(int node, std::uint64_t stream, Bytes offset,
                   Bytes chunk, std::function<void()> done);

    /**
     * Write @p chunk bytes from @p node: one local disk write plus
     * replication-1 pipelined remote replicas (network + remote disk).
     * @p done fires when all replicas are durable (anonymous traffic).
     */
    void writeChunk(int node, Bytes chunk, std::function<void()> done);

    /** Cache-addressed variant of writeChunk(); every replica goes
     *  through its own node's page cache. */
    void writeChunk(int node, std::uint64_t stream, Bytes offset,
                    Bytes chunk, std::function<void()> done);

    /**
     * Read @p count back-to-back chunks of @p chunk bytes on @p node
     * (aggregated; see storage::DiskDevice::submitBatch).
     */
    void readBatch(int node, Bytes chunk, std::uint64_t count,
                   std::function<void()> done);

    /** Cache-addressed variant of readBatch(). */
    void readBatch(int node, std::uint64_t stream, Bytes offset,
                   Bytes chunk, std::uint64_t count,
                   std::function<void()> done);

    /**
     * Write @p count back-to-back chunks of @p chunk bytes from
     * @p node, with replication (aggregated).
     */
    void writeBatch(int node, Bytes chunk, std::uint64_t count,
                    std::function<void()> done);

    /** Cache-addressed variant of writeBatch(). */
    void writeBatch(int node, std::uint64_t stream, Bytes offset,
                    Bytes chunk, std::uint64_t count,
                    std::function<void()> done);

    /** @return physical bytes written including replication. */
    Bytes physicalBytesWritten() const { return physicalWritten_; }

    /**
     * Attach the run's fault injector. Registers a cluster liveness
     * observer: a node death marks the node's block share
     * under-replicated and starts background re-replication (reads on
     * surviving replicas, network copy, write on a new holder). While
     * any node is under-replicated, reads fail over to a surviving
     * replica with probability equal to the lost-replica fraction —
     * the locality loss a real NameNode imposes on rescheduled tasks.
     * Passing nullptr detaches (draws stop; observers stay registered
     * but become no-ops).
     */
    void setFaultInjector(faults::FaultInjector *injector);

    /** @return reads that failed over to a remote replica. */
    std::uint64_t readFailovers() const { return readFailovers_; }

    /** @return reads whose local replica failed checksum
     *          verification (corrupt-rate draws). */
    std::uint64_t corruptReads() const { return corruptReads_; }

    /** @return corrupt replica bytes quarantined; each is repaired in
     *          the background from a surviving replica. */
    Bytes quarantinedBytes() const { return quarantinedBytes_; }

    /** @return bytes copied by background re-replication. */
    Bytes reReplicatedBytes() const { return reReplicatedBytes_; }

    /** @return wall-clock seconds spent re-replicating (summed per
     *          dead node; concurrent recoveries may overlap). */
    double reReplicationSeconds() const
    {
        return ticksToSeconds(reReplicationTicks_);
    }

  private:
    /** Progress of one dead node's background re-replication. */
    struct ReReplication
    {
        int deadNode = -1;
        Bytes chunk = 0;
        std::uint64_t totalChunks = 0;
        std::uint64_t nextChunk = 0;
        std::uint64_t completed = 0;
        Tick startTick = 0;
    };

    /** Fraction of reads whose preferred replica died and has not
     *  been re-replicated yet. */
    double lostReplicaFraction() const;

    /** First alive node after @p node in ring order; fatal if the
     *  whole cluster is down. */
    int pickAliveRemote(int node) const;

    /** First alive node after @p after in ring order (skipping
     *  @p origin itself) that the current partition lets @p origin
     *  reach; -1 when the partition isolates every candidate. */
    int pickReachableRemote(int origin, int after) const;
    int pickReachableRemote(int node) const
    {
        return pickReachableRemote(node, node);
    }

    /**
     * Serve a read on @p node from a surviving remote replica (remote
     * disk read plus a network hop back). While a partition isolates
     * every reachable replica the client's connect times out and it
     * retries with exponential backoff, re-resolving replica locations
     * each round. @p reason labels the trace instant.
     */
    void remoteRead(int node, std::uint64_t stream, Bytes offset,
                    Bytes chunk, std::uint64_t count, int attempt,
                    const char *reason, std::function<void()> done);

    /** Background repair of a quarantined replica: stream the good
     *  bytes from a surviving replica back over the bad one. */
    void quarantineRepair(int node, Bytes bytes);

    void onNodeDeath(int node);
    void startReReplication(int deadNode);
    void reReplicateNext(const std::shared_ptr<ReReplication> &state);

    cluster::Cluster &cluster_;
    HdfsConfig config_;
    std::vector<HdfsFile> files_;
    std::unordered_map<std::string, FileId> byName_;
    Rng rng_;
    Bytes physicalWritten_ = 0;
    faults::FaultInjector *injector_ = nullptr;
    bool observerRegistered_ = false;
    /// Dead nodes whose block share is not fully re-replicated yet.
    std::set<int> underReplicated_;
    std::uint64_t readFailovers_ = 0;
    std::uint64_t corruptReads_ = 0;
    Bytes quarantinedBytes_ = 0;
    Bytes reReplicatedBytes_ = 0;
    Tick reReplicationTicks_ = 0;
};

} // namespace doppio::dfs

#endif // DOPPIO_DFS_HDFS_H
