#include "dfs/hdfs.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "faults/fault_injector.h"
#include "storage/io_request.h"
#include "trace/trace_collector.h"

namespace doppio::dfs {

namespace {

/// DFS client connect timeout + retry backoff while a partition
/// isolates every reachable replica: the delay doubles from the base
/// up to the cap, and the client re-resolves replica locations each
/// round (partitions heal, nodes rejoin).
constexpr double kPartitionRetryBaseSec = 0.5;
constexpr double kPartitionRetryCapSec = 8.0;

double
partitionRetryDelaySec(int attempt)
{
    const int shift = std::min(attempt, 4);
    return std::min(kPartitionRetryCapSec,
                    kPartitionRetryBaseSec *
                        static_cast<double>(1 << shift));
}

} // namespace

Hdfs::Hdfs(cluster::Cluster &clusterRef, HdfsConfig config)
    : cluster_(clusterRef), config_(config),
      rng_(clusterRef.config().seed ^ 0x68646673ULL /* "hdfs" */)
{
    if (config_.blockSize == 0)
        fatal("Hdfs: block size must be positive");
    if (config_.replication < 1)
        fatal("Hdfs: replication must be >= 1");
}

FileId
Hdfs::addFile(const std::string &name, Bytes size)
{
    if (byName_.count(name))
        fatal("Hdfs: file %s already exists", name.c_str());
    const FileId id = static_cast<FileId>(files_.size());
    files_.push_back(HdfsFile{name, size, config_.blockSize});
    byName_[name] = id;
    return id;
}

const HdfsFile &
Hdfs::file(FileId id) const
{
    if (id >= files_.size())
        fatal("Hdfs: invalid file id %u", id);
    return files_[id];
}

const HdfsFile &
Hdfs::fileByName(const std::string &name) const
{
    return files_[fileIdByName(name)];
}

FileId
Hdfs::fileIdByName(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        fatal("Hdfs: no file named %s", name.c_str());
    return it->second;
}

void
Hdfs::readChunk(int node, Bytes chunk, std::function<void()> done)
{
    readChunk(node, oscache::kAnonymousStream, 0, chunk,
              std::move(done));
}

void
Hdfs::readChunk(int node, std::uint64_t stream, Bytes offset,
                Bytes chunk, std::function<void()> done)
{
    readBatch(node, stream, offset, chunk, 1, std::move(done));
}

void
Hdfs::writeChunk(int node, Bytes chunk, std::function<void()> done)
{
    writeChunk(node, oscache::kAnonymousStream, 0, chunk,
               std::move(done));
}

void
Hdfs::writeChunk(int node, std::uint64_t stream, Bytes offset,
                 Bytes chunk, std::function<void()> done)
{
    writeBatch(node, stream, offset, chunk, 1, std::move(done));
}

void
Hdfs::readBatch(int node, Bytes chunk, std::uint64_t count,
                std::function<void()> done)
{
    readBatch(node, oscache::kAnonymousStream, 0, chunk, count,
              std::move(done));
}

void
Hdfs::readBatch(int node, std::uint64_t stream, Bytes offset,
                Bytes chunk, std::uint64_t count,
                std::function<void()> done)
{
    if (injector_ != nullptr && cluster_.aliveCount() > 1 &&
        injector_->drawHdfsReadError(lostReplicaFraction())) {
        // Local replica unreadable (I/O error or lost with a dead
        // node): fail over to a surviving replica — remote disk read
        // plus a network hop back to the consumer.
        ++readFailovers_;
        remoteRead(node, stream, offset, chunk, count, 0,
                   "read_failover", std::move(done));
        return;
    }
    if (injector_ != nullptr && cluster_.aliveCount() > 1 &&
        injector_->drawCorruptRead()) {
        // Checksum mismatch: the local read completes but its bytes
        // fail verification. The client re-reads from a surviving
        // replica, and the bad replica is quarantined — background
        // repair streams the good bytes back over it.
        ++corruptReads_;
        const Bytes total = chunk * count;
        quarantinedBytes_ += total;
        if (auto *collector = cluster_.traceCollector()) {
            collector->instant(trace::kDriverPid, trace::kTidHdfs,
                               "recovery", "corrupt_block",
                               cluster_.simulator().now(),
                               trace::TraceArgs()
                                   .add("node", node)
                                   .add("bytes", total));
        }
        cluster_.node(node).readThrough(
            oscache::Role::Hdfs, storage::IoOp::HdfsRead, stream,
            offset, chunk, count,
            [this, node, stream, offset, chunk, count, total,
             done = std::move(done)]() mutable {
                remoteRead(node, stream, offset, chunk, count, 0,
                           "corrupt_reread",
                           [this, node, total,
                            done = std::move(done)]() mutable {
                               quarantineRepair(node, total);
                               if (done)
                                   done();
                           });
            });
        return;
    }
    cluster_.node(node).readThrough(oscache::Role::Hdfs,
                                    storage::IoOp::HdfsRead, stream,
                                    offset, chunk, count,
                                    std::move(done));
}

void
Hdfs::writeBatch(int node, Bytes chunk, std::uint64_t count,
                 std::function<void()> done)
{
    writeBatch(node, oscache::kAnonymousStream, 0, chunk, count,
               std::move(done));
}

void
Hdfs::writeBatch(int node, std::uint64_t stream, Bytes offset,
                 Bytes chunk, std::uint64_t count,
                 std::function<void()> done)
{
    // With nodes down, replication degrades to the survivors (a real
    // pipeline writes the replicas it can and the NameNode catches up
    // later); while everything is up this equals the configured
    // min(replication, numSlaves).
    const int replicas = std::min(config_.replication,
                                  cluster_.aliveCount());
    physicalWritten_ +=
        chunk * count * static_cast<Bytes>(replicas);

    // Completion barrier across the local write and each remote
    // replica's (network transfer + disk write) pipeline.
    auto remaining = std::make_shared<int>(replicas);
    auto barrier = [remaining, done = std::move(done)]() {
        if (--*remaining == 0 && done)
            done();
    };

    cluster_.node(node).writeThrough(oscache::Role::Hdfs,
                                     storage::IoOp::HdfsWrite, stream,
                                     offset, chunk, count, barrier);

    for (int r = 1; r < replicas; ++r) {
        // Pick a distinct remote node for this replica.
        int remote = node;
        if (cluster_.numSlaves() > 1) {
            remote = static_cast<int>(rng_.uniformInt(
                static_cast<std::uint64_t>(cluster_.numSlaves() - 1)));
            if (remote >= node)
                ++remote;
        }
        // Dead or partitioned-away targets are skipped by advancing
        // deterministically to the next alive reachable node — no
        // extra randomness, so placement is unchanged while every
        // node is up and connected. When a partition isolates every
        // candidate the pipeline degrades to fewer replicas (the
        // NameNode catches up after the heal).
        if (remote == node || !cluster_.nodeAlive(remote) ||
            !cluster_.network().reachable(node, remote))
            remote = pickReachableRemote(node, remote);
        if (remote < 0) {
            physicalWritten_ -= chunk * count;
            barrier();
            continue;
        }
        cluster_.network().transfer(
            node, remote, chunk * count,
            [this, remote, stream, offset, chunk, count, barrier]() {
                // The replica lands at the same stream offsets in the
                // remote node's own cache space.
                cluster_.node(remote).writeThrough(
                    oscache::Role::Hdfs, storage::IoOp::HdfsWrite,
                    stream, offset, chunk, count, barrier);
            });
    }
}

void
Hdfs::setFaultInjector(faults::FaultInjector *injector)
{
    injector_ = injector;
    if (injector_ == nullptr || observerRegistered_)
        return;
    observerRegistered_ = true;
    cluster_.addLivenessObserver([this](int node, bool alive) {
        if (!alive && injector_ != nullptr)
            onNodeDeath(node);
    });
}

double
Hdfs::lostReplicaFraction() const
{
    if (underReplicated_.empty())
        return 0.0;
    const int replicas = std::min(config_.replication,
                                  cluster_.numSlaves());
    return static_cast<double>(underReplicated_.size()) /
           (static_cast<double>(cluster_.numSlaves()) *
            static_cast<double>(replicas));
}

int
Hdfs::pickAliveRemote(int node) const
{
    for (int k = 1; k < cluster_.numSlaves(); ++k) {
        const int candidate = (node + k) % cluster_.numSlaves();
        if (cluster_.nodeAlive(candidate))
            return candidate;
    }
    fatal("Hdfs: no alive remote node besides %d", node);
}

int
Hdfs::pickReachableRemote(int origin, int after) const
{
    for (int k = 1; k < cluster_.numSlaves(); ++k) {
        const int candidate = (after + k) % cluster_.numSlaves();
        if (candidate == origin)
            continue;
        if (cluster_.nodeAlive(candidate) &&
            cluster_.network().reachable(origin, candidate))
            return candidate;
    }
    return -1;
}

void
Hdfs::remoteRead(int node, std::uint64_t stream, Bytes offset,
                 Bytes chunk, std::uint64_t count, int attempt,
                 const char *reason, std::function<void()> done)
{
    const int remote = pickReachableRemote(node);
    if (remote < 0) {
        // Every surviving replica sits across the partition: the
        // connect times out, back off and retry.
        cluster_.network().notePartitionTimeout();
        cluster_.simulator().schedule(
            secondsToTicks(partitionRetryDelaySec(attempt)),
            [this, node, stream, offset, chunk, count, attempt, reason,
             done = std::move(done)]() mutable {
                remoteRead(node, stream, offset, chunk, count,
                           attempt + 1, reason, std::move(done));
            });
        return;
    }
    const Bytes total = chunk * count;
    if (auto *collector = cluster_.traceCollector()) {
        collector->instant(trace::kDriverPid, trace::kTidHdfs,
                           "recovery", reason,
                           cluster_.simulator().now(),
                           trace::TraceArgs()
                               .add("node", node)
                               .add("remote", remote)
                               .add("bytes", total));
    }
    cluster_.node(remote).readThrough(
        oscache::Role::Hdfs, storage::IoOp::HdfsRead, stream, offset,
        chunk, count,
        [this, remote, node, total, done = std::move(done)]() mutable {
            cluster_.network().transfer(remote, node, total,
                                        std::move(done));
        });
}

void
Hdfs::quarantineRepair(int node, Bytes bytes)
{
    const int remote = pickReachableRemote(node);
    if (remote < 0) {
        // Repair waits out the partition like the client does.
        cluster_.network().notePartitionTimeout();
        cluster_.simulator().schedule(
            secondsToTicks(kPartitionRetryCapSec),
            [this, node, bytes]() { quarantineRepair(node, bytes); });
        return;
    }
    // Anonymous traffic: repair streams block files past the caches,
    // like the DataNode's scanner does.
    cluster_.node(remote).readThrough(
        oscache::Role::Hdfs, storage::IoOp::HdfsRead,
        oscache::kAnonymousStream, 0, bytes, 1,
        [this, remote, node, bytes]() {
            cluster_.network().transfer(
                remote, node, bytes, [this, node, bytes]() {
                    cluster_.node(node).writeThrough(
                        oscache::Role::Hdfs, storage::IoOp::HdfsWrite,
                        oscache::kAnonymousStream, 0, bytes, 1,
                        []() {});
                });
        });
}

void
Hdfs::onNodeDeath(int node)
{
    if (underReplicated_.count(node))
        return;
    underReplicated_.insert(node);
    startReReplication(node);
}

void
Hdfs::startReReplication(int deadNode)
{
    // The dead node held roughly 1/numSlaves of the cluster's
    // physical bytes (registered inputs at full replication plus
    // everything written through this service). That share must be
    // copied onto the survivors to restore the replication factor.
    Bytes logical = 0;
    for (const HdfsFile &f : files_)
        logical += f.size;
    const int replicas = std::min(config_.replication,
                                  cluster_.numSlaves());
    const Bytes physical =
        logical * static_cast<Bytes>(replicas) + physicalWritten_;
    const Bytes share =
        physical / static_cast<Bytes>(cluster_.numSlaves());
    if (share == 0) {
        underReplicated_.erase(deadNode);
        return;
    }
    auto state = std::make_shared<ReReplication>();
    state->deadNode = deadNode;
    state->chunk = std::min(config_.blockSize, share);
    state->totalChunks = (share + state->chunk - 1) / state->chunk;
    state->startTick = cluster_.simulator().now();
    // One copy pipeline per surviving node, like the NameNode fanning
    // replication work across the fleet.
    const std::uint64_t workers =
        std::min<std::uint64_t>(state->totalChunks,
                                static_cast<std::uint64_t>(
                                    cluster_.aliveCount()));
    for (std::uint64_t w = 0; w < workers; ++w)
        reReplicateNext(state);
}

void
Hdfs::reReplicateNext(const std::shared_ptr<ReReplication> &state)
{
    if (state->nextChunk >= state->totalChunks)
        return;
    const std::uint64_t i = state->nextChunk++;
    const std::vector<int> alive = cluster_.aliveNodes();
    const int src = alive[i % alive.size()];
    const int dst = alive.size() > 1 ? alive[(i + 1) % alive.size()]
                                     : src;
    auto finishChunk = [this, state]() {
        ++state->completed;
        if (state->completed < state->totalChunks) {
            reReplicateNext(state);
            return;
        }
        underReplicated_.erase(state->deadNode);
        reReplicatedBytes_ += state->chunk * state->totalChunks;
        reReplicationTicks_ +=
            cluster_.simulator().now() - state->startTick;
        if (auto *collector = cluster_.traceCollector()) {
            collector->span(
                trace::kDriverPid, trace::kTidHdfs, "recovery",
                "rereplicate node" + std::to_string(state->deadNode),
                state->startTick, cluster_.simulator().now(),
                trace::TraceArgs().add("bytes", state->chunk *
                                                    state->totalChunks));
        }
    };
    const Bytes chunk = state->chunk;
    // Anonymous traffic: recovery copies stream past the page caches,
    // like the DataNode's block files do.
    auto writeCopy = [this, dst, chunk,
                      finishChunk = std::move(finishChunk)]() mutable {
        cluster_.node(dst).writeThrough(
            oscache::Role::Hdfs, storage::IoOp::HdfsWrite,
            oscache::kAnonymousStream, 0, chunk, 1,
            std::move(finishChunk));
    };
    cluster_.node(src).readThrough(
        oscache::Role::Hdfs, storage::IoOp::HdfsRead,
        oscache::kAnonymousStream, 0, chunk, 1,
        [this, src, dst, chunk,
         writeCopy = std::move(writeCopy)]() mutable {
            if (src == dst) {
                writeCopy();
                return;
            }
            cluster_.network().transfer(src, dst, chunk,
                                        std::move(writeCopy));
        });
}

} // namespace doppio::dfs
