#include "dfs/hdfs.h"

#include <memory>

#include "common/logging.h"
#include "storage/io_request.h"

namespace doppio::dfs {

Hdfs::Hdfs(cluster::Cluster &clusterRef, HdfsConfig config)
    : cluster_(clusterRef), config_(config),
      rng_(clusterRef.config().seed ^ 0x68646673ULL /* "hdfs" */)
{
    if (config_.blockSize == 0)
        fatal("Hdfs: block size must be positive");
    if (config_.replication < 1)
        fatal("Hdfs: replication must be >= 1");
}

FileId
Hdfs::addFile(const std::string &name, Bytes size)
{
    if (byName_.count(name))
        fatal("Hdfs: file %s already exists", name.c_str());
    const FileId id = static_cast<FileId>(files_.size());
    files_.push_back(HdfsFile{name, size, config_.blockSize});
    byName_[name] = id;
    return id;
}

const HdfsFile &
Hdfs::file(FileId id) const
{
    if (id >= files_.size())
        fatal("Hdfs: invalid file id %u", id);
    return files_[id];
}

const HdfsFile &
Hdfs::fileByName(const std::string &name) const
{
    return files_[fileIdByName(name)];
}

FileId
Hdfs::fileIdByName(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        fatal("Hdfs: no file named %s", name.c_str());
    return it->second;
}

void
Hdfs::readChunk(int node, Bytes chunk, std::function<void()> done)
{
    readChunk(node, oscache::kAnonymousStream, 0, chunk,
              std::move(done));
}

void
Hdfs::readChunk(int node, std::uint64_t stream, Bytes offset,
                Bytes chunk, std::function<void()> done)
{
    cluster_.node(node).readThrough(oscache::Role::Hdfs,
                                    storage::IoOp::HdfsRead, stream,
                                    offset, chunk, 1, std::move(done));
}

void
Hdfs::writeChunk(int node, Bytes chunk, std::function<void()> done)
{
    writeChunk(node, oscache::kAnonymousStream, 0, chunk,
               std::move(done));
}

void
Hdfs::writeChunk(int node, std::uint64_t stream, Bytes offset,
                 Bytes chunk, std::function<void()> done)
{
    writeBatch(node, stream, offset, chunk, 1, std::move(done));
}

void
Hdfs::readBatch(int node, Bytes chunk, std::uint64_t count,
                std::function<void()> done)
{
    readBatch(node, oscache::kAnonymousStream, 0, chunk, count,
              std::move(done));
}

void
Hdfs::readBatch(int node, std::uint64_t stream, Bytes offset,
                Bytes chunk, std::uint64_t count,
                std::function<void()> done)
{
    cluster_.node(node).readThrough(oscache::Role::Hdfs,
                                    storage::IoOp::HdfsRead, stream,
                                    offset, chunk, count,
                                    std::move(done));
}

void
Hdfs::writeBatch(int node, Bytes chunk, std::uint64_t count,
                 std::function<void()> done)
{
    writeBatch(node, oscache::kAnonymousStream, 0, chunk, count,
               std::move(done));
}

void
Hdfs::writeBatch(int node, std::uint64_t stream, Bytes offset,
                 Bytes chunk, std::uint64_t count,
                 std::function<void()> done)
{
    const int replicas = std::min(config_.replication,
                                  cluster_.numSlaves());
    physicalWritten_ +=
        chunk * count * static_cast<Bytes>(replicas);

    // Completion barrier across the local write and each remote
    // replica's (network transfer + disk write) pipeline.
    auto remaining = std::make_shared<int>(replicas);
    auto barrier = [remaining, done = std::move(done)]() {
        if (--*remaining == 0 && done)
            done();
    };

    cluster_.node(node).writeThrough(oscache::Role::Hdfs,
                                     storage::IoOp::HdfsWrite, stream,
                                     offset, chunk, count, barrier);

    for (int r = 1; r < replicas; ++r) {
        // Pick a distinct remote node for this replica.
        int remote = node;
        if (cluster_.numSlaves() > 1) {
            remote = static_cast<int>(rng_.uniformInt(
                static_cast<std::uint64_t>(cluster_.numSlaves() - 1)));
            if (remote >= node)
                ++remote;
        }
        cluster_.network().transfer(
            node, remote, chunk * count,
            [this, remote, stream, offset, chunk, count, barrier]() {
                // The replica lands at the same stream offsets in the
                // remote node's own cache space.
                cluster_.node(remote).writeThrough(
                    oscache::Role::Hdfs, storage::IoOp::HdfsWrite,
                    stream, offset, chunk, count, barrier);
            });
    }
}

} // namespace doppio::dfs
