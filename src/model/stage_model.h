/**
 * @file
 * The Doppio I/O-aware analytical model (paper Equation 1).
 *
 * Per stage i:
 *
 *   t_stage = max(t_scale, t_read_limit, t_write_limit)
 *   t_scale = M / (N * P) * t_avg + delta_scale
 *   t_limit(op) = D_op / (N * BW_op(RS_op)) + delta_op
 *
 * where BW_op comes from the platform profile's effective-bandwidth
 * lookup tables at the stage's iostat-observed average request size.
 * We generalize the two limit terms to one per I/O operation class the
 * stage performs (GATK4's BR stage reads both HDFS and shuffle data);
 * the paper's formulation is the special case of one read and one
 * write component. A further shared-actuator extension adds, per
 * device, the SUM of the admission-limited components' times: when a
 * stage both reads and writes the same spinning disk at small request
 * sizes (PageRank iterations), the single actuator serves them
 * serially and neither individual limit binds.
 *
 * The optional GC extension models the paper's observed MD-stage
 * behavior (task time growing with P due to JVM garbage collection,
 * flagged as future work in §V-A1): t_avg is scaled by
 * (1 + gcSensitivity * (P - 1)).
 */

#ifndef DOPPIO_MODEL_STAGE_MODEL_H
#define DOPPIO_MODEL_STAGE_MODEL_H

#include <string>
#include <vector>

#include "common/units.h"
#include "model/platform_profile.h"
#include "storage/io_request.h"

namespace doppio::model {

/** One I/O operation class a stage performs, cluster-wide. */
struct IoComponent
{
    storage::IoOp op = storage::IoOp::HdfsRead;
    Bytes bytes = 0;          //!< D: total logical bytes for this op
    double requestSize = 0.0; //!< RS: iostat average request size
    /**
     * Physical amplification of logical bytes at the devices (HDFS
     * writes are replicated dfs.replication times).
     */
    double physicalFactor = 1.0;
    double delta = 0.0;       //!< linear-part constant for this term
    /**
     * Per-task wall time of this I/O phase measured at P=1 (no
     * contention), including pipelined CPU. Basis for the paper's
     * per-core throughput T and ratio lambda (see analyzer.h).
     */
    double soloPhaseSecondsPerTask = 0.0;
};

/** Fitted model constants for one stage. */
struct StageModel
{
    std::string name;
    int tasks = 0;           //!< M
    double tAvg = 0.0;       //!< average single-task time (s)
    double deltaScale = 0.0; //!< serial part of the stage
    double gcSensitivity = 0.0; //!< optional GC extension (0 = off)
    std::vector<IoComponent> io;

    /** @return the component for @p op, or nullptr. */
    const IoComponent *findOp(storage::IoOp op) const;
};

/** Bottleneck classification of a predicted stage time. */
enum class Bottleneck { ComputeScale, ReadLimit, WriteLimit };

/** @return printable name. */
const char *bottleneckName(Bottleneck b);

/** Result of evaluating Equation 1 for one stage. */
struct StagePrediction
{
    double seconds = 0.0; //!< t_stage
    double tScale = 0.0;  //!< the scaling term
    double tReadLimit = 0.0;  //!< max over read components (0 if none)
    double tWriteLimit = 0.0; //!< max over write components (0 if none)
    Bottleneck bottleneck = Bottleneck::ComputeScale;
    storage::IoOp limitingOp = storage::IoOp::HdfsRead;
};

/**
 * Evaluate Equation 1.
 * @param stage    fitted stage constants.
 * @param numNodes N.
 * @param cores    P.
 * @param platform effective-bandwidth tables for the target hardware.
 */
StagePrediction predictStage(const StageModel &stage, int numNodes,
                             int cores, const PlatformProfile &platform);

/** A whole application: stages in execution order. */
struct AppModel
{
    std::string name;
    std::vector<StageModel> stages;

    /** @return the stage named @p name; fatal() if absent. */
    const StageModel &stage(const std::string &name) const;

    /** @return t_app = sum of stage predictions (paper §IV-C). */
    double predictSeconds(int numNodes, int cores,
                          const PlatformProfile &platform) const;
};

} // namespace doppio::model

#endif // DOPPIO_MODEL_STAGE_MODEL_H
