/**
 * @file
 * Persistent store for fitted Eq. 1 model constants (DESIGN.md §16).
 *
 * The planning service profiles a workload with four sample simulator
 * runs before it can answer the first query — the dominant cold-start
 * cost. The store serializes every fitted AppModel to a versioned
 * line-oriented text file so a restarted `doppio serve --model-store
 * FILE` skips profiling for workloads it has seen before.
 *
 * Format (one token stream, whitespace-separated fields, '#' comment
 * lines allowed between records):
 *
 *   doppio-model-store v1
 *   model <key> <appName> <numStages>
 *   stage <name> <tasks> <tAvg> <deltaScale> <gcSensitivity> <numIo>
 *   io <opName> <bytes> <requestSize> <physicalFactor> <delta>
 *      <soloPhaseSecondsPerTask>
 *   end
 *
 * Doubles round-trip via %.17g, so a model loaded from the store
 * predicts byte-identically to the freshly fitted one. The parser is
 * strict: a wrong magic/version, unknown record kind, malformed
 * number, truncated record or duplicate key fatal()s with the line
 * number — a stale or hand-mangled store fails loudly instead of
 * serving silently wrong constants.
 */

#ifndef DOPPIO_MODEL_MODEL_STORE_H
#define DOPPIO_MODEL_MODEL_STORE_H

#include <iosfwd>
#include <map>
#include <string>

#include "model/stage_model.h"

namespace doppio::model {

/** Keyed collection of fitted models with text (de)serialization. */
class ModelStore
{
  public:
    /** Serialize @p models (sorted by key, so output is canonical). */
    static void write(std::ostream &out,
                      const std::map<std::string, AppModel> &models);

    /**
     * Parse a store. @p context names the source (file path) for
     * error messages. fatal() on any format violation.
     */
    static std::map<std::string, AppModel>
    read(std::istream &in, const std::string &context);

    /** Load @p path; a missing file is an empty store (first boot). */
    static std::map<std::string, AppModel>
    loadFile(const std::string &path);

    /** Rewrite @p path with @p models; fatal() on I/O failure. */
    static void saveFile(const std::string &path,
                         const std::map<std::string, AppModel> &models);
};

} // namespace doppio::model

#endif // DOPPIO_MODEL_MODEL_STORE_H
