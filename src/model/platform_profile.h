/**
 * @file
 * One-time platform (disk) profile.
 *
 * The paper's methodology (§VI-1) starts with one-time disk profiling
 * per data center: effective-bandwidth-vs-request-size lookup tables
 * for each device role. A PlatformProfile holds the four tables the
 * model needs (HDFS read/write, Spark-local read/write) and resolves
 * which table an I/O operation class consults.
 */

#ifndef DOPPIO_MODEL_PLATFORM_PROFILE_H
#define DOPPIO_MODEL_PLATFORM_PROFILE_H

#include "cluster/cluster_config.h"
#include "common/lookup_table.h"
#include "common/units.h"
#include "storage/disk_params.h"
#include "storage/io_request.h"

namespace doppio::model {

/** Effective-bandwidth tables for one cluster configuration. */
struct PlatformProfile
{
    LookupTable hdfsRead;
    LookupTable hdfsWrite;
    LookupTable localRead;
    LookupTable localWrite;

    /**
     * Build by running the fio microbenchmark sweep against the two
     * device models (the "one-time disk profiling" step).
     */
    static PlatformProfile fromDisks(const storage::DiskParams &hdfsDisk,
                                     const storage::DiskParams &localDisk);

    /**
     * Multi-disk variant: @p hdfsCount / @p localCount identical
     * devices striped behind each role. Aggregate effective bandwidth
     * scales with the count — the paper: "our model relates to disk
     * bandwidth rather than disk number. Thus, it is general enough
     * to support the multi-disk case".
     */
    static PlatformProfile fromDisks(const storage::DiskParams &hdfsDisk,
                                     int hdfsCount,
                                     const storage::DiskParams &localDisk,
                                     int localCount);

    /** Build from a node configuration (disks + counts). */
    static PlatformProfile
    fromNode(const cluster::NodeConfig &node);

    /**
     * @return the effective bandwidth (bytes/s) for operation @p op at
     * @p requestSize: HDFS ops consult the HDFS-disk tables; shuffle
     * and persist ops consult the Spark-local tables.
     */
    BytesPerSec bandwidthFor(storage::IoOp op, double requestSize) const;
};

} // namespace doppio::model

#endif // DOPPIO_MODEL_PLATFORM_PROFILE_H
