/**
 * @file
 * Ernest-like baseline performance model (Venkataraman et al.,
 * NSDI'16), the prior work the paper positions itself against:
 *
 *   "Studies like Ernest [8] and [6] build analytic models to predict
 *    the Spark performance ... However, in their models, the I/O
 *    impact on different data request sizes is not considered; this
 *    has a significant impact on performance, especially for the HDD
 *    case." (paper §VII-A)
 *
 * Ernest fits a job-runtime model over the cluster's total parallelism
 * C with the feature set {1, 1/C, log(C), C} by least squares on a few
 * training runs, and has no notion of which device backs storage. The
 * baseline is implemented faithfully so the benefit of the paper's
 * I/O-aware terms can be quantified (bench/ablation_model_features).
 */

#ifndef DOPPIO_MODEL_ERNEST_BASELINE_H
#define DOPPIO_MODEL_ERNEST_BASELINE_H

#include <array>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "model/profiler.h"

namespace doppio::model {

/** Fitted Ernest-like model: t(C) over total cores C = N*P. */
struct ErnestModel
{
    std::string name;
    /** Coefficients for {1, 1/C, log(C), C}. */
    std::array<double, 4> theta{};

    /** @return predicted application seconds at N nodes x P cores. */
    double predictSeconds(int numNodes, int cores) const;
};

/** One training observation. */
struct ErnestSample
{
    int numNodes = 0;
    int cores = 0;
    double seconds = 0.0;
};

/**
 * Fit the feature coefficients by ordinary least squares (normal
 * equations). Requires at least four samples with distinct C.
 */
ErnestModel fitErnest(const std::string &name,
                      const std::vector<ErnestSample> &samples);

/**
 * Train an Ernest-like model for a workload by running it at a spread
 * of (N, P) training points on SSD-backed nodes — Ernest's
 * methodology has no disk dimension, which is exactly the paper's
 * criticism.
 */
ErnestModel fitErnestFromRuns(const WorkloadRunner &runner,
                              const cluster::ClusterConfig &baseCluster,
                              const spark::SparkConf &baseConf,
                              const std::string &name);

} // namespace doppio::model

#endif // DOPPIO_MODEL_ERNEST_BASELINE_H
