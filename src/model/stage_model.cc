#include "model/stage_model.h"

#include <algorithm>

#include "common/logging.h"

namespace doppio::model {

const IoComponent *
StageModel::findOp(storage::IoOp op) const
{
    for (const IoComponent &component : io) {
        if (component.op == op)
            return &component;
    }
    return nullptr;
}

const char *
bottleneckName(Bottleneck b)
{
    switch (b) {
      case Bottleneck::ComputeScale:
        return "scale";
      case Bottleneck::ReadLimit:
        return "read-limit";
      case Bottleneck::WriteLimit:
        return "write-limit";
    }
    return "unknown";
}

StagePrediction
predictStage(const StageModel &stage, int numNodes, int cores,
             const PlatformProfile &platform)
{
    if (numNodes <= 0 || cores <= 0)
        fatal("predictStage: N and P must be positive");

    StagePrediction result;
    const double gc =
        1.0 + stage.gcSensitivity * static_cast<double>(cores - 1);
    result.tScale = static_cast<double>(stage.tasks) /
                        (static_cast<double>(numNodes) *
                         static_cast<double>(cores)) *
                        stage.tAvg * gc +
                    stage.deltaScale;
    result.seconds = result.tScale;
    result.bottleneck = Bottleneck::ComputeScale;

    // Limit terms. Regime selection uses the BARE D/(N*BW) values;
    // the winning term's fitted delta is added afterwards. A delta is
    // measured under the configuration where its operation is the
    // bottleneck (sample runs 3/4) and describes the ramp/drain of
    // that regime — carrying it into the max() on platforms where the
    // operation is fast would let a slow-disk artifact decide the
    // bottleneck of a fast disk.
    //
    // Shared-actuator extension: components whose effective bandwidth
    // is admission-limited (below the device's large-request peak) are
    // served by one mechanical actuator/controller queue, so their
    // times on the same device ADD rather than overlap. The paper's
    // formulation is the special case of one read and one write
    // component on independent paths.
    double hdfs_serial = 0.0, hdfs_serial_delta = 0.0;
    double local_serial = 0.0, local_serial_delta = 0.0;
    double winner_bare = result.tScale;
    double winner_delta = 0.0; // tScale already carries deltaScale
    for (const IoComponent &component : stage.io) {
        if (component.bytes == 0 || component.requestSize <= 0.0)
            continue;
        const BytesPerSec bw =
            platform.bandwidthFor(component.op, component.requestSize);
        const double bare = static_cast<double>(component.bytes) *
                            component.physicalFactor /
                            (static_cast<double>(numNodes) * bw);
        const bool read = storage::isRead(component.op);
        if (read)
            result.tReadLimit =
                std::max(result.tReadLimit, bare + component.delta);
        else
            result.tWriteLimit =
                std::max(result.tWriteLimit, bare + component.delta);
        if (bare > winner_bare) {
            winner_bare = bare;
            winner_delta = component.delta;
            result.bottleneck =
                read ? Bottleneck::ReadLimit : Bottleneck::WriteLimit;
            result.limitingOp = component.op;
        }

        const BytesPerSec peak =
            platform.bandwidthFor(component.op, 1e12);
        if (bw < 0.9 * peak) {
            const bool hdfs_device =
                component.op == storage::IoOp::HdfsRead ||
                component.op == storage::IoOp::HdfsWrite;
            if (hdfs_device) {
                hdfs_serial += bare;
                hdfs_serial_delta =
                    std::max(hdfs_serial_delta, component.delta);
            } else {
                local_serial += bare;
                local_serial_delta =
                    std::max(local_serial_delta, component.delta);
            }
        }
    }
    if (hdfs_serial > winner_bare) {
        winner_bare = hdfs_serial;
        winner_delta = hdfs_serial_delta;
        result.bottleneck = Bottleneck::ReadLimit;
    }
    if (local_serial > winner_bare) {
        winner_bare = local_serial;
        winner_delta = local_serial_delta;
        result.bottleneck = Bottleneck::ReadLimit;
    }
    result.seconds = winner_bare + winner_delta;
    return result;
}

const StageModel &
AppModel::stage(const std::string &stageName) const
{
    for (const StageModel &s : stages) {
        if (s.name == stageName)
            return s;
    }
    fatal("AppModel %s: no stage named %s", name.c_str(),
          stageName.c_str());
}

double
AppModel::predictSeconds(int numNodes, int cores,
                         const PlatformProfile &platform) const
{
    double total = 0.0;
    for (const StageModel &s : stages)
        total += predictStage(s, numNodes, cores, platform).seconds;
    return total;
}

} // namespace doppio::model
