#include "model/profiler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace doppio::model {

Profiler::Options::Options()
    : ssd(storage::makeSsdParams()), hdd(storage::makeHddParams())
{}

Profiler::Profiler(WorkloadRunner runner,
                   cluster::ClusterConfig baseCluster,
                   spark::SparkConf baseConf, Options options)
    : runner_(std::move(runner)), baseCluster_(std::move(baseCluster)),
      baseConf_(baseConf), options_(std::move(options))
{
    if (!runner_)
        fatal("Profiler: null workload runner");
    if (options_.sampleNodes <= 0)
        fatal("Profiler: sampleNodes must be positive");
}

Profiler::Profiler(WorkloadRunner runner,
                   cluster::ClusterConfig baseCluster,
                   spark::SparkConf baseConf)
    : Profiler(std::move(runner), std::move(baseCluster), baseConf,
               Options())
{}

spark::AppMetrics
Profiler::runSample(int cores, const storage::DiskParams &hdfsDisk,
                    const storage::DiskParams &localDisk)
{
    cluster::ClusterConfig cluster_config = baseCluster_;
    cluster_config.numSlaves = options_.sampleNodes;
    cluster_config.node.hdfsDisk = hdfsDisk;
    cluster_config.node.localDisk = localDisk;
    spark::SparkConf conf = baseConf_;
    conf.executorCores = cores;
    spark::AppMetrics metrics = runner_(cluster_config, conf);
    if (options_.onSample && !options_.onSample(metrics))
        fatal("Profiler: sample run aborted by onSample hook");
    return metrics;
}

namespace {

/**
 * Fit delta for the dominant I/O component of one device's ops using a
 * high-P sample run where that device is an HDD. The expected baseline
 * uses the same per-device arithmetic as predictStage, including the
 * shared-actuator serialization of admission-limited components.
 */
void
fitDeltas(StageModel &stage, const spark::StageMetrics &measured,
          const PlatformProfile &profile, int numNodes, int cores,
          bool localOps)
{
    // Estimated scaling term at this P, from the already-fitted t_avg.
    const double t_scale =
        static_cast<double>(stage.tasks) /
            (static_cast<double>(numNodes) * static_cast<double>(cores)) *
            stage.tAvg +
        stage.deltaScale;

    IoComponent *dominant = nullptr;
    double dominant_limit = 0.0;
    double serial = 0.0;
    for (IoComponent &component : stage.io) {
        const bool is_local =
            component.op != storage::IoOp::HdfsRead &&
            component.op != storage::IoOp::HdfsWrite;
        if (is_local != localOps)
            continue;
        if (component.bytes == 0 || component.requestSize <= 0.0)
            continue;
        const BytesPerSec bw =
            profile.bandwidthFor(component.op, component.requestSize);
        const double limit = static_cast<double>(component.bytes) *
                             component.physicalFactor /
                             (static_cast<double>(numNodes) * bw);
        if (bw < 0.9 * profile.bandwidthFor(component.op, 1e12))
            serial += limit;
        if (limit > dominant_limit) {
            dominant_limit = limit;
            dominant = &component;
        }
    }
    if (dominant == nullptr)
        return;
    const double device_limit = std::max(dominant_limit, serial);
    // Sanity check (paper: "I/O can be a bottleneck"): only fit a delta
    // when this sample run clearly saturated the device. When the limit
    // and scale terms are comparable, the measured time exceeds their
    // max (compute no longer hides I/O) and a delta fitted here would
    // poison predictions at configurations where one term dominates.
    if (device_limit <= 1.5 * t_scale)
        return;
    dominant->delta =
        std::max(0.0, measured.seconds() - device_limit);
}

} // namespace

AppModel
Profiler::fit(const std::string &appName)
{
    const int n = options_.sampleNodes;

    // Sample runs 1 and 2: SSD everywhere, P = 1 then P = 2.
    const spark::AppMetrics run1 =
        runSample(options_.lowCores, options_.ssd, options_.ssd);
    const spark::AppMetrics run2 =
        runSample(options_.midCores, options_.ssd, options_.ssd);
    // Sample run 3: HDD Spark local (local I/O becomes the bottleneck).
    const spark::AppMetrics run3 =
        runSample(options_.highCores, options_.ssd, options_.hdd);
    // Sample run 4: HDD HDFS (HDFS I/O becomes the bottleneck).
    const spark::AppMetrics run4 =
        runSample(options_.highCores, options_.hdd, options_.ssd);

    const auto stages1 = run1.allStages();
    const auto stages2 = run2.allStages();
    const auto stages3 = run3.allStages();
    const auto stages4 = run4.allStages();
    if (stages1.size() != stages2.size() ||
        stages1.size() != stages3.size() ||
        stages1.size() != stages4.size())
        fatal("Profiler: workload stage structure differs between "
              "sample runs (%zu/%zu/%zu/%zu stages)",
              stages1.size(), stages2.size(), stages3.size(),
              stages4.size());

    const PlatformProfile profile3 =
        PlatformProfile::fromDisks(options_.ssd, options_.hdd);
    const PlatformProfile profile4 =
        PlatformProfile::fromDisks(options_.hdd, options_.ssd);

    // Optional 5th sample run for the GC extension, at a different
    // node count (GC is unidentifiable from same-N runs; see header).
    spark::AppMetrics run5;
    if (options_.fitGc) {
        if (options_.gcNodes == options_.sampleNodes)
            fatal("Profiler: gcNodes must differ from sampleNodes "
                  "(GC is unidentifiable at fixed N)");
        cluster::ClusterConfig gc_config = baseCluster_;
        gc_config.numSlaves = options_.gcNodes;
        gc_config.node.hdfsDisk = options_.ssd;
        gc_config.node.localDisk = options_.ssd;
        spark::SparkConf gc_conf = baseConf_;
        gc_conf.executorCores = options_.midCores;
        run5 = runner_(gc_config, gc_conf);
        if (options_.onSample && !options_.onSample(run5))
            fatal("Profiler: sample run aborted by onSample hook");
    }

    AppModel app;
    app.name = appName;
    const double p1 = options_.lowCores;
    const double p2 = options_.midCores;

    for (std::size_t i = 0; i < stages1.size(); ++i) {
        const spark::StageMetrics &s1 = *stages1[i];
        const spark::StageMetrics &s2 = *stages2[i];
        if (s1.name != s2.name)
            fatal("Profiler: stage order mismatch (%s vs %s)",
                  s1.name.c_str(), s2.name.c_str());

        StageModel stage;
        stage.name = s1.name;
        stage.tasks = s1.numTasks;

        // t(P) = M/(N*P) * t_avg + delta_scale, solved from runs 1-2.
        const double m = static_cast<double>(stage.tasks);
        const double a1 = m / (n * p1);
        const double a2 = m / (n * p2);
        const double t1 = s1.seconds();
        const double t2 = s2.seconds();
        stage.tAvg = std::max(0.0, (t1 - t2) / (a1 - a2));
        stage.deltaScale = std::max(0.0, t1 - a1 * stage.tAvg);

        // I/O components: bytes and request sizes from run 1's
        // stage-scoped iostat.
        for (storage::IoOp op : storage::kAllIoOps) {
            const spark::StageIoStats &io = s1.forOp(op);
            if (io.bytes == 0)
                continue;
            IoComponent component;
            component.op = op;
            component.bytes = io.bytes;
            component.requestSize = io.avgRequestSize();
            component.physicalFactor =
                op == storage::IoOp::HdfsWrite
                    ? static_cast<double>(options_.hdfsReplication)
                    : 1.0;
            component.soloPhaseSecondsPerTask = io.phaseSeconds.mean();
            stage.io.push_back(component);
        }

        // Deltas for local-disk terms (run 3) and HDFS terms (run 4).
        fitDeltas(stage, *stages3[i], profile3, n, options_.highCores,
                  /*localOps=*/true);
        fitDeltas(stage, *stages4[i], profile4, n, options_.highCores,
                  /*localOps=*/false);

        // GC extension. Decompose t(N,P) = M/(N*P)*u + M/N*v + delta
        // with u = t0*(1-g), v = t0*g:
        //   runs 1,2 (same N, different P) give u;
        //   runs 2,5 (same P, different N) give u/P2 + v, hence v.
        if (options_.fitGc) {
            const auto stages5 = run5.allStages();
            const double n5 = options_.gcNodes;
            const double t5 = stages5[i]->seconds();
            const double u = stage.tAvg; // fitted above from runs 1-2
            const double inv_n = 1.0 / n - 1.0 / n5;
            if (std::fabs(inv_n) > 1e-12) {
                const double v =
                    (t2 - t5) / (m * inv_n) - u / p2;
                const double t0 = u + v;
                if (v > 0.0 && t0 > 0.0) {
                    stage.tAvg = t0;
                    stage.gcSensitivity = v / t0;
                    // delta = t1 - M/(N*P1) * t0 * (1 + g*(P1-1)).
                    stage.deltaScale = std::max(
                        0.0, t1 - a1 * t0 *
                                      (1.0 +
                                       stage.gcSensitivity * (p1 - 1.0)));
                }
            }
        }

        app.stages.push_back(std::move(stage));
    }
    return app;
}

} // namespace doppio::model
