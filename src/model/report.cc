#include "model/report.h"

#include <sstream>

#include "common/table_printer.h"
#include "common/units.h"

namespace doppio::model {

void
writeReport(std::ostream &os, const AppModel &app,
            const PlatformProfile &platform,
            const ReportOptions &options)
{
    os << "Doppio model report: " << app.name << "  (N="
       << options.numNodes << ", P=" << options.cores << ")\n\n";

    TablePrinter stages("Per-stage prediction (Equation 1)");
    stages.setHeader({"stage", "M", "t_avg (s)", "delta (s)", "gc",
                      "predicted", "bottleneck"});
    double total = 0.0;
    for (const StageModel &stage : app.stages) {
        const StagePrediction pred = predictStage(
            stage, options.numNodes, options.cores, platform);
        total += pred.seconds;
        stages.addRow({stage.name, std::to_string(stage.tasks),
                       TablePrinter::num(stage.tAvg, 2),
                       TablePrinter::num(stage.deltaScale, 1),
                       TablePrinter::num(stage.gcSensitivity, 3),
                       formatDuration(secondsToTicks(pred.seconds)),
                       bottleneckName(pred.bottleneck)});
    }
    stages.print(os);
    os << "t_app = " << formatDuration(secondsToTicks(total))
       << "  (sum over stages, paper IV-C)\n\n";

    TablePrinter io("I/O components");
    io.setHeader({"stage", "op", "D", "RS", "BW(RS)", "delta (s)"});
    for (const StageModel &stage : app.stages) {
        for (const IoComponent &component : stage.io) {
            if (component.bytes == 0)
                continue;
            io.addRow(
                {stage.name, storage::ioOpName(component.op),
                 formatBytes(component.bytes),
                 formatBytes(
                     static_cast<Bytes>(component.requestSize)),
                 formatBandwidth(platform.bandwidthFor(
                     component.op, component.requestSize)),
                 TablePrinter::num(component.delta, 1)});
        }
    }
    io.print(os);

    if (!options.includeAnalysis)
        return;
    os << '\n';
    TablePrinter analysis("Breakpoint analysis (paper IV-B)");
    analysis.setHeader(
        {"stage", "op", "T", "b = BW/T", "lambda", "B = lambda*b"});
    for (const StageModel &stage : app.stages) {
        const StageAnalysis a = analyzeStage(stage, platform);
        for (const OpAnalysis &op : a.ops) {
            analysis.addRow({stage.name, storage::ioOpName(op.op),
                             formatBandwidth(op.perCoreThroughput),
                             TablePrinter::num(op.breakPoint, 1),
                             TablePrinter::num(op.lambda, 1),
                             TablePrinter::num(op.turningPoint, 1)});
        }
    }
    analysis.print(os);
}

std::string
reportString(const AppModel &app, const PlatformProfile &platform,
             const ReportOptions &options)
{
    std::ostringstream os;
    writeReport(os, app, platform, options);
    return os.str();
}

void
writePageCacheReport(std::ostream &os,
                     const oscache::PageCacheStats &stats,
                     Bytes capacity)
{
    TablePrinter table("OS page cache (cluster totals)");
    table.setHeader({"counter", "value"});
    table.addRow({"reads", std::to_string(stats.reads)});
    table.addRow({"read bytes", formatBytes(stats.readBytes)});
    table.addRow({"hit bytes", formatBytes(stats.hitBytes)});
    table.addRow({"miss bytes", formatBytes(stats.missBytes)});
    table.addRow({"hit ratio", TablePrinter::percent(stats.hitRatio())});
    table.addRow({"read-ahead bytes",
                  formatBytes(stats.readAheadBytes)});
    table.addRow({"writes", std::to_string(stats.writes)});
    table.addRow({"write bytes", formatBytes(stats.writeBytes)});
    table.addRow({"absorbed bytes", formatBytes(stats.absorbedBytes)});
    table.addRow({"write-around bytes",
                  formatBytes(stats.writeAroundBytes)});
    table.addRow({"flushed bytes", formatBytes(stats.flushedBytes)});
    table.addRow(
        {"flush requests", std::to_string(stats.flushRequests)});
    table.addRow(
        {"throttled writes", std::to_string(stats.throttledWrites)});
    table.addRow({"evicted bytes", formatBytes(stats.evictedBytes)});
    if (capacity > 0)
        table.addRow({"capacity per node", formatBytes(capacity)});
    table.print(os);
}

} // namespace doppio::model
