#include "model/job_scheduler.h"

#include <algorithm>
#include <numeric>

namespace doppio::model {

namespace {

ScheduleResult
runInOrder(const std::vector<QueuedJob> &jobs,
           const std::vector<std::size_t> &order)
{
    ScheduleResult result;
    double clock = 0.0;
    for (std::size_t index : order) {
        const QueuedJob &job = jobs[index];
        result.totalWaitSeconds += clock;
        clock += job.actualSeconds;
        result.order.push_back(job.name);
        result.completionSeconds.push_back(clock);
    }
    result.makespanSeconds = clock;
    if (!jobs.empty()) {
        result.meanCompletionSeconds =
            std::accumulate(result.completionSeconds.begin(),
                            result.completionSeconds.end(), 0.0) /
            static_cast<double>(jobs.size());
    }
    return result;
}

} // namespace

ScheduleResult
scheduleFifo(const std::vector<QueuedJob> &jobs)
{
    std::vector<std::size_t> order(jobs.size());
    std::iota(order.begin(), order.end(), 0);
    return runInOrder(jobs, order);
}

ScheduleResult
scheduleShortestPredictedFirst(const std::vector<QueuedJob> &jobs)
{
    std::vector<std::size_t> order(jobs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&jobs](std::size_t a, std::size_t b) {
                         return jobs[a].predictedSeconds <
                                jobs[b].predictedSeconds;
                     });
    return runInOrder(jobs, order);
}

} // namespace doppio::model
