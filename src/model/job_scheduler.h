/**
 * @file
 * Model-driven job scheduling (paper §I):
 *
 *   "in a shared cluster environment with a job scheduler, our
 *    performance prediction model can allow the scheduler to know
 *    ahead the approximating job execution time and thus enable
 *    better job scheduling with less job waiting time."
 *
 * This module realizes that application: jobs queue for an exclusive
 * cluster; a model-informed scheduler orders them
 * shortest-predicted-first (SPF), which minimizes mean completion
 * time when predictions are accurate; the benefit degrades gracefully
 * with prediction error.
 */

#ifndef DOPPIO_MODEL_JOB_SCHEDULER_H
#define DOPPIO_MODEL_JOB_SCHEDULER_H

#include <string>
#include <vector>

namespace doppio::model {

/** A job waiting for the cluster. */
struct QueuedJob
{
    std::string name;
    /** Model-predicted runtime used for ordering decisions. */
    double predictedSeconds = 0.0;
    /** True runtime charged when the job runs. */
    double actualSeconds = 0.0;
};

/** Outcome of running a queue to completion. */
struct ScheduleResult
{
    /** Job names in execution order. */
    std::vector<std::string> order;
    /** Per-job completion times (same order as `order`). */
    std::vector<double> completionSeconds;
    /** Sum of all jobs' waiting times (time before starting). */
    double totalWaitSeconds = 0.0;
    /** Mean completion time over the jobs. */
    double meanCompletionSeconds = 0.0;
    /** Total time to drain the queue. */
    double makespanSeconds = 0.0;
};

/** Run the queue in arrival (FIFO) order. */
ScheduleResult scheduleFifo(const std::vector<QueuedJob> &jobs);

/**
 * Run the queue shortest-predicted-first: the scheduler sorts by the
 * model's predictions but pays each job's actual runtime. Equal
 * predictions keep arrival order (stable).
 */
ScheduleResult
scheduleShortestPredictedFirst(const std::vector<QueuedJob> &jobs);

} // namespace doppio::model

#endif // DOPPIO_MODEL_JOB_SCHEDULER_H
