/**
 * @file
 * Four-sample-run model fitting (paper §VI-1).
 *
 * The paper derives all Equation-1 constants from four profiling runs
 * on a small cluster:
 *
 *   1. P=1, SSD HDFS + SSD local  — I/O not a bottleneck; log per-stage
 *      time, M, D, and iostat request sizes;
 *   2. P=2, same disks            — together with run 1 yields t_avg
 *      and delta_scale per stage;
 *   3. P=16, HDD local + SSD HDFS — Spark-local I/O becomes the
 *      bottleneck; yields delta for shuffle/persist terms;
 *   4. P=16, HDD HDFS + SSD local — HDFS I/O becomes the bottleneck;
 *      yields delta for HDFS terms.
 *
 * An optional fifth run fits the GC extension: task time scaling with
 * P caused by JVM garbage collection, which the paper observes on
 * GATK4's MD stage and leaves as future work. Identifiability note:
 * under Eq. 1, M/(N*P) * t0 * (1 + g*(P-1)) decomposes into
 * M/(N*P) * t0*(1-g)  +  M/N * t0*g — at a fixed node count N the GC
 * term is indistinguishable from delta_scale, so the fifth run must
 * vary N, not P (Options::gcNodes).
 *
 * The fitted AppModel then predicts unseen (N, P, disk) configurations.
 */

#ifndef DOPPIO_MODEL_PROFILER_H
#define DOPPIO_MODEL_PROFILER_H

#include <functional>
#include <string>

#include "cluster/cluster_config.h"
#include "model/stage_model.h"
#include "spark/metrics.h"
#include "spark/spark_conf.h"

namespace doppio::model {

/**
 * Runs the application under test on a given configuration and returns
 * its metrics. Must be deterministic in stage structure: the same
 * stages, in the same order, for every configuration.
 */
using WorkloadRunner = std::function<spark::AppMetrics(
    const cluster::ClusterConfig &, const spark::SparkConf &)>;

/** The profiling methodology. */
class Profiler
{
  public:
    /** Sample-run configuration. */
    struct Options
    {
        int sampleNodes = 3;    //!< N for all sample runs
        int lowCores = 1;       //!< P of sample run 1
        int midCores = 2;       //!< P of sample run 2
        int highCores = 16;     //!< P of sample runs 3 and 4
        bool fitGc = false;     //!< enable the 5th run / GC extension
        /** Slave count of the GC sample run; must differ from
         *  sampleNodes (see the identifiability note above). */
        int gcNodes = 6;
        /** dfs.replication of the workload's HDFS (physical factor of
         *  HDFS writes). */
        int hdfsReplication = 2;
        storage::DiskParams ssd;
        storage::DiskParams hdd;
        /**
         * Budget/interruption hook: called after every sample run
         * (including the GC run) with that run's metrics. Returning
         * false aborts the fit via fatal(), which the planning
         * service uses to stop profiling when a per-request deadline
         * budget expires mid-methodology. Null = never interrupts.
         */
        std::function<bool(const spark::AppMetrics &)> onSample;

        Options();
    };

    /**
     * @param runner    the application under test.
     * @param baseCluster cluster template (node shape, network, seed);
     *                  the profiler overrides slave count and disks.
     * @param baseConf  Spark configuration template; the profiler
     *                  overrides executorCores.
     */
    Profiler(WorkloadRunner runner, cluster::ClusterConfig baseCluster,
             spark::SparkConf baseConf, Options options);

    /** Profile with default options. */
    Profiler(WorkloadRunner runner, cluster::ClusterConfig baseCluster,
             spark::SparkConf baseConf);

    /** Execute the sample runs and fit the model. */
    AppModel fit(const std::string &appName);

  private:
    spark::AppMetrics runSample(int cores,
                                const storage::DiskParams &hdfsDisk,
                                const storage::DiskParams &localDisk);

    WorkloadRunner runner_;
    cluster::ClusterConfig baseCluster_;
    spark::SparkConf baseConf_;
    Options options_;
};

} // namespace doppio::model

#endif // DOPPIO_MODEL_PROFILER_H
