#include "model/analyzer.h"

#include <limits>

namespace doppio::model {

StageAnalysis
analyzeStage(const StageModel &stage, const PlatformProfile &platform)
{
    StageAnalysis analysis;
    analysis.name = stage.name;
    analysis.minTurningPoint = std::numeric_limits<double>::infinity();

    for (const IoComponent &component : stage.io) {
        if (component.bytes == 0 || component.requestSize <= 0.0 ||
            component.soloPhaseSecondsPerTask <= 0.0 || stage.tasks == 0)
            continue;
        OpAnalysis op;
        op.op = component.op;
        op.perTaskBytes = static_cast<double>(component.bytes) /
                          static_cast<double>(stage.tasks);
        op.perCoreThroughput =
            op.perTaskBytes / component.soloPhaseSecondsPerTask;
        op.effectiveBandwidth =
            platform.bandwidthFor(component.op, component.requestSize);
        op.breakPoint = op.effectiveBandwidth / op.perCoreThroughput;
        op.lambda = stage.tAvg > 0.0
                        ? stage.tAvg / component.soloPhaseSecondsPerTask
                        : 0.0;
        op.turningPoint = op.lambda * op.breakPoint;
        if (op.turningPoint > 0.0)
            analysis.minTurningPoint =
                std::min(analysis.minTurningPoint, op.turningPoint);
        analysis.ops.push_back(op);
    }
    return analysis;
}

std::vector<std::pair<int, double>>
sweepStageCores(const StageModel &stage, int numNodes,
                const std::vector<int> &coreCounts,
                const PlatformProfile &platform)
{
    std::vector<std::pair<int, double>> result;
    result.reserve(coreCounts.size());
    for (int cores : coreCounts) {
        result.emplace_back(
            cores, predictStage(stage, numNodes, cores, platform).seconds);
    }
    return result;
}

std::vector<std::pair<int, double>>
sweepAppCores(const AppModel &app, int numNodes,
              const std::vector<int> &coreCounts,
              const PlatformProfile &platform)
{
    std::vector<std::pair<int, double>> result;
    result.reserve(coreCounts.size());
    for (int cores : coreCounts)
        result.emplace_back(cores,
                            app.predictSeconds(numNodes, cores, platform));
    return result;
}

} // namespace doppio::model
