#include "model/model_store.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace doppio::model {

namespace {

constexpr const char *kMagic = "doppio-model-store";
constexpr const char *kVersion = "v1";

/** %.17g — enough digits to round-trip any double exactly. */
std::string
fmtDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

/** Tokenizer that tracks line numbers for strict error reporting. */
class Lexer
{
  public:
    Lexer(std::istream &in, const std::string &context)
        : in_(in), context_(context)
    {
    }

    /** Next whitespace-delimited token; fatal() at end of input. */
    std::string
    next(const char *what)
    {
        std::string token;
        if (!fetch(&token))
            fatal("model store %s: unexpected end of input, expected "
                  "%s (line %d)",
                  context_.c_str(), what, line_);
        return token;
    }

    /** True when a token is available (skips comments/whitespace). */
    bool
    more()
    {
        if (!pending_.empty())
            return true;
        std::string token;
        if (!fetch(&token))
            return false;
        pending_ = token;
        return true;
    }

    int
    intToken(const char *what, long lo, long hi)
    {
        const std::string token = next(what);
        char *end = nullptr;
        errno = 0;
        const long value = std::strtol(token.c_str(), &end, 10);
        if (errno != 0 || end == token.c_str() || *end != '\0' ||
            value < lo || value > hi)
            fatal("model store %s: bad %s '%s' (line %d)",
                  context_.c_str(), what, token.c_str(), line_);
        return static_cast<int>(value);
    }

    std::uint64_t
    u64Token(const char *what)
    {
        const std::string token = next(what);
        char *end = nullptr;
        errno = 0;
        const unsigned long long value =
            std::strtoull(token.c_str(), &end, 10);
        if (errno != 0 || end == token.c_str() || *end != '\0' ||
            token[0] == '-')
            fatal("model store %s: bad %s '%s' (line %d)",
                  context_.c_str(), what, token.c_str(), line_);
        return value;
    }

    double
    doubleToken(const char *what)
    {
        const std::string token = next(what);
        char *end = nullptr;
        errno = 0;
        const double value = std::strtod(token.c_str(), &end);
        if (errno != 0 || end == token.c_str() || *end != '\0')
            fatal("model store %s: bad %s '%s' (line %d)",
                  context_.c_str(), what, token.c_str(), line_);
        return value;
    }

    [[noreturn]] void
    fail(const char *what, const std::string &token)
    {
        fatal("model store %s: %s '%s' (line %d)", context_.c_str(),
              what, token.c_str(), line_);
    }

    int line() const { return line_; }

  private:
    bool
    fetch(std::string *out)
    {
        if (!pending_.empty()) {
            *out = std::move(pending_);
            pending_.clear();
            return true;
        }
        for (;;) {
            int c = in_.get();
            while (c != EOF &&
                   std::isspace(static_cast<unsigned char>(c))) {
                if (c == '\n')
                    ++line_;
                c = in_.get();
            }
            if (c == EOF)
                return false;
            if (c == '#') {
                while (c != EOF && c != '\n')
                    c = in_.get();
                if (c == '\n')
                    ++line_;
                continue;
            }
            std::string token;
            while (c != EOF &&
                   !std::isspace(static_cast<unsigned char>(c))) {
                token.push_back(static_cast<char>(c));
                c = in_.get();
            }
            if (c == '\n')
                ++line_;
            *out = std::move(token);
            return true;
        }
    }

    std::istream &in_;
    std::string context_;
    std::string pending_;
    int line_ = 1;
};

storage::IoOp
opByName(Lexer &lex, const std::string &name)
{
    for (const storage::IoOp op : storage::kAllIoOps) {
        if (name == storage::ioOpName(op))
            return op;
    }
    lex.fail("unknown io op", name);
}

void
checkToken(const std::string &token, const char *what)
{
    if (token.empty())
        fatal("model store: empty %s", what);
    for (const char c : token) {
        if (std::isspace(static_cast<unsigned char>(c)))
            fatal("model store: %s '%s' contains whitespace", what,
                  token.c_str());
    }
}

} // namespace

void
ModelStore::write(std::ostream &out,
                  const std::map<std::string, AppModel> &models)
{
    out << kMagic << ' ' << kVersion << '\n';
    for (const auto &[key, app] : models) {
        checkToken(key, "key");
        checkToken(app.name, "app name");
        out << "model " << key << ' ' << app.name << ' '
            << app.stages.size() << '\n';
        for (const StageModel &stage : app.stages) {
            checkToken(stage.name, "stage name");
            out << "stage " << stage.name << ' ' << stage.tasks << ' '
                << fmtDouble(stage.tAvg) << ' '
                << fmtDouble(stage.deltaScale) << ' '
                << fmtDouble(stage.gcSensitivity) << ' '
                << stage.io.size() << '\n';
            for (const IoComponent &io : stage.io) {
                out << "io " << storage::ioOpName(io.op) << ' '
                    << io.bytes << ' ' << fmtDouble(io.requestSize)
                    << ' ' << fmtDouble(io.physicalFactor) << ' '
                    << fmtDouble(io.delta) << ' '
                    << fmtDouble(io.soloPhaseSecondsPerTask) << '\n';
            }
        }
        out << "end\n";
    }
}

std::map<std::string, AppModel>
ModelStore::read(std::istream &in, const std::string &context)
{
    Lexer lex(in, context);
    const std::string magic = lex.next("magic");
    if (magic != kMagic)
        lex.fail("bad magic", magic);
    const std::string version = lex.next("version");
    if (version != kVersion)
        lex.fail("unsupported version", version);

    std::map<std::string, AppModel> models;
    while (lex.more()) {
        const std::string record = lex.next("record kind");
        if (record != "model")
            lex.fail("expected 'model', got", record);
        const std::string key = lex.next("model key");
        if (models.count(key))
            lex.fail("duplicate model key", key);
        AppModel app;
        app.name = lex.next("app name");
        const int numStages = lex.intToken("stage count", 0, 100000);
        app.stages.reserve(static_cast<std::size_t>(numStages));
        for (int s = 0; s < numStages; ++s) {
            const std::string kind = lex.next("record kind");
            if (kind != "stage")
                lex.fail("expected 'stage', got", kind);
            StageModel stage;
            stage.name = lex.next("stage name");
            stage.tasks = lex.intToken("task count", 0, 1000000000L);
            stage.tAvg = lex.doubleToken("tAvg");
            stage.deltaScale = lex.doubleToken("deltaScale");
            stage.gcSensitivity = lex.doubleToken("gcSensitivity");
            const int numIo = lex.intToken("io count", 0, 1000);
            stage.io.reserve(static_cast<std::size_t>(numIo));
            for (int k = 0; k < numIo; ++k) {
                const std::string ioKind = lex.next("record kind");
                if (ioKind != "io")
                    lex.fail("expected 'io', got", ioKind);
                IoComponent io;
                io.op = opByName(lex, lex.next("io op"));
                io.bytes = lex.u64Token("bytes");
                io.requestSize = lex.doubleToken("requestSize");
                io.physicalFactor = lex.doubleToken("physicalFactor");
                io.delta = lex.doubleToken("delta");
                io.soloPhaseSecondsPerTask =
                    lex.doubleToken("soloPhaseSecondsPerTask");
                stage.io.push_back(std::move(io));
            }
            app.stages.push_back(std::move(stage));
        }
        const std::string endTok = lex.next("'end'");
        if (endTok != "end")
            lex.fail("expected 'end', got", endTok);
        models.emplace(key, std::move(app));
    }
    return models;
}

std::map<std::string, AppModel>
ModelStore::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    return read(in, path);
}

void
ModelStore::saveFile(const std::string &path,
                     const std::map<std::string, AppModel> &models)
{
    std::ofstream out(path);
    if (!out)
        fatal("model store: cannot write '%s'", path.c_str());
    write(out, models);
    if (!out.flush())
        fatal("model store: write to '%s' failed", path.c_str());
}

} // namespace doppio::model
