#include "model/ernest_baseline.h"

#include <cmath>

#include "common/logging.h"
#include "storage/disk_params.h"

namespace doppio::model {

namespace {

std::array<double, 4>
features(double total_cores)
{
    return {1.0, 1.0 / total_cores, std::log(total_cores),
            total_cores};
}

} // namespace

double
ErnestModel::predictSeconds(int numNodes, int cores) const
{
    const double c = static_cast<double>(numNodes) *
                     static_cast<double>(cores);
    const std::array<double, 4> x = features(c);
    double t = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        t += theta[i] * x[i];
    return t;
}

ErnestModel
fitErnest(const std::string &name,
          const std::vector<ErnestSample> &samples)
{
    constexpr std::size_t kDim = 4;
    if (samples.size() < kDim)
        fatal("fitErnest: need at least %zu samples, got %zu", kDim,
              samples.size());
    // The features are all functions of C = N*P: the design is
    // singular unless at least kDim distinct core counts appear.
    std::vector<double> distinct;
    for (const ErnestSample &sample : samples) {
        const double c = static_cast<double>(sample.numNodes) *
                         static_cast<double>(sample.cores);
        bool seen = false;
        for (double d : distinct)
            seen = seen || std::fabs(d - c) < 1e-9;
        if (!seen)
            distinct.push_back(c);
    }
    if (distinct.size() < kDim)
        fatal("fitErnest: training points must span at least %zu "
              "distinct total core counts (got %zu)",
              kDim, distinct.size());

    // Normal equations: (X^T X) theta = X^T y.
    double xtx[kDim][kDim] = {};
    double xty[kDim] = {};
    for (const ErnestSample &sample : samples) {
        const double c = static_cast<double>(sample.numNodes) *
                         static_cast<double>(sample.cores);
        const std::array<double, 4> x = features(c);
        for (std::size_t i = 0; i < kDim; ++i) {
            xty[i] += x[i] * sample.seconds;
            for (std::size_t j = 0; j < kDim; ++j)
                xtx[i][j] += x[i] * x[j];
        }
    }

    // Gaussian elimination with partial pivoting and a small ridge
    // term for numerical robustness.
    for (std::size_t i = 0; i < kDim; ++i)
        xtx[i][i] += 1e-9;
    std::size_t perm[kDim] = {0, 1, 2, 3};
    for (std::size_t col = 0; col < kDim; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < kDim; ++row) {
            if (std::fabs(xtx[row][col]) >
                std::fabs(xtx[pivot][col]))
                pivot = row;
        }
        if (pivot != col) {
            for (std::size_t j = 0; j < kDim; ++j)
                std::swap(xtx[col][j], xtx[pivot][j]);
            std::swap(xty[col], xty[pivot]);
            std::swap(perm[col], perm[pivot]);
        }
        if (std::fabs(xtx[col][col]) < 1e-14)
            fatal("fitErnest: singular design matrix (training points "
                  "must span distinct core counts)");
        for (std::size_t row = col + 1; row < kDim; ++row) {
            const double factor = xtx[row][col] / xtx[col][col];
            for (std::size_t j = col; j < kDim; ++j)
                xtx[row][j] -= factor * xtx[col][j];
            xty[row] -= factor * xty[col];
        }
    }
    ErnestModel model;
    model.name = name;
    for (std::size_t i = kDim; i-- > 0;) {
        double sum = xty[i];
        for (std::size_t j = i + 1; j < kDim; ++j)
            sum -= xtx[i][j] * model.theta[j];
        model.theta[i] = sum / xtx[i][i];
    }
    return model;
}

ErnestModel
fitErnestFromRuns(const WorkloadRunner &runner,
                  const cluster::ClusterConfig &baseCluster,
                  const spark::SparkConf &baseConf,
                  const std::string &name)
{
    if (!runner)
        fatal("fitErnestFromRuns: null workload runner");
    // Training grid spanning an 8x range of total parallelism, all on
    // SSDs (Ernest's feature set has no storage dimension).
    struct Point
    {
        int nodes;
        int cores;
    };
    const std::vector<Point> grid = {
        {3, 2}, {3, 4}, {6, 4}, {6, 8}, {10, 4}, {10, 8}};

    std::vector<ErnestSample> samples;
    for (const Point &point : grid) {
        cluster::ClusterConfig config = baseCluster;
        config.numSlaves = point.nodes;
        config.node.hdfsDisk = storage::makeSsdParams();
        config.node.localDisk = storage::makeSsdParams();
        spark::SparkConf conf = baseConf;
        conf.executorCores = point.cores;
        samples.push_back(
            {point.nodes, point.cores,
             runner(config, conf).seconds()});
    }
    return fitErnest(name, samples);
}

} // namespace doppio::model
