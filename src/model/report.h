/**
 * @file
 * Human-readable model reports.
 *
 * Renders a fitted AppModel against a platform profile: per-stage
 * constants, per-component effective bandwidths, regime classification
 * and the analyzer's breakpoints — the summary a performance engineer
 * would read after profiling an application.
 */

#ifndef DOPPIO_MODEL_REPORT_H
#define DOPPIO_MODEL_REPORT_H

#include <ostream>
#include <string>

#include "model/analyzer.h"
#include "model/stage_model.h"
#include "oscache/page_cache.h"

namespace doppio::model {

/** Report configuration. */
struct ReportOptions
{
    int numNodes = 10;
    int cores = 36;
    /** Include the b/lambda/B analyzer section (requires solo phase
     *  times, i.e. a Profiler-fitted model). */
    bool includeAnalysis = true;
};

/** Write a full report for @p app on @p platform to @p os. */
void writeReport(std::ostream &os, const AppModel &app,
                 const PlatformProfile &platform,
                 const ReportOptions &options = ReportOptions{});

/** @return the report as a string. */
std::string reportString(const AppModel &app,
                         const PlatformProfile &platform,
                         const ReportOptions &options = ReportOptions{});

/**
 * Write the OS page-cache counter table for one simulated run:
 * hit/miss traffic, write absorption vs writeback, and throttling —
 * the observables that separate effective from device I/O. @p capacity
 * is the per-node cache size (0 to omit the line).
 */
void writePageCacheReport(std::ostream &os,
                          const oscache::PageCacheStats &stats,
                          Bytes capacity = 0);

} // namespace doppio::model

#endif // DOPPIO_MODEL_REPORT_H
