/**
 * @file
 * Bottleneck analysis on fitted models (paper §IV-A/B).
 *
 * Derives the quantities the paper uses to reason about stage
 * behavior:
 *
 *   T      — per-core I/O throughput with no contention (bytes/s);
 *   b      — BW / T, the core count at which the device saturates;
 *   lambda — t_avg / (per-task I/O time), task-to-I/O time ratio;
 *   B      — lambda * b, the core count beyond which adding cores no
 *            longer helps (the turning point of Fig. 6).
 *
 * Also provides what-if core-count sweeps used by Figs. 3/6 and the
 * cloud optimizer.
 */

#ifndef DOPPIO_MODEL_ANALYZER_H
#define DOPPIO_MODEL_ANALYZER_H

#include <string>
#include <vector>

#include "model/platform_profile.h"
#include "model/stage_model.h"

namespace doppio::model {

/** Analysis of one I/O component of a stage. */
struct OpAnalysis
{
    storage::IoOp op = storage::IoOp::HdfsRead;
    double perTaskBytes = 0.0;
    double perCoreThroughput = 0.0; //!< T (bytes/s)
    double effectiveBandwidth = 0.0; //!< BW at the observed RS (bytes/s)
    double breakPoint = 0.0;        //!< b = BW / T
    double lambda = 0.0;            //!< t_avg / per-task I/O time
    double turningPoint = 0.0;      //!< B = lambda * b
};

/** Analysis of one stage. */
struct StageAnalysis
{
    std::string name;
    std::vector<OpAnalysis> ops;

    /**
     * Smallest turning point over all components: beyond this many
     * cores per node, some I/O path is the bottleneck. Infinite when
     * the stage does no I/O.
     */
    double minTurningPoint = 0.0;
};

/**
 * Analyze @p stage against @p platform.
 * Requires the model to carry solo phase times (fitted by Profiler).
 */
StageAnalysis analyzeStage(const StageModel &stage,
                           const PlatformProfile &platform);

/** (P, predicted seconds) pairs for a core-count sweep of one stage. */
std::vector<std::pair<int, double>>
sweepStageCores(const StageModel &stage, int numNodes,
                const std::vector<int> &coreCounts,
                const PlatformProfile &platform);

/** (P, predicted seconds) pairs for a whole application. */
std::vector<std::pair<int, double>>
sweepAppCores(const AppModel &app, int numNodes,
              const std::vector<int> &coreCounts,
              const PlatformProfile &platform);

} // namespace doppio::model

#endif // DOPPIO_MODEL_ANALYZER_H
