#include "model/platform_profile.h"

#include "common/logging.h"
#include "storage/fio.h"

namespace doppio::model {

namespace {

/** Scale a bandwidth table's values by a striping factor. */
LookupTable
scaleTable(const LookupTable &table, int count)
{
    if (count == 1)
        return table;
    std::vector<std::pair<double, double>> points;
    points.reserve(table.points().size());
    for (const auto &[x, y] : table.points())
        points.emplace_back(x, y * static_cast<double>(count));
    return LookupTable(std::move(points), LookupTable::Scale::Log);
}

} // namespace

PlatformProfile
PlatformProfile::fromDisks(const storage::DiskParams &hdfsDisk,
                           const storage::DiskParams &localDisk)
{
    const storage::FioProfiler hdfs_profiler(hdfsDisk);
    const storage::FioProfiler local_profiler(localDisk);
    PlatformProfile profile;
    profile.hdfsRead = hdfs_profiler.bandwidthTable(storage::IoKind::Read);
    profile.hdfsWrite =
        hdfs_profiler.bandwidthTable(storage::IoKind::Write);
    profile.localRead =
        local_profiler.bandwidthTable(storage::IoKind::Read);
    profile.localWrite =
        local_profiler.bandwidthTable(storage::IoKind::Write);
    return profile;
}

PlatformProfile
PlatformProfile::fromDisks(const storage::DiskParams &hdfsDisk,
                           int hdfsCount,
                           const storage::DiskParams &localDisk,
                           int localCount)
{
    if (hdfsCount <= 0 || localCount <= 0)
        fatal("PlatformProfile: disk counts must be positive");
    PlatformProfile profile = fromDisks(hdfsDisk, localDisk);
    profile.hdfsRead = scaleTable(profile.hdfsRead, hdfsCount);
    profile.hdfsWrite = scaleTable(profile.hdfsWrite, hdfsCount);
    profile.localRead = scaleTable(profile.localRead, localCount);
    profile.localWrite = scaleTable(profile.localWrite, localCount);
    return profile;
}

PlatformProfile
PlatformProfile::fromNode(const cluster::NodeConfig &node)
{
    return fromDisks(node.hdfsDisk, node.hdfsDiskCount, node.localDisk,
                     node.localDiskCount);
}

BytesPerSec
PlatformProfile::bandwidthFor(storage::IoOp op, double requestSize) const
{
    switch (op) {
      case storage::IoOp::HdfsRead:
        return hdfsRead.at(requestSize);
      case storage::IoOp::HdfsWrite:
        return hdfsWrite.at(requestSize);
      case storage::IoOp::ShuffleRead:
      case storage::IoOp::PersistRead:
      case storage::IoOp::SpillRead:
        return localRead.at(requestSize);
      case storage::IoOp::ShuffleWrite:
      case storage::IoOp::PersistWrite:
      case storage::IoOp::SpillWrite:
        return localWrite.at(requestSize);
      case storage::IoOp::RawRead:
      case storage::IoOp::RawWrite:
        break;
    }
    fatal("PlatformProfile: no table for op %s", storage::ioOpName(op));
}

} // namespace doppio::model
