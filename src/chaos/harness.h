/**
 * @file
 * Chaos harness: a fixed four-job Spark rig run under a generated
 * fault schedule, plus the invariant checker that turns one (seed,
 * density) pair into a pass/fail verdict.
 *
 * The rig exercises every recovery path the simulator models: an
 * HDFS-sourced narrow job persisted MemoryAndDisk (replica failover,
 * cache loss on kill), a shuffle (fetch failures, stage reattempts,
 * map-output recomputation), a checkpointed stage (HDFS write-through)
 * and a read-back job consuming the checkpoint (lineage truncation).
 *
 * Invariants checked per schedule (DESIGN.md §13):
 *   1. completion — the run finishes without tripping the simulator's
 *      event-budget watchdog (no hung or runaway simulation);
 *   2. determinism — rerunning the same schedule under the same seed
 *      yields byte-identical metrics JSON;
 *   3. equivalence — a transient-fault run executes the same job and
 *      stage sequence as the fault-free baseline (recovery reruns are
 *      folded into their logical stage, so the shape must match);
 *   4. attribution — accounted task-seconds reconcile with cluster
 *      capacity over the run's wall-clock within 1%, and no task
 *      outlives its stage window by more than 1%.
 */

#ifndef DOPPIO_CHAOS_HARNESS_H
#define DOPPIO_CHAOS_HARNESS_H

#include <cstdint>
#include <string>

#include "chaos/schedule_generator.h"
#include "faults/fault_spec.h"
#include "spark/metrics.h"

namespace doppio::trace {
class TraceCollector;
} // namespace doppio::trace

namespace doppio::chaos {

/** Outcome of one rig execution (fault-free or under a schedule). */
struct ChaosRunResult
{
    bool completed = false;   //!< ran to completion (no FatalError)
    std::string error;        //!< FatalError message when !completed
    double elapsedSec = 0.0;  //!< simulated application seconds
    std::uint64_t firedEvents = 0; //!< simulator events consumed
    std::string json;         //!< metricsJson of the finished app
    spark::AppMetrics metrics; //!< full metrics (valid when completed)
};

/**
 * Run the rig on a fresh simulator/cluster sized from @p options.
 * @p spec may be null for the fault-free baseline. @p collector, when
 * non-null, is attached to the rig's cluster and context for the
 * duration of the run (typically record-only with a flight-recorder
 * sink — attachment never changes the simulation). Never throws:
 * failures (including the event-budget watchdog) are reported through
 * ChaosRunResult::completed / error.
 */
ChaosRunResult runChaosRig(const ChaosOptions &options,
                           const faults::FaultSpec *spec,
                           trace::TraceCollector *collector = nullptr);

/** Per-invariant verdict for one generated schedule. */
struct ChaosVerdict
{
    std::uint64_t seed = 0;
    std::size_t scheduleEvents = 0; //!< node events in the schedule
    bool completedOk = false;
    bool deterministicOk = false;
    bool equivalentOk = false;
    bool attributionOk = false;
    /** First failure description, empty when all invariants hold. */
    std::string failure;

    double baselineElapsedSec = 0.0;
    double faultyElapsedSec = 0.0;
    /** Extra wall-clock caused by the faults (>= 0 in practice). */
    double
    recoveryOverheadSec() const
    {
        return faultyElapsedSec - baselineElapsedSec;
    }

    bool
    passed() const
    {
        return completedOk && deterministicOk && equivalentOk &&
               attributionOk;
    }
};

/**
 * Generate the schedule for @p options, run baseline + faulty + rerun,
 * and evaluate all four invariants. The equivalence invariant is only
 * meaningful (and only enforced) when options.transientOnly is set.
 * When options.postmortemPath is non-empty, the faulty run flies with
 * a flight recorder attached; if any invariant trips, the recorder's
 * rings are dumped to that file (clean verdicts write nothing).
 */
ChaosVerdict checkInvariants(const ChaosOptions &options);

} // namespace doppio::chaos

#endif // DOPPIO_CHAOS_HARNESS_H
