#include "chaos/harness.h"

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"
#include "dfs/hdfs.h"
#include "faults/fault_injector.h"
#include "sim/simulator.h"
#include "spark/metrics_json.h"
#include "spark/rdd.h"
#include "spark/spark_context.h"
#include "telemetry/flight_recorder.h"
#include "trace/trace_collector.h"

namespace doppio::chaos {

namespace {

/** Input size: sized (with kCpuPerByte) so the fault-free rig spans
 *  a couple of simulated minutes — fault onsets land *inside* running
 *  stages, not after the app already finished — while one run stays
 *  milliseconds of host time. */
constexpr Bytes kInputBytes = 8ULL * kGiB;

/** Per-byte CPU cost of the narrow transforms (keeps stages long
 *  enough that kills interrupt in-flight tasks). */
constexpr double kCpuPerByte = 20.0e-9;

/** Rig executor width (per node). */
constexpr int kExecutorCores = 4;

} // namespace

ChaosRunResult
runChaosRig(const ChaosOptions &options, const faults::FaultSpec *spec,
            trace::TraceCollector *collector)
{
    ChaosRunResult result;

    sim::Simulator sim;
    sim.setEventBudget(options.eventBudget);

    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves = options.numSlaves;
    config.taskJitterSigma = 0.0;

    spark::SparkConf conf;
    conf.executorCores = kExecutorCores;
    conf.unifiedMemory = true;
    conf.speculation = true; // gray slow-nodes must be routed around
    // A schedule may stack crash rates on top of kills; the rig only
    // measures whether the run converges, not whether it gives up.
    conf.taskMaxFailures = 1000;
    conf.stageMaxAttempts = 50;

    try {
        cluster::Cluster cluster(sim, config);
        dfs::Hdfs hdfs(cluster);
        hdfs.addFile("input", kInputBytes);
        spark::SparkContext context(cluster, hdfs, conf);
        if (collector != nullptr) {
            cluster.setTraceCollector(collector);
            context.setTraceCollector(collector);
        }

        std::unique_ptr<faults::FaultInjector> injector;
        if (spec != nullptr) {
            injector = std::make_unique<faults::FaultInjector>(
                *spec, options.seed);
            context.setFaultInjector(injector.get());
            injector->arm(cluster);
        }

        // Job 1: narrow transform persisted MemoryAndDisk — source
        // replica failover plus cached-block loss on kill.
        spark::RddRef input = context.hadoopFile("input");
        spark::RddRef scored =
            spark::Rdd::narrow("scored", {input}, kInputBytes)
                ->persist(spark::StorageLevel::MemoryAndDisk);
        scored->cpuPerInputByte = kCpuPerByte;
        context.runJob("warmup", scored, spark::ActionSpec::count());

        // Job 2: shuffle — fetch failures, stage reattempts,
        // map-output recomputation.
        spark::ShuffleSpec shuffle;
        shuffle.bytes = kInputBytes;
        spark::RddRef grouped = spark::Rdd::shuffled(
            "grouped", scored, 16, kInputBytes, shuffle);
        context.runJob("agg", grouped, spark::ActionSpec::count());

        // Job 3: checkpointed narrow stage — write-through to HDFS.
        spark::RddRef state =
            spark::Rdd::narrow("state", {grouped}, kInputBytes / 4);
        state->cpuPerInputByte = kCpuPerByte;
        state->checkpoint();
        context.runJob("snapshot", state, spark::ActionSpec::count());

        // Job 4: consume the checkpoint — the chain must read it back
        // instead of recomputing the shuffle lineage.
        spark::RddRef final_ =
            spark::Rdd::narrow("final", {state}, kInputBytes / 4);
        context.runJob("readback", final_,
                       spark::ActionSpec::collect());

        // Drain stragglers: scheduled heal/rejoin events, background
        // re-replication of quarantined blocks.
        sim.run();

        result.metrics = context.metrics();
        if (injector != nullptr) {
            // Same app-level fold workloads::Workload::run performs:
            // stage counters plus the HDFS/network/page-cache tallies
            // that accrue outside any one stage.
            result.metrics.faultsPresent = true;
            for (const spark::StageMetrics *stage :
                 result.metrics.allStages())
                result.metrics.faults += stage->faults;
            result.metrics.faults.hdfsFailovers +=
                hdfs.readFailovers();
            result.metrics.faults.corruptReads += hdfs.corruptReads();
            result.metrics.faults.quarantinedBytes +=
                hdfs.quarantinedBytes();
            result.metrics.faults.partitionTimeouts +=
                static_cast<std::uint64_t>(
                    cluster.network().partitionTimeouts());
            result.metrics.faults.reReplicatedBytes +=
                hdfs.reReplicatedBytes();
            result.metrics.faults.recoverySeconds +=
                hdfs.reReplicationSeconds();
            result.metrics.faults.lostDirtyBytes +=
                cluster.lostDirtyBytes();
        }
        result.json = spark::metricsJson(result.metrics);
        result.elapsedSec = result.metrics.seconds();
        result.firedEvents = sim.firedEvents();
        result.completed = true;
    } catch (const FatalError &e) {
        result.error = e.what();
        result.firedEvents = sim.firedEvents();
    }
    return result;
}

namespace {

/** "job/stage job/stage ..." — the run's structural signature. */
std::string
shapeSignature(const spark::AppMetrics &metrics)
{
    std::ostringstream os;
    for (const spark::JobMetrics &job : metrics.jobs)
        for (const spark::StageMetrics &stage : job.stages)
            os << job.name << '/' << stage.name << ' ';
    return os.str();
}

/**
 * Work conservation: summed task-seconds (plus work the faults
 * discarded) cannot exceed cluster capacity over the run's window,
 * and no task can outlive its stage. 1% slack absorbs tick rounding.
 */
bool
checkAttribution(const spark::AppMetrics &metrics, int numSlaves,
                 int cores, std::string &failure)
{
    constexpr double kSlack = 1.01;
    double taskSeconds = 0.0;
    for (const spark::JobMetrics &job : metrics.jobs) {
        for (const spark::StageMetrics &stage : job.stages) {
            taskSeconds += stage.taskDuration.sum();
            if (stage.taskDuration.count() > 0 &&
                stage.taskDuration.max() >
                    stage.seconds() * kSlack) {
                std::ostringstream os;
                os << "stage " << job.name << '/' << stage.name
                   << ": longest task " << stage.taskDuration.max()
                   << "s exceeds stage window " << stage.seconds()
                   << "s";
                failure = os.str();
                return false;
            }
        }
    }
    const double accounted =
        taskSeconds + metrics.faults.wastedTaskSeconds;
    const double capacity =
        metrics.seconds() * numSlaves * cores * kSlack;
    if (accounted > capacity) {
        std::ostringstream os;
        os << "accounted task-seconds " << accounted
           << " exceed cluster capacity " << capacity << " over "
           << metrics.seconds() << "s";
        failure = os.str();
        return false;
    }
    return true;
}

/**
 * The invariant evaluation proper. @p collector, when non-null, rides
 * along on the faulty run only — the run whose history a postmortem
 * should explain.
 */
ChaosVerdict
evaluateInvariants(const ChaosOptions &options,
                   trace::TraceCollector *collector)
{
    ChaosVerdict verdict;
    verdict.seed = options.seed;

    const faults::FaultSpec spec = generateSchedule(options);
    verdict.scheduleEvents = spec.schedule.size();

    const ChaosRunResult baseline = runChaosRig(options, nullptr);
    if (!baseline.completed) {
        verdict.failure = "baseline run failed: " + baseline.error;
        return verdict;
    }
    verdict.baselineElapsedSec = baseline.elapsedSec;

    const ChaosRunResult faulty = runChaosRig(options, &spec, collector);
    if (!faulty.completed) {
        verdict.failure = "faulty run failed: " + faulty.error;
        return verdict;
    }
    verdict.completedOk = true;
    verdict.faultyElapsedSec = faulty.elapsedSec;

    const ChaosRunResult rerun = runChaosRig(options, &spec);
    verdict.deterministicOk =
        rerun.completed && rerun.json == faulty.json;
    if (!verdict.deterministicOk) {
        verdict.failure =
            rerun.completed
                ? "rerun under the same seed diverged from the first "
                  "run"
                : "rerun failed: " + rerun.error;
        return verdict;
    }

    if (options.transientOnly) {
        const std::string base = shapeSignature(baseline.metrics);
        const std::string fault = shapeSignature(faulty.metrics);
        verdict.equivalentOk = base == fault;
        if (!verdict.equivalentOk) {
            verdict.failure = "job/stage shape diverged from "
                              "fault-free baseline: [" +
                              fault + "] vs [" + base + "]";
            return verdict;
        }
    } else {
        verdict.equivalentOk = true; // permanent faults may reshape
    }

    verdict.attributionOk =
        checkAttribution(faulty.metrics, options.numSlaves,
                         kExecutorCores, verdict.failure);
    return verdict;
}

} // namespace

ChaosVerdict
checkInvariants(const ChaosOptions &options)
{
    if (options.postmortemPath.empty())
        return evaluateInvariants(options, nullptr);

    // Fly the faulty run with a bounded recorder behind a record-only
    // collector: the collector keeps no event vector of its own, so
    // memory stays O(categories x ring capacity) however long the rig
    // runs, and attachment cannot perturb the simulation.
    telemetry::FlightRecorder recorder;
    trace::TraceCollector collector;
    collector.setSink(&recorder);
    collector.setRecordOnly(true);

    const ChaosVerdict verdict = evaluateInvariants(options, &collector);
    if (!verdict.failure.empty()) {
        recorder.note("chaos invariant tripped (seed " +
                      std::to_string(options.seed) +
                      "): " + verdict.failure);
        recorder.dumpToFile(options.postmortemPath, verdict.failure);
    }
    return verdict;
}

} // namespace doppio::chaos
