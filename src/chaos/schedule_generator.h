/**
 * @file
 * Seeded random fault-schedule generator.
 *
 * Turns (seed, horizon, density) into a FaultSpec whose node events
 * are random but *legal*: kills never drop the cluster below two
 * alive nodes (a surviving replica must exist), at most one network
 * partition is active at a time, and in transient mode every fault
 * is paired with its cure — kills rejoin, partitions heal, degraded
 * devices / memory clamps / gray slowdowns restore — so a run under
 * the schedule must converge to the fault-free result. The same seed
 * always yields the same schedule, byte for byte, which is what makes
 * a chaos failure reproducible from its one-line report.
 */

#ifndef DOPPIO_CHAOS_SCHEDULE_GENERATOR_H
#define DOPPIO_CHAOS_SCHEDULE_GENERATOR_H

#include <cstdint>
#include <string>

#include "faults/fault_spec.h"

namespace doppio::chaos {

/** Knobs of one generated chaos schedule. */
struct ChaosOptions
{
    std::uint64_t seed = 1;      //!< schedule identity
    double horizonSec = 90.0;    //!< window fault onsets land in
    double faultsPerMinute = 1.0; //!< scheduled-event density
    int numSlaves = 4;           //!< cluster size the schedule targets
    /**
     * Pair every fault with its cure (rejoin/heal/restore) inside the
     * horizon. The invariant checker requires this: only transient
     * faults are expected to be result-equivalent to fault-free.
     */
    bool transientOnly = true;
    /** Also draw small probabilistic rates (task crashes, HDFS read
     *  errors, checksum corruption, fetch failures). */
    bool withRates = true;
    /** Watchdog: abort a run after this many simulator events. */
    std::uint64_t eventBudget = 50'000'000;
    /**
     * When non-empty, checkInvariants keeps a flight recorder on the
     * faulty run and dumps its rings to this file if any invariant
     * trips. Clean runs write nothing. Does not affect the generated
     * schedule or the simulation itself.
     */
    std::string postmortemPath;
};

/**
 * @return the schedule for @p options — deterministic in the options,
 * already validate()d.
 */
faults::FaultSpec generateSchedule(const ChaosOptions &options);

} // namespace doppio::chaos

#endif // DOPPIO_CHAOS_SCHEDULE_GENERATOR_H
