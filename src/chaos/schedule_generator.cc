#include "chaos/schedule_generator.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace doppio::chaos {

namespace {

/**
 * splitmix64 — tiny, seedable, and identical on every platform, which
 * std::uniform_real_distribution is not. Schedule identity must not
 * depend on the standard library build.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Uniform in [0, n). */
    std::size_t
    nextIndex(std::size_t n)
    {
        return static_cast<std::size_t>(next() % n);
    }

  private:
    std::uint64_t state_;
};

/** A cure scheduled for later; applied to the walk state at its time. */
struct PendingCure
{
    double atSeconds = 0.0;
    int node = -1; //!< -1 for heal
    bool revives = false;
};

} // namespace

faults::FaultSpec
generateSchedule(const ChaosOptions &options)
{
    if (options.numSlaves < 2)
        fatal("chaos: need at least 2 slaves to generate legal "
              "schedules, got %d",
              options.numSlaves);
    if (options.horizonSec <= 0.0 || options.faultsPerMinute < 0.0)
        fatal("chaos: horizon must be > 0 and density >= 0 (got "
              "horizon=%g, faults/min=%g)",
              options.horizonSec, options.faultsPerMinute);

    Rng rng(options.seed);
    faults::FaultSpec spec;

    if (options.withRates) {
        spec.taskFailureRate = rng.uniform(0.0, 0.02);
        spec.diskReadErrorRate = rng.uniform(0.0, 0.01);
        spec.hdfsCorruptRate = rng.uniform(0.0, 0.005);
        spec.shuffleFetchFailureRate = rng.uniform(0.0, 0.002);
    }

    const int count = std::max(
        1, static_cast<int>(options.horizonSec / 60.0 *
                                options.faultsPerMinute +
                            0.5));
    std::vector<double> onsets(static_cast<std::size_t>(count));
    for (double &t : onsets)
        t = rng.uniform(5.0, options.horizonSec);
    std::sort(onsets.begin(), onsets.end());

    // Walk onsets in time order, tracking which nodes are alive and
    // which are mid-fault, so every emitted event is legal where it
    // lands. Cures are emitted right after their onset, so on a time
    // tie the stable schedule sort keeps the cure first — matching
    // this walk, which applies cures at times <= the onset.
    std::vector<faults::NodeEvent> events;
    std::vector<PendingCure> pending;
    std::vector<bool> alive(static_cast<std::size_t>(options.numSlaves),
                            true);
    std::vector<bool> busy(static_cast<std::size_t>(options.numSlaves),
                           false);
    bool partitioned = false;
    int aliveCount = options.numSlaves;

    auto applyCuresUpTo = [&](double t) {
        for (std::size_t i = 0; i < pending.size();) {
            if (pending[i].atSeconds > t) {
                ++i;
                continue;
            }
            if (pending[i].node < 0) {
                partitioned = false;
            } else {
                const auto n =
                    static_cast<std::size_t>(pending[i].node);
                busy[n] = false;
                if (pending[i].revives) {
                    alive[n] = true;
                    ++aliveCount;
                }
            }
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(i));
        }
    };

    auto pickIdleAliveNode = [&]() -> int {
        std::vector<int> candidates;
        for (int n = 0; n < options.numSlaves; ++n)
            if (alive[static_cast<std::size_t>(n)] &&
                !busy[static_cast<std::size_t>(n)])
                candidates.push_back(n);
        if (candidates.empty())
            return -1;
        return candidates[rng.nextIndex(candidates.size())];
    };

    using Kind = faults::NodeEvent::Kind;
    for (const double t : onsets) {
        applyCuresUpTo(t);

        // Weighted menu of what can legally start at t. Kill and
        // SlowNode appear twice: whole-node loss and gray compute
        // degradation are the paths the recovery and speculation
        // machinery exist for, so they get the most exercise.
        std::vector<Kind> menu;
        if (aliveCount >= 3) {
            menu.push_back(Kind::Kill);
            menu.push_back(Kind::Kill);
        }
        if (!partitioned && options.numSlaves >= 2)
            menu.push_back(Kind::Partition);
        menu.push_back(Kind::Degrade);
        menu.push_back(Kind::SlowNode);
        menu.push_back(Kind::SlowNode);
        menu.push_back(Kind::DegradeMem);

        const Kind kind = menu[rng.nextIndex(menu.size())];
        const bool cure =
            options.transientOnly || rng.nextDouble() < 0.7;

        if (kind == Kind::Partition) {
            const int cut =
                1 + static_cast<int>(
                        rng.nextIndex(static_cast<std::size_t>(
                            options.numSlaves - 1)));
            faults::NodeEvent event;
            event.kind = Kind::Partition;
            event.atSeconds = t;
            for (int n = 0; n < options.numSlaves; ++n)
                (n < cut ? event.groupA : event.groupB).push_back(n);
            events.push_back(std::move(event));
            partitioned = true;
            if (cure) {
                faults::NodeEvent heal;
                heal.kind = Kind::Heal;
                heal.atSeconds = t + rng.uniform(10.0, 40.0);
                events.push_back(std::move(heal));
                pending.push_back({events.back().atSeconds, -1, false});
            }
            continue;
        }

        const int node = pickIdleAliveNode();
        if (node < 0)
            continue; // every node is already mid-fault; skip this slot

        faults::NodeEvent event;
        event.kind = kind;
        event.node = node;
        event.atSeconds = t;
        double cureAt = t;
        switch (kind) {
          case Kind::Kill:
            cureAt = t + rng.uniform(20.0, 60.0);
            --aliveCount;
            alive[static_cast<std::size_t>(node)] = false;
            break;
          case Kind::Degrade:
            event.factor = rng.uniform(2.0, 8.0);
            cureAt = t + rng.uniform(15.0, 45.0);
            break;
          case Kind::SlowNode:
            event.factor = rng.uniform(2.0, 6.0);
            cureAt = t + rng.uniform(15.0, 45.0);
            break;
          case Kind::DegradeMem:
            event.factor = rng.uniform(0.4, 0.9);
            cureAt = t + rng.uniform(15.0, 45.0);
            break;
          default:
            break;
        }
        events.push_back(event);
        if (!cure && kind == Kind::Kill) {
            // Permanent loss: the node never revives and stays busy,
            // so no later onset or rejoin can touch it.
            busy[static_cast<std::size_t>(node)] = true;
            continue;
        }
        if (!cure)
            continue;
        busy[static_cast<std::size_t>(node)] = true;

        faults::NodeEvent restore;
        restore.node = node;
        restore.atSeconds = cureAt;
        restore.kind = kind == Kind::Kill ? Kind::Rejoin : kind;
        restore.factor = 1.0;
        events.push_back(restore);
        pending.push_back({cureAt, node, kind == Kind::Kill});
    }

    spec.schedule = faults::FaultSchedule(std::move(events));
    spec.validate();
    return spec;
}

} // namespace doppio::chaos
