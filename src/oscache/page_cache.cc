#include "oscache/page_cache.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "trace/trace_collector.h"

namespace doppio::oscache {

const char *
roleName(Role role)
{
    return role == Role::Hdfs ? "hdfs" : "local";
}

void
PageCacheConfig::validate() const
{
    if (capacity == 0)
        fatal("PageCache: capacity must be positive");
    if (memoryBandwidth <= 0.0)
        fatal("PageCache: memory bandwidth must be positive");
    if (dirtyBackgroundRatio <= 0.0 || dirtyBackgroundRatio > 1.0)
        fatal("PageCache: dirty background ratio must be in (0, 1]");
    if (dirtyRatio < dirtyBackgroundRatio || dirtyRatio > 1.0)
        fatal("PageCache: dirty ratio must be in [background, 1]");
    if (flushChunk == 0)
        fatal("PageCache: flush chunk must be positive");
}

double
PageCacheStats::hitRatio() const
{
    if (readBytes == 0)
        return 0.0;
    return static_cast<double>(hitBytes) / static_cast<double>(readBytes);
}

void
PageCacheStats::reset()
{
    *this = PageCacheStats{};
}

PageCacheStats &
PageCacheStats::operator+=(const PageCacheStats &other)
{
    reads += other.reads;
    readFullHits += other.readFullHits;
    writes += other.writes;
    throttledWrites += other.throttledWrites;
    flushRequests += other.flushRequests;
    readBytes += other.readBytes;
    hitBytes += other.hitBytes;
    missBytes += other.missBytes;
    readAheadBytes += other.readAheadBytes;
    writeBytes += other.writeBytes;
    absorbedBytes += other.absorbedBytes;
    writeAroundBytes += other.writeAroundBytes;
    flushedBytes += other.flushedBytes;
    evictedBytes += other.evictedBytes;
    return *this;
}

PageCache::PageCache(sim::Simulator &simulator,
                     const PageCacheConfig &config,
                     DevicePicker hdfsPicker, DevicePicker localPicker,
                     std::string name)
    : sim_(simulator), config_(config),
      pickers_{std::move(hdfsPicker), std::move(localPicker)},
      name_(std::move(name))
{
    config_.validate();
    if (!pickers_[0] || !pickers_[1])
        fatal("PageCache %s: missing device picker", name_.c_str());
}

PageCache::StreamKey
PageCache::makeKey(Role role, std::uint64_t stream)
{
    // Top bit distinguishes the roles; streams live below it.
    return (static_cast<StreamKey>(role) << 63) |
           (stream & ~(1ULL << 63));
}

Role
PageCache::roleOf(StreamKey key)
{
    return static_cast<Role>(key >> 63);
}

storage::DiskDevice &
PageCache::device(Role role)
{
    return pickers_[static_cast<std::size_t>(role)]();
}

Tick
PageCache::memcpyTicks(Bytes bytes) const
{
    return secondsToTicks(static_cast<double>(bytes) /
                          config_.memoryBandwidth);
}

Bytes
PageCache::dirtyLimit() const
{
    return static_cast<Bytes>(static_cast<double>(config_.capacity) *
                              config_.dirtyRatio);
}

Bytes
PageCache::dirtyBackground() const
{
    return static_cast<Bytes>(static_cast<double>(config_.capacity) *
                              config_.dirtyBackgroundRatio);
}

void
PageCache::reset()
{
    if (flushing_ || !waiters_.empty())
        fatal("PageCache %s: reset with writeback in flight",
              name_.c_str());
    streams_.clear();
    lru_.clear();
    dirtyList_.clear();
    nextOffset_.clear();
    cachedBytes_ = 0;
    dirtyBytes_ = 0;
    stats_.reset();
}

void
PageCache::setTrace(trace::TraceCollector *trace, int pid, int tid)
{
    trace_ = trace;
    tracePid_ = pid;
    traceTid_ = tid;
}

void
PageCache::traceSample(bool force)
{
    // Deterministic delta threshold: the counter series stays readable
    // and bounded on big runs without changing when samples land.
    const Bytes threshold =
        std::max<Bytes>(kMiB, config_.capacity / 512);
    const auto moved = [threshold](Bytes now, Bytes last) {
        return (now > last ? now - last : last - now) >= threshold;
    };
    if (!force && !moved(dirtyBytes_, traceDirty_) &&
        !moved(cachedBytes_, traceCached_))
        return;
    trace_->counter(tracePid_, "cache", name_ + "/dirty_bytes",
                    sim_.now(), static_cast<double>(dirtyBytes_));
    trace_->counter(tracePid_, "cache", name_ + "/cached_bytes",
                    sim_.now(), static_cast<double>(cachedBytes_));
    traceDirty_ = dirtyBytes_;
    traceCached_ = cachedBytes_;
}

Bytes
PageCache::dropForFailure()
{
    const Bytes lost = dirtyBytes_;
    streams_.clear();
    lru_.clear();
    dirtyList_.clear();
    nextOffset_.clear();
    cachedBytes_ = 0;
    dirtyBytes_ = 0;
    std::deque<Waiter> parked;
    parked.swap(waiters_);
    for (Waiter &waiter : parked) {
        if (waiter.done)
            sim_.schedule(0, std::move(waiter.done));
    }
    if (trace_) {
        trace_->instant(tracePid_, traceTid_, "cache",
                        "drop_for_failure", sim_.now(),
                        trace::TraceArgs().add("lost_dirty_bytes",
                                               lost));
        traceSample(true);
    }
    return lost;
}

Bytes
PageCache::residentBytes(StreamKey key, Bytes start, Bytes end)
{
    auto stream_it = streams_.find(key);
    if (stream_it == streams_.end())
        return 0;
    ExtentMap &extents = stream_it->second;
    Bytes resident = 0;
    auto it = extents.upper_bound(start);
    if (it != extents.begin())
        --it;
    for (; it != extents.end() && it->first < end; ++it) {
        const Bytes lo = std::max(it->first, start);
        const Bytes hi = std::min(it->second.end, end);
        if (lo >= hi)
            continue;
        resident += hi - lo;
        if (!it->second.dirty) {
            // Touch: move to the MRU end of the clean list.
            lru_.splice(lru_.end(), lru_, it->second.lruIt);
        }
    }
    return resident;
}

void
PageCache::addExtent(StreamKey key, Bytes start, Bytes end, bool dirty,
                     storage::IoOp op)
{
    if (start >= end)
        return;
    Extent extent;
    extent.end = end;
    extent.dirty = dirty;
    extent.op = op;
    auto [it, inserted] = streams_[key].emplace(start, extent);
    if (!inserted)
        fatal("PageCache %s: overlapping extent insert", name_.c_str());
    if (dirty) {
        dirtyList_.emplace_back(key, start);
        it->second.dirtyIt = std::prev(dirtyList_.end());
        dirtyBytes_ += end - start;
    } else {
        lru_.emplace_back(key, start);
        it->second.lruIt = std::prev(lru_.end());
    }
    cachedBytes_ += end - start;
}

void
PageCache::dropExtent(StreamKey key, ExtentMap::iterator it)
{
    const Bytes size = it->second.end - it->first;
    if (it->second.dirty) {
        dirtyList_.erase(it->second.dirtyIt);
        dirtyBytes_ -= size;
    } else {
        lru_.erase(it->second.lruIt);
    }
    cachedBytes_ -= size;
    streams_[key].erase(it);
}

void
PageCache::removeRange(StreamKey key, Bytes start, Bytes end)
{
    auto stream_it = streams_.find(key);
    if (stream_it == streams_.end())
        return;
    ExtentMap &extents = stream_it->second;
    // Collect overlap starts first: splitting mutates the map.
    std::vector<Bytes> overlaps;
    auto it = extents.upper_bound(start);
    if (it != extents.begin())
        --it;
    for (; it != extents.end() && it->first < end; ++it) {
        if (it->second.end > start)
            overlaps.push_back(it->first);
    }
    for (Bytes at : overlaps) {
        auto node = extents.find(at);
        const Bytes a = node->first;
        const Bytes b = node->second.end;
        const bool dirty = node->second.dirty;
        const storage::IoOp op = node->second.op;
        dropExtent(key, node);
        if (a < start)
            addExtent(key, a, start, dirty, op); // left residual
        if (b > end)
            addExtent(key, end, b, dirty, op); // right residual
    }
}

Bytes
PageCache::evictClean(Bytes need)
{
    Bytes freed = 0;
    while (freed < need && !lru_.empty()) {
        const ExtentRef victim = lru_.front();
        auto it = streams_[victim.first].find(victim.second);
        if (it == streams_[victim.first].end())
            fatal("PageCache %s: stale LRU entry", name_.c_str());
        const Bytes size = it->second.end - it->first;
        dropExtent(victim.first, it);
        freed += size;
        stats_.evictedBytes += size;
    }
    return freed;
}

void
PageCache::insertRange(StreamKey key, Bytes start, Bytes end, bool dirty,
                       storage::IoOp op)
{
    if (start >= end)
        return;
    if (dirty) {
        // Writes replace whatever they overlap (the page content
        // changes; pending writeback of the old data is superseded).
        removeRange(key, start, end);
        const Bytes need = end - start;
        if (cachedBytes_ + need > config_.capacity)
            evictClean(cachedBytes_ + need - config_.capacity);
        if (cachedBytes_ + need > config_.capacity)
            fatal("PageCache %s: dirty insert exceeds capacity",
                  name_.c_str());
        addExtent(key, start, end, true, op);
        return;
    }

    // Read fill: populate only the gaps so resident dirty (or clean)
    // data is never clobbered. Truncated silently when even eviction
    // cannot make room (the remainder simply stays uncached).
    std::vector<std::pair<Bytes, Bytes>> gaps;
    Bytes cursor = start;
    auto stream_it = streams_.find(key);
    if (stream_it != streams_.end()) {
        ExtentMap &extents = stream_it->second;
        auto it = extents.upper_bound(start);
        if (it != extents.begin())
            --it;
        for (; it != extents.end() && it->first < end; ++it) {
            if (it->second.end <= cursor)
                continue;
            if (it->first > cursor)
                gaps.emplace_back(cursor, std::min(it->first, end));
            cursor = std::max(cursor, it->second.end);
            if (cursor >= end)
                break;
        }
    }
    if (cursor < end)
        gaps.emplace_back(cursor, end);

    for (const auto &[lo, hi] : gaps) {
        const Bytes need = hi - lo;
        if (cachedBytes_ + need > config_.capacity)
            evictClean(cachedBytes_ + need - config_.capacity);
        const Bytes room = config_.capacity - cachedBytes_;
        addExtent(key, lo, lo + std::min(need, room), false, op);
    }
}

void
PageCache::read(Role role, storage::IoOp op, std::uint64_t stream,
                Bytes offset, Bytes chunk, std::uint64_t count,
                std::function<void()> done)
{
    const Bytes total = chunk * count;
    if (total == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }
    const StreamKey key = makeKey(role, stream);
    ++stats_.reads;
    stats_.readBytes += total;

    const Bytes hit = residentBytes(key, offset, offset + total);
    const Bytes miss = total - hit;
    const bool sequential = [&] {
        auto it = nextOffset_.find(key);
        return it != nextOffset_.end() && it->second == offset;
    }();
    nextOffset_[key] = offset + total;

    if (miss == 0) {
        ++stats_.readFullHits;
        stats_.hitBytes += total;
        sim_.schedule(memcpyTicks(total), std::move(done));
        return;
    }
    stats_.hitBytes += hit;
    stats_.missBytes += miss;

    Bytes ahead = 0;
    if (sequential && config_.readAhead > 0) {
        ahead = config_.readAhead;
        stats_.readAheadBytes += ahead;
    }

    // Fetch the missing bytes (plus read-ahead) in chunk-sized device
    // requests, fill the cache, then charge the memory copy.
    const Bytes fetch = miss + ahead;
    const std::uint64_t requests = (fetch + chunk - 1) / chunk;
    device(role).submitBatch(
        op, chunk, requests,
        [this, key, op, offset, total, ahead,
         done = std::move(done)]() mutable {
            insertRange(key, offset, offset + total + ahead, false, op);
            if (trace_)
                traceSample(false);
            sim_.schedule(memcpyTicks(total), std::move(done));
        });
}

void
PageCache::write(Role role, storage::IoOp op, std::uint64_t stream,
                 Bytes offset, Bytes chunk, std::uint64_t count,
                 std::function<void()> done)
{
    const Bytes total = chunk * count;
    if (total == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }
    ++stats_.writes;
    stats_.writeBytes += total;

    // Regime 4 (outside CAWL's three): a single write larger than the
    // whole dirty budget can never be absorbed — stream it around the
    // cache, as Linux effectively degrades to for giant writers.
    if (total > dirtyLimit()) {
        stats_.writeAroundBytes += total;
        device(role).submitBatch(op, chunk, count, std::move(done));
        return;
    }

    const StreamKey key = makeKey(role, stream);
    if (!waiters_.empty() || dirtyBytes_ + total > dirtyLimit()) {
        // Regime 3: blocked in balance_dirty_pages until the flusher
        // drains enough. FIFO behind earlier blocked writers.
        ++stats_.throttledWrites;
        if (trace_)
            trace_->instant(tracePid_, traceTid_, "cache", "throttle",
                            sim_.now(),
                            trace::TraceArgs()
                                .add("bytes", total)
                                .add("dirty_bytes", dirtyBytes_));
        waiters_.push_back(
            Waiter{role, op, key, offset, total, std::move(done)});
        maybeFlush();
        return;
    }
    stats_.absorbedBytes += total; // accepted without ever blocking
    acceptWrite(role, op, key, offset, total, std::move(done));
}

void
PageCache::acceptWrite(Role role, storage::IoOp op, StreamKey key,
                       Bytes offset, Bytes bytes,
                       std::function<void()> done)
{
    (void)role;
    // Regimes 1 and 2: the copy into dirty pages completes at memory
    // speed whether or not background writeback is running.
    insertRange(key, offset, offset + bytes, true, op);
    if (trace_)
        traceSample(false);
    sim_.schedule(memcpyTicks(bytes), std::move(done));
    maybeFlush();
}

void
PageCache::cleanOldest(Bytes bytes)
{
    while (bytes > 0 && !dirtyList_.empty()) {
        const ExtentRef ref = dirtyList_.front();
        auto it = streams_[ref.first].find(ref.second);
        if (it == streams_[ref.first].end())
            fatal("PageCache %s: stale dirty entry", name_.c_str());
        const Bytes start = it->first;
        const Bytes end = it->second.end;
        const Bytes size = end - start;
        const storage::IoOp op = it->second.op;
        dropExtent(ref.first, it);
        if (size <= bytes) {
            addExtent(ref.first, start, end, false, op);
            bytes -= size;
        } else {
            // Partial writeback: the flushed prefix becomes clean,
            // the rest stays dirty (re-queued at the back).
            addExtent(ref.first, start, start + bytes, false, op);
            addExtent(ref.first, start + bytes, end, true, op);
            bytes = 0;
        }
    }
}

void
PageCache::maybeFlush()
{
    if (flushing_ || dirtyList_.empty())
        return;
    if (dirtyBytes_ <= dirtyBackground() && waiters_.empty())
        return;

    // Coalesce the oldest dirty run (same device set and operation)
    // into one writeback request of at most flushChunk bytes — small
    // writes leave as few large sequential ones.
    const Role role = roleOf(dirtyList_.front().first);
    storage::IoOp op = storage::IoOp::RawWrite;
    Bytes batch = 0;
    for (const ExtentRef &ref : dirtyList_) {
        auto it = streams_[ref.first].find(ref.second);
        const storage::IoOp extent_op = it->second.op;
        if (batch == 0)
            op = extent_op;
        if (roleOf(ref.first) != role || extent_op != op)
            break;
        batch += it->second.end - it->first;
        if (batch >= config_.flushChunk) {
            batch = config_.flushChunk;
            break;
        }
    }

    flushing_ = true;
    ++stats_.flushRequests;
    stats_.flushedBytes += batch;
    const Tick started = sim_.now();
    device(role).submit(op, batch, [this, batch, started]() {
        flushing_ = false;
        cleanOldest(batch);
        admitWaiters();
        if (trace_) {
            trace_->span(tracePid_, traceTid_, "cache", "writeback",
                         started, sim_.now(),
                         trace::TraceArgs().add("bytes", batch));
            traceSample(false);
        }
        maybeFlush();
    });
}

void
PageCache::admitWaiters()
{
    while (!waiters_.empty() &&
           dirtyBytes_ + waiters_.front().bytes <= dirtyLimit()) {
        Waiter waiter = std::move(waiters_.front());
        waiters_.pop_front();
        acceptWrite(waiter.role, waiter.op, waiter.key, waiter.offset,
                    waiter.bytes, std::move(waiter.done));
    }
}

} // namespace doppio::oscache
