/**
 * @file
 * OS page-cache model: a per-node write-back buffer cache sitting
 * between the Spark I/O paths and the DiskDevice instances.
 *
 * On the paper's testbed every HDFS and spark.local.dir access went
 * through the Linux buffer cache (the authors flush it between
 * profiling runs), so *effective* I/O behaviour includes warm re-read
 * hits, small-write absorption, and dirty-page throttling. This model
 * reproduces those first-order effects:
 *
 *  - a byte-granular LRU read cache of configurable capacity (the
 *    "free" memory left next to the executor heap) with sequential
 *    read-ahead;
 *  - write-back semantics: writes complete at memory speed into dirty
 *    extents; a background flusher drains dirty bytes to the backing
 *    DiskDevice in coalesced flushChunk-sized requests through the
 *    existing fluid-shared transfer path; writers block on the
 *    simulated clock once dirty bytes exceed the dirty-ratio limit —
 *    the three write regimes of CAWL (memory-speed, flusher-paced,
 *    throttled);
 *  - hit/miss/absorbed/flushed statistics for model calibration.
 *
 * Cached data is addressed as (stream, byte-offset) ranges: a stream is
 * a caller-chosen 64-bit identity for a file-like object (an HDFS
 * input, one stage's persist space, one shuffle's files). Stream 0 is
 * reserved for "anonymous" traffic, which callers route around the
 * cache (direct I/O).
 */

#ifndef DOPPIO_OSCACHE_PAGE_CACHE_H
#define DOPPIO_OSCACHE_PAGE_CACHE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/sim_time.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "storage/disk_device.h"
#include "storage/io_request.h"

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::oscache {

/** Which device set behind the node a cached range belongs to. */
enum class Role { Hdfs = 0, Local = 1 };

constexpr std::size_t kNumRoles = 2;

/** @return "hdfs" / "local". */
const char *roleName(Role role);

/** Stream id reserved for anonymous (uncacheable) traffic. */
constexpr std::uint64_t kAnonymousStream = 0;

/** Tunables of the page-cache model (vm.dirty_* analogues). */
struct PageCacheConfig
{
    /** Master switch; disabled preserves direct-to-device behaviour. */
    bool enabled = false;

    /**
     * Cache capacity in bytes. 0 means "auto": node RAM minus the
     * executor heap — the memory the OS actually has left for the
     * buffer cache on the paper's testbed (128 GB - 90 GB).
     */
    Bytes capacity = 0;

    /**
     * Memory copy bandwidth for cache hits and write absorption
     * (single-core memcpy incl. kernel/user crossing, not DRAM peak).
     */
    BytesPerSec memoryBandwidth = gibps(6.0);

    /**
     * Background writeback starts above this fraction of capacity
     * (vm.dirty_background_ratio). Below it, small writes are absorbed
     * without any device traffic.
     */
    double dirtyBackgroundRatio = 0.10;

    /**
     * Writers block once dirty bytes would exceed this fraction of
     * capacity (vm.dirty_ratio; CAWL's throttled regime).
     */
    double dirtyRatio = 0.20;

    /** Sequential read-ahead window (0 disables). */
    Bytes readAhead = 4 * kMiB;

    /**
     * Writeback request size: the flusher coalesces adjacent dirty
     * bytes into device requests up to this size — the mechanism that
     * turns many small shuffle writes into few large sequential ones.
     */
    Bytes flushChunk = kMiB;

    /** Fatal on non-sensical parameters (called by PageCache). */
    void validate() const;
};

/** Counters accumulated by one PageCache instance. */
struct PageCacheStats
{
    std::uint64_t reads = 0;        //!< read() calls
    std::uint64_t readFullHits = 0; //!< reads served entirely from memory
    std::uint64_t writes = 0;       //!< write() calls
    std::uint64_t throttledWrites = 0; //!< writes that blocked on dirty limit
    std::uint64_t flushRequests = 0;   //!< device requests issued by flusher

    Bytes readBytes = 0;      //!< logical bytes requested by reads
    Bytes hitBytes = 0;       //!< read bytes served from cache
    Bytes missBytes = 0;      //!< read bytes fetched from the device
    Bytes readAheadBytes = 0; //!< extra bytes prefetched sequentially
    Bytes writeBytes = 0;     //!< logical bytes written
    Bytes absorbedBytes = 0;  //!< write bytes accepted at memory speed
    Bytes writeAroundBytes = 0; //!< oversize writes sent straight to disk
    Bytes flushedBytes = 0;   //!< dirty bytes drained to the device
    Bytes evictedBytes = 0;   //!< clean bytes dropped by LRU eviction

    /** @return hit fraction of logical read bytes (0 when no reads). */
    double hitRatio() const;

    void reset();

    PageCacheStats &operator+=(const PageCacheStats &other);
};

/**
 * One node's page cache, fronting both of the node's device sets.
 * All methods must be called from simulation context.
 */
class PageCache
{
  public:
    /** Supplies the next backing device (the node's round-robin). */
    using DevicePicker = std::function<storage::DiskDevice &()>;

    /**
     * @param simulator   owning event loop.
     * @param config      validated tunables (capacity must be > 0 here;
     *                    "auto" is resolved by the owner).
     * @param hdfsPicker  backing devices for Role::Hdfs.
     * @param localPicker backing devices for Role::Local.
     * @param name        instance name, e.g. "node3/pagecache".
     */
    PageCache(sim::Simulator &simulator, const PageCacheConfig &config,
              DevicePicker hdfsPicker, DevicePicker localPicker,
              std::string name);

    /**
     * Read @p count chunks of @p chunk bytes at @p offset of
     * @p stream. Resident bytes are served at memory speed; missing
     * bytes (plus sequential read-ahead) are fetched from the backing
     * device in @p chunk-sized requests and inserted into the cache.
     * @p done fires after the device fetch (if any) and the memory
     * copy complete.
     */
    void read(Role role, storage::IoOp op, std::uint64_t stream,
              Bytes offset, Bytes chunk, std::uint64_t count,
              std::function<void()> done);

    /**
     * Write @p count chunks of @p chunk bytes at @p offset of
     * @p stream. Completes at memory speed into dirty extents unless
     * admission would push dirty bytes past the dirty-ratio limit, in
     * which case the writer blocks until the flusher has drained
     * enough. Writes larger than the whole dirty limit bypass the
     * cache (write-around). @p done fires when the data is accepted
     * (durable on device only after writeback).
     */
    void write(Role role, storage::IoOp op, std::uint64_t stream,
               Bytes offset, Bytes chunk, std::uint64_t count,
               std::function<void()> done);

    const PageCacheStats &stats() const { return stats_; }
    Bytes capacity() const { return config_.capacity; }
    Bytes cachedBytes() const { return cachedBytes_; }
    Bytes dirtyBytes() const { return dirtyBytes_; }

    /** Dirty-bytes level above which writers block. */
    Bytes dirtyLimit() const;

    /** Dirty-bytes level above which background writeback runs. */
    Bytes dirtyBackground() const;

    const std::string &name() const { return name_; }

    /**
     * Attach an optional trace collector (non-owning; may be null).
     * The cache then emits dirty/cached byte counters on process
     * @p pid (rate-limited by a deterministic delta threshold),
     * writeback spans and throttle instants on track (@p pid, @p tid).
     */
    void setTrace(trace::TraceCollector *trace, int pid, int tid);

    /**
     * Drop all cached contents, pending state and statistics — the
     * "echo 3 > /proc/sys/vm/drop_caches" the paper's authors run
     * between profiling runs. Must not be called while I/O through the
     * cache is in flight.
     */
    void reset();

    /**
     * Node-failure loss: discard every cached extent, including dirty
     * ones that were never written back (lost writes). Unlike
     * reset(), this is safe while I/O through the cache is in flight:
     * parked writers complete immediately (their data is lost either
     * way) and an in-flight writeback callback finds an empty dirty
     * list. Statistics survive — they feed the run's report.
     * @return the dirty bytes lost.
     */
    Bytes dropForFailure();

  private:
    /** Key of one cached stream: role in the top bit, stream below. */
    using StreamKey = std::uint64_t;

    struct Extent;
    /// Extents of one stream, keyed by start offset (non-overlapping).
    using ExtentMap = std::map<Bytes, Extent>;
    /// (stream, start-offset) reference into the extent maps.
    using ExtentRef = std::pair<StreamKey, Bytes>;

    struct Extent
    {
        Bytes end = 0;    //!< one past the last cached byte
        bool dirty = false;
        storage::IoOp op = storage::IoOp::RawWrite; //!< writeback op
        std::list<ExtentRef>::iterator lruIt;   //!< valid when clean
        std::list<ExtentRef>::iterator dirtyIt; //!< valid when dirty
    };

    /** A writer parked on the dirty limit. */
    struct Waiter
    {
        Role role;
        storage::IoOp op;
        StreamKey key;
        Bytes offset = 0;
        Bytes bytes = 0;
        std::function<void()> done;
    };

    static StreamKey makeKey(Role role, std::uint64_t stream);
    static Role roleOf(StreamKey key);

    storage::DiskDevice &device(Role role);
    Tick memcpyTicks(Bytes bytes) const;

    /** @return bytes of [start, end) resident, touching clean LRU. */
    Bytes residentBytes(StreamKey key, Bytes start, Bytes end);

    /**
     * Make [start, end) resident with the given dirtiness, splitting /
     * replacing overlapped extents and evicting clean LRU bytes as
     * needed. Clean inserts that cannot fit are silently truncated.
     */
    void insertRange(StreamKey key, Bytes start, Bytes end, bool dirty,
                     storage::IoOp op);

    /** Remove [start, end) from the cache (helper of insertRange). */
    void removeRange(StreamKey key, Bytes start, Bytes end);

    /** Insert one extent node and its LRU/dirty-list membership. */
    void addExtent(StreamKey key, Bytes start, Bytes end, bool dirty,
                   storage::IoOp op);

    /** Drop one whole clean extent (LRU victim or removeRange). */
    void dropExtent(StreamKey key, ExtentMap::iterator it);

    /** Evict clean LRU extents until @p need bytes are free (best
     *  effort). @return bytes actually freed. */
    Bytes evictClean(Bytes need);

    /** Accept an admitted write: dirty the range, charge the memcpy. */
    void acceptWrite(Role role, storage::IoOp op, StreamKey key,
                     Bytes offset, Bytes bytes,
                     std::function<void()> done);

    /** Mark the oldest @p bytes dirty bytes clean (writeback done). */
    void cleanOldest(Bytes bytes);

    /** Start a writeback request if one is due and none is in flight. */
    void maybeFlush();

    /** Admit parked writers that now fit under the dirty limit. */
    void admitWaiters();

    /**
     * Emit dirty/cached counter samples when either moved by at least
     * the delta threshold since the last sample (or on @p force).
     */
    void traceSample(bool force);

    sim::Simulator &sim_;
    PageCacheConfig config_;
    DevicePicker pickers_[kNumRoles];
    std::string name_;

    std::unordered_map<StreamKey, ExtentMap> streams_;
    /// Clean extents, least recently used first.
    std::list<ExtentRef> lru_;
    /// Dirty extents, oldest first (writeback order).
    std::list<ExtentRef> dirtyList_;
    /// Sequential-read detector: next expected offset per stream.
    std::unordered_map<StreamKey, Bytes> nextOffset_;
    std::deque<Waiter> waiters_;
    Bytes cachedBytes_ = 0;
    Bytes dirtyBytes_ = 0;
    bool flushing_ = false;
    PageCacheStats stats_;
    /// Optional telemetry hook (non-owning) and its track ids.
    trace::TraceCollector *trace_ = nullptr;
    int tracePid_ = 0;
    int traceTid_ = 0;
    /// Last counter values emitted (rate limiting, tracing only).
    Bytes traceDirty_ = 0;
    Bytes traceCached_ = 0;
};

} // namespace doppio::oscache

#endif // DOPPIO_OSCACHE_PAGE_CACHE_H
