#include "cloud/gcp_disk.h"

#include <algorithm>

#include "common/logging.h"

namespace doppio::cloud {

const char *
cloudDiskTypeName(CloudDiskType type)
{
    return type == CloudDiskType::Standard ? "pd-standard" : "pd-ssd";
}

storage::DiskParams
makeCloudDiskParams(CloudDiskType type, Bytes size)
{
    if (size == 0)
        fatal("makeCloudDiskParams: size must be positive");
    const double gb = static_cast<double>(size) / (1000.0 * 1000.0 *
                                                   1000.0);
    storage::DiskParams p;
    p.capacity = size;
    if (type == CloudDiskType::Standard) {
        p.model = "gcp-pd-standard";
        p.type = storage::DiskType::Hdd;
        p.readIops = std::min(0.75 * gb, 1500.0);
        p.writeIops = std::min(1.5 * gb, 3000.0);
        p.readBandwidth = std::min(mibps(0.12) * gb, mibps(180.0));
        p.writeBandwidth = std::min(mibps(0.12) * gb, mibps(120.0));
        // Network-attached spinning pool: several ms per request.
        p.readLatency = msToTicks(4.0);
        p.writeLatency = msToTicks(4.0);
    } else {
        p.model = "gcp-pd-ssd";
        p.type = storage::DiskType::Ssd;
        p.readIops = std::min(30.0 * gb, 25000.0);
        p.writeIops = std::min(30.0 * gb, 25000.0);
        p.readBandwidth = std::min(mibps(0.48) * gb, mibps(800.0));
        p.writeBandwidth = std::min(mibps(0.48) * gb, mibps(400.0));
        p.readLatency = msToTicks(0.8);
        p.writeLatency = msToTicks(0.8);
    }
    // Tiny disks still admit at least one request per second.
    p.readIops = std::max(p.readIops, 1.0);
    p.writeIops = std::max(p.writeIops, 1.0);
    return p;
}

} // namespace doppio::cloud
