/**
 * @file
 * Google Cloud persistent-disk model.
 *
 * In GCP, "the virtual disk bandwidth is related to its configured
 * size" (paper §VI-1, citing the GCP storage datasheet): both IOPS and
 * throughput scale linearly with provisioned capacity up to per-disk
 * caps. This is why the paper's Fig. 14 runtime falls as the local
 * disk grows from 200 GB to 2 TB and then flattens — at ~2 TB the
 * standard disk's IOPS ceiling is reached and shuffle reads stop
 * speeding up.
 *
 * Scaling constants follow the 2017-era GCP documentation:
 *   pd-standard: 0.75 read IOPS/GB (cap 1500), 1.5 write IOPS/GB
 *                (cap 3000), 0.12 MB/s/GB throughput (caps 180/120);
 *   pd-ssd:      30 IOPS/GB (cap 25000), 0.48 MB/s/GB (caps 800/400).
 */

#ifndef DOPPIO_CLOUD_GCP_DISK_H
#define DOPPIO_CLOUD_GCP_DISK_H

#include "common/units.h"
#include "storage/disk_params.h"

namespace doppio::cloud {

/** GCP persistent disk families. */
enum class CloudDiskType { Standard, Ssd };

/** @return "pd-standard" / "pd-ssd". */
const char *cloudDiskTypeName(CloudDiskType type);

/**
 * Build device parameters for a provisioned persistent disk.
 * @param type disk family.
 * @param size provisioned capacity (must be positive).
 */
storage::DiskParams makeCloudDiskParams(CloudDiskType type, Bytes size);

} // namespace doppio::cloud

#endif // DOPPIO_CLOUD_GCP_DISK_H
