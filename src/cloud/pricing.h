/**
 * @file
 * Google Cloud pricing and cluster configurations (paper §VI).
 *
 * Cost = f(CoreNum, DiskTypes, DiskSize_HDFS, DiskSize_SparkLocal,
 * Time): each worker is billed per vCPU-hour plus per-GB-month for its
 * two provisioned disks (Table V). The paper's reference
 * configurations R1 (Apache Spark hardware-provisioning guide, 1:2
 * disk:core ratio -> 8 x 1 TB) and R2 (Cloudera, 1:1 -> 16 x 1 TB) are
 * provided for the Fig. 13/15 comparisons.
 */

#ifndef DOPPIO_CLOUD_PRICING_H
#define DOPPIO_CLOUD_PRICING_H

#include <string>

#include "cloud/gcp_disk.h"
#include "common/units.h"

namespace doppio::cloud {

/** Price book (2017-era Google Cloud, Table V). */
struct GcpPricing
{
    double vcpuPerHour = 0.033174;       //!< custom machine type vCPU
    double standardGbPerMonth = 0.040;   //!< Table V row 1
    double ssdGbPerMonth = 0.170;        //!< Table V row 2
    double hoursPerMonth = 730.0;

    /** @return $/hour for one provisioned disk. */
    double diskPerHour(CloudDiskType type, Bytes size) const;
};

/** One candidate worker-fleet configuration. */
struct CloudConfig
{
    int workers = 10;
    int vcpus = 16; //!< per worker; executor cores P == vcpus
    CloudDiskType hdfsType = CloudDiskType::Standard;
    Bytes hdfsSize = 0;
    CloudDiskType localType = CloudDiskType::Standard;
    Bytes localSize = 0;

    /** @return human-readable summary. */
    std::string describe() const;
};

/** @return $/hour for the whole fleet under @p pricing. */
double fleetCostPerHour(const CloudConfig &config,
                        const GcpPricing &pricing);

/** @return dollars for running @p seconds on @p config. */
double jobCost(const CloudConfig &config, const GcpPricing &pricing,
               double seconds);

/**
 * R1 — Apache Spark hardware-provisioning recommendation: disks:cores
 * = 1:2, i.e. 8 x 1 TB standard disks per 16-vCPU worker (4 TB HDFS +
 * 4 TB local).
 */
CloudConfig referenceR1(int workers = 10);

/**
 * R2 — Cloudera Hadoop-cluster recommendation: disks:cores = 1:1,
 * i.e. 16 x 1 TB standard disks per 16-vCPU worker (8 TB + 8 TB).
 */
CloudConfig referenceR2(int workers = 10);

} // namespace doppio::cloud

#endif // DOPPIO_CLOUD_PRICING_H
