#include "cloud/advisor.h"

#include <algorithm>
#include <limits>

namespace doppio::cloud {

std::vector<Evaluation>
Advisor::evaluateAll() const
{
    const CostOptimizer::Options &options = optimizer_.options();
    std::vector<Evaluation> all;
    for (int vcpus : options.vcpuChoices) {
        for (CloudDiskType hdfs_type : options.hdfsTypes) {
            for (CloudDiskType local_type : options.localTypes) {
                for (Bytes hdfs_size : options.sizeGrid) {
                    for (Bytes local_size : options.sizeGrid) {
                        CloudConfig config;
                        config.workers = options.workers;
                        config.vcpus = vcpus;
                        config.hdfsType = hdfs_type;
                        config.hdfsSize = hdfs_size;
                        config.localType = local_type;
                        config.localSize = local_size;
                        all.push_back(optimizer_.evaluate(config));
                    }
                }
            }
        }
    }
    return all;
}

std::optional<Evaluation>
Advisor::cheapestUnderDeadline(double deadlineSeconds) const
{
    std::optional<Evaluation> best;
    for (const Evaluation &eval : evaluateAll()) {
        if (eval.seconds > deadlineSeconds)
            continue;
        if (!best || eval.cost < best->cost)
            best = eval;
    }
    return best;
}

std::optional<Evaluation>
Advisor::fastestUnderBudget(double budgetDollars) const
{
    std::optional<Evaluation> best;
    for (const Evaluation &eval : evaluateAll()) {
        if (eval.cost > budgetDollars)
            continue;
        if (!best || eval.seconds < best->seconds)
            best = eval;
    }
    return best;
}

std::vector<Evaluation>
Advisor::paretoFrontier() const
{
    std::vector<Evaluation> all = evaluateAll();
    std::sort(all.begin(), all.end(),
              [](const Evaluation &a, const Evaluation &b) {
                  if (a.seconds != b.seconds)
                      return a.seconds < b.seconds;
                  return a.cost < b.cost;
              });
    std::vector<Evaluation> frontier;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const Evaluation &eval : all) {
        if (eval.cost < best_cost) {
            frontier.push_back(eval);
            best_cost = eval.cost;
        }
    }
    return frontier;
}

} // namespace doppio::cloud
