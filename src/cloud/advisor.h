/**
 * @file
 * Constraint-based provisioning advisor on top of the cost optimizer.
 *
 * The paper's case study minimizes unconstrained cost; real
 * provisioning decisions usually carry a deadline ("the batch must
 * finish overnight") or a budget ("at most $X per genome"). The
 * advisor answers both queries over the optimizer's search space.
 */

#ifndef DOPPIO_CLOUD_ADVISOR_H
#define DOPPIO_CLOUD_ADVISOR_H

#include <optional>

#include "cloud/optimizer.h"

namespace doppio::cloud {

/** Constraint queries over the optimizer's configuration space. */
class Advisor
{
  public:
    /** Owns a copy of the optimizer (and its bandwidth-table cache). */
    explicit Advisor(CostOptimizer optimizer)
        : optimizer_(std::move(optimizer))
    {}

    /**
     * @return the cheapest configuration whose predicted runtime is
     * at most @p deadlineSeconds, or nullopt when no grid point
     * satisfies the deadline.
     */
    std::optional<Evaluation>
    cheapestUnderDeadline(double deadlineSeconds) const;

    /**
     * @return the fastest configuration whose predicted cost is at
     * most @p budgetDollars, or nullopt when no grid point fits the
     * budget.
     */
    std::optional<Evaluation>
    fastestUnderBudget(double budgetDollars) const;

    /**
     * @return every Pareto-optimal (runtime, cost) configuration,
     * sorted by runtime: no other grid point is both faster and
     * cheaper.
     */
    std::vector<Evaluation> paretoFrontier() const;

  private:
    /** Enumerate every configuration in the optimizer's space. */
    std::vector<Evaluation> evaluateAll() const;

    CostOptimizer optimizer_;
};

} // namespace doppio::cloud

#endif // DOPPIO_CLOUD_ADVISOR_H
