/**
 * @file
 * Model-driven cloud configuration optimizer (paper §VI).
 *
 * Converts configuration selection into minimizing the discrete
 * multivariate function Cost = f(P, DiskTypes, DiskSize_HDFS,
 * DiskSize_SparkLocal, Time), where Time comes from the fitted Doppio
 * model evaluated against each candidate's disk profile. Three search
 * modes share one grid:
 *
 *   - optimize(): unconstrained cheapest configuration (Fig. 13/15).
 *   - optimizeConstrained(): "cheapest under completion deadline D"
 *     and the dual "fastest under dollar budget B" (the OptEx
 *     formulation), answered by branch-and-bound over the size grid.
 *   - optimizeExhaustive(): the same constrained answer by full
 *     enumeration — the fallback and the CI-diffed reference.
 *
 * Branch-and-bound exploits monotonicity of the modeled surface along
 * the two size axes: a bigger provisioned disk is never slower (the
 * effective-bandwidth tables grow with provisioned size) and is
 * always pricier (GCP bills per GB-month, linearly). Evaluating the
 * two extreme corners of a sub-grid therefore bounds runtime below by
 * the large corner and fleet-$/hour below by the small corner, so
 * whole boxes whose bound cannot beat the incumbent are skipped. The
 * tie-break tracks the canonical enumeration index, which makes the
 * pruned argmin byte-identical to the exhaustive scan's
 * first-cheapest rule. When the surface violates monotonicity between
 * two corners (guarded within a small tolerance) the search abandons
 * pruning and falls back to the exhaustive sweep, counting the
 * fallback, instead of risking a wrong answer.
 *
 * Every evaluation funnels through an LRU memo keyed on the full
 * CloudConfig, so repeated cells across optimize(), the Fig. 13/15
 * sweeps and planning-service queries are never re-modeled.
 */

#ifndef DOPPIO_CLOUD_OPTIMIZER_H
#define DOPPIO_CLOUD_OPTIMIZER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cloud/pricing.h"
#include "common/lru_cache.h"
#include "model/stage_model.h"

namespace doppio::cloud {

/** Model evaluation of one candidate configuration. */
struct Evaluation
{
    CloudConfig config;
    double seconds = 0.0; //!< model-predicted runtime
    double cost = 0.0;    //!< dollars for the job
};

/** A provisioning constraint (OptEx-style, DESIGN.md §16). */
struct Constraint
{
    enum class Kind
    {
        MinCost,               //!< unconstrained cheapest
        CheapestUnderDeadline, //!< min $ s.t. runtime <= deadlineSec
        FastestUnderBudget,    //!< min runtime s.t. $ <= budgetUsd
    };

    Kind kind = Kind::MinCost;
    double deadlineSec = 0.0; //!< CheapestUnderDeadline only
    double budgetUsd = 0.0;   //!< FastestUnderBudget only

    static Constraint minCost();
    static Constraint cheapestUnderDeadline(double deadlineSec);
    static Constraint fastestUnderBudget(double budgetUsd);
};

/**
 * Search accounting. Cumulative on the optimizer (searchStats()) and
 * reported per call in ConstrainedResult::stats as the delta the call
 * produced. cellsEvaluated counts real model evaluations (memo
 * misses); memoHits counts cells served from the memo; cellsPruned
 * counts grid cells branch-and-bound never touched.
 */
struct SearchStats
{
    std::uint64_t cellsTotal = 0;
    std::uint64_t cellsEvaluated = 0;
    std::uint64_t memoHits = 0;
    std::uint64_t cellsPruned = 0;
    std::uint64_t exhaustiveFallbacks = 0;
};

/** Outcome of one constrained search. */
struct ConstrainedResult
{
    /** False when no grid cell satisfies the constraint. */
    bool feasible = false;
    Evaluation best; //!< valid only when feasible
    SearchStats stats;
};

/**
 * Scan @p evals in order and @return the constraint's winner, or
 * nullptr when nothing is feasible. Strict improvement keeps the
 * first-best tie-break of the canonical enumeration order; this is
 * the selection rule both the exhaustive sweep and the planning
 * service use.
 */
const Evaluation *selectBest(const std::vector<Evaluation> &evals,
                             const Constraint &constraint);

/** Searches cloud configurations using a fitted application model. */
class CostOptimizer
{
  public:
    /** Search-space definition. */
    struct Options
    {
        int workers = 10;
        /** vCPU choices per worker (paper fixes 16 for predictability,
         *  citing HCloud). */
        std::vector<int> vcpuChoices = {16};
        /** Disk families considered for HDFS. */
        std::vector<CloudDiskType> hdfsTypes = {CloudDiskType::Standard};
        /** Disk families considered for Spark local. */
        std::vector<CloudDiskType> localTypes = {
            CloudDiskType::Standard, CloudDiskType::Ssd};
        /** Candidate provisioned sizes; empty = default geometric grid
         *  100 GB .. 8 TB. */
        std::vector<Bytes> sizeGrid;
        /**
         * Worker threads for optimize()/sweep*(). Candidates are
         * evaluated independently and results committed in input
         * order, so any value returns byte-identical results; 1 (the
         * default) evaluates inline on the calling thread, 0 uses one
         * thread per hardware core.
         */
        int jobs = 1;
        /** Evaluation-memo entries kept hot (LRU); 0 disables. */
        std::size_t memoCapacity = 4096;
        /**
         * Test seam: deterministic adjustment of the modeled runtime,
         * applied before cost is derived (so cost stays price x time
         * consistent). Lets tests manufacture monotonicity violations;
         * both search modes and the memo see the same surface.
         */
        std::function<double(const CloudConfig &, double)> secondsHook;
    };

    CostOptimizer(model::AppModel appModel, GcpPricing pricing,
                  Options options);

    // Copies share nothing: the table cache and cumulative search
    // stats are duplicated, the evaluation memo starts cold (it is
    // only a cache) and the copy gets its own mutexes.
    CostOptimizer(const CostOptimizer &other);
    CostOptimizer &operator=(const CostOptimizer &other);
    CostOptimizer(CostOptimizer &&) = default;
    CostOptimizer &operator=(CostOptimizer &&) = default;
    ~CostOptimizer() = default;

    /**
     * Predict runtime and cost for one configuration, through the
     * evaluation memo. Thread-safe; a memo hit is byte-identical to a
     * fresh evaluation (the model is deterministic).
     */
    Evaluation evaluate(const CloudConfig &config) const;

    /**
     * Evaluate every configuration, fanned across Options::jobs
     * threads, results committed in input order (byte-identical for
     * any jobs value).
     */
    std::vector<Evaluation>
    evaluateAll(const std::vector<CloudConfig> &configs) const;

    /** Cheapest configuration (exhaustive reference sweep). */
    Evaluation optimize() const;

    /**
     * Constrained search by branch-and-bound with corner bounds and
     * canonical-index tie-breaks; argmin, cost and runtime are
     * byte-identical to optimizeExhaustive() on the same constraint.
     * Falls back to the exhaustive sweep (counted in
     * stats.exhaustiveFallbacks) when the size grid is not strictly
     * ascending or the surface violates monotonicity.
     */
    ConstrainedResult optimizeConstrained(const Constraint &c) const;

    /** Constrained search by full enumeration (the reference). */
    ConstrainedResult optimizeExhaustive(const Constraint &c) const;

    /**
     * Every configuration in the search space, in the canonical
     * (serial enumeration) order the exhaustive scan uses.
     */
    std::vector<CloudConfig> candidateGrid() const;

    /**
     * Budgeted evaluation hook for the planning service: evaluate
     * @p configs in order on the calling thread, asking @p keepGoing
     * before each cell, and @return the completed prefix. A caller
     * that charges each cell against a deadline budget gets a
     * partial-but-valid result set when the budget expires (the
     * returned evaluations are exact — only coverage shrinks).
     */
    std::vector<Evaluation>
    evaluatePrefix(const std::vector<CloudConfig> &configs,
                   const std::function<bool()> &keepGoing) const;

    /** Cost/runtime curve vs Spark-local size (Fig. 13b / 15). */
    std::vector<Evaluation>
    sweepLocalSize(CloudConfig base,
                   const std::vector<Bytes> &sizes) const;

    /** Cost/runtime curve vs HDFS size (Fig. 13a). */
    std::vector<Evaluation>
    sweepHdfsSize(CloudConfig base,
                  const std::vector<Bytes> &sizes) const;

    /** The default geometric size grid. */
    static std::vector<Bytes> defaultSizeGrid();

    /** Cumulative search counters since construction (or copy). */
    SearchStats searchStats() const;

    const Options &options() const { return options_; }
    const GcpPricing &pricing() const { return pricing_; }

  private:
    /**
     * Cached effective-bandwidth tables per provisioned disk.
     * Thread-safe: concurrent fills of the same key race benignly —
     * the FioProfiler sweep is deterministic, so both threads compute
     * bit-identical tables and the losing emplace is discarded
     * ("first insert wins" only picks which identical copy survives;
     * see DeterministicAcrossJobCounts in test_optimizer) — and
     * std::map nodes are stable, so the returned reference outlives
     * later inserts. The evaluation memo below relies on the same
     * determinism: a racing fill stores the same bytes.
     */
    const std::pair<LookupTable, LookupTable> &
    tablesFor(CloudDiskType type, Bytes size) const;

    model::PlatformProfile profileFor(const CloudConfig &config) const;

    /** One model evaluation, bypassing the memo. */
    Evaluation evaluateUncached(const CloudConfig &config) const;

    /** Packed numeric memo key (describe() rounds sizes; this
     *  doesn't). */
    static std::string memoKey(const CloudConfig &config);

    /** Constrained search by enumeration; no per-call stat framing. */
    ConstrainedResult runExhaustive(const Constraint &c) const;

    /**
     * Branch-and-bound body. @return false on a monotonicity
     * violation (caller falls back); on success fills @p out and
     * accounts pruned cells.
     */
    bool runBranchAndBound(const Constraint &c,
                           ConstrainedResult *out) const;

    model::AppModel app_;
    GcpPricing pricing_;
    Options options_;
    // Behind unique_ptrs so the optimizer stays movable (Advisor
    // takes one by value).
    mutable std::unique_ptr<std::mutex> tableCacheMutex_ =
        std::make_unique<std::mutex>();
    mutable std::map<std::pair<int, Bytes>,
                     std::pair<LookupTable, LookupTable>>
        tableCache_;
    mutable std::unique_ptr<std::mutex> memoMutex_ =
        std::make_unique<std::mutex>();
    /** Null when Options::memoCapacity == 0. */
    mutable std::unique_ptr<common::LruCache<std::string, Evaluation>>
        memo_;
    mutable SearchStats stats_;
};

} // namespace doppio::cloud

#endif // DOPPIO_CLOUD_OPTIMIZER_H
