/**
 * @file
 * Model-driven cloud configuration optimizer (paper §VI).
 *
 * Converts configuration selection into minimizing the discrete
 * multivariate function Cost = f(P, DiskTypes, DiskSize_HDFS,
 * DiskSize_SparkLocal, Time), where Time comes from the fitted Doppio
 * model evaluated against each candidate's disk profile. The search
 * space is small and each evaluation is a closed-form model query, so
 * we search it exhaustively over a geometric size grid (the paper uses
 * gradient descent; both find the same optimum on this convex-ish
 * surface, and the exhaustive sweep also yields the Fig. 13/15 cost
 * curves).
 */

#ifndef DOPPIO_CLOUD_OPTIMIZER_H
#define DOPPIO_CLOUD_OPTIMIZER_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "cloud/pricing.h"
#include "model/stage_model.h"

namespace doppio::cloud {

/** Model evaluation of one candidate configuration. */
struct Evaluation
{
    CloudConfig config;
    double seconds = 0.0; //!< model-predicted runtime
    double cost = 0.0;    //!< dollars for the job
};

/** Searches cloud configurations using a fitted application model. */
class CostOptimizer
{
  public:
    /** Search-space definition. */
    struct Options
    {
        int workers = 10;
        /** vCPU choices per worker (paper fixes 16 for predictability,
         *  citing HCloud). */
        std::vector<int> vcpuChoices = {16};
        /** Disk families considered for HDFS. */
        std::vector<CloudDiskType> hdfsTypes = {CloudDiskType::Standard};
        /** Disk families considered for Spark local. */
        std::vector<CloudDiskType> localTypes = {
            CloudDiskType::Standard, CloudDiskType::Ssd};
        /** Candidate provisioned sizes; empty = default geometric grid
         *  100 GB .. 8 TB. */
        std::vector<Bytes> sizeGrid;
        /**
         * Worker threads for optimize()/sweep*(). Candidates are
         * evaluated independently and results committed in input
         * order, so any value returns byte-identical results; 1 (the
         * default) evaluates inline on the calling thread, 0 uses one
         * thread per hardware core.
         */
        int jobs = 1;
    };

    CostOptimizer(model::AppModel appModel, GcpPricing pricing,
                  Options options);

    // Copies share nothing: the table cache is duplicated and the
    // copy gets its own mutex (the default ops are deleted by it).
    CostOptimizer(const CostOptimizer &other);
    CostOptimizer &operator=(const CostOptimizer &other);
    CostOptimizer(CostOptimizer &&) = default;
    CostOptimizer &operator=(CostOptimizer &&) = default;
    ~CostOptimizer() = default;

    /** Predict runtime and cost for one configuration. */
    Evaluation evaluate(const CloudConfig &config) const;

    /**
     * Evaluate every configuration, fanned across Options::jobs
     * threads, results committed in input order (byte-identical for
     * any jobs value).
     */
    std::vector<Evaluation>
    evaluateAll(const std::vector<CloudConfig> &configs) const;

    /** Exhaustive search; @return the cheapest configuration. */
    Evaluation optimize() const;

    /**
     * Every configuration in the search space, in the canonical
     * (serial enumeration) order optimize() scans them.
     */
    std::vector<CloudConfig> candidateGrid() const;

    /**
     * Budgeted evaluation hook for the planning service: evaluate
     * @p configs in order on the calling thread, asking @p keepGoing
     * before each cell, and @return the completed prefix. A caller
     * that charges each cell against a deadline budget gets a
     * partial-but-valid result set when the budget expires (the
     * returned evaluations are exact — only coverage shrinks).
     */
    std::vector<Evaluation>
    evaluatePrefix(const std::vector<CloudConfig> &configs,
                   const std::function<bool()> &keepGoing) const;

    /** Cost/runtime curve vs Spark-local size (Fig. 13b / 15). */
    std::vector<Evaluation>
    sweepLocalSize(CloudConfig base,
                   const std::vector<Bytes> &sizes) const;

    /** Cost/runtime curve vs HDFS size (Fig. 13a). */
    std::vector<Evaluation>
    sweepHdfsSize(CloudConfig base,
                  const std::vector<Bytes> &sizes) const;

    /** The default geometric size grid. */
    static std::vector<Bytes> defaultSizeGrid();

    const Options &options() const { return options_; }
    const GcpPricing &pricing() const { return pricing_; }

  private:
    /**
     * Cached effective-bandwidth tables per provisioned disk.
     * Thread-safe: concurrent fills of the same key race benignly
     * (the FioProfiler sweep is deterministic, the first insert wins)
     * and std::map nodes are stable, so the returned reference
     * outlives later inserts.
     */
    const std::pair<LookupTable, LookupTable> &
    tablesFor(CloudDiskType type, Bytes size) const;

    model::PlatformProfile profileFor(const CloudConfig &config) const;

    model::AppModel app_;
    GcpPricing pricing_;
    Options options_;
    // Behind a unique_ptr so the optimizer stays movable (Advisor
    // takes one by value).
    mutable std::unique_ptr<std::mutex> tableCacheMutex_ =
        std::make_unique<std::mutex>();
    mutable std::map<std::pair<int, Bytes>,
                     std::pair<LookupTable, LookupTable>>
        tableCache_;
};

} // namespace doppio::cloud

#endif // DOPPIO_CLOUD_OPTIMIZER_H
