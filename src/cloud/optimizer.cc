#include "cloud/optimizer.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/parallel.h"
#include "storage/fio.h"

namespace doppio::cloud {

namespace {

/**
 * Bound slack: the monotonicity tests tolerate runtime wobble up to
 * 0.1% (BiggerLocalDiskNeverSlower), so corner bounds are relaxed by
 * twice that before pruning — a box is only skipped when it loses by
 * more than any tolerated wobble could explain.
 */
constexpr double kBoundSlack = 2e-3;
/** Corner-violation threshold for the exhaustive fallback guard. */
constexpr double kMonotoneTol = 1e-3;

/** Is @p eval admissible under @p c? */
bool
feasibleUnder(const Evaluation &eval, const Constraint &c)
{
    switch (c.kind) {
    case Constraint::Kind::MinCost:
        return true;
    case Constraint::Kind::CheapestUnderDeadline:
        return eval.seconds <= c.deadlineSec;
    case Constraint::Kind::FastestUnderBudget:
        return eval.cost <= c.budgetUsd;
    }
    return false;
}

/** The quantity @p c minimizes. */
double
objectiveOf(const Evaluation &eval, const Constraint &c)
{
    return c.kind == Constraint::Kind::FastestUnderBudget ? eval.seconds
                                                          : eval.cost;
}

void
validateConstraint(const Constraint &c)
{
    if (c.kind == Constraint::Kind::CheapestUnderDeadline &&
        c.deadlineSec <= 0.0)
        fatal("Constraint: CheapestUnderDeadline needs deadlineSec > 0");
    if (c.kind == Constraint::Kind::FastestUnderBudget &&
        c.budgetUsd <= 0.0)
        fatal("Constraint: FastestUnderBudget needs budgetUsd > 0");
}

SearchStats
statsDelta(const SearchStats &now, const SearchStats &before)
{
    SearchStats d;
    d.cellsTotal = now.cellsTotal - before.cellsTotal;
    d.cellsEvaluated = now.cellsEvaluated - before.cellsEvaluated;
    d.memoHits = now.memoHits - before.memoHits;
    d.cellsPruned = now.cellsPruned - before.cellsPruned;
    d.exhaustiveFallbacks =
        now.exhaustiveFallbacks - before.exhaustiveFallbacks;
    return d;
}

} // namespace

Constraint
Constraint::minCost()
{
    return Constraint{};
}

Constraint
Constraint::cheapestUnderDeadline(double deadlineSec)
{
    Constraint c;
    c.kind = Kind::CheapestUnderDeadline;
    c.deadlineSec = deadlineSec;
    return c;
}

Constraint
Constraint::fastestUnderBudget(double budgetUsd)
{
    Constraint c;
    c.kind = Kind::FastestUnderBudget;
    c.budgetUsd = budgetUsd;
    return c;
}

const Evaluation *
selectBest(const std::vector<Evaluation> &evals,
           const Constraint &constraint)
{
    const Evaluation *best = nullptr;
    for (const Evaluation &eval : evals) {
        if (!feasibleUnder(eval, constraint))
            continue;
        if (best == nullptr ||
            objectiveOf(eval, constraint) < objectiveOf(*best, constraint))
            best = &eval;
    }
    return best;
}

CostOptimizer::CostOptimizer(model::AppModel appModel, GcpPricing pricing,
                             Options options)
    : app_(std::move(appModel)), pricing_(pricing),
      options_(std::move(options))
{
    if (options_.workers <= 0)
        fatal("CostOptimizer: workers must be positive");
    if (options_.sizeGrid.empty())
        options_.sizeGrid = defaultSizeGrid();
    if (options_.memoCapacity > 0)
        memo_ = std::make_unique<common::LruCache<std::string, Evaluation>>(
            options_.memoCapacity);
}

CostOptimizer::CostOptimizer(const CostOptimizer &other)
    : app_(other.app_), pricing_(other.pricing_),
      options_(other.options_)
{
    {
        const std::lock_guard<std::mutex> lock(*other.tableCacheMutex_);
        tableCache_ = other.tableCache_;
    }
    const std::lock_guard<std::mutex> lock(*other.memoMutex_);
    stats_ = other.stats_;
    // The memo starts cold: LruCache's index holds iterators into its
    // own list, so a memberwise copy would alias the source — and a
    // cache refills itself.
    if (options_.memoCapacity > 0)
        memo_ = std::make_unique<common::LruCache<std::string, Evaluation>>(
            options_.memoCapacity);
}

CostOptimizer &
CostOptimizer::operator=(const CostOptimizer &other)
{
    if (this == &other)
        return *this;
    app_ = other.app_;
    pricing_ = other.pricing_;
    options_ = other.options_;
    {
        const std::lock_guard<std::mutex> lock(*other.tableCacheMutex_);
        tableCache_ = other.tableCache_;
    }
    const std::lock_guard<std::mutex> lock(*other.memoMutex_);
    stats_ = other.stats_;
    memo_.reset();
    if (options_.memoCapacity > 0)
        memo_ = std::make_unique<common::LruCache<std::string, Evaluation>>(
            options_.memoCapacity);
    return *this;
}

std::vector<Bytes>
CostOptimizer::defaultSizeGrid()
{
    // Half-octave geometric grid, 100 GB .. 8 TB (decimal GB as GCP
    // provisions) — fine enough to land within ~25% of the continuous
    // optimum.
    std::vector<Bytes> grid;
    for (double gb = 100.0; gb <= 8200.0; gb *= 2.0) {
        grid.push_back(static_cast<Bytes>(gb * 1e9));
        const double mid = gb * 1.5;
        if (mid <= 8200.0)
            grid.push_back(static_cast<Bytes>(mid * 1e9));
    }
    return grid;
}

const std::pair<LookupTable, LookupTable> &
CostOptimizer::tablesFor(CloudDiskType type, Bytes size) const
{
    const auto key = std::make_pair(static_cast<int>(type), size);
    {
        const std::lock_guard<std::mutex> lock(*tableCacheMutex_);
        const auto it = tableCache_.find(key);
        if (it != tableCache_.end())
            return it->second;
    }
    // Fill outside the lock: the fio sweep is the expensive part and
    // is deterministic, so two threads racing on the same key compute
    // identical tables and the losing emplace is a no-op.
    const storage::FioProfiler profiler(makeCloudDiskParams(type, size));
    auto tables = std::make_pair(
        profiler.bandwidthTable(storage::IoKind::Read),
        profiler.bandwidthTable(storage::IoKind::Write));
    const std::lock_guard<std::mutex> lock(*tableCacheMutex_);
    return tableCache_.emplace(key, std::move(tables)).first->second;
}

model::PlatformProfile
CostOptimizer::profileFor(const CloudConfig &config) const
{
    const auto &hdfs = tablesFor(config.hdfsType, config.hdfsSize);
    const auto &local = tablesFor(config.localType, config.localSize);
    model::PlatformProfile profile;
    profile.hdfsRead = hdfs.first;
    profile.hdfsWrite = hdfs.second;
    profile.localRead = local.first;
    profile.localWrite = local.second;
    return profile;
}

std::string
CostOptimizer::memoKey(const CloudConfig &config)
{
    std::string key;
    key.reserve(48);
    key += std::to_string(config.workers);
    key += '|';
    key += std::to_string(config.vcpus);
    key += '|';
    key += std::to_string(static_cast<int>(config.hdfsType));
    key += '|';
    key += std::to_string(config.hdfsSize);
    key += '|';
    key += std::to_string(static_cast<int>(config.localType));
    key += '|';
    key += std::to_string(config.localSize);
    return key;
}

Evaluation
CostOptimizer::evaluateUncached(const CloudConfig &config) const
{
    Evaluation eval;
    eval.config = config;
    eval.seconds = app_.predictSeconds(config.workers, config.vcpus,
                                       profileFor(config));
    if (options_.secondsHook)
        eval.seconds = options_.secondsHook(config, eval.seconds);
    eval.cost = jobCost(config, pricing_, eval.seconds);
    return eval;
}

Evaluation
CostOptimizer::evaluate(const CloudConfig &config) const
{
    if (memo_ == nullptr) {
        const Evaluation eval = evaluateUncached(config);
        const std::lock_guard<std::mutex> lock(*memoMutex_);
        ++stats_.cellsEvaluated;
        return eval;
    }
    const std::string key = memoKey(config);
    {
        const std::lock_guard<std::mutex> lock(*memoMutex_);
        if (const Evaluation *hit = memo_->get(key)) {
            ++stats_.memoHits;
            return *hit;
        }
    }
    // Model outside the lock; a concurrent miss on the same key
    // computes the identical value and the second put overwrites it
    // with the same bytes.
    const Evaluation eval = evaluateUncached(config);
    const std::lock_guard<std::mutex> lock(*memoMutex_);
    ++stats_.cellsEvaluated;
    memo_->put(key, eval);
    return eval;
}

std::vector<Evaluation>
CostOptimizer::evaluateAll(const std::vector<CloudConfig> &configs) const
{
    const common::SweepRunner runner(options_.jobs);
    return runner.map(configs.size(), [&](std::size_t i) {
        return evaluate(configs[i]);
    });
}

std::vector<CloudConfig>
CostOptimizer::candidateGrid() const
{
    std::vector<CloudConfig> candidates;
    for (int vcpus : options_.vcpuChoices) {
        for (CloudDiskType hdfs_type : options_.hdfsTypes) {
            for (CloudDiskType local_type : options_.localTypes) {
                for (Bytes hdfs_size : options_.sizeGrid) {
                    for (Bytes local_size : options_.sizeGrid) {
                        CloudConfig config;
                        config.workers = options_.workers;
                        config.vcpus = vcpus;
                        config.hdfsType = hdfs_type;
                        config.hdfsSize = hdfs_size;
                        config.localType = local_type;
                        config.localSize = local_size;
                        candidates.push_back(config);
                    }
                }
            }
        }
    }
    return candidates;
}

std::vector<Evaluation>
CostOptimizer::evaluatePrefix(
    const std::vector<CloudConfig> &configs,
    const std::function<bool()> &keepGoing) const
{
    std::vector<Evaluation> completed;
    completed.reserve(configs.size());
    for (const CloudConfig &config : configs) {
        if (keepGoing && !keepGoing())
            break;
        completed.push_back(evaluate(config));
    }
    return completed;
}

Evaluation
CostOptimizer::optimize() const
{
    // Enumerate the grid in the canonical (serial) order, fan the
    // independent evaluations out, then pick the winner by scanning
    // the committed results in that same order — strict less-than
    // keeps the first-cheapest tie-breaking identical to the serial
    // nested loops for any thread count.
    const ConstrainedResult result = runExhaustive(Constraint::minCost());
    if (!result.feasible) {
        Evaluation none;
        none.cost = std::numeric_limits<double>::infinity();
        return none;
    }
    return result.best;
}

ConstrainedResult
CostOptimizer::runExhaustive(const Constraint &c) const
{
    const std::vector<CloudConfig> grid = candidateGrid();
    const std::vector<Evaluation> evals = evaluateAll(grid);
    ConstrainedResult result;
    if (const Evaluation *best = selectBest(evals, c)) {
        result.feasible = true;
        result.best = *best;
    }
    const std::lock_guard<std::mutex> lock(*memoMutex_);
    stats_.cellsTotal += grid.size();
    return result;
}

ConstrainedResult
CostOptimizer::optimizeExhaustive(const Constraint &c) const
{
    validateConstraint(c);
    const SearchStats before = searchStats();
    ConstrainedResult result = runExhaustive(c);
    result.stats = statsDelta(searchStats(), before);
    return result;
}

ConstrainedResult
CostOptimizer::optimizeConstrained(const Constraint &c) const
{
    validateConstraint(c);
    const SearchStats before = searchStats();

    // Pruning needs the size axes ordered; an unsorted or duplicated
    // grid gets the (always correct) exhaustive answer instead.
    bool sortedGrid = true;
    for (std::size_t i = 1; i < options_.sizeGrid.size(); ++i)
        sortedGrid =
            sortedGrid && options_.sizeGrid[i - 1] < options_.sizeGrid[i];

    ConstrainedResult result;
    bool pruned = false;
    if (sortedGrid)
        pruned = runBranchAndBound(c, &result);
    if (!pruned) {
        {
            const std::lock_guard<std::mutex> lock(*memoMutex_);
            ++stats_.exhaustiveFallbacks;
        }
        result = runExhaustive(c);
    }
    result.stats = statsDelta(searchStats(), before);
    return result;
}

bool
CostOptimizer::runBranchAndBound(const Constraint &c,
                                 ConstrainedResult *out) const
{
    const std::vector<Bytes> &sizes = options_.sizeGrid;
    const std::size_t G = sizes.size();
    const std::size_t V = options_.vcpuChoices.size();
    const std::size_t H = options_.hdfsTypes.size();
    const std::size_t L = options_.localTypes.size();
    const std::size_t total = V * H * L * G * G;
    if (total == 0) {
        const std::lock_guard<std::mutex> lock(*memoMutex_);
        stats_.cellsTotal += total;
        return true;
    }

    const auto makeConfig = [&](std::size_t combo, std::size_t h,
                                std::size_t l) {
        CloudConfig config;
        config.workers = options_.workers;
        config.vcpus = options_.vcpuChoices[combo / (H * L)];
        config.hdfsType = options_.hdfsTypes[(combo / L) % H];
        config.localType = options_.localTypes[combo % L];
        config.hdfsSize = sizes[h];
        config.localSize = sizes[l];
        return config;
    };
    const auto canonIdx = [&](std::size_t combo, std::size_t h,
                              std::size_t l) -> std::uint64_t {
        return (static_cast<std::uint64_t>(combo) * G + h) * G + l;
    };

    // Incumbent ordered by (objective, canonical index): identical to
    // the exhaustive scan's first-best-strictly-better rule.
    bool haveBest = false;
    Evaluation best;
    double bestValue = 0.0;
    std::uint64_t bestIdx = 0;
    std::vector<char> seen(total, 0);
    std::uint64_t touched = 0;

    const auto evalCell = [&](std::size_t combo, std::size_t h,
                              std::size_t l) {
        const std::uint64_t idx = canonIdx(combo, h, l);
        if (!seen[idx]) {
            seen[idx] = 1;
            ++touched;
        }
        const Evaluation eval = evaluate(makeConfig(combo, h, l));
        if (feasibleUnder(eval, c)) {
            const double value = objectiveOf(eval, c);
            if (!haveBest || value < bestValue ||
                (value == bestValue && idx < bestIdx)) {
                haveBest = true;
                best = eval;
                bestValue = value;
                bestIdx = idx;
            }
        }
        return eval;
    };

    /** A sub-grid [h0,h1] x [l0,l1] (inclusive) of one combo. */
    struct Box
    {
        std::size_t combo = 0;
        std::size_t h0 = 0, h1 = 0, l0 = 0, l1 = 0;
        double bound = 0.0;      //!< lower bound on the objective
        std::uint64_t origin = 0; //!< canonical index of (h0, l0)
    };
    const auto boxAfter = [](const Box &a, const Box &b) {
        if (a.bound != b.bound)
            return a.bound > b.bound;
        return a.origin > b.origin;
    };
    std::priority_queue<Box, std::vector<Box>, decltype(boxAfter)> open(
        boxAfter);

    bool monotoneViolated = false;
    // Evaluate a box's extreme corners, bound it, and push it unless
    // the bound already proves it infeasible (a prune). Returns false
    // on a monotonicity violation between the corners.
    const auto pushBox = [&](std::size_t combo, std::size_t h0,
                             std::size_t h1, std::size_t l0,
                             std::size_t l1) -> bool {
        const Evaluation lo = evalCell(combo, h0, l0); // smallest disks
        const Evaluation hi = evalCell(combo, h1, l1); // largest disks
        if (hi.seconds > lo.seconds * (1.0 + kMonotoneTol)) {
            monotoneViolated = true;
            return false;
        }
        const double secondsLb = hi.seconds * (1.0 - kBoundSlack);
        const double costLb =
            fleetCostPerHour(lo.config, pricing_) * secondsLb / 3600.0;
        if (c.kind == Constraint::Kind::CheapestUnderDeadline &&
            secondsLb > c.deadlineSec)
            return true; // every cell too slow: prune the whole box
        if (c.kind == Constraint::Kind::FastestUnderBudget &&
            costLb > c.budgetUsd)
            return true; // every cell too dear: prune the whole box
        // Corners cover a 1- or 2-cell box completely.
        if ((h1 - h0 + 1) * (l1 - l0 + 1) <= 2)
            return true;
        Box box;
        box.combo = combo;
        box.h0 = h0;
        box.h1 = h1;
        box.l0 = l0;
        box.l1 = l1;
        box.bound = c.kind == Constraint::Kind::FastestUnderBudget
                        ? secondsLb
                        : costLb;
        box.origin = canonIdx(combo, h0, l0);
        open.push(box);
        return true;
    };

    for (std::size_t combo = 0; combo < V * H * L; ++combo) {
        if (!pushBox(combo, 0, G - 1, 0, G - 1))
            return false;
    }
    while (!open.empty()) {
        const Box box = open.top();
        open.pop();
        // Strictly-worse only: a box whose bound ties the incumbent
        // may still hold the canonical-earlier argmin.
        if (haveBest && box.bound > bestValue)
            continue;
        const std::size_t hs = box.h1 - box.h0;
        const std::size_t ls = box.l1 - box.l0;
        bool ok;
        if (hs >= ls && hs > 0) {
            const std::size_t mid = box.h0 + hs / 2;
            ok = pushBox(box.combo, box.h0, mid, box.l0, box.l1) &&
                 pushBox(box.combo, mid + 1, box.h1, box.l0, box.l1);
        } else {
            const std::size_t mid = box.l0 + ls / 2;
            ok = pushBox(box.combo, box.h0, box.h1, box.l0, mid) &&
                 pushBox(box.combo, box.h0, box.h1, mid + 1, box.l1);
        }
        if (!ok)
            return false;
    }
    if (monotoneViolated)
        return false;

    out->feasible = haveBest;
    if (haveBest)
        out->best = best;
    const std::lock_guard<std::mutex> lock(*memoMutex_);
    stats_.cellsTotal += total;
    stats_.cellsPruned += total - touched;
    return true;
}

SearchStats
CostOptimizer::searchStats() const
{
    const std::lock_guard<std::mutex> lock(*memoMutex_);
    return stats_;
}

std::vector<Evaluation>
CostOptimizer::sweepLocalSize(CloudConfig base,
                              const std::vector<Bytes> &sizes) const
{
    std::vector<CloudConfig> configs(sizes.size(), base);
    for (std::size_t i = 0; i < sizes.size(); ++i)
        configs[i].localSize = sizes[i];
    return evaluateAll(configs);
}

std::vector<Evaluation>
CostOptimizer::sweepHdfsSize(CloudConfig base,
                             const std::vector<Bytes> &sizes) const
{
    std::vector<CloudConfig> configs(sizes.size(), base);
    for (std::size_t i = 0; i < sizes.size(); ++i)
        configs[i].hdfsSize = sizes[i];
    return evaluateAll(configs);
}

} // namespace doppio::cloud
