#include "cloud/optimizer.h"

#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "storage/fio.h"

namespace doppio::cloud {

CostOptimizer::CostOptimizer(model::AppModel appModel, GcpPricing pricing,
                             Options options)
    : app_(std::move(appModel)), pricing_(pricing),
      options_(std::move(options))
{
    if (options_.workers <= 0)
        fatal("CostOptimizer: workers must be positive");
    if (options_.sizeGrid.empty())
        options_.sizeGrid = defaultSizeGrid();
}

CostOptimizer::CostOptimizer(const CostOptimizer &other)
    : app_(other.app_), pricing_(other.pricing_),
      options_(other.options_)
{
    const std::lock_guard<std::mutex> lock(*other.tableCacheMutex_);
    tableCache_ = other.tableCache_;
}

CostOptimizer &
CostOptimizer::operator=(const CostOptimizer &other)
{
    if (this == &other)
        return *this;
    app_ = other.app_;
    pricing_ = other.pricing_;
    options_ = other.options_;
    const std::lock_guard<std::mutex> lock(*other.tableCacheMutex_);
    tableCache_ = other.tableCache_;
    return *this;
}

std::vector<Bytes>
CostOptimizer::defaultSizeGrid()
{
    // Half-octave geometric grid, 100 GB .. 8 TB (decimal GB as GCP
    // provisions) — fine enough to land within ~25% of the continuous
    // optimum.
    std::vector<Bytes> grid;
    for (double gb = 100.0; gb <= 8200.0; gb *= 2.0) {
        grid.push_back(static_cast<Bytes>(gb * 1e9));
        const double mid = gb * 1.5;
        if (mid <= 8200.0)
            grid.push_back(static_cast<Bytes>(mid * 1e9));
    }
    return grid;
}

const std::pair<LookupTable, LookupTable> &
CostOptimizer::tablesFor(CloudDiskType type, Bytes size) const
{
    const auto key = std::make_pair(static_cast<int>(type), size);
    {
        const std::lock_guard<std::mutex> lock(*tableCacheMutex_);
        const auto it = tableCache_.find(key);
        if (it != tableCache_.end())
            return it->second;
    }
    // Fill outside the lock: the fio sweep is the expensive part and
    // is deterministic, so two threads racing on the same key compute
    // identical tables and the losing emplace is a no-op.
    const storage::FioProfiler profiler(makeCloudDiskParams(type, size));
    auto tables = std::make_pair(
        profiler.bandwidthTable(storage::IoKind::Read),
        profiler.bandwidthTable(storage::IoKind::Write));
    const std::lock_guard<std::mutex> lock(*tableCacheMutex_);
    return tableCache_.emplace(key, std::move(tables)).first->second;
}

model::PlatformProfile
CostOptimizer::profileFor(const CloudConfig &config) const
{
    const auto &hdfs = tablesFor(config.hdfsType, config.hdfsSize);
    const auto &local = tablesFor(config.localType, config.localSize);
    model::PlatformProfile profile;
    profile.hdfsRead = hdfs.first;
    profile.hdfsWrite = hdfs.second;
    profile.localRead = local.first;
    profile.localWrite = local.second;
    return profile;
}

Evaluation
CostOptimizer::evaluate(const CloudConfig &config) const
{
    Evaluation eval;
    eval.config = config;
    eval.seconds = app_.predictSeconds(config.workers, config.vcpus,
                                       profileFor(config));
    eval.cost = jobCost(config, pricing_, eval.seconds);
    return eval;
}

std::vector<Evaluation>
CostOptimizer::evaluateAll(const std::vector<CloudConfig> &configs) const
{
    const common::SweepRunner runner(options_.jobs);
    return runner.map(configs.size(), [&](std::size_t i) {
        return evaluate(configs[i]);
    });
}

std::vector<CloudConfig>
CostOptimizer::candidateGrid() const
{
    std::vector<CloudConfig> candidates;
    for (int vcpus : options_.vcpuChoices) {
        for (CloudDiskType hdfs_type : options_.hdfsTypes) {
            for (CloudDiskType local_type : options_.localTypes) {
                for (Bytes hdfs_size : options_.sizeGrid) {
                    for (Bytes local_size : options_.sizeGrid) {
                        CloudConfig config;
                        config.workers = options_.workers;
                        config.vcpus = vcpus;
                        config.hdfsType = hdfs_type;
                        config.hdfsSize = hdfs_size;
                        config.localType = local_type;
                        config.localSize = local_size;
                        candidates.push_back(config);
                    }
                }
            }
        }
    }
    return candidates;
}

std::vector<Evaluation>
CostOptimizer::evaluatePrefix(
    const std::vector<CloudConfig> &configs,
    const std::function<bool()> &keepGoing) const
{
    std::vector<Evaluation> completed;
    completed.reserve(configs.size());
    for (const CloudConfig &config : configs) {
        if (keepGoing && !keepGoing())
            break;
        completed.push_back(evaluate(config));
    }
    return completed;
}

Evaluation
CostOptimizer::optimize() const
{
    // Enumerate the grid in the canonical (serial) order, fan the
    // independent evaluations out, then pick the winner by scanning
    // the committed results in that same order — strict less-than
    // keeps the first-cheapest tie-breaking identical to the serial
    // nested loops for any thread count.
    Evaluation best;
    best.cost = std::numeric_limits<double>::infinity();
    for (const Evaluation &eval : evaluateAll(candidateGrid())) {
        if (eval.cost < best.cost)
            best = eval;
    }
    return best;
}

std::vector<Evaluation>
CostOptimizer::sweepLocalSize(CloudConfig base,
                              const std::vector<Bytes> &sizes) const
{
    std::vector<CloudConfig> configs(sizes.size(), base);
    for (std::size_t i = 0; i < sizes.size(); ++i)
        configs[i].localSize = sizes[i];
    return evaluateAll(configs);
}

std::vector<Evaluation>
CostOptimizer::sweepHdfsSize(CloudConfig base,
                             const std::vector<Bytes> &sizes) const
{
    std::vector<CloudConfig> configs(sizes.size(), base);
    for (std::size_t i = 0; i < sizes.size(); ++i)
        configs[i].hdfsSize = sizes[i];
    return evaluateAll(configs);
}

} // namespace doppio::cloud
