#include "cloud/pricing.h"

#include <cstdio>

#include "common/logging.h"

namespace doppio::cloud {

double
GcpPricing::diskPerHour(CloudDiskType type, Bytes size) const
{
    const double gb = static_cast<double>(size) / (1000.0 * 1000.0 *
                                                   1000.0);
    const double per_month = type == CloudDiskType::Standard
                                 ? standardGbPerMonth
                                 : ssdGbPerMonth;
    return gb * per_month / hoursPerMonth;
}

std::string
CloudConfig::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%d workers x %d vCPU, HDFS=%s %.0fGB, Local=%s %.0fGB",
                  workers, vcpus, cloudDiskTypeName(hdfsType),
                  static_cast<double>(hdfsSize) / 1e9,
                  cloudDiskTypeName(localType),
                  static_cast<double>(localSize) / 1e9);
    return buf;
}

double
fleetCostPerHour(const CloudConfig &config, const GcpPricing &pricing)
{
    if (config.workers <= 0 || config.vcpus <= 0)
        fatal("fleetCostPerHour: workers and vcpus must be positive");
    const double per_worker =
        config.vcpus * pricing.vcpuPerHour +
        pricing.diskPerHour(config.hdfsType, config.hdfsSize) +
        pricing.diskPerHour(config.localType, config.localSize);
    return config.workers * per_worker;
}

double
jobCost(const CloudConfig &config, const GcpPricing &pricing,
        double seconds)
{
    return fleetCostPerHour(config, pricing) * seconds / 3600.0;
}

CloudConfig
referenceR1(int workers)
{
    CloudConfig config;
    config.workers = workers;
    config.vcpus = 16;
    config.hdfsType = CloudDiskType::Standard;
    config.localType = CloudDiskType::Standard;
    // 8 x 1 TB per worker, split between HDFS and Spark local.
    config.hdfsSize = 4000ULL * 1000 * 1000 * 1000;
    config.localSize = 4000ULL * 1000 * 1000 * 1000;
    return config;
}

CloudConfig
referenceR2(int workers)
{
    CloudConfig config = referenceR1(workers);
    // 16 x 1 TB per worker.
    config.hdfsSize = 8000ULL * 1000 * 1000 * 1000;
    config.localSize = 8000ULL * 1000 * 1000 * 1000;
    return config;
}

} // namespace doppio::cloud
