/**
 * @file
 * Logistic Regression from Spark MLlib via SparkBench (paper §V-B1).
 *
 * Two phases: dataValidator (parse the input and persist parsedData)
 * and 50 gradient-descent iterations over parsedData. The small
 * dataset (1,200M examples, parsedData 280 GB) fits in cluster storage
 * memory, so iterations are pure compute and only dataValidator is
 * disk-sensitive; the large dataset (4,000M examples, parsedData
 * 990 GB) spills to Spark local, so every iteration re-reads it from
 * disk at disk-store granularity — the paper's 7x HDD/SSD iteration
 * gap (Fig. 8b).
 */

#ifndef DOPPIO_WORKLOADS_LOGISTIC_REGRESSION_H
#define DOPPIO_WORKLOADS_LOGISTIC_REGRESSION_H

#include "workloads/workload.h"

namespace doppio::workloads {

/** SparkBench Logistic Regression. */
class LogisticRegression : public Workload
{
  public:
    /** Dataset parameters. */
    struct Options
    {
        double examplesMillions = 1200.0; //!< 1200 small / 4000 large
        int iterations = 50;

        /** @return serialized parsedData size (280 GB / ~990 GB). */
        Bytes parsedBytes() const;
        /** @return raw input text size on HDFS. */
        Bytes inputBytes() const;

        static Options small() { return Options{1200.0, 50}; }
        static Options large() { return Options{4000.0, 50}; }
    };

    LogisticRegression() = default;
    explicit LogisticRegression(Options options) : options_(options) {}

    std::string name() const override { return "LogisticRegression"; }
    const Options &options() const { return options_; }

    static constexpr const char *kStageValidator = "dataValidator";
    static constexpr const char *kStageIteration = "iteration";

    TenantProgram program(const std::string &prefix) const override;

  private:
    Options options_;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_LOGISTIC_REGRESSION_H
