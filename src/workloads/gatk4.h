/**
 * @file
 * GATK4 germline pipeline (paper §II-B, Fig. 1, Table IV).
 *
 * Three paper-visible stages over a whole human genome:
 *
 *   MD — map side of the groupByKey: read the BAM from HDFS (122 GB,
 *        973 x 128 MB tasks), key/sort reads, write 334 GB of shuffle
 *        data in ~350 MB sorted spills. GC-heavy (§V-A1).
 *   BR — shuffle-read the 334 GB (12k reducers x 27 MB at ~30 KB
 *        requests), mark duplicates, build the recalibration model
 *        (lambda ~ 20); plus a side group re-reading the BAM for
 *        nonPrimaryReads (lambda ~ 1.3).
 *   SF — recompute markedReads (not cacheable: 870 GB in-memory) by
 *        re-reading the same shuffle, update qualities, write the
 *        166 GB output BAM to HDFS.
 *
 * Dataset sizes are the paper's; compute densities are calibrated so
 * the simulated per-core throughputs match the paper's reported
 * values (T_shuffle ~ 60 MB/s on SSD, T_hdfs ~ 30 MB/s, lambda_BR ~ 20)
 * and are documented at each constant.
 */

#ifndef DOPPIO_WORKLOADS_GATK4_H
#define DOPPIO_WORKLOADS_GATK4_H

#include "workloads/workload.h"

namespace doppio::workloads {

/** The Spark-based Genome Analysis ToolKit pipeline. */
class Gatk4 : public Workload
{
  public:
    /** Dataset / tuning parameters. */
    struct Options
    {
        /** Input scale; 500 == the paper's HCC1954 whole genome. */
        double readPairsMillions = 500.0;
        /** Shuffle data read by each reducer (paper: 27 MB). */
        Bytes reducerBytes = 27 * kMiB;

        /** @return input BAM size (122 GB at 500M read pairs). */
        Bytes inputBytes() const;
        /** @return shuffle data size (334 GB at 500M read pairs). */
        Bytes shuffleBytes() const;
        /** @return output BAM size (166 GB at 500M read pairs). */
        Bytes outputBytes() const;
        /** @return reducer count R = shuffle / reducerBytes. */
        int numReducers() const;

        /**
         * Scale-faithful reduction: shrinks the genome AND the
         * per-reducer bytes together so the task counts (M, R) and
         * the ~30 KB shuffle-read request signature stay exactly as
         * at full scale — required when checking the paper's shapes
         * on reduced inputs.
         */
        static Options scaled(double readPairsMillions);
    };

    Gatk4() = default;
    explicit Gatk4(Options options) : options_(options) {}

    std::string name() const override { return "GATK4"; }
    const Options &options() const { return options_; }

    /**
     * Genome coverage varies wildly across regions, so GATK4 task
     * times are far more dispersed than the synthetic benchmarks'.
     */
    double taskTimeVariability() const override { return 0.30; }

    /** Stage-name prefixes of the three paper-visible stages. */
    static constexpr const char *kStageMd = "MD";
    static constexpr const char *kStageBr = "BR";
    static constexpr const char *kStageSf = "SF";

    TenantProgram program(const std::string &prefix) const override;

  private:
    Options options_;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_GATK4_H
