/**
 * @file
 * Support Vector Machine via SparkBench (paper §V-B2).
 *
 * Three phases: dataValidator (parse, cache 82 GB in memory),
 * 10 compute-only iterations over the cached RDD, and a subtract phase
 * that shuffles 170 GB through Spark local — the disk-sensitive part
 * (paper: 6.2x HDD/SSD gap on subtract, Fig. 9).
 */

#ifndef DOPPIO_WORKLOADS_SVM_H
#define DOPPIO_WORKLOADS_SVM_H

#include "workloads/workload.h"

namespace doppio::workloads {

/** SparkBench SVM. */
class Svm : public Workload
{
  public:
    /** Dataset parameters (paper: 12M samples, 1000 features,
     *  1200 partitions). */
    struct Options
    {
        int partitions = 1200;
        int iterations = 10;
        Bytes cachedBytes = gib(82);
        Bytes shuffleBytes = gib(170);
    };

    Svm() = default;
    explicit Svm(Options options) : options_(options) {}

    std::string name() const override { return "SVM"; }
    const Options &options() const { return options_; }

    static constexpr const char *kStageValidator = "dataValidator";
    static constexpr const char *kStageIteration = "iteration";
    static constexpr const char *kStageSubtract = "subtract";

    TenantProgram program(const std::string &prefix) const override;

  private:
    Options options_;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_SVM_H
