#include "workloads/triangle_count.h"

namespace doppio::workloads {

namespace {

/// Edge parse pipelined with HDFS read (~0.9 s per 128 MiB).
constexpr double kParseCpuPerByte = 7.0e-9;

/// Canonicalization (orienting edges, deduplication) on the map side,
/// pipelined with the ~165 MiB spill writes.
constexpr double kCanonicalizeCpuPerByte = 3.0e-9;

/// Intersection-based triangle counting per reduce partition:
/// ~20 s per 165 MiB partition.
constexpr double kCountCpuPerByte = 1.2e-7;

/// Merge pipelined with the ~69 KiB shuffle-read chunks.
constexpr double kMergeCpuPerByte = 2.0e-9;

} // namespace

void
TriangleCount::registerInputs(dfs::Hdfs &hdfs) const
{
    // Input sized to `partitions` HDFS blocks (300 GiB at 2400).
    hdfs.addFile("tc_edges.txt",
                 static_cast<Bytes>(options_.partitions) * 128 * kMiB);
}

void
TriangleCount::execute(spark::SparkContext &context) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    RddRef edges = context.hadoopFile("tc_edges.txt");
    edges->pipelinedCpuPerByte = kParseCpuPerByte;

    RddRef graph = Rdd::narrow("graph", {edges}, options_.cachedBytes);
    graph->memoryBytes = options_.cachedBytes;
    graph->persist(spark::StorageLevel::MemoryAndDisk);
    context.runJob(kStageLoader, graph, ActionSpec::count());

    // Repartition to canonical form, then count (paper §V-B4 citing
    // the GraphX TriangleCount implementation).
    spark::ShuffleSpec shuffle;
    shuffle.bytes = options_.shuffleBytes;
    shuffle.mapCpuPerByte = kCanonicalizeCpuPerByte;
    shuffle.mapStageName = std::string(kStageCompute) + ".map";
    RddRef counted =
        Rdd::shuffled(kStageCompute, graph, options_.partitions, gib(1),
                      shuffle);
    counted->cpuPerInputByte = kCountCpuPerByte;
    counted->pipelinedCpuPerByte = kMergeCpuPerByte;
    context.runJob(kStageCompute, counted, ActionSpec::count());
}

} // namespace doppio::workloads
