#include "workloads/triangle_count.h"

namespace doppio::workloads {

namespace {

/// Edge parse pipelined with HDFS read (~0.9 s per 128 MiB).
constexpr double kParseCpuPerByte = 7.0e-9;

/// Canonicalization (orienting edges, deduplication) on the map side,
/// pipelined with the ~165 MiB spill writes.
constexpr double kCanonicalizeCpuPerByte = 3.0e-9;

/// Intersection-based triangle counting per reduce partition:
/// ~20 s per 165 MiB partition.
constexpr double kCountCpuPerByte = 1.2e-7;

/// Merge pipelined with the ~69 KiB shuffle-read chunks.
constexpr double kMergeCpuPerByte = 2.0e-9;

} // namespace

TenantProgram
TriangleCount::program(const std::string &prefix) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    const Options options = options_;
    const std::string file = prefix + "tc_edges.txt";

    TenantProgram program;
    program.registerInputs = [options, file](dfs::Hdfs &hdfs) {
        // Input sized to `partitions` HDFS blocks (300 GiB at 2400).
        hdfs.addFile(file,
                     static_cast<Bytes>(options.partitions) * 128 *
                         kMiB);
    };
    program.buildJobs =
        [options, file](const HadoopFileFn &hadoopFile) {
            std::vector<TenantJob> jobs;
            RddRef edges = hadoopFile(file);
            edges->pipelinedCpuPerByte = kParseCpuPerByte;

            RddRef graph =
                Rdd::narrow("graph", {edges}, options.cachedBytes);
            graph->memoryBytes = options.cachedBytes;
            graph->persist(spark::StorageLevel::MemoryAndDisk);
            jobs.push_back(
                {kStageLoader, graph, ActionSpec::count(), {}});

            // Repartition to canonical form, then count (paper §V-B4
            // citing the GraphX TriangleCount implementation).
            spark::ShuffleSpec shuffle;
            shuffle.bytes = options.shuffleBytes;
            shuffle.mapCpuPerByte = kCanonicalizeCpuPerByte;
            shuffle.mapStageName = std::string(kStageCompute) + ".map";
            RddRef counted =
                Rdd::shuffled(kStageCompute, graph, options.partitions,
                              gib(1), shuffle);
            counted->cpuPerInputByte = kCountCpuPerByte;
            counted->pipelinedCpuPerByte = kMergeCpuPerByte;
            jobs.push_back(
                {kStageCompute, counted, ActionSpec::count(), {}});
            return jobs;
        };
    return program;
}

} // namespace doppio::workloads
