/**
 * @file
 * Triangle Count from Spark GraphX (paper §V-B4).
 *
 * Two phases: graphLoader (parse and cache the 49 GB graph in memory)
 * and computeTriangleCount, which first canonicalizes the graph via a
 * repartition shuffle (396 GB through Spark local) and then counts
 * triangles. The shuffle's ~69 KB read chunks make the phase strongly
 * disk-sensitive (paper: 6.5x HDD/SSD, Fig. 11).
 */

#ifndef DOPPIO_WORKLOADS_TRIANGLE_COUNT_H
#define DOPPIO_WORKLOADS_TRIANGLE_COUNT_H

#include "workloads/workload.h"

namespace doppio::workloads {

/** GraphX Triangle Count. */
class TriangleCount : public Workload
{
  public:
    /** Dataset parameters (paper: 1M vertices, 2400 partitions). */
    struct Options
    {
        int partitions = 2400;
        Bytes cachedBytes = gib(49);
        Bytes shuffleBytes = gib(396);
    };

    TriangleCount() = default;
    explicit TriangleCount(Options options) : options_(options) {}

    std::string name() const override { return "TriangleCount"; }
    const Options &options() const { return options_; }

    static constexpr const char *kStageLoader = "graphLoader";
    static constexpr const char *kStageCompute = "computeTriangleCount";

    TenantProgram program(const std::string &prefix) const override;

  private:
    Options options_;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_TRIANGLE_COUNT_H
