#include "workloads/multi_tenant.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "faults/fault_injector.h"
#include "sched/streaming.h"
#include "sim/simulator.h"
#include "spark/metrics_json.h"
#include "telemetry/views.h"
#include "workloads/registry.h"
#include "workloads/streaming.h"
#include "workloads/workload.h"

namespace doppio::workloads {

namespace {

std::string
tenantPrefix(int index)
{
    return "t" + std::to_string(index) + ".";
}

} // namespace

MultiTenantResult
runMultiTenant(const sched::MultiJobSpec &spec,
               const cluster::ClusterConfig &clusterConfig,
               const spark::SparkConf &sparkConf,
               const faults::FaultSpec *faultSpec,
               trace::TraceCollector *collector,
               telemetry::Registry *registry)
{
    sim::Simulator simulator;
    cluster::Cluster cluster(simulator, clusterConfig);
    if (collector != nullptr)
        cluster.setTraceCollector(collector);
    if (registry != nullptr)
        telemetry::attachCluster(*registry, cluster);
    dfs::Hdfs hdfs(cluster, dfs::HdfsConfig{});

    // Register every tenant's inputs up front (HDFS placement is part
    // of provisioning, not of the simulated timeline).
    std::vector<TenantProgram> programs(spec.tenants.size());
    std::vector<StreamingTemplate> templates(spec.tenants.size());
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        const sched::TenantSpec &tenant = spec.tenants[i];
        const std::string prefix = tenantPrefix(static_cast<int>(i));
        if (tenant.kind == sched::TenantSpec::Kind::Batch) {
            programs[i] =
                makeWorkload(tenant.workload)->program(prefix);
            programs[i].registerInputs(hdfs);
        } else {
            const Bytes batchBytes = tenant.batchBytes != 0
                                         ? tenant.batchBytes
                                         : 64 * kMiB;
            templates[i] = makeStreamingTemplate(
                tenant.workload, prefix, tenant.stream.batches,
                batchBytes);
            templates[i].registerInputs(hdfs);
        }
    }

    sched::JobScheduler scheduler(cluster, hdfs, sparkConf);
    if (collector != nullptr)
        scheduler.setTraceCollector(collector);
    for (const sched::PoolConfig &pool : spec.pools)
        scheduler.definePool(pool);

    std::unique_ptr<faults::FaultInjector> injector;
    if (faultSpec != nullptr && faultSpec->any()) {
        injector = std::make_unique<faults::FaultInjector>(
            *faultSpec, clusterConfig.seed);
        scheduler.setFaultInjector(injector.get());
        injector->arm(cluster);
    }

    std::vector<std::unique_ptr<sched::StreamingDriver>> drivers(
        spec.tenants.size());
    std::vector<sched::JobContext *> contexts;
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        const sched::TenantSpec &tenant = spec.tenants[i];
        const std::string name =
            tenant.workload + "#" + std::to_string(i);
        sched::JobContext &context =
            scheduler.addTenant(name, tenant.pool);
        contexts.push_back(&context);
        if (tenant.kind == sched::TenantSpec::Kind::Batch) {
            // Submission (possibly deferred) enqueues every job of
            // the program; each job still compiles only when it
            // starts, so lineage decisions see prior jobs' blocks.
            auto submit = [&context, program = &programs[i]]() {
                const std::vector<TenantJob> jobs = program->buildJobs(
                    [&context](const std::string &fileName) {
                        return context.hadoopFile(fileName);
                    });
                for (const TenantJob &job : jobs) {
                    sched::JobContext::JobRequest request;
                    request.name = job.name;
                    request.target = job.target;
                    request.action = job.action;
                    request.unpersistAfter = job.unpersistAfter;
                    context.submitJob(std::move(request));
                }
            };
            if (tenant.startSec > 0.0)
                simulator.scheduleAt(secondsToTicks(tenant.startSec),
                                     submit);
            else
                submit();
        } else {
            drivers[i] = std::make_unique<sched::StreamingDriver>(
                tenant.stream);
            drivers[i]->enableRecovery(templates[i].checkpointBuilder,
                                       templates[i].recoveryBuilder);
            auto start = [&scheduler, &context, driver = drivers[i].get(),
                          builder = templates[i].builder]() {
                driver->start(scheduler, context, builder);
            };
            if (tenant.startSec > 0.0)
                simulator.scheduleAt(secondsToTicks(tenant.startSec),
                                     start);
            else
                start();
        }
    }

    scheduler.run();

    MultiTenantResult result;
    result.seconds = ticksToSeconds(simulator.now());
    result.tenancy = scheduler.tenancy();
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        spark::AppMetrics metrics = contexts[i]->appMetrics();
        metrics.name = contexts[i]->name();
        if (drivers[i] != nullptr) {
            metrics.streamingPresent = true;
            metrics.streaming = drivers[i]->stats();
            const spark::StreamingMetrics &stream = metrics.streaming;
            if (stream.checkpointIntervalSec >= 0.0 &&
                i < result.tenancy.tenants.size()) {
                sched::TenantSummary &summary =
                    result.tenancy.tenants[i];
                summary.streamRecovery = true;
                summary.checkpointIntervalSec =
                    stream.checkpointIntervalSec;
                summary.checkpoints = stream.checkpoints;
                summary.recoveries = stream.recoveries;
                summary.maxRecoverySec = stream.maxRecoverySec;
            }
        }
        if (injector != nullptr) {
            metrics.faultsPresent = true;
            for (const spark::StageMetrics *stage :
                 metrics.allStages())
                metrics.faults += stage->faults;
            result.faults += metrics.faults;
        }
        result.tenants.push_back(std::move(metrics));
    }
    if (cluster.pageCacheEnabled()) {
        result.pageCachePresent = true;
        result.pageCache = cluster.pageCacheTotals();
    }
    if (sparkConf.unifiedMemory) {
        result.memoryPresent = true;
        result.memory = scheduler.blockManager().memoryMetrics();
    }
    if (injector != nullptr) {
        result.faultsPresent = true;
        result.faults.hdfsFailovers += hdfs.readFailovers();
        result.faults.corruptReads += hdfs.corruptReads();
        result.faults.quarantinedBytes += hdfs.quarantinedBytes();
        result.faults.partitionTimeouts += static_cast<std::uint64_t>(
            cluster.network().partitionTimeouts());
        result.faults.reReplicatedBytes += hdfs.reReplicatedBytes();
        result.faults.recoverySeconds += hdfs.reReplicationSeconds();
        result.faults.lostDirtyBytes += cluster.lostDirtyBytes();
    }
    if (registry != nullptr) {
        // Per-tenant application metrics stay out: publishAppMetrics
        // uses app-scoped (unlabeled) series, and the tenancy summary
        // already carries the per-tenant shares.
        telemetry::publishTenancy(*registry, result.tenancy);
        telemetry::publishCluster(*registry, cluster);
        telemetry::publishHdfs(*registry, hdfs);
    }
    return result;
}

void
writeMultiTenantJson(std::ostream &os, const MultiTenantResult &result)
{
    char buf[64];
    auto num = [&buf](double v) -> const char * {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return buf;
    };
    os << "{\"app\":\"multi-tenant\",\"seconds\":"
       << num(result.seconds) << ",\"tenants\":[";
    bool first = true;
    for (const spark::AppMetrics &tenant : result.tenants) {
        if (!first)
            os << ',';
        first = false;
        spark::writeMetricsJson(os, tenant);
    }
    os << "],\"tenancy\":{\"tenants\":[";
    first = true;
    for (const sched::TenantSummary &tenant : result.tenancy.tenants) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << tenant.name << "\",\"pool\":\""
           << tenant.pool << "\",\"jobs\":" << tenant.jobs
           << ",\"submit_seconds\":" << num(tenant.submitSec);
        os << ",\"done_seconds\":" << num(tenant.doneSec);
        os << ",\"core_seconds\":" << num(tenant.coreSeconds);
        if (tenant.streamRecovery) {
            os << ",\"checkpoint_interval_seconds\":"
               << num(tenant.checkpointIntervalSec)
               << ",\"checkpoints\":" << tenant.checkpoints
               << ",\"recoveries\":" << tenant.recoveries
               << ",\"max_recovery_seconds\":"
               << num(tenant.maxRecoverySec)
               << ",\"recovery_slo_met\":"
               << (tenant.recoverySloMet() ? "true" : "false");
        }
        os << '}';
    }
    os << "],\"pools\":[";
    first = true;
    for (const sched::PoolSummary &pool : result.tenancy.pools) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << pool.name << "\",\"mode\":\""
           << (pool.fair ? "fair" : "fifo")
           << "\",\"weight\":" << num(pool.weight)
           << ",\"min_share\":" << pool.minShare;
        os << ",\"core_seconds\":" << num(pool.coreSeconds) << '}';
    }
    os << "],\"total_core_seconds\":"
       << num(result.tenancy.totalCoreSeconds()) << '}';
    if (result.pageCachePresent) {
        os << ',';
        spark::writePageCacheJson(os, result.pageCache);
    }
    if (result.memoryPresent) {
        os << ',';
        spark::writeMemoryJson(os, result.memory);
    }
    if (result.faultsPresent) {
        os << ',';
        spark::writeAppFaultsJson(os, result.faults);
    }
    os << '}';
}

} // namespace doppio::workloads
