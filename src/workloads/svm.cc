#include "workloads/svm.h"

namespace doppio::workloads {

namespace {

/// Input parse pipelined with HDFS read (~0.9 s per 128 MiB).
constexpr double kParseCpuPerByte = 7.0e-9;

/// Per-iteration kernel computation over the cached 70 MiB partition:
/// ~1.5 s per task.
constexpr double kIterationCpuPerByte = 2.1e-8;

/// Map-side serialize pipelined with the ~142 MiB spill writes.
constexpr double kSpillCpuPerByte = 1.0e-9;

/// Reduce-side merge pipelined with the 118 KiB shuffle-read chunks;
/// small, so the subtract phase is I/O-dominated and the HDD/SSD gap
/// approaches the raw bandwidth ratio (paper: 6.2x).
constexpr double kMergeCpuPerByte = 2.0e-9;

} // namespace

TenantProgram
Svm::program(const std::string &prefix) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    const Options options = options_;
    const std::string file = prefix + "svm_samples.txt";

    TenantProgram program;
    program.registerInputs = [options, file](dfs::Hdfs &hdfs) {
        // Sized so the input splits into exactly `partitions` HDFS
        // blocks.
        hdfs.addFile(file,
                     static_cast<Bytes>(options.partitions) * 128 *
                         kMiB);
    };
    program.buildJobs =
        [options, file](const HadoopFileFn &hadoopFile) {
            std::vector<TenantJob> jobs;
            RddRef input = hadoopFile(file);
            input->pipelinedCpuPerByte = kParseCpuPerByte;

            RddRef parsed =
                Rdd::narrow("parsedData", {input}, options.cachedBytes);
            parsed->memoryBytes = options.cachedBytes;
            parsed->persist(spark::StorageLevel::MemoryAndDisk);
            jobs.push_back(
                {kStageValidator, parsed, ActionSpec::count(), {}});

            for (int i = 0; i < options.iterations; ++i) {
                RddRef step =
                    Rdd::narrow(kStageIteration, {parsed}, mib(1));
                step->cpuPerInputByte = kIterationCpuPerByte;
                jobs.push_back({kStageIteration, step,
                                ActionSpec::collect(), {}});
            }

            // Subtract phase: shuffle-heavy difference of prediction
            // and label RDDs (modelled as one 170 GB shuffle over
            // parsedData).
            spark::ShuffleSpec shuffle;
            shuffle.bytes = options.shuffleBytes;
            shuffle.mapCpuPerByte = kSpillCpuPerByte;
            shuffle.mapStageName = std::string(kStageSubtract) + ".map";
            RddRef subtracted =
                Rdd::shuffled(kStageSubtract, parsed,
                              options.partitions, gib(1), shuffle);
            subtracted->pipelinedCpuPerByte = kMergeCpuPerByte;
            jobs.push_back(
                {kStageSubtract, subtracted, ActionSpec::count(), {}});
            return jobs;
        };
    return program;
}

} // namespace doppio::workloads
