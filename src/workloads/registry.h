/**
 * @file
 * Workload registry: name -> factory for every application shipped
 * with the library, so tools and examples can select workloads by
 * string (CLI flags, config files).
 */

#ifndef DOPPIO_WORKLOADS_REGISTRY_H
#define DOPPIO_WORKLOADS_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace doppio::workloads {

/** Names of all registered workloads. */
std::vector<std::string> registeredWorkloads();

/**
 * Instantiate a workload by name with its paper-default options.
 * Known names: "gatk4", "lr-small", "lr-large", "svm", "pagerank",
 * "triangle-count", "terasort". fatal() on an unknown name.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_REGISTRY_H
