#include "workloads/gatk4.h"

namespace doppio::workloads {

namespace {

// Calibrated compute densities (seconds of CPU per byte), chosen so the
// simulated per-core throughputs and lambda ratios match the paper.

/// BAM parse pipelined with HDFS read: 4.0 s per 128 MiB block. With
/// the SSD block I/O of ~0.27 s this yields a per-core HDFS-read
/// throughput of ~30 MB/s, reproducing the paper's HDFS-read break
/// points b = 480/30 = 16 (SSD) and b = 130/30 = 4.3 (HDD) (§V-A1).
constexpr double kBamParseCpuPerByte = 3.0e-8;

/// Keying/sorting to produce the shuffle input: ~2.1 s per 128 MiB.
constexpr double kKeySortCpuPerByte = 1.6e-8;

/// MD-stage GC pressure: compute scales by (1 + 0.35*(P-1)), making MD
/// runtime nearly flat in P on SSDs as in Fig. 3 (the paper attributes
/// this to garbage collection and excludes it from the base model).
constexpr double kMdGcSensitivity = 0.35;

/// Serialize/compress pipelined with the ~350 MB shuffle spill writes:
/// ~0.5 s per spill.
constexpr double kSpillCpuPerByte = 1.5e-9;

/// Decompress/deserialize pipelined with shuffle read: 0.35 ms per
/// 30 KB chunk. With SSD chunk I/O of ~0.15 ms the per-core shuffle
/// read throughput T is ~60 MB/s (paper §V-A2); with HDD chunk I/O of
/// ~2.2 ms it is ~4x lower (paper: "the shuffle read time in HDD in
/// each core is 4x longer").
constexpr double kShuffleDecompressCpuPerByte = 1.17e-8;

/// markDuplicates proper: ~2.7 s per 27 MiB reducer partition.
constexpr double kMarkDupCpuPerByte = 1.0e-7;

/// nonPrimaryReads filter: ~1.2 s per 128 MiB block, giving the
/// paper's lambda ~ 1.3 against the ~4.3 s HDFS read.
constexpr double kFilterCpuPerByte = 9.0e-9;

/// BaseRecalibrator covariate statistics: ~5.9 s per 27 MiB partition.
/// Total BR task ~ 9 s vs ~0.45 s of shuffle read: lambda ~ 20 (§V-A2).
constexpr double kBrCpuPerByte = 2.1e-7;

/// SF quality rewrite: ~0.85 s per 27 MiB partition (lambda smaller
/// than BR, so SF's HDD/SSD gap opens at lower P — §V-A2).
constexpr double kSfCpuPerByte = 3.0e-8;

/// markedReads in-memory expansion: 122 GB serialized -> ~870 GB
/// deserialized (paper §III-B2), which is why it is never cacheable.
constexpr double kMarkedReadsExpansion = 870.0 / 122.0;

} // namespace

Bytes
Gatk4::Options::inputBytes() const
{
    return static_cast<Bytes>(gib(122) * readPairsMillions / 500.0);
}

Bytes
Gatk4::Options::shuffleBytes() const
{
    return static_cast<Bytes>(gib(334) * readPairsMillions / 500.0);
}

Bytes
Gatk4::Options::outputBytes() const
{
    return static_cast<Bytes>(gib(166) * readPairsMillions / 500.0);
}

int
Gatk4::Options::numReducers() const
{
    return static_cast<int>(shuffleBytes() / reducerBytes);
}

Gatk4::Options
Gatk4::Options::scaled(double readPairsMillions)
{
    Options options;
    options.readPairsMillions = readPairsMillions;
    options.reducerBytes = static_cast<Bytes>(
        static_cast<double>(27 * kMiB) * readPairsMillions / 500.0);
    return options;
}

TenantProgram
Gatk4::program(const std::string &prefix) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    const Options options = options_;
    const std::string file = prefix + "genome.bam";

    TenantProgram program;
    program.registerInputs = [options, file](dfs::Hdfs &hdfs) {
        hdfs.addFile(file, options.inputBytes());
    };
    program.buildJobs = [options,
                         file](const HadoopFileFn &hadoopFile) {
        std::vector<TenantJob> jobs;
        const Bytes shuffle_bytes = options.shuffleBytes();

        // Fig. 1 lineage.
        RddRef initial_reads = hadoopFile(file);
        initial_reads->pipelinedCpuPerByte = kBamParseCpuPerByte;

        RddRef keyed_reads =
            Rdd::narrow("keyedReads", {initial_reads}, shuffle_bytes);
        keyed_reads->cpuPerInputByte = kKeySortCpuPerByte;
        keyed_reads->gcSensitivity = kMdGcSensitivity;

        spark::ShuffleSpec shuffle;
        shuffle.bytes = shuffle_bytes;
        shuffle.mapCpuPerByte = kSpillCpuPerByte;
        shuffle.mapStageName = kStageMd;
        RddRef grouped_reads =
            Rdd::shuffled("groupedReads", keyed_reads,
                          options.numReducers(), shuffle_bytes,
                          shuffle);
        grouped_reads->pipelinedCpuPerByte =
            kShuffleDecompressCpuPerByte;
        grouped_reads->cpuPerInputByte = kMarkDupCpuPerByte;

        RddRef non_primary =
            Rdd::narrow("nonPrimaryReads", {initial_reads}, gib(2));
        non_primary->cpuPerInputByte = kFilterCpuPerByte;

        // The union both BR and SF act on; too large to cache
        // (§III-B2).
        RddRef marked_reads =
            Rdd::narrow("markedReads", {grouped_reads, non_primary},
                        shuffle_bytes + gib(2));
        marked_reads->memoryBytes = static_cast<Bytes>(
            static_cast<double>(options.inputBytes()) *
            kMarkedReadsExpansion);

        // Job 1 (BR): builds the recalibration model. Runs the MD map
        // stage, then the BR result stage.
        RddRef br_table = Rdd::narrow(kStageBr, {marked_reads}, gib(1));
        br_table->cpuPerInputByte = kBrCpuPerByte;
        jobs.push_back({kStageBr, br_table, ActionSpec::collect(), {}});

        // Job 2 (SF): recomputes markedReads from the existing shuffle
        // files (the map stage is skipped, Table IV) and writes the
        // analysis-ready BAM.
        RddRef sf_out = Rdd::narrow(kStageSf, {marked_reads},
                                    options.outputBytes());
        sf_out->cpuPerInputByte = kSfCpuPerByte;
        jobs.push_back(
            {kStageSf, sf_out,
             ActionSpec::saveAsHadoopFile(options.outputBytes()), {}});
        return jobs;
    };
    return program;
}

} // namespace doppio::workloads
