/**
 * @file
 * Workload abstraction.
 *
 * A Workload knows how to register its HDFS inputs, build its RDD
 * lineage, and run its jobs on a SparkContext. run() provisions a
 * fresh simulated cluster per invocation so measurements are
 * independent, and adapts directly to the model profiler's
 * WorkloadRunner callback.
 *
 * Workloads are declarative: dataset sizes come from the paper's
 * evaluation section; compute densities (seconds of CPU per byte) are
 * calibrated so the simulated per-core throughputs and lambda ratios
 * match the values the paper reports, and are documented next to each
 * constant.
 */

#ifndef DOPPIO_WORKLOADS_WORKLOAD_H
#define DOPPIO_WORKLOADS_WORKLOAD_H

#include <string>

#include "cluster/cluster_config.h"
#include "dfs/hdfs.h"
#include "faults/fault_spec.h"
#include "model/profiler.h"
#include "spark/metrics.h"
#include "spark/spark_conf.h"
#include "spark/spark_context.h"
#include "workloads/tenant_program.h"

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::telemetry {
class Registry;
}

namespace doppio::workloads {

/** Base class for the paper's applications. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** @return short name, e.g. "GATK4". */
    virtual std::string name() const = 0;

    /**
     * Provision a fresh cluster with @p clusterConfig, run every job,
     * and @return the application metrics ("exp" numbers).
     * @param trace     optional collector receiving every task's
     *                  placement and timing.
     * @param faultSpec optional fault description; when it contains
     *                  any fault source, a FaultInjector seeded from
     *                  the cluster seed is armed and the metrics gain
     *                  a fault/recovery block. A null or empty spec
     *                  leaves the run bit-for-bit identical to a
     *                  fault-free build.
     * @param collector optional telemetry collector: wired through the
     *                  cluster (devices, caches, network, faults) and
     *                  the Spark context (stages, tasks, phases,
     *                  memory) before any job runs; nullptr keeps the
     *                  run bit-for-bit identical to an untraced one.
     * @param registry  optional metrics registry: device latency/size
     *                  histograms attach before any job runs, and the
     *                  end-of-run cluster/HDFS/application stats are
     *                  published into it after the metrics are folded.
     *                  Observation only — the returned metrics (and
     *                  the JSON derived from them) are byte-identical
     *                  with or without a registry.
     */
    virtual spark::AppMetrics
    run(const cluster::ClusterConfig &clusterConfig,
        const spark::SparkConf &sparkConf,
        spark::TaskTrace *trace = nullptr,
        const faults::FaultSpec *faultSpec = nullptr,
        trace::TraceCollector *collector = nullptr,
        telemetry::Registry *registry = nullptr) const;

    /** Adapter for model::Profiler. */
    model::WorkloadRunner runner() const;

    /**
     * Lognormal sigma of this workload's task-time distribution, or a
     * negative value to keep the cluster default. Workloads with
     * data-dependent task costs (GATK4: genome coverage varies wildly
     * across regions) override this; the variability also determines
     * how well I/O bursts from different tasks interleave.
     */
    virtual double taskTimeVariability() const { return -1.0; }

    /**
     * This workload as pure data — inputs plus an ordered job list —
     * for the multi-tenant runner. @p prefix namespaces the HDFS file
     * names so instances coexist in one namespace. The default
     * fatal()s; every registered batch workload overrides it and the
     * classic single-job path replays program("") via the default
     * registerInputs()/execute() below, so both paths share one
     * definition.
     */
    virtual TenantProgram program(const std::string &prefix) const;

  protected:
    /** HDFS deployment for this workload (Table II defaults). */
    virtual dfs::HdfsConfig hdfsConfig() const { return {}; }

    /** Register input files. Default: program("").registerInputs. */
    virtual void registerInputs(dfs::Hdfs &hdfs) const;

    /** Build lineage and run all jobs. Default: replay program(""). */
    virtual void execute(spark::SparkContext &context) const;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_WORKLOAD_H
