#include "workloads/pagerank.h"

namespace doppio::workloads {

namespace {

/// Edge-list parse pipelined with HDFS read (~0.8 s per 128 MiB).
constexpr double kParseCpuPerByte = 6.0e-9;

/// Graph construction on the reduce side of the loader shuffle.
constexpr double kBuildCpuPerByte = 4.0e-8;

/// Deserialize pipelined with persist reads of a generation
/// (~20 s per ~90 MiB partition — GraphX's vertex/edge reassembly).
constexpr double kGenerationDeserCpuPerByte = 2.2e-7;

/// Rank update compute per iteration (~25 s per partition). Together
/// with the deserialization this makes SSD iterations compute-bound at
/// ~630 s while HDD iterations stay I/O-limited at ~1380 s: the
/// paper's 2.2x (Fig. 10).
constexpr double kRankCpuPerByte = 2.7e-7;

} // namespace

void
PageRank::registerInputs(dfs::Hdfs &hdfs) const
{
    // Edge list sized to 2048 x 128 MiB blocks (256 GiB).
    hdfs.addFile("pr_edges.txt", 2048ULL * 128 * kMiB);
}

void
PageRank::execute(spark::SparkContext &context) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    RddRef edges = context.hadoopFile("pr_edges.txt");
    edges->pipelinedCpuPerByte = kParseCpuPerByte;

    spark::ShuffleSpec loader_shuffle;
    loader_shuffle.bytes = options_.generationBytes;
    loader_shuffle.mapStageName = std::string(kStageLoader) + ".map";
    RddRef graph =
        Rdd::shuffled("graph", edges, options_.partitions,
                      options_.generationBytes, loader_shuffle);
    graph->memoryBytes = options_.generationBytes;
    graph->cpuPerInputByte = kBuildCpuPerByte;
    graph->pipelinedCpuPerByte = kGenerationDeserCpuPerByte;
    graph->persist(spark::StorageLevel::MemoryAndDisk);
    context.runJob(kStageLoader, graph, ActionSpec::count());

    // Each iteration materializes a new generation and the one before
    // last is unpersisted (GraphX keeps two generations alive).
    RddRef previous = graph;
    RddRef grandparent;
    for (int i = 0; i < options_.iterations; ++i) {
        RddRef ranks = Rdd::narrow(kStageIteration, {previous},
                                   options_.generationBytes);
        ranks->memoryBytes = options_.generationBytes;
        ranks->cpuPerInputByte = kRankCpuPerByte;
        ranks->pipelinedCpuPerByte = kGenerationDeserCpuPerByte;
        ranks->persist(spark::StorageLevel::MemoryAndDisk);
        context.runJob(kStageIteration, ranks, ActionSpec::count());
        if (grandparent)
            context.unpersist(grandparent);
        grandparent = previous;
        previous = ranks;
    }

    RddRef output =
        Rdd::narrow(kStageSave, {previous}, options_.outputBytes);
    context.runJob(kStageSave, output,
                   ActionSpec::saveAsHadoopFile(options_.outputBytes));
}

} // namespace doppio::workloads
