#include "workloads/pagerank.h"

namespace doppio::workloads {

namespace {

/// Edge-list parse pipelined with HDFS read (~0.8 s per 128 MiB).
constexpr double kParseCpuPerByte = 6.0e-9;

/// Graph construction on the reduce side of the loader shuffle.
constexpr double kBuildCpuPerByte = 4.0e-8;

/// Deserialize pipelined with persist reads of a generation
/// (~20 s per ~90 MiB partition — GraphX's vertex/edge reassembly).
constexpr double kGenerationDeserCpuPerByte = 2.2e-7;

/// Rank update compute per iteration (~25 s per partition). Together
/// with the deserialization this makes SSD iterations compute-bound at
/// ~630 s while HDD iterations stay I/O-limited at ~1380 s: the
/// paper's 2.2x (Fig. 10).
constexpr double kRankCpuPerByte = 2.7e-7;

} // namespace

TenantProgram
PageRank::program(const std::string &prefix) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    const Options options = options_;
    const std::string file = prefix + "pr_edges.txt";

    TenantProgram program;
    program.registerInputs = [file](dfs::Hdfs &hdfs) {
        // Edge list sized to 2048 x 128 MiB blocks (256 GiB).
        hdfs.addFile(file, 2048ULL * 128 * kMiB);
    };
    program.buildJobs =
        [options, file](const HadoopFileFn &hadoopFile) {
            std::vector<TenantJob> jobs;
            RddRef edges = hadoopFile(file);
            edges->pipelinedCpuPerByte = kParseCpuPerByte;

            spark::ShuffleSpec loader_shuffle;
            loader_shuffle.bytes = options.generationBytes;
            loader_shuffle.mapStageName =
                std::string(kStageLoader) + ".map";
            RddRef graph =
                Rdd::shuffled("graph", edges, options.partitions,
                              options.generationBytes, loader_shuffle);
            graph->memoryBytes = options.generationBytes;
            graph->cpuPerInputByte = kBuildCpuPerByte;
            graph->pipelinedCpuPerByte = kGenerationDeserCpuPerByte;
            graph->persist(spark::StorageLevel::MemoryAndDisk);
            jobs.push_back(
                {kStageLoader, graph, ActionSpec::count(), {}});

            // Each iteration materializes a new generation and the one
            // before last is unpersisted (GraphX keeps two generations
            // alive): iteration i drops generation i-2, where the
            // loader's graph is generation -1.
            RddRef previous = graph;
            RddRef grandparent;
            for (int i = 0; i < options.iterations; ++i) {
                RddRef ranks = Rdd::narrow(kStageIteration, {previous},
                                           options.generationBytes);
                ranks->memoryBytes = options.generationBytes;
                ranks->cpuPerInputByte = kRankCpuPerByte;
                ranks->pipelinedCpuPerByte = kGenerationDeserCpuPerByte;
                ranks->persist(spark::StorageLevel::MemoryAndDisk);
                TenantJob job{kStageIteration, ranks,
                              ActionSpec::count(), {}};
                if (grandparent)
                    job.unpersistAfter.push_back(grandparent);
                jobs.push_back(std::move(job));
                grandparent = previous;
                previous = ranks;
            }

            RddRef output = Rdd::narrow(kStageSave, {previous},
                                        options.outputBytes);
            jobs.push_back(
                {kStageSave, output,
                 ActionSpec::saveAsHadoopFile(options.outputBytes),
                 {}});
            return jobs;
        };
    return program;
}

} // namespace doppio::workloads
