#include "workloads/streaming.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "faults/fault_injector.h"
#include "sim/simulator.h"
#include "telemetry/views.h"

namespace doppio::workloads {

namespace {

// Calibrated like the batch workloads: light parse pipelined with the
// HDFS read, then either a compute pass (lr) or a shuffle (agg).

/// Record parse pipelined with HDFS read (~0.67 s per 128 MiB).
constexpr double kStreamParseCpuPerByte = 5.0e-9;

/// Model application over the parsed batch (~2.7 s per 128 MiB).
constexpr double kScoreCpuPerByte = 2.1e-8;

/// Map-side serialize pipelined with the shuffle spill writes.
constexpr double kStreamSpillCpuPerByte = 1.5e-9;

/// Reduce-side merge pipelined with the shuffle-read chunks.
constexpr double kStreamMergeCpuPerByte = 2.0e-9;

/** Shared file-name scheme: batch k of a stream. */
std::string
batchFile(const std::string &prefix, int index)
{
    return prefix + "stream_batch_" + std::to_string(index);
}

/**
 * Stable FNV-1a over the batch file name (std::hash is not portable
 * across standard libraries). Non-zero so it always pins the stream.
 */
std::uint64_t
batchCacheSalt(const std::string &fileName)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : fileName) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h | 1;
}

/** Source RDD over one batch file with a pinned cache stream. */
spark::RddRef
batchInput(sched::JobContext &context, const std::string &prefix,
           int index)
{
    const std::string file = batchFile(prefix, index);
    spark::RddRef input = context.hadoopFile(file);
    input->pipelinedCpuPerByte = kStreamParseCpuPerByte;
    // Same-sized batches would otherwise derive the same page-cache
    // stream and turn fresh data into spurious hits.
    input->cacheStreamSalt = batchCacheSalt(file);
    return input;
}

/**
 * Checkpoints and recoveries of one stream share the chain of
 * checkpointed state RDDs; keyed by the batch each checkpoint covers
 * so the driver's notion of "last durable checkpoint" (set when the
 * checkpoint job *completes*) always resolves to the right lineage
 * node even with a newer checkpoint still in flight.
 */
struct StreamState
{
    std::unordered_map<int, spark::RddRef> checkpoints;
};

/** Serialized size of the stream's accumulated state. */
Bytes
streamStateBytes(Bytes batchBytes)
{
    return std::max<Bytes>(kMiB, batchBytes / 8);
}

} // namespace

StreamingTemplate
makeStreamingTemplate(const std::string &name, const std::string &prefix,
                      int batches, Bytes batchBytes)
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    if (batches <= 0)
        fatal("makeStreamingTemplate: batches must be positive");
    if (batchBytes == 0)
        fatal("makeStreamingTemplate: batchBytes must be positive");

    StreamingTemplate tmpl;
    auto state = std::make_shared<StreamState>();
    const Bytes stateBytes = streamStateBytes(batchBytes);
    // State update: fold one batch (or a replay of several) into the
    // running state — the updateStateByKey analogue, costed like the
    // model-application pass.
    tmpl.checkpointBuilder = [prefix, state, stateBytes](
                                 sched::JobContext &context, int k) {
        RddRef stateRdd = Rdd::narrow(
            prefix + "state-" + std::to_string(k),
            {batchInput(context, prefix, k)}, stateBytes);
        stateRdd->cpuPerInputByte = kScoreCpuPerByte;
        stateRdd->checkpoint();
        state->checkpoints[k] = stateRdd;
        return sched::BatchJob{"ckpt-" + std::to_string(k), stateRdd,
                               ActionSpec::count()};
    };
    tmpl.recoveryBuilder = [prefix, state, stateBytes](
                               sched::JobContext &context,
                               int checkpointBatch, int first,
                               int last) {
        std::vector<RddRef> parents;
        if (checkpointBatch >= 0)
            parents.push_back(state->checkpoints.at(checkpointBatch));
        for (int k = first; k <= last; ++k)
            parents.push_back(batchInput(context, prefix, k));
        if (parents.empty())
            fatal("streaming recovery: no checkpoint and no batches "
                  "to replay");
        RddRef rebuilt = Rdd::narrow(prefix + "recovered-state",
                                     parents, stateBytes);
        rebuilt->cpuPerInputByte = kScoreCpuPerByte;
        return sched::BatchJob{"recover-" + std::to_string(first),
                               rebuilt, ActionSpec::collect()};
    };
    tmpl.registerInputs = [prefix, batches,
                           batchBytes](dfs::Hdfs &hdfs) {
        // One file per arrival: fresh stream data is never page-cache
        // resident from a previous batch.
        for (int k = 0; k < batches; ++k)
            hdfs.addFile(batchFile(prefix, k), batchBytes);
    };

    if (name == "lr") {
        tmpl.builder = [prefix](sched::JobContext &context,
                                int index) {
            RddRef input = batchInput(context, prefix, index);
            RddRef scored =
                Rdd::narrow("scored", {input}, mib(1));
            scored->cpuPerInputByte = kScoreCpuPerByte;
            return sched::BatchJob{
                "batch-" + std::to_string(index), scored,
                ActionSpec::collect()};
        };
        return tmpl;
    }
    if (name == "agg") {
        tmpl.builder = [prefix, batchBytes](sched::JobContext &context,
                                            int index) {
            RddRef input = batchInput(context, prefix, index);
            spark::ShuffleSpec shuffle;
            shuffle.bytes = batchBytes;
            shuffle.mapCpuPerByte = kStreamSpillCpuPerByte;
            shuffle.mapStageName =
                "batch-" + std::to_string(index) + ".map";
            const int reducers = static_cast<int>(
                std::max<Bytes>(1, batchBytes / (32 * kMiB)));
            RddRef aggregated = Rdd::shuffled(
                "aggregated", input, reducers, batchBytes, shuffle);
            aggregated->pipelinedCpuPerByte = kStreamMergeCpuPerByte;
            return sched::BatchJob{
                "batch-" + std::to_string(index), aggregated,
                ActionSpec::count()};
        };
        return tmpl;
    }
    fatal("makeStreamingTemplate: unknown template '%s' (expected "
          "lr or agg)",
          name.c_str());
}

spark::AppMetrics
Streaming::run(const cluster::ClusterConfig &clusterConfig,
               const spark::SparkConf &sparkConf,
               spark::TaskTrace *trace,
               const faults::FaultSpec *faultSpec,
               trace::TraceCollector *collector,
               telemetry::Registry *registry) const
{
    sim::Simulator simulator;
    cluster::ClusterConfig config = clusterConfig;
    if (taskTimeVariability() >= 0.0)
        config.taskJitterSigma = taskTimeVariability();
    cluster::Cluster cluster(simulator, config);
    if (collector != nullptr)
        cluster.setTraceCollector(collector);
    if (registry != nullptr)
        telemetry::attachCluster(*registry, cluster);
    dfs::Hdfs hdfs(cluster, hdfsConfig());
    const StreamingTemplate tmpl = makeStreamingTemplate(
        options_.tmpl, "", options_.stream.batches,
        options_.batchBytes);
    tmpl.registerInputs(hdfs);

    sched::JobScheduler scheduler(cluster, hdfs, sparkConf);
    scheduler.engine().setTrace(trace);
    if (collector != nullptr)
        scheduler.setTraceCollector(collector);

    std::unique_ptr<faults::FaultInjector> injector;
    if (faultSpec != nullptr && faultSpec->any()) {
        injector = std::make_unique<faults::FaultInjector>(
            *faultSpec, config.seed);
        scheduler.setFaultInjector(injector.get());
        injector->arm(cluster);
    }

    sched::JobContext &context = scheduler.addTenant("stream");
    sched::StreamingDriver driver(options_.stream);
    driver.enableRecovery(tmpl.checkpointBuilder, tmpl.recoveryBuilder);
    driver.start(scheduler, context, tmpl.builder);
    scheduler.run();

    spark::AppMetrics metrics = context.appMetrics();
    metrics.name = name();
    metrics.streamingPresent = true;
    metrics.streaming = driver.stats();
    if (cluster.pageCacheEnabled()) {
        metrics.pageCachePresent = true;
        metrics.pageCache = cluster.pageCacheTotals();
    }
    if (sparkConf.unifiedMemory) {
        metrics.memoryPresent = true;
        metrics.memory = scheduler.blockManager().memoryMetrics();
    }
    if (injector != nullptr) {
        metrics.faultsPresent = true;
        for (const spark::StageMetrics *stage : metrics.allStages())
            metrics.faults += stage->faults;
        metrics.faults.hdfsFailovers += hdfs.readFailovers();
        metrics.faults.corruptReads += hdfs.corruptReads();
        metrics.faults.quarantinedBytes += hdfs.quarantinedBytes();
        metrics.faults.partitionTimeouts += static_cast<std::uint64_t>(
            cluster.network().partitionTimeouts());
        metrics.faults.reReplicatedBytes += hdfs.reReplicatedBytes();
        metrics.faults.recoverySeconds += hdfs.reReplicationSeconds();
        metrics.faults.lostDirtyBytes += cluster.lostDirtyBytes();
    }
    if (registry != nullptr) {
        telemetry::publishAppMetrics(*registry, metrics);
        telemetry::publishCluster(*registry, cluster);
        telemetry::publishHdfs(*registry, hdfs);
    }
    return metrics;
}

} // namespace doppio::workloads
