/**
 * @file
 * Tenant-ready workload description.
 *
 * A TenantProgram is a workload reduced to data: which HDFS files it
 * needs and which jobs (lineage + action + post-job unpersists) it
 * runs, in order. The same program drives both execution paths —
 * Workload::execute() replays it synchronously on a private
 * SparkContext (the classic single-job run), and the multi-tenant
 * runner feeds it job-by-job into a sched::JobContext sharing one
 * cluster with other tenants. The @p prefix parameter namespaces the
 * HDFS file names so several instances of one workload can coexist in
 * a shared namespace ("t0.lr_examples.txt", "t1.lr_examples.txt").
 *
 * RDD construction is side-effect free (lineage nodes only reference
 * HDFS metadata; persist() marks the node), so building every job's
 * lineage up front is equivalent to the classic interleaved
 * build-run-build sequence — what matters for materialization is that
 * jobs *compile* in submission order, which both paths preserve.
 */

#ifndef DOPPIO_WORKLOADS_TENANT_PROGRAM_H
#define DOPPIO_WORKLOADS_TENANT_PROGRAM_H

#include <functional>
#include <string>
#include <vector>

#include "dfs/hdfs.h"
#include "spark/dag_scheduler.h"
#include "spark/rdd.h"

namespace doppio::workloads {

/** Resolves a registered HDFS file name to a source RDD. */
using HadoopFileFn =
    std::function<spark::RddRef(const std::string &)>;

/** One action-job of a program, in submission order. */
struct TenantJob
{
    std::string name;
    spark::RddRef target;
    spark::ActionSpec action;
    /** Unpersisted right after this job completes (e.g. PageRank's
     *  grandparent generation drop). */
    std::vector<spark::RddRef> unpersistAfter;
};

/** A workload as pure data: inputs plus an ordered job list. */
struct TenantProgram
{
    /** Register the program's input files (names already prefixed). */
    std::function<void(dfs::Hdfs &)> registerInputs;

    /** Build the full lineage and job list; @p hadoopFile resolves
     *  prefixed input names against the owning context. */
    std::function<std::vector<TenantJob>(const HadoopFileFn &)>
        buildJobs;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_TENANT_PROGRAM_H
