#include "workloads/workload.h"

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "faults/fault_injector.h"
#include "sim/simulator.h"
#include "telemetry/views.h"

namespace doppio::workloads {

spark::AppMetrics
Workload::run(const cluster::ClusterConfig &clusterConfig,
              const spark::SparkConf &sparkConf,
              spark::TaskTrace *trace,
              const faults::FaultSpec *faultSpec,
              trace::TraceCollector *collector,
              telemetry::Registry *registry) const
{
    sim::Simulator simulator;
    cluster::ClusterConfig config = clusterConfig;
    if (taskTimeVariability() >= 0.0)
        config.taskJitterSigma = taskTimeVariability();
    cluster::Cluster cluster(simulator, config);
    if (collector != nullptr)
        cluster.setTraceCollector(collector);
    if (registry != nullptr)
        telemetry::attachCluster(*registry, cluster);
    dfs::Hdfs hdfs(cluster, hdfsConfig());
    registerInputs(hdfs);
    spark::SparkContext context(cluster, hdfs, sparkConf);
    context.setTaskTrace(trace);
    if (collector != nullptr)
        context.setTraceCollector(collector);

    std::unique_ptr<faults::FaultInjector> injector;
    if (faultSpec != nullptr && faultSpec->any()) {
        injector = std::make_unique<faults::FaultInjector>(
            *faultSpec, config.seed);
        context.setFaultInjector(injector.get());
        injector->arm(cluster);
    }

    execute(context);
    // Under fault injection stages stop at completion rather than
    // draining the queue; finish leftover background work (HDFS
    // re-replication, page-cache writeback, scheduled node events)
    // so its accounting is complete. No-op on a fault-free run.
    if (injector != nullptr)
        simulator.run();
    spark::AppMetrics metrics = context.metrics();
    metrics.name = name();
    if (cluster.pageCacheEnabled()) {
        metrics.pageCachePresent = true;
        metrics.pageCache = cluster.pageCacheTotals();
    }
    if (sparkConf.unifiedMemory) {
        metrics.memoryPresent = true;
        metrics.memory = context.blockManager().memoryMetrics();
    }
    if (injector != nullptr) {
        metrics.faultsPresent = true;
        for (const spark::StageMetrics *stage : metrics.allStages())
            metrics.faults += stage->faults;
        metrics.faults.hdfsFailovers += hdfs.readFailovers();
        metrics.faults.corruptReads += hdfs.corruptReads();
        metrics.faults.quarantinedBytes += hdfs.quarantinedBytes();
        metrics.faults.partitionTimeouts += static_cast<std::uint64_t>(
            cluster.network().partitionTimeouts());
        metrics.faults.reReplicatedBytes += hdfs.reReplicatedBytes();
        metrics.faults.recoverySeconds += hdfs.reReplicationSeconds();
        metrics.faults.lostDirtyBytes += cluster.lostDirtyBytes();
    }
    if (registry != nullptr) {
        telemetry::publishAppMetrics(*registry, metrics);
        telemetry::publishCluster(*registry, cluster);
        telemetry::publishHdfs(*registry, hdfs);
    }
    return metrics;
}

TenantProgram
Workload::program(const std::string &prefix) const
{
    (void)prefix;
    fatal("workload %s is not multi-tenant capable (no program())",
          name().c_str());
}

void
Workload::registerInputs(dfs::Hdfs &hdfs) const
{
    program("").registerInputs(hdfs);
}

void
Workload::execute(spark::SparkContext &context) const
{
    const TenantProgram prog = program("");
    const std::vector<TenantJob> jobs =
        prog.buildJobs([&context](const std::string &fileName) {
            return context.hadoopFile(fileName);
        });
    for (const TenantJob &job : jobs) {
        context.runJob(job.name, job.target, job.action);
        for (const spark::RddRef &rdd : job.unpersistAfter)
            context.unpersist(rdd);
    }
}

model::WorkloadRunner
Workload::runner() const
{
    return [this](const cluster::ClusterConfig &clusterConfig,
                  const spark::SparkConf &sparkConf) {
        return run(clusterConfig, sparkConf);
    };
}

} // namespace doppio::workloads
