#include "workloads/workload.h"

#include "cluster/cluster.h"
#include "sim/simulator.h"

namespace doppio::workloads {

spark::AppMetrics
Workload::run(const cluster::ClusterConfig &clusterConfig,
              const spark::SparkConf &sparkConf,
              spark::TaskTrace *trace) const
{
    sim::Simulator simulator;
    cluster::ClusterConfig config = clusterConfig;
    if (taskTimeVariability() >= 0.0)
        config.taskJitterSigma = taskTimeVariability();
    cluster::Cluster cluster(simulator, config);
    dfs::Hdfs hdfs(cluster, hdfsConfig());
    registerInputs(hdfs);
    spark::SparkContext context(cluster, hdfs, sparkConf);
    context.setTaskTrace(trace);
    execute(context);
    spark::AppMetrics metrics = context.metrics();
    metrics.name = name();
    if (cluster.pageCacheEnabled()) {
        metrics.pageCachePresent = true;
        metrics.pageCache = cluster.pageCacheTotals();
    }
    return metrics;
}

model::WorkloadRunner
Workload::runner() const
{
    return [this](const cluster::ClusterConfig &clusterConfig,
                  const spark::SparkConf &sparkConf) {
        return run(clusterConfig, sparkConf);
    };
}

} // namespace doppio::workloads
