/**
 * @file
 * Multi-tenant run driver: one shared cluster, many workloads.
 *
 * Takes a parsed jobs-spec (pools + tenant lines), provisions one
 * cluster, registers every tenant's inputs under a per-tenant prefix
 * ("t0.", "t1.", ...), admits the tenants through a
 * sched::JobScheduler and runs the shared simulation to completion.
 * Batch tenants replay their Workload::program(); stream tenants run
 * a StreamingDriver over a streaming template. The result carries
 * each tenant's own AppMetrics (with a streaming block for streams)
 * plus the cluster-wide tenancy/page-cache/memory/fault blocks.
 */

#ifndef DOPPIO_WORKLOADS_MULTI_TENANT_H
#define DOPPIO_WORKLOADS_MULTI_TENANT_H

#include <ostream>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "faults/fault_spec.h"
#include "sched/job_scheduler.h"
#include "sched/jobs_spec.h"
#include "spark/metrics.h"
#include "spark/spark_conf.h"

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::telemetry {
class Registry;
}

namespace doppio::workloads {

/** Everything a finished multi-tenant run produced. */
struct MultiTenantResult
{
    /** Per-tenant application metrics; AppMetrics::name is the
     *  tenant name ("<workload>#<i>"). */
    std::vector<spark::AppMetrics> tenants;
    /** Per-tenant and per-pool shares. */
    sched::TenancySummary tenancy;
    /** Makespan: simulated seconds until the last event drained. */
    double seconds = 0.0;

    bool pageCachePresent = false;
    oscache::PageCacheStats pageCache;
    bool memoryPresent = false;
    spark::MemoryMetrics memory;
    bool faultsPresent = false;
    spark::FaultMetrics faults;
};

/**
 * Run @p spec on one shared cluster. @p faultSpec and @p collector
 * behave like Workload::run's: a fault spec arms an injector whose
 * node events hit every job in flight; a collector yields per-job
 * Perfetto lanes next to the shared device/cache/memory tracks.
 * @p registry behaves like Workload::run's too, and additionally
 * publishes the pool/tenant tenancy summary.
 */
MultiTenantResult
runMultiTenant(const sched::MultiJobSpec &spec,
               const cluster::ClusterConfig &clusterConfig,
               const spark::SparkConf &sparkConf,
               const faults::FaultSpec *faultSpec = nullptr,
               trace::TraceCollector *collector = nullptr,
               telemetry::Registry *registry = nullptr);

/**
 * Write @p result as one JSON document:
 * {"app":"multi-tenant","seconds":...,"tenants":[<AppMetrics>...],
 *  "tenancy":{...}, "page_cache"?, "memory"?, "faults"?}.
 */
void writeMultiTenantJson(std::ostream &os,
                          const MultiTenantResult &result);

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_MULTI_TENANT_H
