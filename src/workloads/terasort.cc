#include "workloads/terasort.h"

namespace doppio::workloads {

namespace {

/// Record parse + range partitioning pipelined with HDFS read
/// (~0.55 s per 128 MiB).
constexpr double kPartitionCpuPerByte = 4.0e-9;

/// Serialize pipelined with the ~128 MiB spill writes.
constexpr double kSpillCpuPerByte = 1.5e-9;

/// In-range sort on the reduce side: ~4 s per 1 GiB range.
constexpr double kSortCpuPerByte = 4.0e-9;

/// Merge pipelined with the ~137 KiB shuffle-read chunks.
constexpr double kMergeCpuPerByte = 1.5e-9;

} // namespace

void
Terasort::registerInputs(dfs::Hdfs &hdfs) const
{
    hdfs.addFile("terasort_input", options_.dataBytes);
}

void
Terasort::execute(spark::SparkContext &context) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    RddRef input = context.hadoopFile("terasort_input");
    input->pipelinedCpuPerByte = kPartitionCpuPerByte;

    spark::ShuffleSpec shuffle;
    shuffle.bytes = options_.dataBytes;
    shuffle.mapCpuPerByte = kSpillCpuPerByte;
    shuffle.mapStageName = kStageNf;
    RddRef sorted = Rdd::shuffled("sortedRanges", input,
                                  options_.reducers, options_.dataBytes,
                                  shuffle);
    sorted->pipelinedCpuPerByte = kMergeCpuPerByte;
    sorted->cpuPerInputByte = kSortCpuPerByte;

    RddRef output = Rdd::narrow(kStageSf, {sorted}, options_.dataBytes);
    context.runJob(kStageSf, output,
                   ActionSpec::saveAsHadoopFile(options_.dataBytes));
}

} // namespace doppio::workloads
