#include "workloads/terasort.h"

namespace doppio::workloads {

namespace {

/// Record parse + range partitioning pipelined with HDFS read
/// (~0.55 s per 128 MiB).
constexpr double kPartitionCpuPerByte = 4.0e-9;

/// Serialize pipelined with the ~128 MiB spill writes.
constexpr double kSpillCpuPerByte = 1.5e-9;

/// In-range sort on the reduce side: ~4 s per 1 GiB range.
constexpr double kSortCpuPerByte = 4.0e-9;

/// Merge pipelined with the ~137 KiB shuffle-read chunks.
constexpr double kMergeCpuPerByte = 1.5e-9;

} // namespace

TenantProgram
Terasort::program(const std::string &prefix) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    const Options options = options_;
    const std::string file = prefix + "terasort_input";

    TenantProgram program;
    program.registerInputs = [options, file](dfs::Hdfs &hdfs) {
        hdfs.addFile(file, options.dataBytes);
    };
    program.buildJobs =
        [options, file](const HadoopFileFn &hadoopFile) {
            std::vector<TenantJob> jobs;
            RddRef input = hadoopFile(file);
            input->pipelinedCpuPerByte = kPartitionCpuPerByte;

            spark::ShuffleSpec shuffle;
            shuffle.bytes = options.dataBytes;
            shuffle.mapCpuPerByte = kSpillCpuPerByte;
            shuffle.mapStageName = kStageNf;
            RddRef sorted =
                Rdd::shuffled("sortedRanges", input, options.reducers,
                              options.dataBytes, shuffle);
            sorted->pipelinedCpuPerByte = kMergeCpuPerByte;
            sorted->cpuPerInputByte = kSortCpuPerByte;

            RddRef output =
                Rdd::narrow(kStageSf, {sorted}, options.dataBytes);
            jobs.push_back(
                {kStageSf, output,
                 ActionSpec::saveAsHadoopFile(options.dataBytes),
                 {}});
            return jobs;
        };
    return program;
}

} // namespace doppio::workloads
