/**
 * @file
 * PageRank from Spark GraphX (paper §V-B3).
 *
 * Three phases: graphLoader (read edges, shuffle-build the graph,
 * persist the 420 GB rank/graph RDD), 10 iterations (each reads the
 * previous generation and persists a new one), and saveAsTextFile.
 * The 420 GB generation exceeds cluster storage memory (10 x 36 GB),
 * so generations live on Spark local and every iteration pays
 * disk-store-granularity reads and writes — a 2.2x HDD/SSD iteration
 * gap once GraphX's heavy per-iteration compute is blended in
 * (Fig. 10).
 */

#ifndef DOPPIO_WORKLOADS_PAGERANK_H
#define DOPPIO_WORKLOADS_PAGERANK_H

#include "workloads/workload.h"

namespace doppio::workloads {

/** GraphX PageRank. */
class PageRank : public Workload
{
  public:
    /** Dataset parameters (paper: 20M vertices, 4800 partitions). */
    struct Options
    {
        int partitions = 4800;
        int iterations = 10;
        Bytes generationBytes = gib(420); //!< per-generation RDD
        Bytes outputBytes = gib(50);
    };

    PageRank() = default;
    explicit PageRank(Options options) : options_(options) {}

    std::string name() const override { return "PageRank"; }
    const Options &options() const { return options_; }

    static constexpr const char *kStageLoader = "graphLoader";
    static constexpr const char *kStageIteration = "iteration";
    static constexpr const char *kStageSave = "saveAsTextFile";

    TenantProgram program(const std::string &prefix) const override;

  private:
    Options options_;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_PAGERANK_H
