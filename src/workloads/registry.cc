#include "workloads/registry.h"

#include "common/logging.h"
#include "workloads/gatk4.h"
#include "workloads/logistic_regression.h"
#include "workloads/pagerank.h"
#include "workloads/streaming.h"
#include "workloads/svm.h"
#include "workloads/terasort.h"
#include "workloads/triangle_count.h"

namespace doppio::workloads {

std::vector<std::string>
registeredWorkloads()
{
    return {"gatk4",    "lr-small",       "lr-large",
            "svm",      "pagerank",       "triangle-count",
            "terasort", "streaming-lr",   "streaming-agg"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "gatk4")
        return std::make_unique<Gatk4>();
    if (name == "lr-small")
        return std::make_unique<LogisticRegression>(
            LogisticRegression::Options::small());
    if (name == "lr-large")
        return std::make_unique<LogisticRegression>(
            LogisticRegression::Options::large());
    if (name == "svm")
        return std::make_unique<Svm>();
    if (name == "pagerank")
        return std::make_unique<PageRank>();
    if (name == "triangle-count")
        return std::make_unique<TriangleCount>();
    if (name == "terasort")
        return std::make_unique<Terasort>();
    if (name == "streaming-lr") {
        Streaming::Options options;
        options.tmpl = "lr";
        return std::make_unique<Streaming>(options);
    }
    if (name == "streaming-agg") {
        Streaming::Options options;
        options.tmpl = "agg";
        return std::make_unique<Streaming>(options);
    }
    fatal("makeWorkload: unknown workload '%s'", name.c_str());
}

} // namespace doppio::workloads
