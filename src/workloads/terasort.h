/**
 * @file
 * Terasort (paper §V-B5).
 *
 * Two stages over 10 billion records (930 GB): NF (newAPIHadoopFile)
 * reads the input from HDFS, range-partitions it and writes the
 * shuffle; SF (saveAsNewAPIHadoopFile) reads each range's shuffle
 * data, sorts within the range, and writes the output back to HDFS.
 * Both HDFS and Spark local carry ~a terabyte each way, giving the
 * paper's moderate 2.6x HDD/SSD local gap (Fig. 12).
 */

#ifndef DOPPIO_WORKLOADS_TERASORT_H
#define DOPPIO_WORKLOADS_TERASORT_H

#include "workloads/workload.h"

namespace doppio::workloads {

/** Spark Terasort. */
class Terasort : public Workload
{
  public:
    /** Dataset parameters (paper: 10B records, 930 GB). */
    struct Options
    {
        Bytes dataBytes = gib(930);
        /** Range partitions; 930 -> ~1 GiB per reducer. */
        int reducers = 930;
    };

    Terasort() = default;
    explicit Terasort(Options options) : options_(options) {}

    std::string name() const override { return "Terasort"; }
    const Options &options() const { return options_; }

    static constexpr const char *kStageNf = "NF";
    static constexpr const char *kStageSf = "SF";

    TenantProgram program(const std::string &prefix) const override;

  private:
    Options options_;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_TERASORT_H
