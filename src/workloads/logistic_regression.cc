#include "workloads/logistic_regression.h"

namespace doppio::workloads {

namespace {

/// Input parse pipelined with HDFS read: ~0.67 s per 128 MiB block,
/// light enough that dataValidator stays read-limited on both disk
/// types (the paper's LR-small HDD/SSD gap comes from HDFS read).
constexpr double kParseCpuPerByte = 5.0e-9;

/// Deserialization pipelined with persist reads of parsedData:
/// ~7 s per ~123 MiB partition. Light enough that the large dataset's
/// SSD iterations stay read-limited while HDD iterations are limited
/// by the 15x-slower disk-store reads, reproducing the paper's ~7x
/// gap (Fig. 8b).
constexpr double kDeserializeCpuPerByte = 5.5e-8;

/// Gradient computation per iteration: ~0.3 s per 128 MiB partition
/// (a dot-product pass at memory bandwidth).
constexpr double kGradientCpuPerByte = 2.3e-9;

} // namespace

Bytes
LogisticRegression::Options::parsedBytes() const
{
    // 280 GB at 1200M examples (paper); linear in example count.
    return static_cast<Bytes>(gib(280) * examplesMillions / 1200.0);
}

Bytes
LogisticRegression::Options::inputBytes() const
{
    // Raw text is slightly larger than the parsed vectors.
    return static_cast<Bytes>(static_cast<double>(parsedBytes()) * 1.03);
}

TenantProgram
LogisticRegression::program(const std::string &prefix) const
{
    using spark::ActionSpec;
    using spark::Rdd;
    using spark::RddRef;

    const Options options = options_;
    const std::string file = prefix + "lr_examples.txt";

    TenantProgram program;
    program.registerInputs = [options, file](dfs::Hdfs &hdfs) {
        hdfs.addFile(file, options.inputBytes());
    };
    program.buildJobs =
        [options, file](const HadoopFileFn &hadoopFile) {
            std::vector<TenantJob> jobs;
            RddRef input = hadoopFile(file);
            input->pipelinedCpuPerByte = kParseCpuPerByte;

            RddRef parsed = Rdd::narrow("parsedData", {input},
                                        options.parsedBytes());
            parsed->memoryBytes = options.parsedBytes();
            parsed->pipelinedCpuPerByte = kDeserializeCpuPerByte;
            parsed->persist(spark::StorageLevel::MemoryAndDisk);
            jobs.push_back(
                {kStageValidator, parsed, ActionSpec::count(), {}});

            for (int i = 0; i < options.iterations; ++i) {
                RddRef gradient =
                    Rdd::narrow(kStageIteration, {parsed}, mib(1));
                gradient->cpuPerInputByte = kGradientCpuPerByte;
                jobs.push_back({kStageIteration, gradient,
                                ActionSpec::collect(), {}});
            }
            return jobs;
        };
    return program;
}

} // namespace doppio::workloads
