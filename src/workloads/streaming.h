/**
 * @file
 * Micro-batch streaming workloads (Spark Streaming's DStream model).
 *
 * A streaming workload is defined by a template: how one micro-batch
 * of `batchBytes` of fresh input turns into a Spark job. Two
 * templates ship:
 *
 *  - "lr": a narrow scoring pipeline (parse + model application,
 *    collect) — pure HDFS-read plus compute, no shuffle. The
 *    streaming analogue of the LR workloads' iteration structure.
 *  - "agg": a keyed aggregation (parse, shuffle, count) — every batch
 *    exercises shuffle write + read, so its service time is
 *    I/O-coupled to co-tenants on both disks and network.
 *
 * Each batch reads its own input file (fresh stream data is never
 * page-cache resident from a previous batch). The Streaming workload
 * runs one stream alone on a fresh cluster via Workload::run() —
 * useful for isolated baselines and λ sweeps — while multi-tenant
 * runs attach the same templates to a shared cluster through
 * makeStreamingTemplate().
 */

#ifndef DOPPIO_WORKLOADS_STREAMING_H
#define DOPPIO_WORKLOADS_STREAMING_H

#include <functional>
#include <string>

#include "sched/streaming.h"
#include "workloads/workload.h"

namespace doppio::workloads {

/** One stream's inputs plus its per-batch job factory. */
struct StreamingTemplate
{
    /** Register every batch's input file (one per arrival). */
    std::function<void(dfs::Hdfs &)> registerInputs;
    /** Build batch k's job against the owning tenant context. */
    sched::BatchBuilder builder;
    /**
     * Build the checkpoint job covering state up to batch k: a state
     * RDD carrying Rdd::checkpoint(), so compiling it writes the
     * state through HDFS and truncates lineage there.
     */
    sched::CheckpointBuilder checkpointBuilder;
    /**
     * Build the recovery job: rebuild the state from the checkpoint
     * covering batch `checkpointBatch` (-1 = from scratch) plus a
     * replay of batches [first, last].
     */
    sched::RecoveryBuilder recoveryBuilder;
};

/**
 * @return the named template ("lr" or "agg"); fatal() on unknown
 * names. @p prefix namespaces the batch input files, @p batches and
 * @p batchBytes size the per-arrival input.
 */
StreamingTemplate makeStreamingTemplate(const std::string &name,
                                        const std::string &prefix,
                                        int batches, Bytes batchBytes);

/** A micro-batch stream as a standalone workload (isolated runs). */
class Streaming : public Workload
{
  public:
    struct Options
    {
        std::string tmpl = "lr"; //!< template name ("lr" or "agg")
        sched::StreamingOptions stream;
        Bytes batchBytes = 64 * kMiB;
    };

    Streaming() = default;
    explicit Streaming(Options options)
        : options_(std::move(options))
    {
    }

    std::string name() const override
    {
        return "Streaming-" + options_.tmpl;
    }
    const Options &options() const { return options_; }

    /** Run the stream alone on a fresh cluster (λ-sweep baseline). */
    spark::AppMetrics
    run(const cluster::ClusterConfig &clusterConfig,
        const spark::SparkConf &sparkConf,
        spark::TaskTrace *trace = nullptr,
        const faults::FaultSpec *faultSpec = nullptr,
        trace::TraceCollector *collector = nullptr,
        telemetry::Registry *registry = nullptr) const override;

  private:
    Options options_;
};

} // namespace doppio::workloads

#endif // DOPPIO_WORKLOADS_STREAMING_H
