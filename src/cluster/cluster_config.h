/**
 * @file
 * Cluster and node configuration.
 *
 * Mirrors the paper's Tables I-III: each slave node has a core count,
 * RAM, a Spark executor memory budget with a storage fraction, one disk
 * for HDFS and one for the Spark local directory (spark.local.dir), and
 * a 10 Gb/s NIC. The four HDD/SSD hybrid configurations of Table III
 * are provided as named factories.
 */

#ifndef DOPPIO_CLUSTER_CLUSTER_CONFIG_H
#define DOPPIO_CLUSTER_CLUSTER_CONFIG_H

#include <cstdint>
#include <string>

#include "common/units.h"
#include "oscache/page_cache.h"
#include "storage/disk_params.h"

namespace doppio::cluster {

/** Configuration of one slave node (Table I). */
struct NodeConfig
{
    int cores = 36;                 //!< 2x Xeon E5-2699 v3
    Bytes ram = 128 * kGiB;
    Bytes executorMemory = 90 * kGiB; //!< SPARK_WORKER_MEMORY
    /// Fraction of executor memory usable as RDD storage (paper assumes
    /// "around 40% of the entire Spark executor memory").
    double storageFraction = 0.4;
    storage::DiskParams hdfsDisk;   //!< device backing HDFS
    storage::DiskParams localDisk;  //!< device backing spark.local.dir
    /**
     * Number of devices striped behind each role (JBOD: Spark
     * round-robins spark.local.dir across disks; HDFS stripes blocks).
     * The paper: "our model relates to disk bandwidth rather than
     * disk number. Thus, it is general enough to support the
     * multi-disk case" — aggregate bandwidth scales with the count.
     */
    int hdfsDiskCount = 1;
    int localDiskCount = 1;
    /**
     * OS page-cache model fronting both device sets (disabled by
     * default so calibrated runs match the drop_caches methodology the
     * paper profiles under; the CLI enables it unless
     * --no-page-cache). capacity == 0 resolves to ram -
     * executorMemory, the memory the OS actually had left on the
     * testbed.
     */
    oscache::PageCacheConfig pageCache;

    /** @return bytes of RDD storage memory on this node. */
    Bytes
    storageMemory() const
    {
        return static_cast<Bytes>(
            static_cast<double>(executorMemory) * storageFraction);
    }
};

/** Table III: which device backs HDFS and Spark local. */
struct HybridConfig
{
    storage::DiskType hdfs = storage::DiskType::Ssd;
    storage::DiskType local = storage::DiskType::Ssd;

    /** @return e.g. "HDFS=SSD/Local=HDD". */
    std::string name() const;

    /** Table III column 1: SSD + SSD ("2SSD"). */
    static HybridConfig config1() { return {storage::DiskType::Ssd,
                                            storage::DiskType::Ssd}; }
    /** Table III column 2: HDD HDFS + SSD local. */
    static HybridConfig config2() { return {storage::DiskType::Hdd,
                                            storage::DiskType::Ssd}; }
    /** Table III column 3: SSD HDFS + HDD local. */
    static HybridConfig config3() { return {storage::DiskType::Ssd,
                                            storage::DiskType::Hdd}; }
    /** Table III column 4: HDD + HDD ("2HDD"). */
    static HybridConfig config4() { return {storage::DiskType::Hdd,
                                            storage::DiskType::Hdd}; }
};

/** Whole-cluster configuration. */
struct ClusterConfig
{
    int numSlaves = 3;
    NodeConfig node;
    BytesPerSec networkBandwidth = gibps(10.0 / 8.0); //!< 10 Gb/s NIC
    std::uint64_t seed = 42;  //!< root seed for all stochastic parts
    double taskJitterSigma = 0.04; //!< lognormal task-time jitter shape
    /**
     * Straggler injection: each task is slowed by stragglerSlowdown
     * with this probability (degraded disk, noisy neighbor, thermal
     * throttling). Used to exercise speculative execution.
     */
    double stragglerProbability = 0.0;
    double stragglerSlowdown = 5.0;

    /** Apply a Table III hybrid disk configuration to every node. */
    void applyHybrid(const HybridConfig &hybrid);

    /**
     * The paper's motivation cluster (§III): four nodes, one master,
     * three slaves, 36 executor cores each.
     */
    static ClusterConfig motivationCluster();

    /**
     * The paper's evaluation cluster (§V): eleven nodes, one master,
     * ten slaves.
     */
    static ClusterConfig evaluationCluster();
};

} // namespace doppio::cluster

#endif // DOPPIO_CLUSTER_CLUSTER_CONFIG_H
