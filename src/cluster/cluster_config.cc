#include "cluster/cluster_config.h"

namespace doppio::cluster {

std::string
HybridConfig::name() const
{
    return std::string("HDFS=") + storage::diskTypeName(hdfs) +
           "/Local=" + storage::diskTypeName(local);
}

namespace {

storage::DiskParams
paramsFor(storage::DiskType type)
{
    return type == storage::DiskType::Hdd ? storage::makeHddParams()
                                          : storage::makeSsdParams();
}

} // namespace

void
ClusterConfig::applyHybrid(const HybridConfig &hybrid)
{
    node.hdfsDisk = paramsFor(hybrid.hdfs);
    node.localDisk = paramsFor(hybrid.local);
}

ClusterConfig
ClusterConfig::motivationCluster()
{
    ClusterConfig config;
    config.numSlaves = 3;
    config.node.cores = 36;
    config.applyHybrid(HybridConfig::config1());
    return config;
}

ClusterConfig
ClusterConfig::evaluationCluster()
{
    ClusterConfig config;
    config.numSlaves = 10;
    config.node.cores = 36;
    config.applyHybrid(HybridConfig::config1());
    return config;
}

} // namespace doppio::cluster
