#include "cluster/cluster.h"

#include "common/logging.h"
#include "trace/trace_collector.h"

namespace doppio::cluster {

Node::Node(sim::Simulator &simulator, const NodeConfig &config, int id)
    : config_(config), id_(id)
{
    if (config.hdfsDiskCount <= 0 || config.localDiskCount <= 0)
        fatal("Node: disk counts must be positive");
    const std::string prefix = "node" + std::to_string(id);
    for (int d = 0; d < config.hdfsDiskCount; ++d) {
        hdfsDisks_.push_back(std::make_unique<storage::DiskDevice>(
            simulator, config.hdfsDisk,
            prefix + "/hdfs" + std::to_string(d)));
    }
    for (int d = 0; d < config.localDiskCount; ++d) {
        localDisks_.push_back(std::make_unique<storage::DiskDevice>(
            simulator, config.localDisk,
            prefix + "/local" + std::to_string(d)));
    }
    if (config.pageCache.enabled) {
        oscache::PageCacheConfig cache_config = config.pageCache;
        if (cache_config.capacity == 0) {
            // Auto: the memory the OS has left beside the executor
            // heap (paper testbed: 128 GB - 90 GB).
            if (config.ram <= config.executorMemory)
                fatal("Node: page cache enabled but executor memory "
                      "leaves no free RAM");
            cache_config.capacity = config.ram - config.executorMemory;
        }
        pageCache_ = std::make_unique<oscache::PageCache>(
            simulator, cache_config,
            [this]() -> storage::DiskDevice & { return pickHdfsDisk(); },
            [this]() -> storage::DiskDevice & { return pickLocalDisk(); },
            prefix + "/pagecache");
    }
}

void
Node::readThrough(oscache::Role role, storage::IoOp op,
                  std::uint64_t stream, Bytes offset, Bytes chunk,
                  std::uint64_t count, std::function<void()> done)
{
    if (pageCache_ == nullptr || stream == oscache::kAnonymousStream) {
        storage::DiskDevice &disk = role == oscache::Role::Hdfs
                                        ? pickHdfsDisk()
                                        : pickLocalDisk();
        if (count == 1)
            disk.submit(op, chunk, std::move(done));
        else
            disk.submitBatch(op, chunk, count, std::move(done));
        return;
    }
    pageCache_->read(role, op, stream, offset, chunk, count,
                     std::move(done));
}

void
Node::writeThrough(oscache::Role role, storage::IoOp op,
                   std::uint64_t stream, Bytes offset, Bytes chunk,
                   std::uint64_t count, std::function<void()> done)
{
    if (pageCache_ == nullptr || stream == oscache::kAnonymousStream) {
        storage::DiskDevice &disk = role == oscache::Role::Hdfs
                                        ? pickHdfsDisk()
                                        : pickLocalDisk();
        if (count == 1)
            disk.submit(op, chunk, std::move(done));
        else
            disk.submitBatch(op, chunk, count, std::move(done));
        return;
    }
    pageCache_->write(role, op, stream, offset, chunk, count,
                      std::move(done));
}

void
Node::setDegradedFactor(double factor)
{
    for (auto &disk : hdfsDisks_)
        disk->setDegradedFactor(factor);
    for (auto &disk : localDisks_)
        disk->setDegradedFactor(factor);
}

Bytes
Node::dropPageCacheForFailure()
{
    if (!pageCache_)
        return 0;
    return pageCache_->dropForFailure();
}

void
Node::reset()
{
    nextHdfs_ = 0;
    nextLocal_ = 0;
    // A degraded-device factor is runtime state too: without this a
    // fault run would leave the next (supposedly clean) run on slow
    // devices.
    setDegradedFactor(1.0);
    if (pageCache_)
        pageCache_->reset();
}

void
Node::setTrace(trace::TraceCollector *trace)
{
    const int pid = trace::nodePid(id_);
    for (std::size_t d = 0; d < hdfsDisks_.size(); ++d) {
        const int tid = trace::kTidHdfsDiskBase + static_cast<int>(d);
        hdfsDisks_[d]->setTrace(trace, pid, tid);
        if (trace)
            trace->setThreadName(pid, tid,
                                 "hdfs disk " + std::to_string(d));
    }
    for (std::size_t d = 0; d < localDisks_.size(); ++d) {
        const int tid = trace::kTidLocalDiskBase + static_cast<int>(d);
        localDisks_[d]->setTrace(trace, pid, tid);
        if (trace)
            trace->setThreadName(pid, tid,
                                 "local disk " + std::to_string(d));
    }
    if (pageCache_) {
        pageCache_->setTrace(trace, pid, trace::kTidPageCache);
        if (trace)
            trace->setThreadName(pid, trace::kTidPageCache,
                                 "page cache");
    }
    if (trace) {
        trace->setProcessName(pid, "node" + std::to_string(id_));
        trace->setThreadName(pid, trace::kTidNetIn, "nic ingress");
    }
}

storage::DiskDevice &
Node::pickHdfsDisk()
{
    storage::DiskDevice &disk = *hdfsDisks_[nextHdfs_];
    nextHdfs_ = (nextHdfs_ + 1) % hdfsDisks_.size();
    return disk;
}

storage::DiskDevice &
Node::pickLocalDisk()
{
    storage::DiskDevice &disk = *localDisks_[nextLocal_];
    nextLocal_ = (nextLocal_ + 1) % localDisks_.size();
    return disk;
}

Cluster::Cluster(sim::Simulator &simulator, ClusterConfig config)
    : sim_(simulator), config_(std::move(config))
{
    if (config_.numSlaves <= 0)
        fatal("Cluster: need at least one slave node");
    if (config_.node.cores <= 0)
        fatal("Cluster: nodes need at least one core");
    nodes_.reserve(static_cast<std::size_t>(config_.numSlaves));
    for (int n = 0; n < config_.numSlaves; ++n)
        nodes_.push_back(std::make_unique<Node>(sim_, config_.node, n));
    network_ = std::make_unique<net::Network>(
        sim_, config_.numSlaves, config_.networkBandwidth);
    alive_.assign(static_cast<std::size_t>(config_.numSlaves), true);
    aliveCount_ = config_.numSlaves;
    memoryFractions_.assign(static_cast<std::size_t>(config_.numSlaves),
                            1.0);
    computeSlowdowns_.assign(
        static_cast<std::size_t>(config_.numSlaves), 1.0);
}

std::vector<int>
Cluster::aliveNodes() const
{
    std::vector<int> nodes;
    nodes.reserve(static_cast<std::size_t>(aliveCount_));
    for (int n = 0; n < config_.numSlaves; ++n) {
        if (alive_[static_cast<std::size_t>(n)])
            nodes.push_back(n);
    }
    return nodes;
}

void
Cluster::setNodeAlive(int id, bool alive)
{
    if (id < 0 || id >= config_.numSlaves)
        fatal("Cluster: setNodeAlive on invalid node %d", id);
    if (alive_[static_cast<std::size_t>(id)] == alive)
        return;
    if (!alive && aliveCount_ <= 1)
        fatal("Cluster: cannot kill node %d, it is the last one alive",
              id);
    alive_[static_cast<std::size_t>(id)] = alive;
    aliveCount_ += alive ? 1 : -1;
    if (trace_)
        trace_->instant(trace::kDriverPid, trace::kTidFaults, "fault",
                        alive ? "node_up" : "node_down", sim_.now(),
                        trace::TraceArgs().add("node", id));
    if (!alive)
        lostDirtyBytes_ += nodes_[static_cast<std::size_t>(id)]
                               ->dropPageCacheForFailure();
    for (const LivenessObserver &observer : observers_)
        observer(id, alive);
}

void
Cluster::addLivenessObserver(LivenessObserver observer)
{
    observers_.push_back(std::move(observer));
}

void
Cluster::setMemoryFraction(int id, double fraction)
{
    if (id < 0 || id >= config_.numSlaves)
        fatal("Cluster: setMemoryFraction on invalid node %d", id);
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("Cluster: memory fraction must be in (0, 1], got %g",
              fraction);
    memoryFractions_[static_cast<std::size_t>(id)] = fraction;
    if (trace_)
        trace_->instant(trace::kDriverPid, trace::kTidFaults, "fault",
                        "degrade_mem", sim_.now(),
                        trace::TraceArgs()
                            .add("node", id)
                            .add("fraction", fraction));
    for (const MemoryObserver &observer : memoryObservers_)
        observer(id, fraction);
}

void
Cluster::addMemoryObserver(MemoryObserver observer)
{
    memoryObservers_.push_back(std::move(observer));
}

void
Cluster::setComputeSlowdown(int id, double factor)
{
    if (id < 0 || id >= config_.numSlaves)
        fatal("Cluster: setComputeSlowdown on invalid node %d", id);
    if (factor < 1.0)
        fatal("Cluster: compute slowdown must be >= 1, got %g", factor);
    computeSlowdowns_[static_cast<std::size_t>(id)] = factor;
    if (trace_)
        trace_->instant(trace::kDriverPid, trace::kTidFaults, "fault",
                        "slow_node", sim_.now(),
                        trace::TraceArgs()
                            .add("node", id)
                            .add("factor", factor));
}

Bytes
Cluster::totalStorageMemory() const
{
    return static_cast<Bytes>(config_.numSlaves) *
           config_.node.storageMemory();
}

oscache::PageCacheStats
Cluster::pageCacheTotals() const
{
    oscache::PageCacheStats totals;
    for (const auto &node : nodes_) {
        if (node->pageCache() != nullptr)
            totals += node->pageCache()->stats();
    }
    return totals;
}

void
Cluster::setTraceCollector(trace::TraceCollector *trace)
{
    trace_ = trace;
    for (auto &node : nodes_)
        node->setTrace(trace);
    network_->setTrace(trace);
    if (trace) {
        trace->setProcessName(trace::kDriverPid, "driver");
        trace->setThreadName(trace::kDriverPid, trace::kTidStages,
                             "stages");
        trace->setThreadName(trace::kDriverPid, trace::kTidFaults,
                             "faults");
        trace->setThreadName(trace::kDriverPid, trace::kTidHdfs,
                             "hdfs namenode");
    }
}

void
Cluster::reset()
{
    for (auto &node : nodes_)
        node->reset();
    alive_.assign(static_cast<std::size_t>(config_.numSlaves), true);
    aliveCount_ = config_.numSlaves;
    memoryFractions_.assign(static_cast<std::size_t>(config_.numSlaves),
                            1.0);
    computeSlowdowns_.assign(
        static_cast<std::size_t>(config_.numSlaves), 1.0);
    network_->heal();
    lostDirtyBytes_ = 0;
}

} // namespace doppio::cluster
