/**
 * @file
 * Runtime cluster: nodes with disks, wired to a network fabric.
 *
 * A Cluster instantiates one Node per slave, each owning two DiskDevice
 * instances (HDFS and spark.local.dir) so I/O purposes contend exactly
 * where they did on the paper's testbed.
 */

#ifndef DOPPIO_CLUSTER_CLUSTER_H
#define DOPPIO_CLUSTER_CLUSTER_H

#include <memory>
#include <vector>

#include "cluster/cluster_config.h"
#include "net/network.h"
#include "oscache/page_cache.h"
#include "sim/simulator.h"
#include "storage/disk_device.h"

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::cluster {

/**
 * One slave node: executor cores plus its disks. Each role (HDFS,
 * spark.local.dir) may be backed by several identical devices (JBOD);
 * accesses spread round-robin, as Spark/HDFS do.
 */
class Node
{
  public:
    Node(sim::Simulator &simulator, const NodeConfig &config, int id);

    int id() const { return id_; }
    int cores() const { return config_.cores; }
    const NodeConfig &config() const { return config_; }

    /** @return device @p index backing the HDFS data directory. */
    storage::DiskDevice &hdfsDisk(int index = 0)
    {
        return *hdfsDisks_[static_cast<std::size_t>(index)];
    }
    const storage::DiskDevice &hdfsDisk(int index = 0) const
    {
        return *hdfsDisks_[static_cast<std::size_t>(index)];
    }

    /** @return device @p index backing spark.local.dir. */
    storage::DiskDevice &localDisk(int index = 0)
    {
        return *localDisks_[static_cast<std::size_t>(index)];
    }
    const storage::DiskDevice &localDisk(int index = 0) const
    {
        return *localDisks_[static_cast<std::size_t>(index)];
    }

    int hdfsDiskCount() const
    {
        return static_cast<int>(hdfsDisks_.size());
    }
    int localDiskCount() const
    {
        return static_cast<int>(localDisks_.size());
    }

    /** @return the next HDFS device in round-robin order. */
    storage::DiskDevice &pickHdfsDisk();

    /** @return the next spark.local.dir device in round-robin order. */
    storage::DiskDevice &pickLocalDisk();

    /** @return the node's page cache, or nullptr when disabled. */
    oscache::PageCache *pageCache() { return pageCache_.get(); }
    const oscache::PageCache *pageCache() const
    {
        return pageCache_.get();
    }

    /**
     * Read @p count chunks of @p chunk bytes from the @p role device
     * set, through the page cache when it is enabled and the traffic
     * carries a cache identity (@p stream != kAnonymousStream).
     * Otherwise the request goes straight to the round-robin device —
     * bit-for-bit the pre-page-cache behaviour.
     */
    void readThrough(oscache::Role role, storage::IoOp op,
                     std::uint64_t stream, Bytes offset, Bytes chunk,
                     std::uint64_t count, std::function<void()> done);

    /** Write-side counterpart of readThrough(). */
    void writeThrough(oscache::Role role, storage::IoOp op,
                      std::uint64_t stream, Bytes offset, Bytes chunk,
                      std::uint64_t count, std::function<void()> done);

    /**
     * Scale the service time of every device on this node by
     * @p factor (>= 1; 1 restores full speed) — the fault injector's
     * degraded-device mode (failing controller, thermal throttling).
     */
    void setDegradedFactor(double factor);

    /**
     * Node-failure cache loss: discard the page cache's contents,
     * including dirty extents that were never written back.
     * @return the dirty bytes lost. Safe while I/O is in flight
     * (in-flight callbacks find an empty cache). No-op without a
     * page cache.
     */
    Bytes dropPageCacheForFailure();

    /**
     * Reset mutable runtime state — the round-robin picker cursors and
     * the page-cache contents/statistics — so back-to-back simulations
     * in one process start from identical state.
     */
    void reset();

    /**
     * Attach an optional trace collector (non-owning; may be null) to
     * this node's devices and page cache, and register the node's
     * track names with it.
     */
    void setTrace(trace::TraceCollector *trace);

  private:
    NodeConfig config_;
    int id_;
    std::vector<std::unique_ptr<storage::DiskDevice>> hdfsDisks_;
    std::vector<std::unique_ptr<storage::DiskDevice>> localDisks_;
    std::unique_ptr<oscache::PageCache> pageCache_;
    std::size_t nextHdfs_ = 0;
    std::size_t nextLocal_ = 0;
};

/** The slave fleet plus network fabric. The master node is implicit. */
class Cluster
{
  public:
    Cluster(sim::Simulator &simulator, ClusterConfig config);

    sim::Simulator &simulator() { return sim_; }
    const ClusterConfig &config() const { return config_; }

    int numSlaves() const { return config_.numSlaves; }

    Node &node(int id) { return *nodes_[static_cast<std::size_t>(id)]; }
    const Node &node(int id) const
    {
        return *nodes_[static_cast<std::size_t>(id)];
    }

    net::Network &network() { return *network_; }
    const net::Network &network() const { return *network_; }

    /** Observer of node liveness transitions (fault injection). */
    using LivenessObserver = std::function<void(int node, bool alive)>;

    /** @return true when node @p id is up (always true by default). */
    bool nodeAlive(int id) const
    {
        return alive_[static_cast<std::size_t>(id)];
    }

    /** @return number of nodes currently up. */
    int aliveCount() const { return aliveCount_; }

    /** @return ids of the nodes currently up, ascending. */
    std::vector<int> aliveNodes() const;

    /**
     * Kill (@p alive false) or rejoin (@p alive true) a node. A kill
     * drops the node's page cache (dirty extents are counted as lost
     * writes); a rejoined node comes back empty. Observers are
     * notified after the state change, in registration order. No-op
     * when the state does not change.
     */
    void setNodeAlive(int id, bool alive);

    /** Register a liveness observer (never unregistered). */
    void addLivenessObserver(LivenessObserver observer);

    /**
     * Observer of per-node memory-pool changes (the fault DSL's
     * degrade-mem event). The spark layer's memory manager subscribes;
     * the cluster itself only records the fraction, keeping the
     * cluster -> spark layering acyclic.
     */
    using MemoryObserver = std::function<void(int node, double fraction)>;

    /**
     * Scale node @p id's usable executor-memory pool to @p fraction of
     * its configured size ((0, 1]; 1 restores it). Observers are
     * notified after the fraction is recorded, in registration order.
     */
    void setMemoryFraction(int id, double fraction);

    /** @return node @p id's current memory fraction (1 by default). */
    double memoryFraction(int id) const
    {
        return memoryFractions_[static_cast<std::size_t>(id)];
    }

    /** Register a memory observer (never unregistered). */
    void addMemoryObserver(MemoryObserver observer);

    /**
     * Gray failure: scale the compute speed of tasks on node @p id by
     * @p factor (>= 1; 1 restores). Unlike setNodeAlive(false) the
     * node keeps heartbeating and serving I/O, so nothing is retried
     * or re-replicated — tasks placed there just run slower, which is
     * exactly the signal the speculation machinery exists to detect.
     */
    void setComputeSlowdown(int id, double factor);

    /** @return node @p id's gray compute slowdown (1 by default). */
    double computeSlowdown(int id) const
    {
        return computeSlowdowns_[static_cast<std::size_t>(id)];
    }

    /** @return dirty page-cache bytes lost to node kills so far. */
    Bytes lostDirtyBytes() const { return lostDirtyBytes_; }

    /** @return cluster-wide RDD storage memory (sum over slaves). */
    Bytes totalStorageMemory() const;

    /** @return true when the nodes run the page-cache model. */
    bool pageCacheEnabled() const
    {
        return config_.node.pageCache.enabled;
    }

    /** @return page-cache counters summed over all nodes. */
    oscache::PageCacheStats pageCacheTotals() const;

    /** Reset every node's runtime state (see Node::reset()). */
    void reset();

    /**
     * Attach an optional trace collector (non-owning; may be null) to
     * every node's devices and page cache and to the network fabric.
     * Liveness and memory-fraction transitions then also emit instant
     * events on the driver's fault track.
     */
    void setTraceCollector(trace::TraceCollector *trace);

    /** @return the attached trace collector (null when none). */
    trace::TraceCollector *traceCollector() { return trace_; }

  private:
    sim::Simulator &sim_;
    ClusterConfig config_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<net::Network> network_;
    std::vector<bool> alive_;
    int aliveCount_ = 0;
    std::vector<LivenessObserver> observers_;
    std::vector<double> memoryFractions_;
    std::vector<MemoryObserver> memoryObservers_;
    std::vector<double> computeSlowdowns_;
    Bytes lostDirtyBytes_ = 0;
    /// Optional telemetry hook (non-owning).
    trace::TraceCollector *trace_ = nullptr;
};

} // namespace doppio::cluster

#endif // DOPPIO_CLUSTER_CLUSTER_H
