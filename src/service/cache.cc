#include "service/cache.h"

#include "common/logging.h"

namespace doppio::service {

ResultCache::ResultCache(std::size_t shards, std::size_t capacityPerShard)
{
    if (shards == 0)
        fatal("ResultCache: shards must be positive");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.emplace_back(capacityPerShard);
}

std::uint64_t
ResultCache::fnv1a(const std::string &key)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (const char c : key) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

common::LruCache<std::string, Response> &
ResultCache::shardFor(const std::string &key)
{
    return shards_[fnv1a(key) % shards_.size()];
}

const Response *
ResultCache::get(const std::string &key)
{
    return shardFor(key).get(key);
}

void
ResultCache::put(const std::string &key, const Response &response)
{
    shardFor(key).put(key, response);
}

std::uint64_t
ResultCache::hits() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.hits();
    return total;
}

std::uint64_t
ResultCache::misses() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.misses();
    return total;
}

std::uint64_t
ResultCache::evictions() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.evictions();
    return total;
}

std::size_t
ResultCache::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_)
        total += shard.size();
    return total;
}

bool
SingleFlight::begin(const std::string &key)
{
    return inFlight_.emplace(key, std::vector<std::uint64_t>{}).second;
}

void
SingleFlight::attach(const std::string &key, std::uint64_t seq)
{
    const auto it = inFlight_.find(key);
    if (it == inFlight_.end())
        panic("SingleFlight: attach to key with no leader");
    it->second.push_back(seq);
    ++joins_;
}

bool
SingleFlight::inFlight(const std::string &key) const
{
    return inFlight_.count(key) > 0;
}

std::vector<std::uint64_t>
SingleFlight::finish(const std::string &key)
{
    const auto it = inFlight_.find(key);
    if (it == inFlight_.end())
        return {};
    std::vector<std::uint64_t> followers = std::move(it->second);
    inFlight_.erase(it);
    return followers;
}

} // namespace doppio::service
