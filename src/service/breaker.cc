#include "service/breaker.h"

#include "common/logging.h"

namespace doppio::service {

CircuitBreaker::CircuitBreaker(Config config) : config_(config)
{
    if (config_.latencyThresholdMs <= 0.0)
        fatal("CircuitBreaker: latencyThresholdMs must be positive");
    if (config_.emaAlpha <= 0.0 || config_.emaAlpha > 1.0)
        fatal("CircuitBreaker: emaAlpha must be in (0, 1]");
    if (config_.cooldownMs < 0.0)
        fatal("CircuitBreaker: cooldownMs must be non-negative");
}

const char *
CircuitBreaker::stateName() const
{
    switch (state_) {
    case State::Closed: return "closed";
    case State::Open: return "open";
    case State::HalfOpen: return "half-open";
    }
    return "?";
}

void
CircuitBreaker::transition(State to, double nowMs)
{
    inStateMs_[static_cast<int>(state_)] +=
        nowMs - stateEnteredAtMs_;
    state_ = to;
    stateEnteredAtMs_ = nowMs;
}

double
CircuitBreaker::timeInStateMs(State state, double nowMs) const
{
    double total = inStateMs_[static_cast<int>(state)];
    if (state == state_)
        total += nowMs - stateEnteredAtMs_;
    return total;
}

void
CircuitBreaker::trip(double nowMs)
{
    if (state_ == State::Open)
        return;
    transition(State::Open, nowMs);
    openedAtMs_ = nowMs;
    probeInFlight_ = false;
    ++trips_;
    if (openObserver_)
        openObserver_(nowMs);
}

bool
CircuitBreaker::allowSlowPath(double nowMs)
{
    if (state_ == State::Closed)
        return true;
    if (state_ == State::Open) {
        if (nowMs - openedAtMs_ < config_.cooldownMs)
            return false;
        transition(State::HalfOpen, nowMs);
        probeInFlight_ = false;
    }
    // HalfOpen: one probe at a time.
    if (probeInFlight_)
        return false;
    probeInFlight_ = true;
    return true;
}

void
CircuitBreaker::recordSlowPath(double costMs, double nowMs)
{
    emaMs_ = emaSeeded_
                 ? (1.0 - config_.emaAlpha) * emaMs_ +
                       config_.emaAlpha * costMs
                 : costMs;
    emaSeeded_ = true;
    if (state_ == State::HalfOpen) {
        probeInFlight_ = false;
        if (costMs <= config_.latencyThresholdMs) {
            transition(State::Closed, nowMs);
            // A healthy probe forgives the pre-trip history.
            emaMs_ = costMs;
        } else {
            trip(nowMs);
        }
        return;
    }
    if (state_ == State::Closed && emaMs_ > config_.latencyThresholdMs)
        trip(nowMs);
}

void
CircuitBreaker::recordFailure(double nowMs)
{
    if (state_ == State::HalfOpen)
        probeInFlight_ = false;
    trip(nowMs);
}

void
CircuitBreaker::releaseProbe()
{
    if (state_ == State::HalfOpen)
        probeInFlight_ = false;
}

void
CircuitBreaker::noteQueueDepth(std::size_t depth, double nowMs)
{
    if (state_ == State::Closed && depth >= config_.depthThreshold)
        trip(nowMs);
}

} // namespace doppio::service
