/**
 * @file
 * Real TCP loop behind the planning service (DESIGN.md §14).
 *
 * Deliberately minimal: one connection at a time, blocking reads,
 * line-buffered. Every line is answered synchronously through
 * PlanningService::handleLineNow with a monotonic wall-derived clock,
 * so the TCP path shares the cache, token bucket, circuit breaker and
 * budgeted planner with the deterministic in-process transport — only
 * the queue/dedup machinery (which needs virtual time) is bypassed.
 */

#include <chrono>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "service/server.h"

namespace doppio::service {

namespace {

void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, 0);
        if (n <= 0)
            return; // peer went away; drop the rest
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

std::uint64_t
serveTcp(PlanningService &service, int port, std::uint64_t maxRequests)
{
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0)
        fatal("serve: socket() failed: %s", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        const std::string why = std::strerror(errno);
        ::close(listener);
        fatal("serve: bind(%d) failed: %s", port, why.c_str());
    }
    if (::listen(listener, 8) < 0) {
        const std::string why = std::strerror(errno);
        ::close(listener);
        fatal("serve: listen() failed: %s", why.c_str());
    }

    const auto start = std::chrono::steady_clock::now();
    const auto nowMs = [&start]() -> double {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    std::uint64_t served = 0;
    while (maxRequests == 0 || served < maxRequests) {
        const int conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0)
            continue;
        std::string buffer;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            buffer.append(chunk, static_cast<std::size_t>(n));
            std::size_t eol;
            while ((eol = buffer.find('\n')) != std::string::npos) {
                std::string line = buffer.substr(0, eol);
                buffer.erase(0, eol + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (line.empty())
                    continue;
                sendAll(conn,
                        service.handleLineNow(line, nowMs()) + "\n");
                ++served;
                if (maxRequests != 0 && served >= maxRequests)
                    break;
            }
            if (maxRequests != 0 && served >= maxRequests)
                break;
        }
        ::close(conn);
    }
    ::close(listener);
    return served;
}

} // namespace doppio::service
