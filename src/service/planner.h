/**
 * @file
 * Deadline-budgeted what-if planner (DESIGN.md §14).
 *
 * Answers one plan query — "what cluster/disk configuration for
 * workload W under budget B or deadline D" — by running the paper's
 * pipeline (profile -> fit Eq. 1 -> grid search -> validate) under a
 * per-request deadline budget:
 *
 *   - Profiling charges each sample run's simulated duration against
 *     the budget via Profiler::Options::onSample; an expired budget
 *     aborts the methodology between runs.
 *   - Grid evaluation charges a fixed virtual cost per cell through
 *     CostOptimizer::evaluatePrefix; an expired budget yields the
 *     completed prefix — a partial-but-valid answer flagged degraded.
 *   - Validation (re-simulating the winning configuration under the
 *     service's fault spec) is skipped when the budget ran out or the
 *     circuit breaker is open, flagging the answer model-only.
 *
 * Transient slow-path failures (injected via evalFailRate, standing in
 * for a crashed simulator worker) are retried with capped exponential
 * backoff plus deterministic jitter; the backoff sleeps are charged
 * against the same budget, so a flapping slow path degrades into a
 * deadline miss instead of unbounded retry.
 *
 * All costs are virtual milliseconds derived from deterministic
 * quantities (simulated seconds x msPerSimSecond, fixed cellCostMs),
 * never wall clock — a replayed query trace yields a byte-identical
 * response transcript.
 */

#ifndef DOPPIO_SERVICE_PLANNER_H
#define DOPPIO_SERVICE_PLANNER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cloud/optimizer.h"
#include "common/lru_cache.h"
#include "common/random.h"
#include "common/units.h"
#include "faults/fault_spec.h"
#include "service/protocol.h"
#include "workloads/workload.h"

namespace doppio::service {

/**
 * One request's service-side deadline budget, in virtual ms. charge()
 * clamps at the total so a request that exhausts its budget completes
 * exactly at its deadline, never past it — the admission invariant
 * "answered within timeout_ms or flagged degraded" is enforced by
 * construction.
 */
class DeadlineBudget
{
  public:
    explicit DeadlineBudget(double totalMs);

    /** Spend up to @p ms; @return the amount actually charged. */
    double charge(double ms);

    bool exhausted() const { return spentMs_ >= totalMs_; }
    double spentMs() const { return spentMs_; }
    double remainingMs() const { return totalMs_ - spentMs_; }
    double totalMs() const { return totalMs_; }

  private:
    double totalMs_;
    double spentMs_ = 0.0;
};

/** Planner tuning; defaults are the service defaults. */
struct PlannerConfig
{
    /** Slave count of the profiling sample cluster. */
    int sampleNodes = 3;
    /** Fleet size when a query does not name one. */
    int defaultWorkers = 4;
    /**
     * Virtual ms charged per simulated second of a slow-path run. The
     * default makes a full profile-fit-search-validate pass for the
     * small workloads (~570k simulated seconds-of-slow-path for
     * lr-small) land near 11.5k virtual ms — comfortably inside the
     * service's 20s default timeout, with headroom for retries.
     */
    double msPerSimSecond = 0.02;
    /** Virtual ms charged per model grid cell evaluated. */
    double cellCostMs = 5.0;
    /** Transient slow-path failure retries before giving up. */
    int maxRetries = 3;
    double backoffBaseMs = 50.0;  //!< first retry backoff
    double backoffMaxMs = 1000.0; //!< exponential backoff cap
    double backoffJitter = 0.2;   //!< uniform jitter fraction on top
    /** Injected per-attempt transient slow-path failure probability. */
    double evalFailRate = 0.0;
    std::uint64_t seed = 42; //!< failure/jitter draws + sim clusters
    /** Validate the winning configuration with a simulator run. */
    bool validate = true;
    /** Fitted models kept hot (LRU), keyed by workload + fleet size. */
    std::size_t modelCacheCapacity = 8;
    /** Faults injected into every slow-path simulator run. */
    faults::FaultSpec faults;
    /** Disk-size grid; empty = coarseSizeGrid(). */
    std::vector<Bytes> sizeGrid;
    /**
     * Persistent model store (DESIGN.md §16): fitted Eq. 1 constants
     * are loaded from this file at construction and saved after every
     * fresh profile, so a restarted service skips the four-sample
     * profiling runs for workloads it has seen. Empty = off.
     */
    std::string modelStorePath;
    /**
     * Threads for the batched grid sweep (real CPU only — virtual
     * cell accounting is unchanged, so transcripts stay byte-identical
     * for any value). 1 = inline, 0 = one per hardware core.
     */
    int sweepJobs = 1;
};

/** One plan() outcome: the wire response plus breaker-facing facts. */
struct PlanResult
{
    /** id / t_ms / cache / latency_ms left for the server to fill. */
    Response response;
    bool usedSlowPath = false;
    /** This request's total virtual slow-path cost (breaker EMA). */
    double slowPathMs = 0.0;
    /** Slow path gave up (retries exhausted) — a breaker failure. */
    bool slowPathFailed = false;
};

/** Cumulative planner counters feeding ServiceStats. */
struct PlannerTotals
{
    std::uint64_t retries = 0;
    double backoffMsTotal = 0.0;
    std::uint64_t slowPathRuns = 0;
    double slowPathMsTotal = 0.0;
    std::uint64_t partitionTimeouts = 0;
    std::uint64_t slowPathTaskRetries = 0;
    /** Optimizer evaluation-memo hits across all cached models. */
    std::uint64_t cellsMemoHit = 0;
    /** Cells branch-and-bound pruned (CLI/advisor paths via entries). */
    std::uint64_t cellsPruned = 0;
    /** Profiling runs skipped via the persistent model store. */
    std::uint64_t modelStoreHits = 0;
};

/** The deadline-budgeted profile/fit/search/validate pipeline. */
class Planner
{
  public:
    explicit Planner(PlannerConfig config);

    /**
     * Would @p req be answerable without profiling (model already
     * cached)? The server consults this before the circuit breaker:
     * open breaker + cached model = model-only answer; open breaker +
     * no model = shed.
     */
    bool hasModel(const Request &req) const;

    /**
     * Answer @p req within @p budget. @p allowSlowPath false skips
     * simulator validation (the answer is flagged model-only); the
     * server passes false while the circuit breaker is open.
     */
    PlanResult plan(const Request &req, DeadlineBudget &budget,
                    bool allowSlowPath);

    /** Aggregate outcome of one coalesced batch (DESIGN.md §16). */
    struct BatchOutcome
    {
        /** One result per request, aligned with the input order. */
        std::vector<PlanResult> results;
        /**
         * Virtual ms the worker slot is occupied: the shared work
         * done once (model build + union sweep + deduped
         * validations), not the sum of per-member budget charges —
         * this is where coalescing wins.
         */
        double occupancyMs = 0.0;
        // Breaker-facing aggregates for the whole batch.
        bool usedSlowPath = false;
        double slowPathMs = 0.0;
        bool slowPathFailed = false;
    };

    /**
     * Answer several queries sharing one profile (same profileKey())
     * with a single model build and a single union grid sweep. Each
     * waiter's DeadlineBudget is still charged and clamped
     * individually — per-member cell coverage, degraded flags and
     * constraint selection are identical to what a solo plan() with
     * the same remaining budget would produce; only the worker
     * occupancy is shared.
     */
    BatchOutcome planBatch(const std::vector<Request> &reqs,
                           std::vector<DeadlineBudget> &budgets,
                           bool allowSlowPath);

    /**
     * The key two queries must share to ride one batched sweep: same
     * workload, same fleet size — i.e. the same fitted model and the
     * same candidate grid; only the constraint may differ.
     */
    std::string profileKey(const Request &req) const
    {
        return entryKey(req);
    }

    const PlannerTotals &totals() const { return totals_; }
    const PlannerConfig &config() const { return config_; }

    /**
     * Service-default disk-size grid: six half-decade points instead
     * of optimize()'s thirteen, trading Fig. 13 curve resolution for
     * interactive-query latency (72 cells with the default type sets).
     */
    static std::vector<Bytes> coarseSizeGrid();

  private:
    struct Entry
    {
        model::AppModel app;
        cloud::CostOptimizer optimizer;
    };

    int resolveWorkers(const Request &req) const;
    std::string entryKey(const Request &req) const;

    /**
     * One budgeted slow-path simulator run with retry/backoff around
     * injected transient failures. fatal()s with deadlineHit_ or
     * slowPathFailed_ set when it cannot complete.
     */
    spark::AppMetrics runBudgeted(const workloads::Workload &workload,
                                  const cluster::ClusterConfig &cluster,
                                  const spark::SparkConf &conf,
                                  DeadlineBudget &budget);

    /** Profile + fit + build the optimizer for @p req (slow path). */
    Entry buildEntry(const Request &req, DeadlineBudget &budget);

    PlannerConfig config_;
    Rng rng_;
    common::LruCache<std::string, Entry> cache_;
    PlannerTotals totals_;
    /** Persistent fitted models (loaded/saved via modelStorePath). */
    std::map<std::string, model::AppModel> store_;

    // Abort-cause flags for the current plan() call: everything below
    // the planner surfaces as FatalError, so plan() discriminates
    // deadline expiry from a dead slow path with its own flags.
    bool deadlineHit_ = false;
    bool slowPathFailed_ = false;
    int reqRetries_ = 0;
    double reqBackoffMs_ = 0.0;
    double reqSlowPathMs_ = 0.0;
};

} // namespace doppio::service

#endif // DOPPIO_SERVICE_PLANNER_H
