#include "service/planner.h"

#include <algorithm>

#include "cloud/gcp_disk.h"
#include "common/logging.h"
#include "model/model_store.h"
#include "model/profiler.h"
#include "workloads/registry.h"

namespace doppio::service {

namespace {

/** Map a plan query's mode onto the optimizer's constraint. */
cloud::Constraint
constraintFor(const Request &req)
{
    switch (req.mode) {
    case Request::Mode::MinCost:
        return cloud::Constraint::minCost();
    case Request::Mode::CheapestUnderDeadline:
        return cloud::Constraint::cheapestUnderDeadline(req.deadlineSec);
    case Request::Mode::FastestUnderBudget:
        return cloud::Constraint::fastestUnderBudget(req.budgetUsd);
    }
    return cloud::Constraint::minCost();
}

} // namespace

DeadlineBudget::DeadlineBudget(double totalMs) : totalMs_(totalMs)
{
    if (totalMs <= 0.0)
        fatal("DeadlineBudget: totalMs must be positive (got %g)",
              totalMs);
}

double
DeadlineBudget::charge(double ms)
{
    if (ms < 0.0)
        panic("DeadlineBudget: negative charge %g", ms);
    const double charged = std::min(ms, remainingMs());
    spentMs_ += charged;
    return charged;
}

Planner::Planner(PlannerConfig config)
    : config_(std::move(config)), rng_(config_.seed),
      cache_(config_.modelCacheCapacity)
{
    if (config_.sampleNodes < 1)
        fatal("Planner: sampleNodes must be positive");
    if (config_.defaultWorkers < 1)
        fatal("Planner: defaultWorkers must be positive");
    if (config_.msPerSimSecond <= 0.0)
        fatal("Planner: msPerSimSecond must be positive");
    if (config_.cellCostMs <= 0.0)
        fatal("Planner: cellCostMs must be positive");
    if (config_.maxRetries < 0)
        fatal("Planner: maxRetries must be non-negative");
    if (config_.evalFailRate < 0.0 || config_.evalFailRate >= 1.0)
        fatal("Planner: evalFailRate must be in [0, 1)");
    if (config_.backoffBaseMs < 0.0 || config_.backoffMaxMs < 0.0 ||
        config_.backoffJitter < 0.0)
        fatal("Planner: backoff parameters must be non-negative");
    if (config_.sweepJobs < 0)
        fatal("Planner: sweepJobs must be non-negative");
    config_.faults.validate();
    if (!config_.modelStorePath.empty())
        store_ = model::ModelStore::loadFile(config_.modelStorePath);
}

std::vector<Bytes>
Planner::coarseSizeGrid()
{
    constexpr Bytes kGB = 1000ULL * 1000 * 1000;
    return {100 * kGB,  250 * kGB,  500 * kGB,
            1000 * kGB, 2000 * kGB, 4000 * kGB};
}

int
Planner::resolveWorkers(const Request &req) const
{
    return req.workers > 0 ? req.workers : config_.defaultWorkers;
}

std::string
Planner::entryKey(const Request &req) const
{
    return req.workload + "|w" + std::to_string(resolveWorkers(req));
}

bool
Planner::hasModel(const Request &req) const
{
    return cache_.peek(entryKey(req)) != nullptr;
}

spark::AppMetrics
Planner::runBudgeted(const workloads::Workload &workload,
                     const cluster::ClusterConfig &cluster,
                     const spark::SparkConf &conf,
                     DeadlineBudget &budget)
{
    const faults::FaultSpec *faults =
        config_.faults.any() ? &config_.faults : nullptr;
    for (int attempt = 0;; ++attempt) {
        if (budget.exhausted()) {
            deadlineHit_ = true;
            fatal("planner: deadline budget exhausted before "
                  "slow-path run");
        }
        if (config_.evalFailRate > 0.0 &&
            rng_.uniform() < config_.evalFailRate) {
            if (attempt >= config_.maxRetries) {
                slowPathFailed_ = true;
                fatal("planner: slow path still failing after %d "
                      "retries",
                      config_.maxRetries);
            }
            ++reqRetries_;
            ++totals_.retries;
            double backoff = std::min(
                config_.backoffMaxMs,
                config_.backoffBaseMs * static_cast<double>(1 << attempt));
            backoff *= 1.0 + config_.backoffJitter * rng_.uniform();
            const double charged = budget.charge(backoff);
            reqBackoffMs_ += charged;
            totals_.backoffMsTotal += charged;
            continue;
        }
        const spark::AppMetrics metrics =
            workload.run(cluster, conf, nullptr, faults);
        const double costMs =
            metrics.seconds() * config_.msPerSimSecond;
        budget.charge(costMs);
        reqSlowPathMs_ += costMs;
        ++totals_.slowPathRuns;
        totals_.slowPathMsTotal += costMs;
        if (metrics.faultsPresent) {
            totals_.partitionTimeouts += metrics.faults.partitionTimeouts;
            totals_.slowPathTaskRetries += metrics.faults.taskRetries;
        }
        return metrics;
    }
}

Planner::Entry
Planner::buildEntry(const Request &req, DeadlineBudget &budget)
{
    const auto workload = workloads::makeWorkload(req.workload);

    // The store key pins what profiling depends on: the workload and
    // the sample-cluster size. The fleet size being optimized for is
    // not part of it — one stored model serves any workers value.
    const std::string storeKey =
        req.workload + "|n" + std::to_string(config_.sampleNodes);
    model::AppModel app;
    const auto stored = store_.find(storeKey);
    if (stored != store_.end()) {
        // Restart fast path: constants survived in the model store,
        // the four-sample profiling methodology is skipped entirely.
        app = stored->second;
        ++totals_.modelStoreHits;
    } else {
        cluster::ClusterConfig sampleCluster;
        sampleCluster.numSlaves = config_.sampleNodes;
        sampleCluster.seed = config_.seed;

        model::Profiler::Options options;
        options.sampleNodes = config_.sampleNodes;
        options.onSample = [this,
                            &budget](const spark::AppMetrics &) -> bool {
            if (!budget.exhausted())
                return true;
            deadlineHit_ = true;
            return false;
        };

        // The profiler drives this runner through the four-sample
        // methodology; each sample run is individually budgeted and
        // retried here.
        model::WorkloadRunner runner =
            [this, &workload,
             &budget](const cluster::ClusterConfig &cluster,
                      const spark::SparkConf &conf) {
                return runBudgeted(*workload, cluster, conf, budget);
            };

        model::Profiler profiler(std::move(runner), sampleCluster,
                                 spark::SparkConf{}, options);
        app = profiler.fit(workload->name());
        if (!config_.modelStorePath.empty()) {
            store_[storeKey] = app;
            model::ModelStore::saveFile(config_.modelStorePath, store_);
        }
    }

    cloud::CostOptimizer::Options search;
    search.workers = resolveWorkers(req);
    search.sizeGrid =
        config_.sizeGrid.empty() ? coarseSizeGrid() : config_.sizeGrid;
    search.jobs = config_.sweepJobs;
    cloud::CostOptimizer optimizer(app, cloud::GcpPricing{},
                                   std::move(search));
    return Entry{std::move(app), std::move(optimizer)};
}

PlanResult
Planner::plan(const Request &req, DeadlineBudget &budget,
              bool allowSlowPath)
{
    deadlineHit_ = false;
    slowPathFailed_ = false;
    reqRetries_ = 0;
    reqBackoffMs_ = 0.0;
    reqSlowPathMs_ = 0.0;

    PlanResult result;
    Response &resp = result.response;

    Entry *entry = nullptr;
    cloud::SearchStats searchBefore;

    const auto finish = [&](const char *status, const char *reason) {
        if (entry != nullptr) {
            const cloud::SearchStats after =
                entry->optimizer.searchStats();
            totals_.cellsMemoHit += after.memoHits - searchBefore.memoHits;
            totals_.cellsPruned +=
                after.cellsPruned - searchBefore.cellsPruned;
        }
        resp.status = status;
        resp.reason = reason;
        resp.retries = reqRetries_;
        resp.backoffMs = reqBackoffMs_;
        result.slowPathMs = reqSlowPathMs_;
        result.usedSlowPath = reqSlowPathMs_ > 0.0;
        result.slowPathFailed = slowPathFailed_;
        return result;
    };

    // Model: cached, or profiled now (the slow path).
    const std::string key = entryKey(req);
    entry = cache_.get(key);
    if (entry == nullptr) {
        if (!allowSlowPath)
            // The server sheds this case before calling plan(); keep
            // the invariant anyway.
            return finish("shed", "circuit_open");
        try {
            Entry built = buildEntry(req, budget);
            cache_.put(key, std::move(built));
            entry = cache_.get(key);
        } catch (const FatalError &error) {
            if (deadlineHit_) {
                resp.degraded = true;
                return finish("error", "deadline");
            }
            if (slowPathFailed_)
                return finish("error", "slow_path_failed");
            warn("planner: %s", error.what());
            return finish("error", "internal");
        }
    }
    searchBefore = entry->optimizer.searchStats();

    // Grid search under the remaining budget: a partial prefix is a
    // valid (degraded) answer — coverage shrinks, cells stay exact.
    const std::vector<cloud::CloudConfig> grid =
        entry->optimizer.candidateGrid();
    const std::vector<cloud::Evaluation> evals =
        entry->optimizer.evaluatePrefix(grid, [&]() -> bool {
            if (budget.exhausted())
                return false;
            budget.charge(config_.cellCostMs);
            return true;
        });
    resp.cellsTotal = static_cast<int>(grid.size());
    resp.cellsDone = static_cast<int>(evals.size());
    if (resp.cellsDone < resp.cellsTotal)
        resp.degraded = true;
    if (evals.empty()) {
        resp.degraded = true;
        return finish("error", "deadline");
    }

    // Constraint-mode selection over the evaluated cells.
    const cloud::Evaluation *best =
        cloud::selectBest(evals, constraintFor(req));
    if (best == nullptr)
        return finish("error", "infeasible");

    resp.haveConfig = true;
    resp.config = best->config.describe();
    resp.costUsd = best->cost;
    resp.runtimeSec = best->seconds;

    // Validation: re-simulate the winner under the service's fault
    // spec. Skipped (model-only) when disabled, the breaker is open,
    // or the budget already ran out.
    if (!config_.validate || !allowSlowPath || budget.exhausted()) {
        resp.modelOnly = true;
        if (budget.exhausted())
            resp.degraded = true;
        return finish("ok", "");
    }
    try {
        const auto workload = workloads::makeWorkload(req.workload);
        cluster::ClusterConfig cluster;
        cluster.numSlaves = best->config.workers;
        cluster.node.cores = best->config.vcpus;
        cluster.node.hdfsDisk = cloud::makeCloudDiskParams(
            best->config.hdfsType, best->config.hdfsSize);
        cluster.node.localDisk = cloud::makeCloudDiskParams(
            best->config.localType, best->config.localSize);
        cluster.seed = config_.seed;
        spark::SparkConf conf;
        conf.executorCores = best->config.vcpus;
        const spark::AppMetrics metrics =
            runBudgeted(*workload, cluster, conf, budget);
        resp.runtimeSec = metrics.seconds();
        resp.costUsd = cloud::jobCost(
            best->config, entry->optimizer.pricing(), resp.runtimeSec);
    } catch (const FatalError &error) {
        // The model answer stands; only its validation is missing.
        resp.modelOnly = true;
        resp.degraded = true;
        if (!deadlineHit_ && !slowPathFailed_)
            warn("planner: validation failed: %s", error.what());
        return finish("ok", slowPathFailed_ ? "validation_failed" : "");
    }
    return finish("ok", "");
}

Planner::BatchOutcome
Planner::planBatch(const std::vector<Request> &reqs,
                   std::vector<DeadlineBudget> &budgets,
                   bool allowSlowPath)
{
    const std::size_t n = reqs.size();
    if (n == 0 || budgets.size() != n)
        panic("planBatch: requests and budgets must align");
    for (std::size_t i = 1; i < n; ++i) {
        if (profileKey(reqs[i]) != profileKey(reqs[0]))
            panic("planBatch: mixed profiles in one batch");
    }

    BatchOutcome out;
    out.results.resize(n);
    std::vector<char> done(n, 0);
    std::vector<int> memberRetries(n, 0);
    std::vector<double> memberBackoff(n, 0.0);

    const auto finishMember = [&](std::size_t i, const char *status,
                                  const char *reason) {
        out.results[i].response.status = status;
        out.results[i].response.reason = reason;
        done[i] = 1;
    };
    const auto finalize = [&]() -> BatchOutcome & {
        for (std::size_t i = 0; i < n; ++i) {
            out.results[i].response.retries = memberRetries[i];
            out.results[i].response.backoffMs = memberBackoff[i];
        }
        out.usedSlowPath = out.slowPathMs > 0.0;
        return out;
    };

    // --- Model phase: at most one build for the whole batch. ---
    deadlineHit_ = false;
    slowPathFailed_ = false;
    reqRetries_ = 0;
    reqBackoffMs_ = 0.0;
    reqSlowPathMs_ = 0.0;

    const std::string key = entryKey(reqs[0]);
    Entry *entry = cache_.get(key);
    if (entry == nullptr) {
        if (!allowSlowPath) {
            for (std::size_t i = 0; i < n; ++i)
                finishMember(i, "shed", "circuit_open");
            return finalize();
        }
        double maxRemaining = 0.0;
        for (const DeadlineBudget &budget : budgets)
            maxRemaining = std::max(maxRemaining, budget.remainingMs());
        if (maxRemaining <= 0.0) {
            for (std::size_t i = 0; i < n; ++i) {
                out.results[i].response.degraded = true;
                finishMember(i, "error", "deadline");
            }
            return finalize();
        }
        // Build once under the richest member's remaining budget,
        // then mirror the (clamped) charge into every member — each
        // waiter pays at most what a solo build would have cost it.
        DeadlineBudget shared(maxRemaining);
        bool built = true;
        const char *failReason = "internal";
        try {
            Entry fresh = buildEntry(reqs[0], shared);
            cache_.put(key, std::move(fresh));
            entry = cache_.get(key);
        } catch (const FatalError &error) {
            built = false;
            if (deadlineHit_)
                failReason = "deadline";
            else if (slowPathFailed_)
                failReason = "slow_path_failed";
            else
                warn("planner: %s", error.what());
        }
        out.occupancyMs += shared.spentMs();
        out.slowPathMs += reqSlowPathMs_;
        out.slowPathFailed = out.slowPathFailed || slowPathFailed_;
        memberRetries[0] += reqRetries_;
        memberBackoff[0] += reqBackoffMs_;
        for (DeadlineBudget &budget : budgets)
            budget.charge(shared.spentMs());
        if (!built) {
            for (std::size_t i = 0; i < n; ++i) {
                if (deadlineHit_)
                    out.results[i].response.degraded = true;
                finishMember(i, "error", failReason);
            }
            return finalize();
        }
    }
    const cloud::SearchStats searchBefore =
        entry->optimizer.searchStats();

    // --- Union sweep: one evaluation pass serves every waiter. ---
    // Walk cells in canonical order charging every still-solvent
    // member exactly as its solo keepGoing loop would; the union
    // prefix is evaluated once (fanned across sweepJobs threads).
    const std::vector<cloud::CloudConfig> grid =
        entry->optimizer.candidateGrid();
    std::vector<int> cellsDone(n, 0);
    std::vector<char> active(n);
    for (std::size_t i = 0; i < n; ++i)
        active[i] = done[i] ? 0 : 1;
    std::size_t sweepLen = 0;
    for (std::size_t cell = 0; cell < grid.size(); ++cell) {
        bool any = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (!active[i])
                continue;
            if (budgets[i].exhausted()) {
                active[i] = 0;
                continue;
            }
            budgets[i].charge(config_.cellCostMs);
            ++cellsDone[i];
            any = true;
        }
        if (!any)
            break;
        sweepLen = cell + 1;
    }
    const std::vector<cloud::Evaluation> evals = entry->optimizer.evaluateAll(
        std::vector<cloud::CloudConfig>(grid.begin(),
                                        grid.begin() + sweepLen));
    out.occupancyMs += static_cast<double>(sweepLen) * config_.cellCostMs;

    // --- Per-member selection over each member's own prefix. ---
    std::vector<cloud::Evaluation> bestOf(n);
    std::vector<char> haveBest(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (done[i])
            continue;
        Response &resp = out.results[i].response;
        resp.cellsTotal = static_cast<int>(grid.size());
        resp.cellsDone = cellsDone[i];
        if (resp.cellsDone < resp.cellsTotal)
            resp.degraded = true;
        if (cellsDone[i] == 0) {
            resp.degraded = true;
            finishMember(i, "error", "deadline");
            continue;
        }
        const std::vector<cloud::Evaluation> prefix(
            evals.begin(),
            evals.begin() + static_cast<std::ptrdiff_t>(cellsDone[i]));
        const cloud::Evaluation *best =
            cloud::selectBest(prefix, constraintFor(reqs[i]));
        if (best == nullptr) {
            finishMember(i, "error", "infeasible");
            continue;
        }
        bestOf[i] = *best;
        haveBest[i] = 1;
        resp.haveConfig = true;
        resp.config = best->config.describe();
        resp.costUsd = best->cost;
        resp.runtimeSec = best->seconds;
    }

    // --- Validation, deduped by winning configuration. ---
    std::vector<char> wantsValidation(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        wantsValidation[i] = !done[i] && haveBest[i] && config_.validate &&
                             allowSlowPath && !budgets[i].exhausted();
    for (std::size_t i = 0; i < n; ++i) {
        if (done[i])
            continue;
        if (!wantsValidation[i]) {
            Response &resp = out.results[i].response;
            resp.modelOnly = true;
            if (budgets[i].exhausted())
                resp.degraded = true;
            finishMember(i, "ok", "");
            continue;
        }
        // Validate this winner once; every member that picked the
        // same configuration shares the run and its budget charge.
        std::vector<std::size_t> group;
        for (std::size_t j = i; j < n; ++j) {
            if (!done[j] && wantsValidation[j] &&
                bestOf[j].config.describe() == bestOf[i].config.describe())
                group.push_back(j);
        }
        double maxRemaining = 0.0;
        for (const std::size_t j : group)
            maxRemaining =
                std::max(maxRemaining, budgets[j].remainingMs());
        deadlineHit_ = false;
        slowPathFailed_ = false;
        reqRetries_ = 0;
        reqBackoffMs_ = 0.0;
        reqSlowPathMs_ = 0.0;
        DeadlineBudget shared(maxRemaining);
        try {
            const auto workload = workloads::makeWorkload(reqs[i].workload);
            cluster::ClusterConfig cluster;
            cluster.numSlaves = bestOf[i].config.workers;
            cluster.node.cores = bestOf[i].config.vcpus;
            cluster.node.hdfsDisk = cloud::makeCloudDiskParams(
                bestOf[i].config.hdfsType, bestOf[i].config.hdfsSize);
            cluster.node.localDisk = cloud::makeCloudDiskParams(
                bestOf[i].config.localType, bestOf[i].config.localSize);
            cluster.seed = config_.seed;
            spark::SparkConf conf;
            conf.executorCores = bestOf[i].config.vcpus;
            const spark::AppMetrics metrics =
                runBudgeted(*workload, cluster, conf, shared);
            const double runtime = metrics.seconds();
            const double cost = cloud::jobCost(
                bestOf[i].config, entry->optimizer.pricing(), runtime);
            for (const std::size_t j : group) {
                out.results[j].response.runtimeSec = runtime;
                out.results[j].response.costUsd = cost;
                finishMember(j, "ok", "");
            }
        } catch (const FatalError &error) {
            if (!deadlineHit_ && !slowPathFailed_)
                warn("planner: validation failed: %s", error.what());
            for (const std::size_t j : group) {
                out.results[j].response.modelOnly = true;
                out.results[j].response.degraded = true;
                finishMember(j, "ok",
                             slowPathFailed_ ? "validation_failed" : "");
            }
        }
        out.occupancyMs += shared.spentMs();
        out.slowPathMs += reqSlowPathMs_;
        out.slowPathFailed = out.slowPathFailed || slowPathFailed_;
        memberRetries[group.front()] += reqRetries_;
        memberBackoff[group.front()] += reqBackoffMs_;
        for (const std::size_t j : group)
            budgets[j].charge(shared.spentMs());
    }

    const cloud::SearchStats after = entry->optimizer.searchStats();
    totals_.cellsMemoHit += after.memoHits - searchBefore.memoHits;
    totals_.cellsPruned += after.cellsPruned - searchBefore.cellsPruned;
    return finalize();
}

} // namespace doppio::service
