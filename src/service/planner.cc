#include "service/planner.h"

#include <algorithm>

#include "cloud/gcp_disk.h"
#include "common/logging.h"
#include "model/profiler.h"
#include "workloads/registry.h"

namespace doppio::service {

DeadlineBudget::DeadlineBudget(double totalMs) : totalMs_(totalMs)
{
    if (totalMs <= 0.0)
        fatal("DeadlineBudget: totalMs must be positive (got %g)",
              totalMs);
}

double
DeadlineBudget::charge(double ms)
{
    if (ms < 0.0)
        panic("DeadlineBudget: negative charge %g", ms);
    const double charged = std::min(ms, remainingMs());
    spentMs_ += charged;
    return charged;
}

Planner::Planner(PlannerConfig config)
    : config_(std::move(config)), rng_(config_.seed),
      cache_(config_.modelCacheCapacity)
{
    if (config_.sampleNodes < 1)
        fatal("Planner: sampleNodes must be positive");
    if (config_.defaultWorkers < 1)
        fatal("Planner: defaultWorkers must be positive");
    if (config_.msPerSimSecond <= 0.0)
        fatal("Planner: msPerSimSecond must be positive");
    if (config_.cellCostMs <= 0.0)
        fatal("Planner: cellCostMs must be positive");
    if (config_.maxRetries < 0)
        fatal("Planner: maxRetries must be non-negative");
    if (config_.evalFailRate < 0.0 || config_.evalFailRate >= 1.0)
        fatal("Planner: evalFailRate must be in [0, 1)");
    if (config_.backoffBaseMs < 0.0 || config_.backoffMaxMs < 0.0 ||
        config_.backoffJitter < 0.0)
        fatal("Planner: backoff parameters must be non-negative");
    config_.faults.validate();
}

std::vector<Bytes>
Planner::coarseSizeGrid()
{
    constexpr Bytes kGB = 1000ULL * 1000 * 1000;
    return {100 * kGB,  250 * kGB,  500 * kGB,
            1000 * kGB, 2000 * kGB, 4000 * kGB};
}

int
Planner::resolveWorkers(const Request &req) const
{
    return req.workers > 0 ? req.workers : config_.defaultWorkers;
}

std::string
Planner::entryKey(const Request &req) const
{
    return req.workload + "|w" + std::to_string(resolveWorkers(req));
}

bool
Planner::hasModel(const Request &req) const
{
    return cache_.peek(entryKey(req)) != nullptr;
}

spark::AppMetrics
Planner::runBudgeted(const workloads::Workload &workload,
                     const cluster::ClusterConfig &cluster,
                     const spark::SparkConf &conf,
                     DeadlineBudget &budget)
{
    const faults::FaultSpec *faults =
        config_.faults.any() ? &config_.faults : nullptr;
    for (int attempt = 0;; ++attempt) {
        if (budget.exhausted()) {
            deadlineHit_ = true;
            fatal("planner: deadline budget exhausted before "
                  "slow-path run");
        }
        if (config_.evalFailRate > 0.0 &&
            rng_.uniform() < config_.evalFailRate) {
            if (attempt >= config_.maxRetries) {
                slowPathFailed_ = true;
                fatal("planner: slow path still failing after %d "
                      "retries",
                      config_.maxRetries);
            }
            ++reqRetries_;
            ++totals_.retries;
            double backoff = std::min(
                config_.backoffMaxMs,
                config_.backoffBaseMs * static_cast<double>(1 << attempt));
            backoff *= 1.0 + config_.backoffJitter * rng_.uniform();
            const double charged = budget.charge(backoff);
            reqBackoffMs_ += charged;
            totals_.backoffMsTotal += charged;
            continue;
        }
        const spark::AppMetrics metrics =
            workload.run(cluster, conf, nullptr, faults);
        const double costMs =
            metrics.seconds() * config_.msPerSimSecond;
        budget.charge(costMs);
        reqSlowPathMs_ += costMs;
        ++totals_.slowPathRuns;
        totals_.slowPathMsTotal += costMs;
        if (metrics.faultsPresent) {
            totals_.partitionTimeouts += metrics.faults.partitionTimeouts;
            totals_.slowPathTaskRetries += metrics.faults.taskRetries;
        }
        return metrics;
    }
}

Planner::Entry
Planner::buildEntry(const Request &req, DeadlineBudget &budget)
{
    const auto workload = workloads::makeWorkload(req.workload);

    cluster::ClusterConfig sampleCluster;
    sampleCluster.numSlaves = config_.sampleNodes;
    sampleCluster.seed = config_.seed;

    model::Profiler::Options options;
    options.sampleNodes = config_.sampleNodes;
    options.onSample = [this,
                        &budget](const spark::AppMetrics &) -> bool {
        if (!budget.exhausted())
            return true;
        deadlineHit_ = true;
        return false;
    };

    // The profiler drives this runner through the four-sample
    // methodology; each sample run is individually budgeted and
    // retried here.
    model::WorkloadRunner runner =
        [this, &workload, &budget](const cluster::ClusterConfig &cluster,
                                   const spark::SparkConf &conf) {
            return runBudgeted(*workload, cluster, conf, budget);
        };

    model::Profiler profiler(std::move(runner), sampleCluster,
                             spark::SparkConf{}, options);
    model::AppModel app = profiler.fit(workload->name());

    cloud::CostOptimizer::Options search;
    search.workers = resolveWorkers(req);
    search.sizeGrid =
        config_.sizeGrid.empty() ? coarseSizeGrid() : config_.sizeGrid;
    search.jobs = 1;
    cloud::CostOptimizer optimizer(app, cloud::GcpPricing{},
                                   std::move(search));
    return Entry{std::move(app), std::move(optimizer)};
}

PlanResult
Planner::plan(const Request &req, DeadlineBudget &budget,
              bool allowSlowPath)
{
    deadlineHit_ = false;
    slowPathFailed_ = false;
    reqRetries_ = 0;
    reqBackoffMs_ = 0.0;
    reqSlowPathMs_ = 0.0;

    PlanResult result;
    Response &resp = result.response;

    const auto finish = [&](const char *status, const char *reason) {
        resp.status = status;
        resp.reason = reason;
        resp.retries = reqRetries_;
        resp.backoffMs = reqBackoffMs_;
        result.slowPathMs = reqSlowPathMs_;
        result.usedSlowPath = reqSlowPathMs_ > 0.0;
        result.slowPathFailed = slowPathFailed_;
        return result;
    };

    // Model: cached, or profiled now (the slow path).
    const std::string key = entryKey(req);
    Entry *entry = cache_.get(key);
    if (entry == nullptr) {
        if (!allowSlowPath)
            // The server sheds this case before calling plan(); keep
            // the invariant anyway.
            return finish("shed", "circuit_open");
        try {
            Entry built = buildEntry(req, budget);
            cache_.put(key, std::move(built));
            entry = cache_.get(key);
        } catch (const FatalError &error) {
            if (deadlineHit_) {
                resp.degraded = true;
                return finish("error", "deadline");
            }
            if (slowPathFailed_)
                return finish("error", "slow_path_failed");
            warn("planner: %s", error.what());
            return finish("error", "internal");
        }
    }

    // Grid search under the remaining budget: a partial prefix is a
    // valid (degraded) answer — coverage shrinks, cells stay exact.
    const std::vector<cloud::CloudConfig> grid =
        entry->optimizer.candidateGrid();
    const std::vector<cloud::Evaluation> evals =
        entry->optimizer.evaluatePrefix(grid, [&]() -> bool {
            if (budget.exhausted())
                return false;
            budget.charge(config_.cellCostMs);
            return true;
        });
    resp.cellsTotal = static_cast<int>(grid.size());
    resp.cellsDone = static_cast<int>(evals.size());
    if (resp.cellsDone < resp.cellsTotal)
        resp.degraded = true;
    if (evals.empty()) {
        resp.degraded = true;
        return finish("error", "deadline");
    }

    // Constraint-mode selection over the evaluated cells.
    const cloud::Evaluation *best = nullptr;
    for (const cloud::Evaluation &eval : evals) {
        switch (req.mode) {
        case Request::Mode::MinCost:
            if (best == nullptr || eval.cost < best->cost)
                best = &eval;
            break;
        case Request::Mode::CheapestUnderDeadline:
            if (eval.seconds <= req.deadlineSec &&
                (best == nullptr || eval.cost < best->cost))
                best = &eval;
            break;
        case Request::Mode::FastestUnderBudget:
            if (eval.cost <= req.budgetUsd &&
                (best == nullptr || eval.seconds < best->seconds))
                best = &eval;
            break;
        }
    }
    if (best == nullptr)
        return finish("error", "infeasible");

    resp.haveConfig = true;
    resp.config = best->config.describe();
    resp.costUsd = best->cost;
    resp.runtimeSec = best->seconds;

    // Validation: re-simulate the winner under the service's fault
    // spec. Skipped (model-only) when disabled, the breaker is open,
    // or the budget already ran out.
    if (!config_.validate || !allowSlowPath || budget.exhausted()) {
        resp.modelOnly = true;
        if (budget.exhausted())
            resp.degraded = true;
        return finish("ok", "");
    }
    try {
        const auto workload = workloads::makeWorkload(req.workload);
        cluster::ClusterConfig cluster;
        cluster.numSlaves = best->config.workers;
        cluster.node.cores = best->config.vcpus;
        cluster.node.hdfsDisk = cloud::makeCloudDiskParams(
            best->config.hdfsType, best->config.hdfsSize);
        cluster.node.localDisk = cloud::makeCloudDiskParams(
            best->config.localType, best->config.localSize);
        cluster.seed = config_.seed;
        spark::SparkConf conf;
        conf.executorCores = best->config.vcpus;
        const spark::AppMetrics metrics =
            runBudgeted(*workload, cluster, conf, budget);
        resp.runtimeSec = metrics.seconds();
        resp.costUsd = cloud::jobCost(
            best->config, entry->optimizer.pricing(), resp.runtimeSec);
    } catch (const FatalError &error) {
        // The model answer stands; only its validation is missing.
        resp.modelOnly = true;
        resp.degraded = true;
        if (!deadlineHit_ && !slowPathFailed_)
            warn("planner: validation failed: %s", error.what());
        return finish("ok", slowPathFailed_ ? "validation_failed" : "");
    }
    return finish("ok", "");
}

} // namespace doppio::service
