/**
 * @file
 * Result caching for the planning service (DESIGN.md §14).
 *
 * ResultCache: a sharded LRU of finished plan responses keyed by the
 * canonical (workload, mode, constraint, workers) string. Sharding is
 * by FNV-1a of the key (not std::hash, whose value is
 * implementation-defined — shard assignment feeds eviction order and
 * therefore the response transcript, which must be stable across
 * toolchains). Only full-fidelity answers are cached: degraded or
 * model-only responses would otherwise keep serving stale partial
 * data after the incident that caused them has passed.
 *
 * SingleFlight: dedup of concurrent identical queries. The first
 * arrival becomes the leader and computes; later arrivals attach as
 * followers and are answered from the leader's result at its
 * completion, occupying no queue slot and doing no evaluation work.
 */

#ifndef DOPPIO_SERVICE_CACHE_H
#define DOPPIO_SERVICE_CACHE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "service/protocol.h"

namespace doppio::service {

/** Sharded LRU of completed plan responses. */
class ResultCache
{
  public:
    ResultCache(std::size_t shards, std::size_t capacityPerShard);

    /** @return the cached response (promoted), or nullptr. */
    const Response *get(const std::string &key);

    void put(const std::string &key, const Response &response);

    std::size_t shards() const { return shards_.size(); }
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;
    std::size_t size() const;

    /** Toolchain-stable 64-bit FNV-1a (exposed for tests). */
    static std::uint64_t fnv1a(const std::string &key);

  private:
    common::LruCache<std::string, Response> &shardFor(const std::string &key);

    std::vector<common::LruCache<std::string, Response>> shards_;
};

/** Concurrent-identical-query dedup registry. */
class SingleFlight
{
  public:
    /**
     * @return true when @p key had no leader (the caller becomes it);
     * false when already in flight (the caller should attach()).
     */
    bool begin(const std::string &key);

    /** Register @p seq as a follower of @p key's leader. */
    void attach(const std::string &key, std::uint64_t seq);

    bool inFlight(const std::string &key) const;

    /**
     * The leader finished: @return the followers' sequence numbers
     * (in attach order) and forget the key.
     */
    std::vector<std::uint64_t> finish(const std::string &key);

    std::uint64_t joins() const { return joins_; }

  private:
    std::unordered_map<std::string, std::vector<std::uint64_t>> inFlight_;
    std::uint64_t joins_ = 0;
};

} // namespace doppio::service

#endif // DOPPIO_SERVICE_CACHE_H
