#include "service/server.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"
#include "workloads/registry.h"

namespace doppio::service {

namespace {

bool
knownWorkload(const std::string &name)
{
    static const std::vector<std::string> names =
        workloads::registeredWorkloads();
    return std::find(names.begin(), names.end(), name) != names.end();
}

} // namespace

PlanningService::PlanningService(ServiceConfig config)
    : config_(config), planner_(config.planner),
      breaker_(config.breaker),
      bucket_(config.ratePerSec,
              config.ratePerSec > 0.0 ? config.burst : 1.0),
      cache_(config.cacheShards, config.cacheShardCapacity)
{
    if (config_.workers < 1)
        fatal("PlanningService: workers must be positive");
    if (config_.queueCapacity < 1)
        fatal("PlanningService: queueCapacity must be positive");
    if (config_.defaultTimeoutMs <= 0.0)
        fatal("PlanningService: defaultTimeoutMs must be positive");
    if (config_.batchMax < 1)
        fatal("PlanningService: batchMax must be positive");
    breaker_.setOpenObserver(
        [this](double nowMs) { onBreakerOpen(nowMs); });
}

void
PlanningService::setFlightRecorder(telemetry::FlightRecorder *recorder,
                                   std::string postmortemPath)
{
    recorder_ = recorder;
    postmortemPath_ = std::move(postmortemPath);
}

void
PlanningService::onBreakerOpen(double nowMs)
{
    if (recorder_ == nullptr)
        return;
    recorder_->note("breaker opened (trip " +
                        std::to_string(breaker_.trips()) + ")",
                    static_cast<Tick>(nowMs * 1e6));
    if (!postmortemPath_.empty())
        recorder_->dumpToFile(postmortemPath_, "breaker-open");
}

double
PlanningService::timeoutFor(const Request &req) const
{
    return req.timeoutMs > 0.0 ? req.timeoutMs
                               : config_.defaultTimeoutMs;
}

void
PlanningService::countResponse(const Response &response)
{
    log_.push_back(response);
    if (response.status == "ok") {
        ++counters_.completed;
        ++counters_.ok;
        latencies_.push_back(response.latencyMs);
    } else if (response.status == "error") {
        ++counters_.completed;
        ++counters_.errors;
    } else if (response.status == "shed") {
        ++counters_.shed;
    } else if (response.status == "rejected") {
        ++counters_.rejected;
    } else if (response.status == "expired") {
        ++counters_.expired;
    } else {
        panic("PlanningService: unknown response status '%s'",
              response.status.c_str());
    }
    if (response.degraded)
        ++counters_.degraded;
    if (response.modelOnly)
        ++counters_.modelOnly;
    if (recorder_ != nullptr && response.status != "ok") {
        recorder_->note(response.status + " " + response.reason +
                            " id=" + response.id,
                        static_cast<Tick>(response.tMs * 1e6));
    }
}

void
PlanningService::emit(const Response &response)
{
    countResponse(response);
    transcript_.push_back(response.toJson());
}

void
PlanningService::emitLine(const std::string &line)
{
    transcript_.push_back(line);
}

std::string
PlanningService::healthLine(double nowMs) const
{
    const bool healthy = breaker_.state() == CircuitBreaker::State::Closed;
    std::string out = "{\"status\":\"";
    out += healthy ? "healthy" : "degraded";
    out += "\",\"breaker\":\"";
    out += breaker_.stateName();
    out += "\",\"queue_depth\":" + std::to_string(queue_.size());
    out += ",\"busy_workers\":" + std::to_string(busyWorkers_);
    out += ",\"partition_timeouts\":" +
           std::to_string(planner_.totals().partitionTimeouts);
    out += ",\"retries\":" + std::to_string(planner_.totals().retries);
    out += ",\"t_ms\":" + jsonNum(nowMs);
    out += "}";
    return out;
}

Response
PlanningService::makeShed(const Pending &pending, double nowMs,
                          const char *status, const char *reason) const
{
    Response response;
    response.id = pending.req.id;
    response.tMs = nowMs;
    response.status = status;
    response.reason = reason;
    response.latencyMs = nowMs - pending.arrivalMs;
    // An expired request got no answer at all — that is the strongest
    // degradation, and flagging it keeps the admission invariant
    // "answered in budget or flagged degraded" checkable per response.
    if (response.status == "expired")
        response.degraded = true;
    return response;
}

void
PlanningService::shedFlight(std::uint64_t seq, double nowMs,
                            const char *status, const char *reason)
{
    const auto it = pending_.find(seq);
    if (it == pending_.end())
        panic("PlanningService: shedding unknown request %llu",
              static_cast<unsigned long long>(seq));
    const Pending pending = it->second;
    pending_.erase(it);
    emit(makeShed(pending, nowMs, status, reason));
    if (!pending.leader)
        return;
    for (const std::uint64_t fseq :
         flight_.finish(pending.req.cacheKey())) {
        const auto fit = pending_.find(fseq);
        if (fit == pending_.end())
            continue;
        const Pending follower = fit->second;
        pending_.erase(fit);
        emit(makeShed(follower, nowMs, status, reason));
    }
}

void
PlanningService::onArrival(std::uint64_t seq, double nowMs)
{
    lastNowMs_ = std::max(lastNowMs_, nowMs);
    const auto it = pending_.find(seq);
    Pending &pending = it->second;
    const Request &req = pending.req;

    if (req.kind == Request::Kind::Stats) {
        emitLine(stats().toJson());
        pending_.erase(it);
        return;
    }
    if (req.kind == Request::Kind::Health) {
        emitLine(healthLine(nowMs));
        pending_.erase(it);
        return;
    }
    if (req.kind == Request::Kind::Metrics) {
        emitLine(metricsLine());
        pending_.erase(it);
        return;
    }

    if (!knownWorkload(req.workload)) {
        Response response;
        response.id = req.id;
        response.tMs = nowMs;
        response.status = "error";
        response.reason = "unknown_workload";
        emit(response);
        pending_.erase(it);
        return;
    }

    const std::string key = req.cacheKey();
    if (const Response *hit = cache_.get(key)) {
        Response response = *hit;
        response.id = req.id;
        response.tMs = nowMs;
        response.cacheOutcome = "hit";
        response.latencyMs = 0.0;
        response.retries = 0;
        response.backoffMs = 0.0;
        emit(response);
        pending_.erase(it);
        return;
    }

    if (flight_.inFlight(key)) {
        // Park on the in-flight leader; answered at its completion.
        flight_.attach(key, seq);
        return;
    }

    if (config_.ratePerSec > 0.0 &&
        !bucket_.tryAcquire(nowMs / 1000.0)) {
        emit(makeShed(pending, nowMs, "rejected", "rate_limit"));
        pending_.erase(it);
        return;
    }

    flight_.begin(key);
    pending.leader = true;

    if (busyWorkers_ < config_.workers) {
        startJob(seq, nowMs);
        return;
    }
    if (queue_.size() >= config_.queueCapacity) {
        if (config_.dropOldest) {
            const std::uint64_t victim = queue_.front();
            queue_.pop_front();
            shedFlight(victim, nowMs, "shed", "queue_full");
        } else {
            shedFlight(seq, nowMs, "shed", "queue_full");
            return;
        }
    }
    queue_.push_back(seq);
    counters_.maxQueueDepth =
        std::max<std::uint64_t>(counters_.maxQueueDepth, queue_.size());
    breaker_.noteQueueDepth(queue_.size(), nowMs);
}

void
PlanningService::startJob(std::uint64_t seq, double nowMs)
{
    const auto it = pending_.find(seq);
    Pending &pending = it->second;
    const double timeout = timeoutFor(pending.req);
    const double waited = nowMs - pending.arrivalMs;
    queueWaitMs_.observe(waited);
    if (waited >= timeout) {
        shedFlight(seq, nowMs, "expired", "queue_wait");
        return;
    }

    const bool needModel = !planner_.hasModel(pending.req);
    const bool allowSlow = breaker_.allowSlowPath(nowMs);
    if (needModel && !allowSlow) {
        shedFlight(seq, nowMs, "shed", "circuit_open");
        return;
    }

    DeadlineBudget budget(timeout - waited);
    Event done;
    done.result = planner_.plan(pending.req, budget, allowSlow);
    done.tMs = nowMs + budget.spentMs();
    done.order = nextOrder_++;
    done.kind = Event::Kind::Completion;
    done.seq = seq;
    done.probeClaimed =
        allowSlow && breaker_.state() == CircuitBreaker::State::HalfOpen;
    ++busyWorkers_;
    events_.push(std::move(done));
}

void
PlanningService::drainQueue(double nowMs)
{
    while (busyWorkers_ < config_.workers && !queue_.empty()) {
        const std::uint64_t seq = queue_.front();
        queue_.pop_front();
        if (config_.batchMax <= 1) {
            startJob(seq, nowMs);
            continue;
        }
        // Coalesce queued queries sharing this query's profile (same
        // fitted model, same candidate grid) onto one dispatch. Order
        // within the queue is preserved for everyone else.
        std::vector<std::uint64_t> batch{seq};
        const std::string profile =
            planner_.profileKey(pending_.at(seq).req);
        for (auto it = queue_.begin();
             it != queue_.end() &&
             batch.size() < static_cast<std::size_t>(config_.batchMax);) {
            const auto pit = pending_.find(*it);
            if (pit != pending_.end() &&
                planner_.profileKey(pit->second.req) == profile) {
                batch.push_back(*it);
                it = queue_.erase(it);
            } else {
                ++it;
            }
        }
        batchWidth_.observe(static_cast<double>(batch.size()));
        if (batch.size() == 1)
            startJob(seq, nowMs);
        else
            startBatch(batch, nowMs);
    }
}

void
PlanningService::startBatch(const std::vector<std::uint64_t> &seqs,
                            double nowMs)
{
    // Per-member expiry screening; survivors ride the shared sweep.
    std::vector<std::uint64_t> live;
    for (const std::uint64_t seq : seqs) {
        const Pending &pending = pending_.at(seq);
        const double timeout = timeoutFor(pending.req);
        const double waited = nowMs - pending.arrivalMs;
        queueWaitMs_.observe(waited);
        if (waited >= timeout) {
            shedFlight(seq, nowMs, "expired", "queue_wait");
            continue;
        }
        live.push_back(seq);
    }
    if (live.empty())
        return;

    // One profile, so one needModel/breaker verdict covers everyone.
    const bool needModel = !planner_.hasModel(pending_.at(live[0]).req);
    const bool allowSlow = breaker_.allowSlowPath(nowMs);
    if (needModel && !allowSlow) {
        for (const std::uint64_t seq : live)
            shedFlight(seq, nowMs, "shed", "circuit_open");
        return;
    }

    std::vector<Request> reqs;
    std::vector<DeadlineBudget> budgets;
    reqs.reserve(live.size());
    budgets.reserve(live.size());
    for (const std::uint64_t seq : live) {
        const Pending &pending = pending_.at(seq);
        reqs.push_back(pending.req);
        budgets.emplace_back(timeoutFor(pending.req) -
                             (nowMs - pending.arrivalMs));
    }

    Planner::BatchOutcome outcome =
        planner_.planBatch(reqs, budgets, allowSlow);

    Event done;
    done.tMs = nowMs + outcome.occupancyMs;
    done.order = nextOrder_++;
    done.kind = Event::Kind::Completion;
    done.seq = live[0];
    done.result.usedSlowPath = outcome.usedSlowPath;
    done.result.slowPathMs = outcome.slowPathMs;
    done.result.slowPathFailed = outcome.slowPathFailed;
    done.items.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i)
        done.items.emplace_back(live[i], std::move(outcome.results[i]));
    done.probeClaimed =
        allowSlow && breaker_.state() == CircuitBreaker::State::HalfOpen;
    ++busyWorkers_;
    if (live.size() >= 2) {
        ++counters_.batches;
        counters_.batchedQueries += live.size();
    }
    events_.push(std::move(done));
}

void
PlanningService::onCompletion(const Event &event)
{
    if (!event.items.empty()) {
        onBatchCompletion(event);
        return;
    }
    lastNowMs_ = std::max(lastNowMs_, event.tMs);
    --busyWorkers_;
    const auto it = pending_.find(event.seq);
    if (it == pending_.end())
        panic("PlanningService: completion for unknown request");
    const Pending pending = it->second;
    pending_.erase(it);

    if (event.result.slowPathFailed)
        breaker_.recordFailure(event.tMs);
    else if (event.result.usedSlowPath)
        breaker_.recordSlowPath(event.result.slowPathMs, event.tMs);
    else if (event.probeClaimed)
        breaker_.releaseProbe();

    Response response = event.result.response;
    response.id = pending.req.id;
    response.tMs = event.tMs;
    response.latencyMs = event.tMs - pending.arrivalMs;
    response.cacheOutcome = "miss";

    const std::string key = pending.req.cacheKey();
    if (response.status == "ok" && !response.degraded &&
        !response.modelOnly)
        cache_.put(key, response);
    emit(response);

    for (const std::uint64_t fseq : flight_.finish(key)) {
        const auto fit = pending_.find(fseq);
        if (fit == pending_.end())
            continue;
        const Pending follower = fit->second;
        pending_.erase(fit);
        Response fr = response;
        fr.id = follower.req.id;
        fr.latencyMs = event.tMs - follower.arrivalMs;
        fr.cacheOutcome = "dedup";
        fr.retries = 0;
        fr.backoffMs = 0.0;
        // A follower that waited past its own deadline still gets the
        // answer, flagged late.
        if (fr.status == "ok" && fr.latencyMs > timeoutFor(follower.req))
            fr.degraded = true;
        emit(fr);
    }

    drainQueue(event.tMs);
}

void
PlanningService::onBatchCompletion(const Event &event)
{
    lastNowMs_ = std::max(lastNowMs_, event.tMs);
    --busyWorkers_;

    // One worker slot, one breaker verdict for the whole batch.
    if (event.result.slowPathFailed)
        breaker_.recordFailure(event.tMs);
    else if (event.result.usedSlowPath)
        breaker_.recordSlowPath(event.result.slowPathMs, event.tMs);
    else if (event.probeClaimed)
        breaker_.releaseProbe();

    for (const auto &[seq, result] : event.items) {
        const auto it = pending_.find(seq);
        if (it == pending_.end())
            panic("PlanningService: batch completion for unknown "
                  "request");
        const Pending pending = it->second;
        pending_.erase(it);

        Response response = result.response;
        response.id = pending.req.id;
        response.tMs = event.tMs;
        response.latencyMs = event.tMs - pending.arrivalMs;
        response.cacheOutcome = "miss";
        // The shared sweep answers everyone when the *batch* finishes;
        // a member whose own deadline passed first still gets its
        // answer, flagged late (degraded), and never poisons the
        // result cache.
        if (response.status == "ok" &&
            response.latencyMs > timeoutFor(pending.req))
            response.degraded = true;

        const std::string key = pending.req.cacheKey();
        if (response.status == "ok" && !response.degraded &&
            !response.modelOnly)
            cache_.put(key, response);
        emit(response);

        for (const std::uint64_t fseq : flight_.finish(key)) {
            const auto fit = pending_.find(fseq);
            if (fit == pending_.end())
                continue;
            const Pending follower = fit->second;
            pending_.erase(fit);
            Response fr = response;
            fr.id = follower.req.id;
            fr.latencyMs = event.tMs - follower.arrivalMs;
            fr.cacheOutcome = "dedup";
            fr.retries = 0;
            fr.backoffMs = 0.0;
            if (fr.status == "ok" &&
                fr.latencyMs > timeoutFor(follower.req))
                fr.degraded = true;
            emit(fr);
        }
    }

    drainQueue(event.tMs);
}

std::vector<std::string>
PlanningService::runScript(const Script &script)
{
    transcript_.clear();
    for (const std::string &line : script) {
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        ++counters_.received;
        try {
            const Request req = Request::parseLine(line);
            const std::uint64_t seq = nextSeq_++;
            Pending pending;
            pending.req = req;
            pending.arrivalMs = req.atMs;
            pending_.emplace(seq, std::move(pending));
            Event arrival;
            arrival.tMs = req.atMs;
            arrival.order = nextOrder_++;
            arrival.kind = Event::Kind::Arrival;
            arrival.seq = seq;
            events_.push(std::move(arrival));
        } catch (const FatalError &error) {
            // Unparseable lines carry no arrival time; answer them
            // up front, before virtual time starts.
            warn("service: %s", error.what());
            Response response;
            response.status = "error";
            response.reason = "bad_request";
            emit(response);
        }
    }
    while (!events_.empty()) {
        const Event event = events_.top();
        events_.pop();
        if (event.kind == Event::Kind::Arrival)
            onArrival(event.seq, event.tMs);
        else
            onCompletion(event);
    }
    if (!pending_.empty())
        panic("PlanningService: %zu requests left unanswered",
              pending_.size());
    return transcript_;
}

std::string
PlanningService::handleLineNow(const std::string &line, double nowMs)
{
    lastNowMs_ = std::max(lastNowMs_, nowMs);
    ++counters_.received;
    Request req;
    try {
        req = Request::parseLine(line);
    } catch (const FatalError &error) {
        warn("service: %s", error.what());
        Response response;
        response.tMs = nowMs;
        response.status = "error";
        response.reason = "bad_request";
        countResponse(response);
        return response.toJson();
    }
    if (req.kind == Request::Kind::Stats)
        return stats().toJson();
    if (req.kind == Request::Kind::Health)
        return healthLine(nowMs);
    if (req.kind == Request::Kind::Metrics)
        return metricsLine();

    Pending pending;
    pending.req = req;
    pending.arrivalMs = nowMs;

    if (!knownWorkload(req.workload)) {
        Response response;
        response.id = req.id;
        response.tMs = nowMs;
        response.status = "error";
        response.reason = "unknown_workload";
        countResponse(response);
        return response.toJson();
    }
    const std::string key = req.cacheKey();
    if (const Response *hit = cache_.get(key)) {
        Response response = *hit;
        response.id = req.id;
        response.tMs = nowMs;
        response.cacheOutcome = "hit";
        response.latencyMs = 0.0;
        response.retries = 0;
        response.backoffMs = 0.0;
        countResponse(response);
        return response.toJson();
    }
    if (config_.ratePerSec > 0.0 &&
        !bucket_.tryAcquire(nowMs / 1000.0)) {
        const Response response =
            makeShed(pending, nowMs, "rejected", "rate_limit");
        countResponse(response);
        return response.toJson();
    }

    const bool needModel = !planner_.hasModel(req);
    const bool allowSlow = breaker_.allowSlowPath(nowMs);
    if (needModel && !allowSlow) {
        const Response response =
            makeShed(pending, nowMs, "shed", "circuit_open");
        countResponse(response);
        return response.toJson();
    }
    const bool probeClaimed =
        allowSlow && breaker_.state() == CircuitBreaker::State::HalfOpen;

    DeadlineBudget budget(timeoutFor(req));
    const PlanResult result = planner_.plan(req, budget, allowSlow);
    const double doneMs = nowMs + budget.spentMs();

    if (result.slowPathFailed)
        breaker_.recordFailure(doneMs);
    else if (result.usedSlowPath)
        breaker_.recordSlowPath(result.slowPathMs, doneMs);
    else if (probeClaimed)
        breaker_.releaseProbe();

    Response response = result.response;
    response.id = req.id;
    response.tMs = doneMs;
    response.latencyMs = budget.spentMs();
    response.cacheOutcome = "miss";
    if (response.status == "ok" && !response.degraded &&
        !response.modelOnly)
        cache_.put(key, response);
    countResponse(response);
    return response.toJson();
}

ServiceStats
PlanningService::stats() const
{
    ServiceStats out = counters_;
    out.cacheHits = cache_.hits();
    out.cacheMisses = cache_.misses();
    out.cacheEvictions = cache_.evictions();
    out.dedupJoins = flight_.joins();
    const PlannerTotals &totals = planner_.totals();
    out.retries = totals.retries;
    out.backoffMsTotal = totals.backoffMsTotal;
    out.slowPathRuns = totals.slowPathRuns;
    out.slowPathMsTotal = totals.slowPathMsTotal;
    out.partitionTimeouts = totals.partitionTimeouts;
    out.slowPathTaskRetries = totals.slowPathTaskRetries;
    out.cellsMemoHit = totals.cellsMemoHit;
    out.cellsPruned = totals.cellsPruned;
    out.modelStoreHits = totals.modelStoreHits;
    out.breakerTrips = breaker_.trips();
    out.breakerState = breaker_.stateName();
    const std::uint64_t lookups = out.cacheHits + out.cacheMisses;
    out.cacheHitRatio =
        lookups ? static_cast<double>(out.cacheHits) /
                      static_cast<double>(lookups)
                : 0.0;
    out.breakerClosedMs =
        breaker_.timeInStateMs(CircuitBreaker::State::Closed, lastNowMs_);
    out.breakerOpenMs =
        breaker_.timeInStateMs(CircuitBreaker::State::Open, lastNowMs_);
    out.breakerHalfOpenMs = breaker_.timeInStateMs(
        CircuitBreaker::State::HalfOpen, lastNowMs_);
    out.queueDepth = queue_.size();
    if (!latencies_.empty()) {
        std::vector<double> sorted = latencies_;
        std::sort(sorted.begin(), sorted.end());
        out.p50LatencyMs = quantile(sorted, 0.50);
        out.p99LatencyMs = quantile(sorted, 0.99);
    }
    return out;
}

void
PlanningService::publishMetrics(telemetry::Registry &registry) const
{
    const ServiceStats s = stats();
    auto counter = [&registry](const char *name, const char *help,
                               std::uint64_t value) {
        registry.counter(name, help).inc(value);
    };
    counter("doppio_service_requests_total", "Request lines received",
            s.received);
    counter("doppio_service_completed_total",
            "Plan queries answered (ok or error)", s.completed);
    counter("doppio_service_ok_total", "Successful plan responses",
            s.ok);
    counter("doppio_service_degraded_total",
            "Responses flagged degraded", s.degraded);
    counter("doppio_service_model_only_total",
            "Responses with validation skipped", s.modelOnly);
    counter("doppio_service_shed_total",
            "Dropped by queue bound or breaker", s.shed);
    counter("doppio_service_rejected_total",
            "Denied by the token bucket", s.rejected);
    counter("doppio_service_expired_total",
            "Deadline passed while queued", s.expired);
    counter("doppio_service_errors_total", "Error responses",
            s.errors);
    counter("doppio_service_cache_hits_total", "Result-cache hits",
            s.cacheHits);
    counter("doppio_service_cache_misses_total",
            "Result-cache misses", s.cacheMisses);
    counter("doppio_service_cache_evictions_total",
            "Result-cache evictions", s.cacheEvictions);
    counter("doppio_service_dedup_joins_total",
            "Single-flight followers", s.dedupJoins);
    counter("doppio_service_retries_total",
            "Slow-path retry attempts", s.retries);
    counter("doppio_service_slow_path_runs_total",
            "Simulator runs (profile + validate)", s.slowPathRuns);
    counter("doppio_service_breaker_trips_total",
            "Closed/half-open to open transitions", s.breakerTrips);
    counter("doppio_service_batches_total",
            "Coalesced sweep dispatches (width >= 2)", s.batches);
    counter("doppio_service_batched_queries_total",
            "Plan queries served by coalesced sweeps",
            s.batchedQueries);
    counter("doppio_service_cells_memo_hit_total",
            "Grid cells served from the evaluation memo",
            s.cellsMemoHit);
    counter("doppio_service_cells_pruned_total",
            "Grid cells branch-and-bound never modeled",
            s.cellsPruned);
    counter("doppio_service_model_store_hits_total",
            "Profiling runs skipped via the model store",
            s.modelStoreHits);
    registry
        .gauge("doppio_service_cache_hit_ratio",
               "Result-cache hit fraction of lookups")
        .set(s.cacheHitRatio);
    registry
        .gauge("doppio_service_queue_depth",
               "Plan queries waiting for a worker")
        .set(static_cast<double>(s.queueDepth));
    registry
        .gauge("doppio_service_max_queue_depth",
               "High-water mark of the admission queue")
        .set(static_cast<double>(s.maxQueueDepth));
    registry
        .gauge("doppio_service_breaker_state",
               "0 = closed, 1 = open, 2 = half-open")
        .set(static_cast<double>(static_cast<int>(breaker_.state())));
    const std::pair<const char *, double> states[] = {
        {"closed", s.breakerClosedMs},
        {"open", s.breakerOpenMs},
        {"half_open", s.breakerHalfOpenMs},
    };
    for (const auto &[state, ms] : states) {
        registry
            .gauge("doppio_service_breaker_time_in_state_ms",
                   "Milliseconds spent per breaker state",
                   {{"state", state}})
            .set(ms);
    }
    registry
        .histogram("doppio_service_queue_wait_ms",
                   "Queue wait of dispatched plan queries", {}, 1e-3)
        .merge(queueWaitMs_);
    registry
        .histogram("doppio_service_batch_width",
                   "Width of queue-drain dispatches (batching on)", {},
                   1.0)
        .merge(batchWidth_);
}

std::string
PlanningService::metricsText() const
{
    telemetry::Registry registry;
    publishMetrics(registry);
    return registry.prometheusText();
}

std::string
PlanningService::metricsLine() const
{
    telemetry::Registry registry;
    publishMetrics(registry);
    std::string escaped;
    const std::string text = registry.prometheusText();
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        default: escaped += c;
        }
    }
    std::string out = "{\"families\":" +
                      std::to_string(registry.familyCount());
    out += ",\"series\":" + std::to_string(registry.seriesCount());
    out += ",\"exposition\":\"" + escaped + "\"";
    out += "}";
    return out;
}

} // namespace doppio::service
