/**
 * @file
 * Line-delimited JSON protocol of the what-if planning service
 * (DESIGN.md §14).
 *
 * One request per line, one response line per request. Plan queries
 * name a workload plus a provisioning constraint ("cheapest config
 * under completion deadline D" / "fastest config under budget B" /
 * unconstrained "min-cost") and carry their own service-level
 * deadline budget (timeout_ms) — the time the *service* may spend
 * answering, distinct from the *cluster* completion deadline being
 * optimized for. Control queries ({"cmd":"stats"} / {"cmd":"health"})
 * return the operator counters.
 *
 * The parser is a deliberately small flat-JSON reader: objects of
 * string/number/boolean fields, strict about unknown keys so a typoed
 * field fails loudly instead of silently falling back to a default.
 */

#ifndef DOPPIO_SERVICE_PROTOCOL_H
#define DOPPIO_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>

namespace doppio::service {

/** One parsed request line. */
struct Request
{
    enum class Kind { Plan, Stats, Health, Metrics };
    /** Constraint mode of a plan query. */
    enum class Mode { MinCost, CheapestUnderDeadline, FastestUnderBudget };

    Kind kind = Kind::Plan;
    std::string id;
    std::string workload;
    Mode mode = Mode::MinCost;
    double deadlineSec = 0.0; //!< cluster completion deadline (cheapest)
    double budgetUsd = 0.0;   //!< dollar budget (fastest)
    int workers = 0;          //!< fleet size; 0 = service default
    double timeoutMs = 0.0;   //!< service deadline budget; 0 = default
    double atMs = 0.0;        //!< arrival time (in-process transport)

    /**
     * Parse one line; fatal() (FatalError) on malformed JSON, unknown
     * keys, missing required fields or out-of-range values.
     */
    static Request parseLine(const std::string &line);

    /** Canonical result-cache / single-flight key (excludes id/times). */
    std::string cacheKey() const;

    /** @return "min-cost" / "cheapest" / "fastest". */
    static const char *modeName(Mode mode);
};

/** One response line. */
struct Response
{
    std::string id;
    double tMs = 0.0;     //!< emission time (virtual, in-process loop)
    /** ok | shed | rejected | expired | error. */
    std::string status = "ok";
    std::string reason;   //!< non-ok detail, e.g. "queue_full"
    /** hit | miss | dedup (empty for control/non-plan responses). */
    std::string cacheOutcome;
    bool degraded = false;  //!< partial/deadline-clipped answer
    bool modelOnly = false; //!< simulator validation skipped (Eq. 1 only)
    bool haveConfig = false;
    std::string config;    //!< winning configuration, human-readable
    double costUsd = 0.0;
    double runtimeSec = 0.0;
    int cellsDone = 0;     //!< grid cells evaluated before the budget hit
    int cellsTotal = 0;
    int retries = 0;       //!< slow-path retry attempts for this request
    double backoffMs = 0.0; //!< deadline budget spent backing off
    double latencyMs = 0.0; //!< arrival -> response, budget time

    /** Serialize as one JSON line (no trailing newline). */
    std::string toJson() const;
};

/** Operator-facing counters (stats/health responses, --stats-json). */
struct ServiceStats
{
    std::uint64_t received = 0;
    std::uint64_t completed = 0; //!< plan queries answered (ok or error)
    std::uint64_t ok = 0;
    std::uint64_t degraded = 0;
    std::uint64_t modelOnly = 0;
    std::uint64_t shed = 0;      //!< dropped by queue bound / breaker
    std::uint64_t rejected = 0;  //!< denied by the token bucket
    std::uint64_t expired = 0;   //!< deadline passed while queued
    std::uint64_t errors = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t dedupJoins = 0;   //!< single-flight followers
    std::uint64_t cacheEvictions = 0;
    /** Result-cache hit fraction of cache lookups (hits + misses);
     *  0 before any lookup. */
    double cacheHitRatio = 0.0;
    std::uint64_t retries = 0;      //!< slow-path retry attempts
    double backoffMsTotal = 0.0;    //!< budget spent in retry backoff
    std::uint64_t slowPathRuns = 0; //!< simulator runs (profile+validate)
    double slowPathMsTotal = 0.0;
    /**
     * Gray-failure telemetry summed from the slow-path simulator runs'
     * fault metrics, so operators can tell shed load (queue pressure)
     * apart from injected failures: network partition backoff rounds
     * (net::Network::partitionTimeouts()) and per-job task retries.
     */
    std::uint64_t partitionTimeouts = 0;
    std::uint64_t slowPathTaskRetries = 0;
    /** Coalesced cold-sweep dispatches (width >= 2) and the queries
     *  they served (DESIGN.md §16). */
    std::uint64_t batches = 0;
    std::uint64_t batchedQueries = 0;
    /** Optimizer evaluation-memo hits across all cached models. */
    std::uint64_t cellsMemoHit = 0;
    /** Grid cells branch-and-bound proved it never had to model. */
    std::uint64_t cellsPruned = 0;
    /** Profiling runs skipped because --model-store had the model. */
    std::uint64_t modelStoreHits = 0;
    std::uint64_t breakerTrips = 0;
    std::string breakerState = "closed";
    /**
     * Milliseconds the breaker has spent per state (including the
     * current stretch), on the transport's clock. Together with
     * breakerTrips these separate shed-by-policy (closed breaker,
     * queue pressure) from shed-by-failure (time pinned open).
     */
    double breakerClosedMs = 0.0;
    double breakerOpenMs = 0.0;
    double breakerHalfOpenMs = 0.0;
    std::uint64_t queueDepth = 0;
    std::uint64_t maxQueueDepth = 0;
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;

    /** Serialize as one JSON line (no trailing newline). */
    std::string toJson() const;
};

/** Format a double the way every service JSON writer does. */
std::string jsonNum(double value);

} // namespace doppio::service

#endif // DOPPIO_SERVICE_PROTOCOL_H
