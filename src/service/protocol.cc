#include "service/protocol.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace doppio::service {

namespace {

/** One flat JSON value: string, number or boolean. */
struct JsonValue
{
    enum class Kind { Str, Num, Bool } kind = Kind::Str;
    std::string str;
    double num = 0.0;
    bool b = false;
};

/**
 * Parse a flat JSON object {"key": value, ...} of string/number/bool
 * fields. fatal() with a position on anything else — the protocol has
 * no nested objects or arrays, so their absence is a feature: a
 * malformed request cannot half-parse into a plausible query.
 */
std::map<std::string, JsonValue>
parseFlatObject(const std::string &line)
{
    std::size_t i = 0;
    const auto skipWs = [&] {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
    };
    const auto fail = [&](const char *what) {
        fatal("request: %s at offset %zu in '%s'", what, i,
              line.c_str());
    };
    const auto parseString = [&]() -> std::string {
        if (line[i] != '"')
            fail("expected string");
        ++i;
        std::string out;
        while (i < line.size() && line[i] != '"') {
            char c = line[i];
            if (c == '\\') {
                if (i + 1 >= line.size())
                    fail("truncated escape");
                const char esc = line[++i];
                switch (esc) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                default: fail("unsupported escape");
                }
            }
            out.push_back(c);
            ++i;
        }
        if (i >= line.size())
            fail("unterminated string");
        ++i; // closing quote
        return out;
    };

    std::map<std::string, JsonValue> fields;
    skipWs();
    if (i >= line.size() || line[i] != '{')
        fail("expected '{'");
    ++i;
    skipWs();
    if (i < line.size() && line[i] == '}') {
        ++i;
    } else {
        for (;;) {
            skipWs();
            const std::string key = parseString();
            skipWs();
            if (i >= line.size() || line[i] != ':')
                fail("expected ':'");
            ++i;
            skipWs();
            if (i >= line.size())
                fail("missing value");
            JsonValue value;
            if (line[i] == '"') {
                value.kind = JsonValue::Kind::Str;
                value.str = parseString();
            } else if (line.compare(i, 4, "true") == 0) {
                value.kind = JsonValue::Kind::Bool;
                value.b = true;
                i += 4;
            } else if (line.compare(i, 5, "false") == 0) {
                value.kind = JsonValue::Kind::Bool;
                value.b = false;
                i += 5;
            } else {
                char *end = nullptr;
                value.kind = JsonValue::Kind::Num;
                value.num = std::strtod(line.c_str() + i, &end);
                if (end == line.c_str() + i)
                    fail("expected value");
                i = static_cast<std::size_t>(end - line.c_str());
            }
            if (fields.count(key))
                fatal("request: duplicate key \"%s\"", key.c_str());
            fields.emplace(key, value);
            skipWs();
            if (i < line.size() && line[i] == ',') {
                ++i;
                continue;
            }
            if (i < line.size() && line[i] == '}') {
                ++i;
                break;
            }
            fail("expected ',' or '}'");
        }
    }
    skipWs();
    if (i != line.size())
        fail("trailing characters");
    return fields;
}

double
numField(const std::map<std::string, JsonValue> &fields,
         const std::string &key, double fallback, double lo, double hi)
{
    const auto it = fields.find(key);
    if (it == fields.end())
        return fallback;
    if (it->second.kind != JsonValue::Kind::Num)
        fatal("request: \"%s\" must be a number", key.c_str());
    const double value = it->second.num;
    if (value < lo || value > hi)
        fatal("request: \"%s\" = %g out of range [%g, %g]", key.c_str(),
              value, lo, hi);
    return value;
}

std::string
strField(const std::map<std::string, JsonValue> &fields,
         const std::string &key, const std::string &fallback)
{
    const auto it = fields.find(key);
    if (it == fields.end())
        return fallback;
    if (it->second.kind != JsonValue::Kind::Str)
        fatal("request: \"%s\" must be a string", key.c_str());
    return it->second.str;
}

} // namespace

std::string
jsonNum(double value)
{
    std::ostringstream os;
    os.precision(6);
    os << value;
    return os.str();
}

const char *
Request::modeName(Mode mode)
{
    switch (mode) {
    case Mode::MinCost: return "min-cost";
    case Mode::CheapestUnderDeadline: return "cheapest";
    case Mode::FastestUnderBudget: return "fastest";
    }
    return "?";
}

Request
Request::parseLine(const std::string &line)
{
    static const char *const kKnown[] = {
        "cmd",        "id",      "workload",   "mode",
        "deadline_s", "budget_usd", "workers", "timeout_ms",
        "at_ms",
    };
    const auto fields = parseFlatObject(line);
    for (const auto &[key, value] : fields) {
        (void)value;
        bool known = false;
        for (const char *name : kKnown)
            known = known || key == name;
        if (!known)
            fatal("request: unknown key \"%s\"", key.c_str());
    }

    Request req;
    req.id = strField(fields, "id", "");
    req.atMs = numField(fields, "at_ms", 0.0, 0.0, 1e12);

    const std::string cmd = strField(fields, "cmd", "");
    if (!cmd.empty()) {
        if (cmd == "stats")
            req.kind = Kind::Stats;
        else if (cmd == "health")
            req.kind = Kind::Health;
        else if (cmd == "metrics")
            req.kind = Kind::Metrics;
        else
            fatal("request: unknown cmd \"%s\" "
                  "(stats|health|metrics)",
                  cmd.c_str());
        return req;
    }

    req.kind = Kind::Plan;
    if (req.id.empty())
        fatal("request: plan query needs an \"id\"");
    req.workload = strField(fields, "workload", "");
    if (req.workload.empty())
        fatal("request: plan query needs a \"workload\"");
    req.deadlineSec = numField(fields, "deadline_s", 0.0, 0.0, 1e9);
    req.budgetUsd = numField(fields, "budget_usd", 0.0, 0.0, 1e9);
    req.workers =
        static_cast<int>(numField(fields, "workers", 0.0, 0.0, 1024.0));
    req.timeoutMs = numField(fields, "timeout_ms", 0.0, 0.0, 1e9);

    const std::string mode = strField(fields, "mode", "");
    if (mode.empty()) {
        // Infer from the constraint present; both at once is ambiguous.
        if (req.deadlineSec > 0.0 && req.budgetUsd > 0.0)
            fatal("request: both deadline_s and budget_usd given — "
                  "set \"mode\" explicitly");
        req.mode = req.deadlineSec > 0.0 ? Mode::CheapestUnderDeadline
                   : req.budgetUsd > 0.0 ? Mode::FastestUnderBudget
                                         : Mode::MinCost;
    } else if (mode == "min-cost") {
        req.mode = Mode::MinCost;
    } else if (mode == "cheapest") {
        req.mode = Mode::CheapestUnderDeadline;
    } else if (mode == "fastest") {
        req.mode = Mode::FastestUnderBudget;
    } else {
        fatal("request: unknown mode \"%s\" "
              "(min-cost|cheapest|fastest)",
              mode.c_str());
    }
    if (req.mode == Mode::CheapestUnderDeadline && req.deadlineSec <= 0.0)
        fatal("request: mode \"cheapest\" needs deadline_s > 0");
    if (req.mode == Mode::FastestUnderBudget && req.budgetUsd <= 0.0)
        fatal("request: mode \"fastest\" needs budget_usd > 0");
    return req;
}

std::string
Request::cacheKey() const
{
    std::string key = workload;
    key += '|';
    key += modeName(mode);
    key += '|';
    key += jsonNum(mode == Mode::CheapestUnderDeadline ? deadlineSec
                   : mode == Mode::FastestUnderBudget  ? budgetUsd
                                                       : 0.0);
    key += "|w";
    key += std::to_string(workers);
    return key;
}

std::string
Response::toJson() const
{
    std::string out = "{\"id\":\"" + id + "\"";
    out += ",\"t_ms\":" + jsonNum(tMs);
    out += ",\"status\":\"" + status + "\"";
    if (!reason.empty())
        out += ",\"reason\":\"" + reason + "\"";
    if (!cacheOutcome.empty())
        out += ",\"cache\":\"" + cacheOutcome + "\"";
    if (haveConfig) {
        out += ",\"config\":\"" + config + "\"";
        out += ",\"cost_usd\":" + jsonNum(costUsd);
        out += ",\"runtime_s\":" + jsonNum(runtimeSec);
    }
    out += ",\"degraded\":";
    out += degraded ? "true" : "false";
    out += ",\"model_only\":";
    out += modelOnly ? "true" : "false";
    out += ",\"cells_done\":" + std::to_string(cellsDone);
    out += ",\"cells_total\":" + std::to_string(cellsTotal);
    out += ",\"retries\":" + std::to_string(retries);
    out += ",\"backoff_ms\":" + jsonNum(backoffMs);
    out += ",\"latency_ms\":" + jsonNum(latencyMs);
    out += "}";
    return out;
}

std::string
ServiceStats::toJson() const
{
    std::string out = "{\"received\":" + std::to_string(received);
    out += ",\"completed\":" + std::to_string(completed);
    out += ",\"ok\":" + std::to_string(ok);
    out += ",\"degraded\":" + std::to_string(degraded);
    out += ",\"model_only\":" + std::to_string(modelOnly);
    out += ",\"shed\":" + std::to_string(shed);
    out += ",\"rejected\":" + std::to_string(rejected);
    out += ",\"expired\":" + std::to_string(expired);
    out += ",\"errors\":" + std::to_string(errors);
    out += ",\"cache_hits\":" + std::to_string(cacheHits);
    out += ",\"cache_misses\":" + std::to_string(cacheMisses);
    out += ",\"dedup_joins\":" + std::to_string(dedupJoins);
    out += ",\"cache_evictions\":" + std::to_string(cacheEvictions);
    out += ",\"cache_hit_ratio\":" + jsonNum(cacheHitRatio);
    out += ",\"retries\":" + std::to_string(retries);
    out += ",\"backoff_ms_total\":" + jsonNum(backoffMsTotal);
    out += ",\"slow_path_runs\":" + std::to_string(slowPathRuns);
    out += ",\"slow_path_ms_total\":" + jsonNum(slowPathMsTotal);
    out += ",\"partition_timeouts\":" + std::to_string(partitionTimeouts);
    out += ",\"slow_path_task_retries\":" +
           std::to_string(slowPathTaskRetries);
    out += ",\"batches\":" + std::to_string(batches);
    out += ",\"batched_queries\":" + std::to_string(batchedQueries);
    out += ",\"cells_memo_hit\":" + std::to_string(cellsMemoHit);
    out += ",\"cells_pruned\":" + std::to_string(cellsPruned);
    out += ",\"model_store_hits\":" + std::to_string(modelStoreHits);
    out += ",\"breaker_trips\":" + std::to_string(breakerTrips);
    out += ",\"breaker_state\":\"" + breakerState + "\"";
    out += ",\"breaker_closed_ms\":" + jsonNum(breakerClosedMs);
    out += ",\"breaker_open_ms\":" + jsonNum(breakerOpenMs);
    out += ",\"breaker_half_open_ms\":" + jsonNum(breakerHalfOpenMs);
    out += ",\"queue_depth\":" + std::to_string(queueDepth);
    out += ",\"max_queue_depth\":" + std::to_string(maxQueueDepth);
    out += ",\"p50_latency_ms\":" + jsonNum(p50LatencyMs);
    out += ",\"p99_latency_ms\":" + jsonNum(p99LatencyMs);
    out += "}";
    return out;
}

} // namespace doppio::service
