/**
 * @file
 * The what-if planning service (DESIGN.md §14).
 *
 * A PlanningService answers line-delimited JSON plan queries through
 * two transports sharing one admission pipeline:
 *
 *   - runScript(): the deterministic in-process transport. Requests
 *     carry their own virtual arrival times (at_ms); the service runs
 *     a single-threaded virtual-time event loop (arrival/completion
 *     min-heap) where every cost is virtual milliseconds from the
 *     planner's deterministic accounting. The same seeded script
 *     always yields a byte-identical response transcript — this is
 *     what tests, the golden CI transcript and bench/ext_service use.
 *   - handleLineNow(): the synchronous transport behind the real TCP
 *     loop (serveTcp). No queue or dedup — each connection's line is
 *     answered in place — but the same cache, token bucket, circuit
 *     breaker and budgeted planner.
 *
 * Admission pipeline, in order: result cache (hit = free) ->
 * single-flight dedup (follower parks on the leader) -> token bucket
 * (reject "rate_limit") -> worker slot or bounded queue (full: shed
 * oldest or reject newcomer, "queue_full") -> at dispatch, expiry
 * check ("expired", flagged degraded) and circuit breaker (no cached
 * model + open breaker = shed "circuit_open") -> budgeted plan.
 * Accepted requests therefore either complete within their deadline
 * budget or return flagged-degraded answers; the queue never grows
 * past its bound.
 */

#ifndef DOPPIO_SERVICE_SERVER_H
#define DOPPIO_SERVICE_SERVER_H

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/token_bucket.h"
#include "service/breaker.h"
#include "service/cache.h"
#include "service/planner.h"
#include "service/protocol.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"

namespace doppio::service {

/** Service-level tuning; planner tuning nests inside. */
struct ServiceConfig
{
    PlannerConfig planner;
    CircuitBreaker::Config breaker;
    /** Bounded admission queue (dispatch-waiting plan queries). */
    std::size_t queueCapacity = 16;
    /** Queue-full policy: shed the oldest queued query (default) or
     *  reject the newcomer. */
    bool dropOldest = true;
    /** Token-bucket admission rate (queries/sec); 0 = unlimited. */
    double ratePerSec = 0.0;
    double burst = 32.0;
    /** Virtual worker slots evaluating plans concurrently. */
    int workers = 2;
    /** Service deadline budget when a query carries no timeout_ms. */
    double defaultTimeoutMs = 20000.0;
    std::size_t cacheShards = 4;
    std::size_t cacheShardCapacity = 64;
    /**
     * Cold-query coalescing (DESIGN.md §16): when a worker frees up,
     * up to this many queued queries sharing one profile (same
     * workload + fleet size) ride a single batched sweep. 1 disables
     * batching; queries that arrive straight onto a free worker never
     * coalesce — batching only engages under queue pressure.
     */
    int batchMax = 8;
};

/** One scripted request: a raw line plus nothing else — the line's
 *  own at_ms field is its arrival time. */
using Script = std::vector<std::string>;

/** The planning server. */
class PlanningService
{
  public:
    explicit PlanningService(ServiceConfig config);

    /**
     * Replay @p script (raw request lines; blank lines and lines
     * starting with '#' are skipped) through the virtual-time event
     * loop. @return the response transcript, one JSON line per
     * response, in emission order. Deterministic: same script, same
     * seed, byte-identical transcript.
     */
    std::vector<std::string> runScript(const Script &script);

    /**
     * Answer one line synchronously at @p nowMs (caller's clock; the
     * TCP loop feeds a monotonic wall-derived time). No queue and no
     * dedup — budget, cache, token bucket and breaker still apply.
     */
    std::string handleLineNow(const std::string &line, double nowMs);

    /** Operator counters as of now. */
    ServiceStats stats() const;
    std::string statsJson() const { return stats().toJson(); }

    /**
     * Publish the service's counters, queue-wait histogram and breaker
     * state into @p registry under doppio_service_* names. Safe to
     * call on a fresh registry any time; the service never retains a
     * reference to it.
     */
    void publishMetrics(telemetry::Registry &registry) const;

    /**
     * Prometheus exposition of the service metrics: a fresh registry
     * filled by publishMetrics(). This is what the {"cmd":"metrics"}
     * control query wraps in its JSON envelope.
     */
    std::string metricsText() const;

    /**
     * Attach a flight recorder (non-owning; nullptr detaches). The
     * service notes every shed/rejected/expired/error response into
     * it, and when the circuit breaker opens it dumps a postmortem to
     * @p postmortemPath (empty: record but never dump).
     */
    void setFlightRecorder(telemetry::FlightRecorder *recorder,
                           std::string postmortemPath = "");

    /**
     * Structured log of every plan response emitted so far (both
     * transports), in emission order — what the bench and tests
     * assert invariants over without re-parsing JSON.
     */
    const std::vector<Response> &responseLog() const { return log_; }

    const ServiceConfig &config() const { return config_; }
    const CircuitBreaker &breaker() const { return breaker_; }

  private:
    struct Pending
    {
        Request req;
        double arrivalMs = 0.0;
        bool leader = false; //!< began single-flight for its key
    };

    struct Event
    {
        double tMs = 0.0;
        std::uint64_t order = 0; //!< FIFO tiebreak at equal times
        enum class Kind { Arrival, Completion } kind = Kind::Arrival;
        std::uint64_t seq = 0;
        // Completion payload. For a batched completion, items carries
        // one (seq, result) per member in dispatch order and result
        // only holds the breaker-facing aggregates.
        PlanResult result;
        std::vector<std::pair<std::uint64_t, PlanResult>> items;
        bool probeClaimed = false;

        bool operator>(const Event &other) const
        {
            if (tMs != other.tMs)
                return tMs > other.tMs;
            return order > other.order;
        }
    };

    double timeoutFor(const Request &req) const;
    void emit(const Response &response);
    void emitLine(const std::string &line);
    std::string healthLine(double nowMs) const;
    std::string metricsLine() const;
    void onBreakerOpen(double nowMs);
    Response makeShed(const Pending &pending, double nowMs,
                      const char *status, const char *reason) const;

    /** Shed/expire a leader and its attached followers. */
    void shedFlight(std::uint64_t seq, double nowMs, const char *status,
                    const char *reason);

    void onArrival(std::uint64_t seq, double nowMs);
    /** Dispatch queued queries onto free workers, coalescing
     *  same-profile neighbours when batchMax allows. */
    void drainQueue(double nowMs);
    /** Run one query's plan; schedules its completion event. */
    void startJob(std::uint64_t seq, double nowMs);
    /** Run several same-profile queries as one batched sweep. */
    void startBatch(const std::vector<std::uint64_t> &seqs,
                    double nowMs);
    void onCompletion(const Event &event);
    void onBatchCompletion(const Event &event);

    void countResponse(const Response &response);

    ServiceConfig config_;
    Planner planner_;
    CircuitBreaker breaker_;
    common::TokenBucket bucket_;
    ResultCache cache_;
    SingleFlight flight_;

    // Event loop state (runScript).
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    std::uint64_t nextOrder_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::deque<std::uint64_t> queue_;
    int busyWorkers_ = 0;
    std::vector<std::string> transcript_;

    // Counters / logs shared by both transports.
    std::vector<Response> log_;
    std::vector<double> latencies_; //!< terminal plan responses, ms
    ServiceStats counters_;         //!< event counts (derived fields
                                    //!< filled by stats())

    // Telemetry (all optional; absent they cost null checks only).
    /// Queue-wait milliseconds of every dispatched query.
    telemetry::Histogram queueWaitMs_{1e-3};
    /// Width of every queue-drain dispatch while batching is enabled
    /// (width 1 included — the distribution shows coalescing odds).
    telemetry::Histogram batchWidth_{1.0};
    /// Latest transport clock value seen, for time-in-state queries.
    double lastNowMs_ = 0.0;
    telemetry::FlightRecorder *recorder_ = nullptr;
    std::string postmortemPath_;
};

/**
 * Serve the line protocol on TCP port @p port until @p maxRequests
 * lines have been answered (0 = forever). One connection at a time,
 * one response line per request line. @return requests served.
 */
std::uint64_t serveTcp(PlanningService &service, int port,
                       std::uint64_t maxRequests = 0);

} // namespace doppio::service

#endif // DOPPIO_SERVICE_SERVER_H
