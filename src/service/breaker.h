/**
 * @file
 * Circuit breaker guarding the planning service's slow path
 * (DESIGN.md §14).
 *
 * The slow path is every simulator execution a query can trigger:
 * profiling sample runs for an uncached workload and the validation
 * run of a winning configuration. The breaker watches an EMA of
 * per-request slow-path cost plus the admission queue depth, and
 * trips Closed -> Open when either crosses its threshold. While Open,
 * the service serves model-only (Eq. 1) answers from cached profiled
 * constants and sheds queries it cannot answer without simulating.
 * After a cooldown the breaker goes HalfOpen and admits exactly one
 * probe; a healthy probe closes the circuit, a failed or
 * over-threshold probe re-opens it for another cooldown.
 */

#ifndef DOPPIO_SERVICE_BREAKER_H
#define DOPPIO_SERVICE_BREAKER_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace doppio::service {

/** Slow-path health state machine. */
class CircuitBreaker
{
  public:
    enum class State { Closed, Open, HalfOpen };

    struct Config
    {
        /** Trip when the slow-path cost EMA exceeds this (ms). The
         *  default sits above a healthy full profiling pass at the
         *  planner's default msPerSimSecond (~11.5k ms) but below a
         *  pass inflated by retry storms or gray failure. */
        double latencyThresholdMs = 15000.0;
        /** Trip when the admission queue reaches this depth. */
        std::size_t depthThreshold = 64;
        /** EMA smoothing factor in (0, 1]; 1 = last sample only. */
        double emaAlpha = 0.4;
        /** Open -> HalfOpen after this long (ms). */
        double cooldownMs = 2000.0;
    };

    explicit CircuitBreaker(Config config);

    /**
     * May the caller take the slow path at @p nowMs? Closed: yes.
     * Open: no, unless the cooldown has elapsed — then the breaker
     * moves to HalfOpen and this call claims the single probe slot.
     * HalfOpen: only if the probe slot is free (claims it).
     */
    bool allowSlowPath(double nowMs);

    /**
     * Record one request's total slow-path cost. In HalfOpen this is
     * the probe's verdict: under-threshold closes the circuit,
     * over-threshold re-opens it. In Closed the EMA may trip it.
     */
    void recordSlowPath(double costMs, double nowMs);

    /** Record a slow-path failure (retries exhausted). */
    void recordFailure(double nowMs);

    /**
     * Release a probe slot claimed by allowSlowPath() when the request
     * ended up not touching the slow path after all (e.g. its budget
     * expired before validation) — without this the half-open probe
     * slot would leak and the breaker could never close again.
     */
    void releaseProbe();

    /** Observe the admission queue depth (may trip the breaker). */
    void noteQueueDepth(std::size_t depth, double nowMs);

    State state() const { return state_; }
    const char *stateName() const;
    std::uint64_t trips() const { return trips_; }
    double emaMs() const { return emaMs_; }
    const Config &config() const { return config_; }

    /**
     * Milliseconds spent in @p state up to @p nowMs, including the
     * currently running stretch. Lets operators distinguish a breaker
     * that flaps (short open stretches, many trips) from one that is
     * pinned open (shed-by-failure). Time is measured on the same
     * clock the mutating calls carry.
     */
    double timeInStateMs(State state, double nowMs) const;

    /**
     * Install an observer invoked on every Closed/HalfOpen -> Open
     * transition (after the state change). The planning service uses
     * it to dump the flight recorder. Empty function detaches.
     */
    void setOpenObserver(std::function<void(double nowMs)> observer)
    {
        openObserver_ = std::move(observer);
    }

  private:
    void trip(double nowMs);
    void transition(State to, double nowMs);

    Config config_;
    State state_ = State::Closed;
    double emaMs_ = 0.0;
    bool emaSeeded_ = false;
    double openedAtMs_ = 0.0;
    bool probeInFlight_ = false;
    std::uint64_t trips_ = 0;
    /// Clock value when state_ was entered (same clock as nowMs).
    double stateEnteredAtMs_ = 0.0;
    /// Completed milliseconds per state, indexed by State.
    double inStateMs_[3] = {0.0, 0.0, 0.0};
    std::function<void(double)> openObserver_;
};

} // namespace doppio::service

#endif // DOPPIO_SERVICE_BREAKER_H
