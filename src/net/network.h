/**
 * @file
 * Cluster network model.
 *
 * The paper notes that a 10 Gb/s network "usually is not the bottleneck
 * of Spark applications" but shuffle reads still traverse it, so we
 * model it: each node has an ingress fluid pipe at the NIC rate, and a
 * remote transfer is a flow through the destination's ingress pipe plus
 * a small fixed latency. Node-local transfers bypass the NIC.
 */

#ifndef DOPPIO_NET_NETWORK_H
#define DOPPIO_NET_NETWORK_H

#include <functional>
#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "common/units.h"
#include "sim/fluid_pipe.h"
#include "sim/simulator.h"

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::net {

/** Per-node-ingress network fabric. */
class Network
{
  public:
    /**
     * @param simulator     owning event loop.
     * @param numNodes      number of attached nodes.
     * @param nodeBandwidth per-node NIC rate in bytes/s (e.g. 10 Gb/s
     *                      = 1.25 GB/s).
     * @param latency       fixed per-transfer latency.
     */
    Network(sim::Simulator &simulator, int numNodes,
            BytesPerSec nodeBandwidth, Tick latency = usToTicks(500.0));

    /**
     * Move @p bytes from @p srcNode to @p dstNode; @p done fires on
     * completion. Local transfers (src == dst) complete after zero
     * network time via an immediate event.
     */
    void transfer(int srcNode, int dstNode, Bytes bytes,
                  std::function<void()> done);

    /** @return total bytes delivered over the fabric (remote only). */
    Bytes remoteBytes() const { return remoteBytes_; }

    /**
     * Install a network partition: nodes listed on side A cannot
     * exchange bytes with nodes listed on side B (either direction);
     * nodes on neither side keep full connectivity. Replaces any
     * partition already in effect. Consumers (shuffle fetches, HDFS
     * replica reads) poll reachable() and model connection timeouts
     * with exponential backoff before failing over.
     */
    void setPartition(const std::vector<int> &groupA,
                      const std::vector<int> &groupB);

    /** Remove the partition; all pairs become reachable again. */
    void heal();

    /** @return true while a partition is in effect. */
    bool partitioned() const { return partitionActive_; }

    /** @return false iff the current partition separates the pair. */
    bool reachable(int srcNode, int dstNode) const;

    /** @return timeouts reported by consumers (see notePartitionTimeout). */
    long partitionTimeouts() const { return partitionTimeouts_; }

    /** Consumers report each backoff round spent against a partition. */
    void notePartitionTimeout() { ++partitionTimeouts_; }

    /** @return number of nodes. */
    int numNodes() const { return static_cast<int>(ingress_.size()); }

    /** @return per-node NIC bandwidth. */
    BytesPerSec nodeBandwidth() const { return nodeBandwidth_; }

    /**
     * Attach an optional trace collector (non-owning; may be null).
     * Remote transfers then emit spans on the destination node's NIC
     * ingress track; node pids/tids come from the trace track scheme.
     */
    void setTrace(trace::TraceCollector *trace);

  private:
    sim::Simulator &sim_;
    BytesPerSec nodeBandwidth_;
    Tick latency_;
    std::vector<std::unique_ptr<sim::FluidPipe>> ingress_;
    Bytes remoteBytes_ = 0;
    /// Per-node partition side: 0 = unlisted, 1 = side A, 2 = side B.
    std::vector<int> partitionSide_;
    bool partitionActive_ = false;
    long partitionTimeouts_ = 0;
    /// Optional telemetry hook (non-owning).
    trace::TraceCollector *trace_ = nullptr;
};

} // namespace doppio::net

#endif // DOPPIO_NET_NETWORK_H
