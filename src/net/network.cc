#include "net/network.h"

#include "common/logging.h"

namespace doppio::net {

Network::Network(sim::Simulator &simulator, int numNodes,
                 BytesPerSec nodeBandwidth, Tick latency)
    : sim_(simulator), nodeBandwidth_(nodeBandwidth), latency_(latency)
{
    if (numNodes <= 0)
        fatal("Network: need at least one node");
    if (nodeBandwidth <= 0.0)
        fatal("Network: node bandwidth must be positive");
    ingress_.reserve(static_cast<std::size_t>(numNodes));
    for (int n = 0; n < numNodes; ++n) {
        ingress_.push_back(std::make_unique<sim::FluidPipe>(
            simulator, nodeBandwidth,
            "net/ingress" + std::to_string(n)));
    }
}

void
Network::transfer(int srcNode, int dstNode, Bytes bytes,
                  std::function<void()> done)
{
    if (srcNode < 0 || srcNode >= numNodes() || dstNode < 0 ||
        dstNode >= numNodes()) {
        fatal("Network: transfer between invalid nodes %d -> %d", srcNode,
              dstNode);
    }
    if (srcNode == dstNode || bytes == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }
    remoteBytes_ += bytes;
    sim_.schedule(latency_, [this, dstNode, bytes,
                             done = std::move(done)]() mutable {
        // Cap a single flow at the sender's NIC rate as well.
        ingress_[static_cast<std::size_t>(dstNode)]->startFlow(
            bytes, std::move(done), nodeBandwidth_);
    });
}

} // namespace doppio::net
