#include "net/network.h"

#include "common/logging.h"
#include "trace/trace_collector.h"

namespace doppio::net {

Network::Network(sim::Simulator &simulator, int numNodes,
                 BytesPerSec nodeBandwidth, Tick latency)
    : sim_(simulator), nodeBandwidth_(nodeBandwidth), latency_(latency)
{
    if (numNodes <= 0)
        fatal("Network: need at least one node");
    if (nodeBandwidth <= 0.0)
        fatal("Network: node bandwidth must be positive");
    ingress_.reserve(static_cast<std::size_t>(numNodes));
    for (int n = 0; n < numNodes; ++n) {
        ingress_.push_back(std::make_unique<sim::FluidPipe>(
            simulator, nodeBandwidth,
            "net/ingress" + std::to_string(n)));
    }
}

void
Network::transfer(int srcNode, int dstNode, Bytes bytes,
                  std::function<void()> done)
{
    if (srcNode < 0 || srcNode >= numNodes() || dstNode < 0 ||
        dstNode >= numNodes()) {
        fatal("Network: transfer between invalid nodes %d -> %d", srcNode,
              dstNode);
    }
    if (srcNode == dstNode || bytes == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }
    remoteBytes_ += bytes;
    const Tick submitted = sim_.now();
    sim_.schedule(latency_, [this, srcNode, dstNode, bytes, submitted,
                             done = std::move(done)]() mutable {
        sim::FluidPipe &pipe =
            *ingress_[static_cast<std::size_t>(dstNode)];
        if (trace_) {
            // The wrapper fires the original callback at the same tick
            // from the same event, so tracing cannot perturb the run.
            pipe.startFlow(
                bytes,
                [this, srcNode, dstNode, bytes, submitted,
                 done = std::move(done)]() mutable {
                    trace_->span(trace::nodePid(dstNode),
                                 trace::kTidNetIn, "net", "transfer",
                                 submitted, sim_.now(),
                                 trace::TraceArgs()
                                     .add("bytes", bytes)
                                     .add("src_node", srcNode));
                    if (done)
                        done();
                },
                nodeBandwidth_);
            return;
        }
        // Cap a single flow at the sender's NIC rate as well.
        pipe.startFlow(bytes, std::move(done), nodeBandwidth_);
    });
}

void
Network::setPartition(const std::vector<int> &groupA,
                      const std::vector<int> &groupB)
{
    partitionSide_.assign(static_cast<std::size_t>(numNodes()), 0);
    for (int a : groupA) {
        if (a >= 0 && a < numNodes())
            partitionSide_[static_cast<std::size_t>(a)] = 1;
    }
    for (int b : groupB) {
        if (b < 0 || b >= numNodes())
            continue;
        if (partitionSide_[static_cast<std::size_t>(b)] == 1)
            fatal("Network: node %d on both sides of a partition", b);
        partitionSide_[static_cast<std::size_t>(b)] = 2;
    }
    partitionActive_ = true;
}

void
Network::heal()
{
    partitionActive_ = false;
    partitionSide_.clear();
}

bool
Network::reachable(int srcNode, int dstNode) const
{
    if (!partitionActive_ || srcNode == dstNode)
        return true;
    if (srcNode < 0 || srcNode >= numNodes() || dstNode < 0 ||
        dstNode >= numNodes())
        return true;
    const int a = partitionSide_[static_cast<std::size_t>(srcNode)];
    const int b = partitionSide_[static_cast<std::size_t>(dstNode)];
    return a == 0 || b == 0 || a == b;
}

void
Network::setTrace(trace::TraceCollector *trace)
{
    trace_ = trace;
}

} // namespace doppio::net
