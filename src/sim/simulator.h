/**
 * @file
 * Discrete-event simulation core.
 *
 * A Simulator owns a tick clock and a priority queue of events. Model
 * components (disks, network pipes, executors, schedulers) schedule
 * callbacks; run() drains the queue in (tick, insertion-order) order so
 * simulations are fully deterministic.
 */

#ifndef DOPPIO_SIM_SIMULATOR_H
#define DOPPIO_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"

namespace doppio::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * The event loop. Events at equal ticks fire in scheduling order.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @return an id usable with cancel().
     */
    EventId schedule(Tick delay, std::function<void()> fn);

    /** Schedule @p fn at absolute tick @p when (must be >= now()). */
    EventId scheduleAt(Tick when, std::function<void()> fn);

    /** Cancel a pending event; cancelling a fired event is a no-op. */
    void cancel(EventId id);

    /** Run until the event queue is empty. @return final tick. */
    Tick run();

    /**
     * Run until the queue is empty or @p deadline is reached (events at
     * the deadline tick still fire). @return final tick.
     */
    Tick runUntil(Tick deadline);

    /** Fire the next event, if any. @return false when queue was empty. */
    bool runOneEvent();

    /** @return number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const;

    /** @return total number of events fired since construction. */
    std::uint64_t firedEvents() const { return fired_; }

  private:
    struct Event
    {
        Tick when;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Event &other) const
        {
            // Min-heap: earlier tick first, then FIFO by id.
            if (when != other.when)
                return when > other.when;
            return id > other.id;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue_;
    std::unordered_set<EventId> cancelled_;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t fired_ = 0;
};

} // namespace doppio::sim

#endif // DOPPIO_SIM_SIMULATOR_H
