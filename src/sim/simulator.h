/**
 * @file
 * Discrete-event simulation core.
 *
 * A Simulator owns a tick clock and a binary heap of events. Model
 * components (disks, network pipes, executors, schedulers) schedule
 * callbacks; run() drains the queue in (tick, insertion-order) order so
 * simulations are fully deterministic.
 *
 * Hot-path design (DESIGN.md §11): callbacks live in a pooled slot
 * array recycled through a freelist, so firing an event moves the
 * callback out of its slot instead of copying it out of the heap, and
 * the heap itself holds 16-byte plain-old-data entries. Callbacks are
 * stored as EventFn — a move-only callable with 48 bytes of inline
 * storage, so typical engine closures (a this-pointer plus a few ids
 * and byte counts) never touch the allocator. Cancellation is an O(1)
 * generation-checked disarm — no tombstone set to hash into on every
 * pop — and cancelling an already-fired or unknown id is a guaranteed
 * no-op.
 */

#ifndef DOPPIO_SIM_SIMULATOR_H
#define DOPPIO_SIM_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace doppio::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Move-only `void()` callable with inline storage for small closures.
 *
 * Closures up to kInlineBytes live inside the object (no allocation
 * on schedule, no allocation on fire); larger ones fall back to a
 * single heap cell whose ownership moves with the EventFn. This is
 * what event callbacks are stored as in the simulator's slot pool —
 * any callable converts implicitly, so call sites just pass lambdas.
 */
class EventFn
{
  public:
    static constexpr std::size_t kInlineBytes = 48;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventFn(F &&f) // NOLINT: implicit by design, like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &OpsFor<Fn, true>::ops;
        } else {
            *reinterpret_cast<Fn **>(buf_) =
                new Fn(std::forward<F>(f));
            ops_ = &OpsFor<Fn, false>::ops;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->call(buf_);
    }

    /** Destroy the held callable (no-op when empty). */
    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*call)(void *);
        void (*destroy)(void *);
        /** Move-construct dst's representation from src, destroy src. */
        void (*relocate)(void *dst, void *src);
    };

    template <typename Fn, bool Inline> struct OpsFor;

    template <typename Fn> struct OpsFor<Fn, true>
    {
        static void
        call(void *p)
        {
            (*std::launder(reinterpret_cast<Fn *>(p)))();
        }
        static void
        destroy(void *p)
        {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        }
        static void
        relocate(void *dst, void *src)
        {
            Fn *from = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        }
        static constexpr Ops ops = {&call, &destroy, &relocate};
    };

    template <typename Fn> struct OpsFor<Fn, false>
    {
        static void
        call(void *p)
        {
            (**reinterpret_cast<Fn **>(p))();
        }
        static void
        destroy(void *p)
        {
            delete *reinterpret_cast<Fn **>(p);
        }
        static void
        relocate(void *dst, void *src)
        {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        }
        static constexpr Ops ops = {&call, &destroy, &relocate};
    };

    void
    moveFrom(EventFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/**
 * The event loop. Events at equal ticks fire in scheduling order.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @return an id usable with cancel().
     */
    EventId schedule(Tick delay, EventFn fn);

    /** Schedule @p fn at absolute tick @p when (must be >= now()). */
    EventId scheduleAt(Tick when, EventFn fn);

    /**
     * Cancel a pending event. Cancelling an event that already fired,
     * was already cancelled, or never existed is a no-op.
     */
    void cancel(EventId id);

    /** Run until the event queue is empty. @return final tick. */
    Tick run();

    /**
     * Run until the queue is empty or @p deadline is reached (events at
     * the deadline tick still fire). When events remain beyond the
     * deadline the clock advances to exactly @p deadline; when the
     * queue drains first the clock stays at the last fired event.
     * @return final tick.
     */
    Tick runUntil(Tick deadline);

    /** Fire the next event, if any. @return false when queue was empty. */
    bool runOneEvent();

    /** @return number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return live_; }

    /** @return total number of events fired since construction. */
    std::uint64_t firedEvents() const { return fired_; }

    /**
     * Abort the run (throwing common::FatalError from the event loop)
     * once @p maxFired total events have fired — a watchdog against
     * hung or runaway simulations (the chaos harness's no-hang
     * invariant). 0 (the default) means unlimited.
     */
    void setEventBudget(std::uint64_t maxFired) { budget_ = maxFired; }

    /** @return the configured event budget (0 = unlimited). */
    std::uint64_t eventBudget() const { return budget_; }

    /**
     * @return total number of schedule()/scheduleAt() calls so far.
     * Components can use this to detect whether an event they just
     * scheduled is still the newest one (see FluidPipe's reschedule
     * elision).
     */
    std::uint64_t scheduledEvents() const { return nextSeq_ - 1; }

  private:
    /// EventId layout: [ generation : 40 | slot : 24 ].
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

    /** Pooled callback storage, recycled via free_. */
    struct Slot
    {
        EventFn fn;
        std::uint64_t gen = 1; //!< bumped on release; validates ids
        bool armed = false;    //!< false once fired or cancelled
    };

    /**
     * Heap entry: 16 bytes, trivially copyable. @c key packs the
     * scheduling sequence number (high 40 bits) over the slot index
     * (low 24 bits), so comparing (when, key) yields the exact
     * (tick, insertion-order) total order.
     */
    struct HeapItem
    {
        Tick when;
        std::uint64_t key;

        bool
        operator>(const HeapItem &other) const
        {
            if (when != other.when)
                return when > other.when;
            return key > other.key;
        }
    };

    std::uint32_t acquireSlot();

    /** Pop the heap head, release its slot; @p fire = was it live. */
    EventFn popTop(bool &fire);

    std::vector<HeapItem> heap_;      //!< min-heap via std::*_heap
    std::vector<Slot> pool_;
    std::vector<std::uint32_t> free_; //!< recycled slot indices
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t fired_ = 0;
    std::uint64_t budget_ = 0; //!< max events to fire (0 = unlimited)
    std::size_t live_ = 0;
};

} // namespace doppio::sim

#endif // DOPPIO_SIM_SIMULATOR_H
