/**
 * @file
 * Fair-shared fluid bandwidth resource.
 *
 * Models a link (disk transfer path, NIC) as a pipe of fixed capacity
 * shared max-min fairly among active flows. Events are generated only
 * when flow membership changes, which keeps large shuffles cheap to
 * simulate while capturing bandwidth contention exactly — the effect the
 * Doppio model's BW/b terms describe.
 *
 * Hot-path notes (DESIGN.md §11): progressive filling marks allocated
 * flows in a reused scratch list instead of erasing them from a
 * temporary vector (O(rounds * n), not O(n^2), with bit-identical
 * arithmetic), and the completion event is only re-scheduled when
 * doing so could change the simulation — same-tick re-schedules of
 * the newest event are elided.
 */

#ifndef DOPPIO_SIM_FLUID_PIPE_H
#define DOPPIO_SIM_FLUID_PIPE_H

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace doppio::sim {

/** Handle for an in-flight flow. */
using FlowId = std::uint64_t;

/**
 * A shared-bandwidth pipe with max-min fair allocation and optional
 * per-flow rate caps (progressive filling).
 */
class FluidPipe
{
  public:
    /**
     * @param simulator the owning event loop.
     * @param capacity  total pipe capacity in bytes/s (> 0).
     * @param name      for diagnostics.
     */
    FluidPipe(Simulator &simulator, BytesPerSec capacity, std::string name);

    /**
     * Begin transferring @p bytes; @p done fires when the last byte
     * completes. Zero-byte flows complete on the next event at the
     * current tick.
     *
     * @param rateCap optional per-flow ceiling (bytes/s), e.g. a single
     *                disk channel or a remote sender's NIC.
     * @return the flow id.
     */
    FlowId startFlow(Bytes bytes, std::function<void()> done,
                     BytesPerSec rateCap =
                         std::numeric_limits<double>::infinity());

    /** @return number of currently active flows. */
    std::size_t activeFlows() const { return flows_.size(); }

    /** @return configured capacity in bytes/s. */
    BytesPerSec capacity() const { return capacity_; }

    /** Change capacity (affects in-flight flows from now on). */
    void setCapacity(BytesPerSec capacity);

    /** @return total bytes completed through this pipe. */
    Bytes bytesCompleted() const { return bytesCompleted_; }

    /** @return ticks during which at least one flow was active. */
    Tick busyTime() const;

    const std::string &name() const { return name_; }

  private:
    struct Flow
    {
        Bytes total;      //!< original flow size
        double remaining; //!< bytes left to transfer
        double rate;      //!< bytes/s granted at last rebalance
        BytesPerSec cap;  //!< per-flow ceiling
        std::function<void()> done;
    };

    /** Apply progress since lastUpdate_ at the stored per-flow rates. */
    void advance();

    /** Recompute fair-share rates and (re)schedule completion. */
    void rebalance();

    /** Completion event body: finish due flows, then rebalance. */
    void onCompletion();

    Simulator &sim_;
    BytesPerSec capacity_;
    std::string name_;
    std::unordered_map<FlowId, Flow> flows_;
    std::vector<Flow *> scratch_; //!< reused progressive-filling list
    FlowId nextFlowId_ = 1;
    Tick lastUpdate_ = 0;
    EventId completionEvent_ = 0;
    Tick completionWhen_ = 0;          //!< tick of the pending event
    std::uint64_t completionSeq_ = 0;  //!< scheduledEvents() after it
    bool completionPending_ = false;
    Bytes bytesCompleted_ = 0;
    Tick busyTime_ = 0;
};

} // namespace doppio::sim

#endif // DOPPIO_SIM_FLUID_PIPE_H
