#include "sim/fluid_pipe.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace doppio::sim {

namespace {

/// Completion tolerance, in bytes. Rates are doubles and completion
/// ticks round up, so flows land at or slightly below zero.
constexpr double kEpsilonBytes = 1e-3;

} // namespace

FluidPipe::FluidPipe(Simulator &simulator, BytesPerSec capacity,
                     std::string name)
    : sim_(simulator), capacity_(capacity), name_(std::move(name)),
      lastUpdate_(simulator.now())
{
    if (capacity_ <= 0.0)
        fatal("FluidPipe %s: capacity must be positive", name_.c_str());
}

FlowId
FluidPipe::startFlow(Bytes bytes, std::function<void()> done,
                     BytesPerSec rateCap)
{
    if (rateCap <= 0.0)
        fatal("FluidPipe %s: flow rate cap must be positive",
              name_.c_str());
    advance();
    const FlowId id = nextFlowId_++;
    flows_.emplace(id, Flow{bytes, static_cast<double>(bytes), 0.0,
                            rateCap, std::move(done)});
    rebalance();
    return id;
}

void
FluidPipe::setCapacity(BytesPerSec capacity)
{
    if (capacity <= 0.0)
        fatal("FluidPipe %s: capacity must be positive", name_.c_str());
    advance();
    capacity_ = capacity;
    rebalance();
}

Tick
FluidPipe::busyTime() const
{
    Tick busy = busyTime_;
    if (!flows_.empty())
        busy += sim_.now() - lastUpdate_;
    return busy;
}

void
FluidPipe::advance()
{
    const Tick now = sim_.now();
    if (now == lastUpdate_)
        return;
    const double elapsed = ticksToSeconds(now - lastUpdate_);
    if (!flows_.empty()) {
        busyTime_ += now - lastUpdate_;
        for (auto &[id, flow] : flows_)
            flow.remaining -= flow.rate * elapsed;
    }
    lastUpdate_ = now;
}

void
FluidPipe::rebalance()
{
    if (completionPending_) {
        sim_.cancel(completionEvent_);
        completionPending_ = false;
    }
    if (flows_.empty())
        return;

    // Progressive filling: capped flows that cannot absorb the fair
    // share release bandwidth to the rest.
    std::vector<Flow *> unallocated;
    unallocated.reserve(flows_.size());
    for (auto &[id, flow] : flows_)
        unallocated.push_back(&flow);
    double budget = capacity_;
    bool changed = true;
    while (!unallocated.empty() && changed) {
        changed = false;
        const double fair = budget / static_cast<double>(
            unallocated.size());
        for (auto it = unallocated.begin(); it != unallocated.end();) {
            if ((*it)->cap <= fair) {
                (*it)->rate = (*it)->cap;
                budget -= (*it)->cap;
                it = unallocated.erase(it);
                changed = true;
            } else {
                ++it;
            }
        }
    }
    if (!unallocated.empty()) {
        const double fair = budget / static_cast<double>(
            unallocated.size());
        for (Flow *flow : unallocated)
            flow->rate = fair;
    }

    // Next membership change: the earliest flow completion.
    double min_dt = std::numeric_limits<double>::infinity();
    for (auto &[id, flow] : flows_) {
        if (flow.remaining <= kEpsilonBytes) {
            min_dt = 0.0;
            break;
        }
        min_dt = std::min(min_dt, flow.remaining / flow.rate);
    }
    const Tick delay = static_cast<Tick>(
        std::ceil(min_dt * static_cast<double>(kTicksPerSec)));
    completionEvent_ = sim_.schedule(delay, [this] { onCompletion(); });
    completionPending_ = true;
}

void
FluidPipe::onCompletion()
{
    completionPending_ = false;
    advance();
    std::vector<std::function<void()>> callbacks;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.remaining <= kEpsilonBytes) {
            bytesCompleted_ += it->second.total;
            callbacks.push_back(std::move(it->second.done));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    rebalance();
    for (auto &cb : callbacks) {
        if (cb)
            cb();
    }
}

} // namespace doppio::sim
