#include "sim/fluid_pipe.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace doppio::sim {

namespace {

/// Completion tolerance, in bytes. Rates are doubles and completion
/// ticks round up, so flows land at or slightly below zero.
constexpr double kEpsilonBytes = 1e-3;

} // namespace

FluidPipe::FluidPipe(Simulator &simulator, BytesPerSec capacity,
                     std::string name)
    : sim_(simulator), capacity_(capacity), name_(std::move(name)),
      lastUpdate_(simulator.now())
{
    if (capacity_ <= 0.0)
        fatal("FluidPipe %s: capacity must be positive", name_.c_str());
}

FlowId
FluidPipe::startFlow(Bytes bytes, std::function<void()> done,
                     BytesPerSec rateCap)
{
    if (rateCap <= 0.0)
        fatal("FluidPipe %s: flow rate cap must be positive",
              name_.c_str());
    advance();
    const FlowId id = nextFlowId_++;
    flows_.emplace(id, Flow{bytes, static_cast<double>(bytes), 0.0,
                            rateCap, std::move(done)});
    rebalance();
    return id;
}

void
FluidPipe::setCapacity(BytesPerSec capacity)
{
    if (capacity <= 0.0)
        fatal("FluidPipe %s: capacity must be positive", name_.c_str());
    advance();
    capacity_ = capacity;
    rebalance();
}

Tick
FluidPipe::busyTime() const
{
    Tick busy = busyTime_;
    if (!flows_.empty())
        busy += sim_.now() - lastUpdate_;
    return busy;
}

void
FluidPipe::advance()
{
    const Tick now = sim_.now();
    if (now == lastUpdate_)
        return;
    const double elapsed = ticksToSeconds(now - lastUpdate_);
    if (!flows_.empty()) {
        busyTime_ += now - lastUpdate_;
        for (auto &[id, flow] : flows_)
            flow.remaining -= flow.rate * elapsed;
    }
    lastUpdate_ = now;
}

void
FluidPipe::rebalance()
{
    if (flows_.empty()) {
        if (completionPending_) {
            sim_.cancel(completionEvent_);
            completionPending_ = false;
        }
        return;
    }

    // Progressive filling: capped flows that cannot absorb the fair
    // share release bandwidth to the rest. Allocated flows are marked
    // by nulling their scratch entry instead of erased from the list,
    // so a round costs O(n) instead of O(n^2) of vector shifting —
    // the arithmetic (round-global fair share, flow visit order,
    // budget subtraction order) is exactly the reference solver's, so
    // every rate comes out bit-for-bit identical.
    scratch_.clear();
    scratch_.reserve(flows_.size());
    for (auto &[id, flow] : flows_)
        scratch_.push_back(&flow);
    double budget = capacity_;
    std::size_t unallocated = scratch_.size();
    bool changed = true;
    while (unallocated > 0 && changed) {
        changed = false;
        const double fair =
            budget / static_cast<double>(unallocated);
        for (Flow *&entry : scratch_) {
            if (entry == nullptr)
                continue;
            if (entry->cap <= fair) {
                entry->rate = entry->cap;
                budget -= entry->cap;
                entry = nullptr;
                --unallocated;
                changed = true;
            }
        }
    }
    if (unallocated > 0) {
        const double fair =
            budget / static_cast<double>(unallocated);
        for (Flow *entry : scratch_) {
            if (entry != nullptr)
                entry->rate = fair;
        }
    }

    // Next membership change: the earliest flow completion.
    double min_dt = std::numeric_limits<double>::infinity();
    for (auto &[id, flow] : flows_) {
        if (flow.remaining <= kEpsilonBytes) {
            min_dt = 0.0;
            break;
        }
        min_dt = std::min(min_dt, flow.remaining / flow.rate);
    }
    const Tick delay = static_cast<Tick>(
        std::ceil(min_dt * static_cast<double>(kTicksPerSec)));
    const Tick when = sim_.now() + delay;
    if (completionPending_ && when == completionWhen_ &&
        sim_.scheduledEvents() == completionSeq_) {
        // The already-scheduled completion lands on the same tick and
        // is still the newest event in the simulator, so re-scheduling
        // it could not change the firing order of anything — elide the
        // cancel/schedule pair (DESIGN.md §11).
        return;
    }
    if (completionPending_)
        sim_.cancel(completionEvent_);
    completionEvent_ = sim_.schedule(delay, [this] { onCompletion(); });
    completionWhen_ = when;
    completionSeq_ = sim_.scheduledEvents();
    completionPending_ = true;
}

void
FluidPipe::onCompletion()
{
    completionPending_ = false;
    advance();
    std::vector<std::function<void()>> callbacks;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.remaining <= kEpsilonBytes) {
            bytesCompleted_ += it->second.total;
            callbacks.push_back(std::move(it->second.done));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    rebalance();
    for (auto &cb : callbacks) {
        if (cb)
            cb();
    }
}

} // namespace doppio::sim
