#include "sim/simulator.h"

#include "common/logging.h"

namespace doppio::sim {

EventId
Simulator::schedule(Tick delay, std::function<void()> fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(Tick when, std::function<void()> fn)
{
    if (when < now_)
        panic("Simulator: scheduling into the past (when=%llu, now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    const EventId id = nextId_++;
    queue_.push(Event{when, id, std::move(fn)});
    return id;
}

void
Simulator::cancel(EventId id)
{
    cancelled_.insert(id);
}

bool
Simulator::runOneEvent()
{
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = ev.when;
        ++fired_;
        ev.fn();
        return true;
    }
    return false;
}

Tick
Simulator::run()
{
    while (runOneEvent()) {
    }
    return now_;
}

Tick
Simulator::runUntil(Tick deadline)
{
    while (!queue_.empty()) {
        if (queue_.top().when > deadline)
            break;
        runOneEvent();
    }
    if (now_ < deadline && queue_.empty())
        return now_;
    now_ = std::max(now_, std::min(deadline, now_));
    return now_;
}

std::size_t
Simulator::pendingEvents() const
{
    // Cancelled events still sit in the heap until popped.
    return queue_.size() >= cancelled_.size()
               ? queue_.size() - cancelled_.size()
               : 0;
}

} // namespace doppio::sim
