#include "sim/simulator.h"

#include <algorithm>

#include "common/logging.h"

namespace doppio::sim {

std::uint32_t
Simulator::acquireSlot()
{
    if (!free_.empty()) {
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        return slot;
    }
    if (pool_.size() > kSlotMask)
        panic("Simulator: more than %llu concurrent pending events",
              static_cast<unsigned long long>(kSlotMask));
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

EventId
Simulator::schedule(Tick delay, EventFn fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(Tick when, EventFn fn)
{
    if (when < now_)
        panic("Simulator: scheduling into the past (when=%llu, now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    const std::uint32_t slot = acquireSlot();
    Slot &s = pool_[slot];
    s.fn = std::move(fn);
    s.armed = true;
    const std::uint64_t seq = nextSeq_++;
    heap_.push_back(HeapItem{when, (seq << kSlotBits) | slot});
    std::push_heap(heap_.begin(), heap_.end(),
                   std::greater<HeapItem>{});
    ++live_;
    return (s.gen << kSlotBits) | slot;
}

void
Simulator::cancel(EventId id)
{
    const std::uint64_t slot = id & kSlotMask;
    if (slot >= pool_.size())
        return; // unknown id: no-op
    Slot &s = pool_[slot];
    if (!s.armed || s.gen != (id >> kSlotBits))
        return; // already fired, already cancelled, or a reused slot
    // Disarm only; the callback is destroyed when the heap entry pops,
    // matching the lifetime the heap-owned representation had.
    s.armed = false;
    --live_;
}

EventFn
Simulator::popTop(bool &fire)
{
    const HeapItem top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(),
                  std::greater<HeapItem>{});
    heap_.pop_back();
    const std::uint32_t slot =
        static_cast<std::uint32_t>(top.key & kSlotMask);
    Slot &s = pool_[slot];
    fire = s.armed;
    EventFn fn = std::move(s.fn);
    s.armed = false;
    ++s.gen;
    free_.push_back(slot);
    return fn;
}

bool
Simulator::runOneEvent()
{
    while (!heap_.empty()) {
        const Tick when = heap_.front().when;
        bool fire = false;
        EventFn fn = popTop(fire);
        if (!fire)
            continue; // cancelled: slot released, move on
        if (budget_ != 0 && fired_ >= budget_)
            fatal("Simulator: event budget %llu exhausted at tick "
                  "%llu — runaway or hung simulation",
                  static_cast<unsigned long long>(budget_),
                  static_cast<unsigned long long>(when));
        now_ = when;
        ++fired_;
        --live_;
        fn();
        return true;
    }
    return false;
}

Tick
Simulator::run()
{
    while (runOneEvent()) {
    }
    return now_;
}

Tick
Simulator::runUntil(Tick deadline)
{
    while (!heap_.empty()) {
        const HeapItem top = heap_.front();
        if (!pool_[top.key & kSlotMask].armed) {
            // Cancelled head entry: release it without letting
            // runOneEvent() race past the deadline to the next live
            // event.
            bool fire = false;
            popTop(fire);
            continue;
        }
        if (top.when > deadline) {
            // Events remain beyond the deadline: the interval
            // [now_, deadline] is fully simulated, so the clock
            // advances to the deadline.
            now_ = std::max(now_, deadline);
            return now_;
        }
        runOneEvent();
    }
    // Queue drained inside the window: the whole interval is
    // simulated, so the clock still advances to the deadline.
    now_ = std::max(now_, deadline);
    return now_;
}

} // namespace doppio::sim
