#include "storage/disk_params.h"

#include <algorithm>

#include "common/logging.h"

namespace doppio::storage {

const char *
diskTypeName(DiskType type)
{
    return type == DiskType::Hdd ? "HDD" : "SSD";
}

BytesPerSec
DiskParams::effectiveBandwidth(IoKind kind, Bytes requestSize) const
{
    const double iops = kind == IoKind::Read ? readIops : writeIops;
    const BytesPerSec bw =
        kind == IoKind::Read ? readBandwidth : writeBandwidth;
    if (requestSize == 0)
        return bw;
    return std::min(bw, iops * static_cast<double>(requestSize));
}

void
DiskParams::validate() const
{
    if (readIops <= 0.0 || writeIops <= 0.0)
        fatal("DiskParams %s: IOPS limits must be positive",
              model.c_str());
    if (readBandwidth <= 0.0 || writeBandwidth <= 0.0)
        fatal("DiskParams %s: bandwidths must be positive", model.c_str());
}

DiskParams
makeHddParams(Bytes capacity)
{
    DiskParams p;
    p.model = "WD-4000FYYZ-7200RPM";
    p.type = DiskType::Hdd;
    p.capacity = capacity;
    // One random access every ~2 ms (seek + half rotation with modest
    // NCQ reordering): 500 IOPS. 30 KB x 500/s = 15 MB/s (paper Fig. 5a).
    p.readIops = 500.0;
    p.writeIops = 500.0;
    p.readLatency = msToTicks(2.0);
    p.writeLatency = msToTicks(2.0);
    // 130 MB/s sequential read: 480/130 = 3.7x vs SSD at 128 MB blocks.
    p.readBandwidth = mibps(130.0);
    // Paper §V-A1: shuffle write of ~365 MB chunks sustains ~100 MB/s.
    p.writeBandwidth = mibps(100.0);
    return p;
}

DiskParams
makeSsdParams(Bytes capacity)
{
    DiskParams p;
    p.model = "SAMSUNG-MZ7LM240";
    p.type = DiskType::Ssd;
    p.capacity = capacity;
    // 95k read IOPS: 4 KB x 95k/s = 390 MB/s, ~190x the HDD's 2 MB/s
    // (paper: 181x); at 30 KB the 480 MB/s ceiling binds (paper: 480).
    p.readIops = 95000.0;
    p.writeIops = 85000.0;
    p.readLatency = usToTicks(80.0);
    p.writeLatency = usToTicks(90.0);
    p.readBandwidth = mibps(480.0);
    p.writeBandwidth = mibps(440.0);
    return p;
}

DiskParams
makeNvmeParams(Bytes capacity)
{
    DiskParams p;
    p.model = "datacenter-nvme";
    p.type = DiskType::Ssd;
    p.capacity = capacity;
    p.readIops = 600000.0;
    p.writeIops = 500000.0;
    p.readLatency = usToTicks(15.0);
    p.writeLatency = usToTicks(20.0);
    p.readBandwidth = mibps(3000.0);
    p.writeBandwidth = mibps(2000.0);
    return p;
}

} // namespace doppio::storage
