/**
 * @file
 * Disk device parameterization and calibrated presets.
 *
 * The mechanistic disk model has three stages per request:
 *   1. admission — a token bucket serializing request starts at the
 *      device's IOPS limit (the HDD arm / SSD controller queue);
 *   2. fixed service latency (seek + rotation for HDD, flash access for
 *      SSD), overlapped across outstanding requests;
 *   3. transfer — a fluid fair-shared pipe at the device's sequential
 *      bandwidth.
 *
 * Small random requests are admission-limited (effective bandwidth =
 * IOPS x request size); large requests are transfer-limited. The presets
 * below are calibrated to the paper's measured anchors (Fig. 5 and
 * §III-C): HDD ~15 MB/s and SSD ~480 MB/s at 30 KB (32x), ~181x gap at
 * 4 KB, ~3.7x gap at 128 MB, and HDD shuffle-write bandwidth ~100 MB/s
 * for ~365 MB sorted chunks.
 */

#ifndef DOPPIO_STORAGE_DISK_PARAMS_H
#define DOPPIO_STORAGE_DISK_PARAMS_H

#include <string>

#include "common/sim_time.h"
#include "common/units.h"
#include "storage/io_request.h"

namespace doppio::storage {

/** Broad device technology class. */
enum class DiskType { Hdd, Ssd };

/** @return "HDD" / "SSD". */
const char *diskTypeName(DiskType type);

/** Mechanistic disk model parameters. */
struct DiskParams
{
    std::string model;      //!< device model string, for reports
    DiskType type = DiskType::Hdd;
    Bytes capacity = 0;     //!< advertised capacity

    double readIops = 0.0;  //!< admission rate for reads (1/s)
    double writeIops = 0.0; //!< admission rate for writes (1/s)
    Tick readLatency = 0;   //!< fixed per-request read service latency
    Tick writeLatency = 0;  //!< fixed per-request write service latency
    BytesPerSec readBandwidth = 0.0;  //!< sequential read ceiling
    BytesPerSec writeBandwidth = 0.0; //!< sequential write ceiling

    /**
     * Closed-form effective bandwidth at @p requestSize under full
     * concurrency: min(bandwidth, iops * requestSize). The simulator
     * reproduces this emergently; the closed form is used by tests and
     * as a sanity oracle.
     */
    BytesPerSec effectiveBandwidth(IoKind kind, Bytes requestSize) const;

    /** Validate positivity of all rates; fatal() on error. */
    void validate() const;
};

/**
 * 7200-RPM datacenter HDD (paper: Western Digital 4000FYYZ, 4 TB).
 * Anchors: 30 KB read ~15 MB/s, 4 KB ~2 MB/s, 128 MB ~130 MB/s,
 * large-chunk write ~100 MB/s.
 */
DiskParams makeHddParams(Bytes capacity = 4 * kTiB);

/**
 * Datacenter SATA SSD (paper: Samsung MZ7LM240 "SM863", 240 GB).
 * Anchors: 30 KB read ~480 MB/s (bandwidth-capped), 4 KB ~390 MB/s
 * (IOPS-capped), sequential write ~440 MB/s.
 */
DiskParams makeSsdParams(Bytes capacity = 240 * kGiB);

/**
 * Datacenter NVMe drive (post-paper hardware exploration): ~3 GB/s
 * sequential read, ~600k read IOPS. With spark.local.dir on NVMe the
 * shuffle-read bottleneck the paper studies effectively disappears —
 * used by the ext_nvme extension bench.
 */
DiskParams makeNvmeParams(Bytes capacity = 2 * kTiB);

} // namespace doppio::storage

#endif // DOPPIO_STORAGE_DISK_PARAMS_H
