#include "storage/io_request.h"

namespace doppio::storage {

const char *
ioOpName(IoOp op)
{
    switch (op) {
      case IoOp::HdfsRead:
        return "hdfs_read";
      case IoOp::HdfsWrite:
        return "hdfs_write";
      case IoOp::ShuffleRead:
        return "shuffle_read";
      case IoOp::ShuffleWrite:
        return "shuffle_write";
      case IoOp::PersistRead:
        return "persist_read";
      case IoOp::PersistWrite:
        return "persist_write";
      case IoOp::RawRead:
        return "raw_read";
      case IoOp::RawWrite:
        return "raw_write";
      case IoOp::SpillRead:
        return "spill_read";
      case IoOp::SpillWrite:
        return "spill_write";
    }
    return "unknown";
}

} // namespace doppio::storage
